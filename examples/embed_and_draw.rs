//! Impart coordinates to a coordinate-free graph with the multilevel
//! fixed-lattice embedding and render the result (plus the domain lattice
//! with its β special vertices, as in the paper's Fig 1) to SVG files.
//!
//! Run with: `cargo run --release --example embed_and_draw`
//! Outputs: target/embedding.svg, target/lattice.svg, target/partition.svg

use scalapart::svg::{render_lattice_svg, render_svg};
use scalapart::{scalapart_bisect, SpConfig};
use sp_graph::gen::random_geometric_graph;
use sp_graph::traversal::largest_component;
use sp_machine::{CostModel, Machine};

fn main() -> std::io::Result<()> {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let (g0, _) = random_geometric_graph(900, 0.06, &mut rng);
    let (graph, _) = largest_component(&g0);
    println!("graph: N = {}, M = {}", graph.n(), graph.m());

    // 9 ranks → a 3×3 lattice, matching the paper's Fig 1 illustration.
    let mut machine = Machine::new(9, CostModel::qdr_infiniband());
    let result = scalapart_bisect(&graph, &mut machine, &SpConfig::default());
    println!("cut = {}, imbalance = {:.4}", result.cut, result.imbalance);

    std::fs::create_dir_all("target")?;
    std::fs::write(
        "target/embedding.svg",
        render_svg(&graph, &result.coords, None, 800.0),
    )?;
    std::fs::write(
        "target/lattice.svg",
        render_lattice_svg(&graph, &result.coords, 3, 800.0),
    )?;
    std::fs::write(
        "target/partition.svg",
        render_svg(&graph, &result.coords, Some(&result.bisection), 800.0),
    )?;
    println!("wrote target/embedding.svg, target/lattice.svg, target/partition.svg");
    Ok(())
}
