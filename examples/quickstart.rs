//! Quickstart: partition a mesh with ScalaPart on a simulated 64-rank
//! machine and print the quality/time summary.
//!
//! Run with: `cargo run --release --example quickstart`

use scalapart::{scalapart_bisect, SpConfig};
use sp_graph::gen::delaunay_graph;
use sp_machine::{CostModel, Machine};

fn main() {
    // A Delaunay mesh of 50k random points (the paper's delaunay_nXX family).
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
    let (graph, _coords) = delaunay_graph(50_000, &mut rng);
    println!(
        "graph: N = {}, M = {}, avg degree = {:.2}",
        graph.n(),
        graph.m(),
        graph.avg_degree()
    );

    // A simulated 64-rank QDR-InfiniBand machine (see DESIGN.md).
    let mut machine = Machine::new(64, CostModel::qdr_infiniband());

    let result = scalapart_bisect(&graph, &mut machine, &SpConfig::default());
    result.bisection.validate(&graph).expect("valid bisection");

    println!("\nScalaPart result on P = 64:");
    println!("  edge separator |S|   : {}", result.cut);
    println!("  before strip-FM      : {}", result.cut_before_refine);
    println!("  imbalance            : {:.4}", result.imbalance);
    println!("  strip size           : {} vertices", result.strip_size);
    println!("\nsimulated time breakdown:");
    println!(
        "  coarsen   {:>10.4} ms  (comm {:.1}%)",
        result.times.coarsen.total() * 1e3,
        100.0 * result.times.coarsen.comm / result.times.coarsen.total().max(1e-30)
    );
    println!(
        "  embed     {:>10.4} ms  (comm {:.1}%)",
        result.times.embed.total() * 1e3,
        100.0 * result.times.embed.comm / result.times.embed.total().max(1e-30)
    );
    println!(
        "  partition {:>10.4} ms  (comm {:.1}%)",
        result.times.partition.total() * 1e3,
        100.0 * result.times.partition.comm / result.times.partition.total().max(1e-30)
    );
    println!("  total     {:>10.4} ms", result.total_time * 1e3);
}
