//! Dynamic re-partitioning, the use case from the paper's conclusion: a
//! simulation mesh deforms over time and the partition must follow.
//! Instead of re-partitioning from scratch each step, sp-stream's
//! [`IncrementalRepartitioner`] keeps the previous bisection warm: a
//! deformation front sweeps across the mesh as a stream of deltas
//! (coordinate drift, local re-triangulation, adaptive vertex weights),
//! each step re-refines only the dirty region around the touched
//! vertices, and falls back to a full geometric re-partition when a
//! step churns too much of the graph (here, a mid-sweep weight reset).
//!
//! Each step prints the warm cut next to a from-scratch partition of the
//! same mutated mesh — the quality given up — and the migration volume —
//! the data movement saved. That trade is the whole point of warm starts.
//!
//! Run with: `cargo run --release --example dynamic_repartition`

use scalapart::stream::{DeltaOverlay, GraphDelta, IncrementalRepartitioner, StreamConfig};
use sp_geometry::Point2;
use sp_graph::gen::delaunay_graph;
use std::collections::HashSet;
use std::sync::Arc;

/// Local re-triangulation inside the front: every few disc vertices
/// trade one in-disc edge for a chord further around the disc. All
/// proposals are validated against the overlay plus the batch built so
/// far, so the delta batch always applies cleanly.
fn retriangulate(ov: &DeltaOverlay, disc: &[u32], limit: usize) -> Vec<GraphDelta> {
    let in_disc: HashSet<u32> = disc.iter().copied().collect();
    let key = |a: u32, b: u32| (a.min(b), a.max(b));
    let mut touched: HashSet<(u32, u32)> = HashSet::new();
    let mut deg_adjust = std::collections::HashMap::new();
    let mut out = Vec::new();
    for (i, &v) in disc.iter().enumerate().step_by(6) {
        if out.len() / 2 >= limit {
            break;
        }
        let eff_deg = |x: u32, adj: &std::collections::HashMap<u32, i64>| {
            ov.degree(x) as i64 + adj.get(&x).copied().unwrap_or(0)
        };
        // Drop one in-disc edge, as long as neither endpoint drops below
        // degree 2 and the batch has not already touched the pair.
        let Some((u, _)) = ov.neighbors_w(v).find(|&(u, _)| {
            in_disc.contains(&u)
                && eff_deg(v, &deg_adjust) > 2
                && eff_deg(u, &deg_adjust) > 2
                && !touched.contains(&key(v, u))
        }) else {
            continue;
        };
        // The replacement chord: a disc vertex a third of the way
        // around, skipped if it already neighbours v.
        let c = disc[(i + disc.len() / 3) % disc.len()];
        if c == v || touched.contains(&key(v, c)) || ov.neighbors_w(v).any(|(x, _)| x == c) {
            continue;
        }
        touched.insert(key(v, u));
        touched.insert(key(v, c));
        *deg_adjust.entry(v).or_insert(0) -= 1;
        *deg_adjust.entry(u).or_insert(0) -= 1;
        out.push(GraphDelta::RemoveEdge { u: v, v: u });
        *deg_adjust.entry(v).or_insert(0) += 1;
        *deg_adjust.entry(c).or_insert(0) += 1;
        out.push(GraphDelta::AddEdge { u: v, v: c, w: 1.0 });
    }
    out
}

fn main() {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
    let (graph, coords) = delaunay_graph(20_000, &mut rng);
    let n = graph.n();
    let overlay = DeltaOverlay::new(Arc::new(graph), Some(coords)).expect("mesh is valid");
    let cfg = StreamConfig {
        ranks: 256,
        ..StreamConfig::default()
    };
    let (mut rp, boot) = IncrementalRepartitioner::new(overlay, cfg);

    println!(
        "mesh: N = {}, M = {}; a deformation front sweeps across in 8 steps on P = {}",
        n,
        rp.overlay().m(),
        cfg.ranks
    );
    println!(
        "bootstrap: cut {:.1}, imbalance {:.3}, {:.2} ms\n",
        boot.cut_after, boot.imbalance, boot.wall_ms
    );
    println!(
        "{:>4} {:>12} {:>8} {:>7} {:>10} {:>12} {:>9} {:>10}",
        "step", "mode", "touched", "dirty%", "warm cut", "scratch cut", "migrated", "wall"
    );

    for step in 0..8 {
        // The front: a swirl centred on a point drifting left to right.
        // Vertices inside it move, re-triangulate, and pick up weight
        // (adaptive refinement lands more elements near the front).
        let centre = Point2::new(0.15 + 0.10 * step as f64, 0.5);
        let mut batch = Vec::new();
        {
            let ov = rp.overlay();
            let coords_now = ov.coords().expect("overlay carries coords");
            let mut disc = Vec::new();
            for v in 0..n as u32 {
                let d = coords_now[v as usize] - centre;
                let r2 = d.norm_sq();
                if r2 <= 0.08 * 0.08 {
                    disc.push(v);
                    let swirl = 0.35 * (-300.0 * r2).exp();
                    let (s, c) = (swirl.sin(), swirl.cos());
                    batch.push(GraphDelta::ShiftCoord {
                        v,
                        dx: d.x * c - d.y * s - d.x,
                        dy: d.x * s + d.y * c - d.y,
                    });
                    batch.push(GraphDelta::SetVwgt {
                        v,
                        w: 1.0 + 4.0 * (-150.0 * r2).exp(),
                    });
                }
            }
            batch.extend(retriangulate(ov, &disc, 60));
            if step == 4 {
                // Mid-sweep the solver resets its adaptive weights
                // everywhere — a graph-wide touch that drives the dirty
                // fraction over the threshold and forces a full step.
                for v in (0..n as u32).step_by(3) {
                    batch.push(GraphDelta::SetVwgt { v, w: 1.0 });
                }
            }
        }

        let r = rp.step(&batch).expect("generated deltas are valid");

        // From-scratch oracle: partition the same mutated mesh cold.
        let compacted = Arc::new(rp.overlay().compact());
        let scratch_overlay =
            DeltaOverlay::new(compacted, rp.overlay().coords().map(|c| c.to_vec()))
                .expect("compacted mesh is valid");
        let (_, scratch) = IncrementalRepartitioner::new(scratch_overlay, cfg);

        println!(
            "{:>4} {:>12} {:>8} {:>6.1}% {:>10.1} {:>12.1} {:>9} {:>7.2} ms",
            r.step,
            r.mode.as_str(),
            r.touched,
            r.dirty_frac * 100.0,
            r.cut_after,
            scratch.cut_after,
            r.migration_volume,
            r.wall_ms
        );
    }

    println!("\nincremental steps migrate a handful of vertices where a from-scratch");
    println!("partition would reshuffle the whole mesh; the cut stays within a small");
    println!("factor of cold quality. sp-verify's `incremental` stage fuzzes exactly");
    println!("this trade (validity, determinism, and the differential cut bound).");
}
