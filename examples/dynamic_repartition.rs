//! Dynamic re-partitioning, the use case from the paper's conclusion: a
//! simulation whose mesh already has coordinates deforms over time; each
//! step re-partitions with the partitioning component only (SP-PG7-NL),
//! competing head-to-head with RCB — no coarsening or embedding needed.
//!
//! Run with: `cargo run --release --example dynamic_repartition`

use scalapart::{sp_pg7nl_bisect, SpConfig};
use sp_geometry::Point2;
use sp_graph::distr::Distribution;
use sp_graph::gen::delaunay_graph;
use sp_machine::{CostModel, Machine};

fn main() {
    let p = 256;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
    let (graph, mut coords) = delaunay_graph(20_000, &mut rng);
    println!(
        "mesh: N = {}, M = {}; re-partitioning over 5 deformation steps on P = {p}\n",
        graph.n(),
        graph.m()
    );
    println!(
        "{:>4} {:>12} {:>12} {:>14} {:>14}",
        "step", "SP cut", "RCB cut", "SP time", "RCB time"
    );

    for step in 0..5 {
        // Deform: a slow shear + swirl, like a time-dependent simulation.
        let t = step as f64 * 0.15;
        for c in coords.iter_mut() {
            let r2 = (*c - Point2::new(0.5, 0.5)).norm_sq();
            let swirl = t * (-3.0 * r2).exp();
            let d = *c - Point2::new(0.5, 0.5);
            *c = Point2::new(
                0.5 + d.x * swirl.cos() - d.y * swirl.sin() + t * 0.05 * d.y,
                0.5 + d.x * swirl.sin() + d.y * swirl.cos(),
            );
        }

        let mut m_sp = Machine::new(p, CostModel::qdr_infiniband());
        let sp = sp_pg7nl_bisect(&graph, &coords, &mut m_sp, &SpConfig::default());

        let mut m_rcb = Machine::new(p, CostModel::qdr_infiniband());
        let dist = Distribution::block(graph.n(), p);
        let rcb = scalapart::baselines::rcb_bisect(&graph, &coords, &dist, &mut m_rcb);

        println!(
            "{:>4} {:>12} {:>12} {:>11.3} ms {:>11.3} ms",
            step,
            sp.cut,
            rcb.cut,
            m_sp.elapsed() * 1e3,
            m_rcb.elapsed() * 1e3
        );
    }
    println!("\nSP-PG7-NL should deliver better cuts than RCB at comparable");
    println!("(or better) time once P is large — the paper's Fig 4 story.");
}
