//! Compare every partitioner in the paper's evaluation on one graph:
//! cut size, imbalance, and simulated time at a chosen rank count.
//!
//! Run with: `cargo run --release --example compare_methods [P]`

use scalapart::{run_method, Method};
use sp_graph::{SuiteGraph, TestScale};

fn main() {
    let p: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let t = SuiteGraph::DelaunayN20.instantiate(TestScale::Tiny, 7);
    println!(
        "graph: {} (N = {}, M = {}), P = {p}\n",
        t.name,
        t.graph.n(),
        t.graph.m()
    );
    println!(
        "{:<12} {:>8} {:>10} {:>12}",
        "method", "cut", "imbalance", "sim time"
    );
    for method in [
        Method::PtScotchLike,
        Method::ParMetisLike,
        Method::ScalaPart,
        Method::SpPg7Nl,
        Method::Rcb,
        Method::G30,
        Method::G7,
        Method::G7Nl,
    ] {
        let r = run_method(method, &t.graph, t.coords.as_deref(), p, 99);
        println!(
            "{:<12} {:>8} {:>10.4} {:>10.3} ms",
            method.name(),
            r.cut,
            r.imbalance,
            r.time * 1e3
        );
    }
    println!("\n(sequential G30/G7/G7-NL times are single-rank charges; the");
    println!(" paper compares them on quality only)");
}
