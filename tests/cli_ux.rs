//! Drive the `scalapart` binary as a subprocess and pin down its CLI
//! contract: usage and input errors exit 2 with a one-line hint (never a
//! panic/backtrace), `--json` emits the shared sp-partition-v1 schema,
//! and a good run exits 0.

use std::process::{Command, Output};

fn scalapart(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_scalapart"))
        .args(args)
        .output()
        .expect("spawn scalapart")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn usage_errors_exit_2_with_a_one_line_hint() {
    for argv in [
        vec!["gen:grid:8x8", "--frobnicate"],
        vec!["gen:grid:8x8", "--parts", "many"],
        vec!["gen:grid:8x8", "--method", "quantum"],
        vec!["gen:grid:8x8", "--parts"],
        vec!["gen:grid:8x8", "extra-positional"],
        vec!["gen:gridWxH"],
        vec![],
    ] {
        let out = scalapart(&argv);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{argv:?} → status {:?}, stderr: {}",
            out.status,
            stderr(&out)
        );
        let err = stderr(&out);
        assert!(err.contains("usage: scalapart"), "{argv:?}: {err}");
        assert!(
            !err.contains("panicked") && !err.contains("RUST_BACKTRACE"),
            "{argv:?} must not panic: {err}"
        );
        assert!(
            err.lines().count() <= 3,
            "{argv:?}: hint must be short, got:\n{err}"
        );
    }
}

#[test]
fn unreadable_input_exits_2_not_panic() {
    let out = scalapart(&["/no/such/dir/graph.chaco", "--parts", "2"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("cannot open"), "{err}");
    assert!(err.contains("usage: scalapart"), "{err}");
    assert!(!err.contains("panicked"), "{err}");
}

#[test]
fn corrupt_graph_file_exits_2_with_parse_error() {
    let dir = std::env::temp_dir().join(format!("sp-cli-ux-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corrupt.graph");
    // Header says 3 vertices / 5 edges; body disagrees.
    std::fs::write(&path, "3 5\n2\n1\n1\n").unwrap();
    let out = scalapart(&[path.to_str().unwrap(), "--parts", "2"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("cannot parse"), "{}", stderr(&out));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn good_run_exits_0_and_json_matches_the_shared_schema() {
    let dir = std::env::temp_dir().join(format!("sp-cli-json-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("part.json");
    let out = scalapart(&[
        "gen:grid:12x12",
        "--method",
        "rcb",
        "--parts",
        "4",
        "--json",
        json_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let body = std::fs::read_to_string(&json_path).unwrap();
    assert!(
        body.starts_with("{\"schema\": \"sp-partition-v1\""),
        "{body}"
    );
    for field in [
        "\"n\": 144",
        "\"k\": 4",
        "\"edge_cut\"",
        "\"imbalance\"",
        "\"comm_volume\"",
        "\"part\": [",
    ] {
        assert!(body.contains(field), "missing {field} in {body}");
    }
    // 144 labels, all < 4.
    let labels: Vec<u32> = body
        .split("\"part\": [")
        .nth(1)
        .unwrap()
        .trim_end_matches(&[']', '}'][..])
        .split(',')
        .map(|t| t.trim().parse().unwrap())
        .collect();
    assert_eq!(labels.len(), 144);
    assert!(labels.iter().all(|&p| p < 4));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn help_exits_0() {
    let out = scalapart(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("--json"));
}
