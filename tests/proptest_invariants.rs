//! Property-based invariants across random graphs and point sets.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scalapart::geometry::{hilbert_d2xy, hilbert_xy2d, stereo_lift, stereo_project, Point2};
use scalapart::graph::gen::{delaunay_of_points, random_geometric_graph};
use scalapart::graph::{Bisection, GraphBuilder};
use scalapart::refine::{fm_refine, FmConfig};

fn arb_points(max_n: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 4..max_n)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn builder_always_produces_valid_graphs(
        edges in prop::collection::vec((0u32..50, 0u32..50, 0.1f64..10.0), 1..300)
    ) {
        let mut b = GraphBuilder::new(50);
        for (u, v, w) in edges {
            b.add_edge(u, v, w);
        }
        let g = b.build();
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn delaunay_of_random_points_is_planar_and_valid(pts in arb_points(120)) {
        let points: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        let g = delaunay_of_points(&points);
        prop_assert!(g.validate().is_ok());
        prop_assert!(g.n() == points.len());
        if g.n() >= 3 {
            prop_assert!(g.m() <= 3 * g.n() - 6 + 3); // tiny slack for duplicates
        }
    }

    #[test]
    fn stereo_roundtrip_everywhere(x in -50.0f64..50.0, y in -50.0f64..50.0) {
        let p = Point2::new(x, y);
        let q = stereo_project(stereo_lift(p));
        prop_assert!((p - q).norm() < 1e-6 * (1.0 + p.norm()));
        prop_assert!((stereo_lift(p).norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hilbert_curve_is_a_bijection(order in 1u32..8, x in 0u32..128, y in 0u32..128) {
        let n = 1u32 << order;
        let (x, y) = (x % n, y % n);
        let d = hilbert_xy2d(order, x, y);
        prop_assert!(d < (n as u64) * (n as u64));
        prop_assert_eq!(hilbert_d2xy(order, d), (x, y));
    }

    #[test]
    fn fm_never_increases_cut_on_random_geometric_graphs(
        seed in 0u64..5000, flips in 0usize..40
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, _) = random_geometric_graph(120, 0.15, &mut rng);
        if g.n() < 4 {
            return Ok(());
        }
        let mut side: Vec<u8> = (0..g.n()).map(|v| u8::from(v >= g.n() / 2)).collect();
        for i in 0..flips.min(g.n()) {
            side[(seed as usize + i * 7) % g.n()] ^= 1;
        }
        let mut bi = Bisection::new(side);
        let before = bi.cut(&g);
        let imb_before = bi.imbalance(&g);
        let st = fm_refine(&g, &mut bi, None, &FmConfig::default());
        prop_assert!(st.cut_after <= before + 1e-9);
        prop_assert!((bi.cut(&g) - st.cut_after).abs() < 1e-9);
        // Balance never degrades beyond max(initial, tolerance).
        prop_assert!(bi.imbalance(&g) <= imb_before.max(0.05) + 1e-9);
    }

    #[test]
    fn geometric_partition_is_valid_on_random_meshes(seed in 0u64..5000) {
        use scalapart::geopart::{geometric_partition, GeoConfig};
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, coords) = scalapart::graph::gen::delaunay_graph(200, &mut rng);
        let r = geometric_partition(&g, &coords, &GeoConfig::g7_nl(), &mut rng);
        prop_assert!(r.bisection.validate(&g).is_ok());
        let (a, b) = r.bisection.counts();
        prop_assert!(a.abs_diff(b) <= g.n() / 5);
    }

    #[test]
    fn matching_and_contraction_preserve_weight(seed in 0u64..5000) {
        use scalapart::coarsen::{contract, heavy_edge_matching, validate_matching};
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, _) = random_geometric_graph(150, 0.12, &mut rng);
        let m = heavy_edge_matching(&g, &mut rng);
        prop_assert!(validate_matching(&g, &m).is_ok());
        let c = contract(&g, &m);
        prop_assert!(c.coarse.validate().is_ok());
        prop_assert!((c.coarse.total_vwgt() - g.total_vwgt()).abs() < 1e-6);
        prop_assert!(c.coarse.n() >= g.n() / 2);
    }
}
