//! Scaling-shape tests: the qualitative claims behind the paper's
//! Figures 3–9 and Table 4, evaluated on the simulated machine.
//!
//! Note on scale: these run on graphs ~100–2000× smaller than the paper's
//! (1–21 M vertices), which compresses compute relative to latency at high
//! rank counts — the same effect the paper itself reports for its smaller
//! graphs at 256–1024 ranks. The assertions therefore target the *shape*
//! claims that survive the scale change: per-method speedup curves, the
//! ordering of scalability (ScalaPart's speedup curve is steepest;
//! SP-PG7-NL and RCB scale furthest; ParMetis beats Pt-Scotch at 1024),
//! phase composition, and the growth of the communication fraction.

use scalapart::{run_method, Method};
use sp_graph::{SuiteGraph, TestScale};

fn time_of(method: Method, t: &sp_graph::TestGraph, p: usize, seed: u64) -> f64 {
    run_method(method, &t.graph, t.coords.as_deref(), p, seed).time
}

#[test]
fn every_parallel_method_speeds_up_from_1_to_256() {
    // Needs a graph big enough that P=1 is compute-bound for every method
    // (on small graphs the multilevel partitioners hit their latency floor
    // immediately — the paper's own small-graph degradation effect).
    let t = SuiteGraph::HugeTrace.instantiate(TestScale::Bench, 31);
    for method in [
        Method::ScalaPart,
        Method::ParMetisLike,
        Method::PtScotchLike,
        Method::Rcb,
    ] {
        let t1 = time_of(method, &t, 1, 7);
        let t256 = time_of(method, &t, 256, 7);
        assert!(
            t256 < t1,
            "{}: no speedup, P=1 {t1:.4}s vs P=256 {t256:.4}s",
            method.name()
        );
    }
}

#[test]
fn scalapart_is_slower_at_p1_and_has_the_steepest_speedup() {
    // The paper's Fig 3 story: SP pays a large embedding cost at P=1 but
    // its speedup curve is by far the steepest, overtaking the multilevel
    // partitioners as P grows (fully crossing over at the paper's graph
    // sizes; at our reduced sizes the *relative* gap must shrink by ≥ 4×
    // from P=1 to P=1024).
    let t = SuiteGraph::DelaunayN20.instantiate(TestScale::Bench, 37);
    let sp1 = time_of(Method::ScalaPart, &t, 1, 3);
    let ps1 = time_of(Method::PtScotchLike, &t, 1, 3);
    assert!(
        sp1 > 3.0 * ps1,
        "SP should be much slower at P=1: {sp1} vs {ps1}"
    );

    let sp1024 = time_of(Method::ScalaPart, &t, 1024, 3);
    let ps1024 = time_of(Method::PtScotchLike, &t, 1024, 3);
    let gap1 = sp1 / ps1;
    let gap1024 = sp1024 / ps1024;
    assert!(
        gap1024 < gap1 / 4.0,
        "SP/Pt-Scotch gap should collapse with P: {gap1:.1}× at P=1, {gap1024:.1}× at P=1024"
    );
    // SP's own speedup is steep: ≥ 10× from 1 to 1024.
    assert!(sp1 / sp1024 > 10.0, "SP speedup only {:.1}×", sp1 / sp1024);
}

#[test]
fn parmetis_like_beats_ptscotch_like_at_scale() {
    // Paper: at 1024 ranks ParMetis needs ~24% of Pt-Scotch's time.
    let t = SuiteGraph::DelaunayN20.instantiate(TestScale::Bench, 41);
    let pm = time_of(Method::ParMetisLike, &t, 1024, 11);
    let ps = time_of(Method::PtScotchLike, &t, 1024, 11);
    assert!(
        pm < ps,
        "ParMetis-like {pm} should beat Pt-Scotch-like {ps}"
    );
}

#[test]
fn sp_pg7nl_is_much_faster_than_multilevel_at_scale() {
    // Table 4: the partitioning component alone (SP-PG7-NL) shows a 58×
    // speedup over Pt-Scotch at P=1024 — it is a handful of reductions.
    let t = SuiteGraph::HugeTrace.instantiate(TestScale::Bench, 43);
    let sp = time_of(Method::SpPg7Nl, &t, 1024, 13);
    let ps = time_of(Method::PtScotchLike, &t, 1024, 13);
    assert!(
        sp < ps / 3.0,
        "SP-PG7-NL {sp} should be ≫ faster than Pt-Scotch-like {ps} at P=1024"
    );
}

#[test]
fn rcb_and_sp_pg7nl_are_the_scalability_winners() {
    // Fig 4: for graphs that already have coordinates, both RCB and
    // SP-PG7-NL stay in the sub-millisecond class at high P.
    let t = SuiteGraph::DelaunayN20.instantiate(TestScale::Bench, 47);
    let rcb = time_of(Method::Rcb, &t, 1024, 17);
    let sp = time_of(Method::SpPg7Nl, &t, 1024, 17);
    let ps = time_of(Method::PtScotchLike, &t, 1024, 17);
    assert!(
        rcb < ps && sp < ps,
        "rcb {rcb}, sp-pg7nl {sp}, pt-scotch {ps}"
    );
}

#[test]
fn embedding_dominates_scalapart_time() {
    // Fig 7: embedding is by far the largest component.
    let t = SuiteGraph::Ecology2.instantiate(TestScale::Tiny, 47);
    let r = run_method(Method::ScalaPart, &t.graph, None, 16, 17);
    let phases = r.phases.expect("ScalaPart reports phases");
    assert!(
        phases.embed.total() > phases.partition.total(),
        "embed {} ≤ partition {}",
        phases.embed.total(),
        phases.partition.total()
    );
    assert!(
        phases.embed.total() > 0.3 * (phases.coarsen.total() + phases.partition.total()),
        "embedding suspiciously cheap"
    );
}

#[test]
fn communication_fraction_grows_with_p() {
    // Fig 8: the communication share of embedding time rises with P.
    use scalapart::{scalapart_bisect, SpConfig};
    use sp_machine::{CostModel, Machine};
    let t = SuiteGraph::Ecology1.instantiate(TestScale::Tiny, 53);
    let frac = |p: usize| {
        let mut m = Machine::new(p, CostModel::qdr_infiniband());
        let r = scalapart_bisect(&t.graph, &mut m, &SpConfig::default());
        r.times.embed.comm / r.times.embed.total().max(1e-30)
    };
    let f4 = frac(4);
    let f256 = frac(256);
    assert!(
        f256 > f4,
        "comm fraction should grow: P=4 {f4:.3} vs P=256 {f256:.3}"
    );
}
