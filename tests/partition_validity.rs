//! Cross-method validity: every partitioner returns a valid, balanced,
//! non-degenerate bisection on every graph family it supports.

use scalapart::{run_method, Method};
use sp_graph::{SuiteGraph, TestScale};

const ALL_METHODS: [Method; 8] = [
    Method::ScalaPart,
    Method::SpPg7Nl,
    Method::ParMetisLike,
    Method::PtScotchLike,
    Method::Rcb,
    Method::G30,
    Method::G7,
    Method::G7Nl,
];

#[test]
fn all_methods_valid_on_mesh_graph() {
    let t = SuiteGraph::Ecology1.instantiate(TestScale::Tiny, 1);
    let coords = t.coords.as_deref();
    for method in ALL_METHODS {
        let r = run_method(method, &t.graph, coords, 4, 21);
        r.bisection
            .validate(&t.graph)
            .unwrap_or_else(|e| panic!("{}: {e}", method.name()));
        assert!(
            r.imbalance < 0.15,
            "{}: imbalance {}",
            method.name(),
            r.imbalance
        );
        assert!(
            r.cut < t.graph.m() / 3,
            "{}: cut {} of m {}",
            method.name(),
            r.cut,
            t.graph.m()
        );
    }
}

#[test]
fn all_methods_valid_on_coordinate_free_graph() {
    // kkt has no coords: coordinate methods must auto-embed.
    let t = SuiteGraph::KktPower.instantiate(TestScale::Tiny, 2);
    assert!(t.coords.is_none());
    for method in ALL_METHODS {
        let r = run_method(method, &t.graph, None, 4, 23);
        r.bisection
            .validate(&t.graph)
            .unwrap_or_else(|e| panic!("{}: {e}", method.name()));
        assert!(r.cut < t.graph.m(), "{}: cut {} ≥ m", method.name(), r.cut);
    }
}

#[test]
fn geometric_methods_profit_from_good_coordinates() {
    // With true mesh coordinates the geometric cuts should be close to the
    // multilevel ones — the paper's core comparison.
    let t = SuiteGraph::DelaunayN20.instantiate(TestScale::Tiny, 3);
    let coords = t.coords.as_deref();
    let geo = run_method(Method::G30, &t.graph, coords, 1, 5);
    let ml = run_method(Method::PtScotchLike, &t.graph, None, 1, 5);
    assert!(
        (geo.cut as f64) < 3.0 * ml.cut as f64,
        "G30 {} vs Pt-Scotch-like {}",
        geo.cut,
        ml.cut
    );
}

#[test]
fn reported_cut_matches_bisection() {
    let t = SuiteGraph::G3Circuit.instantiate(TestScale::Tiny, 4);
    for method in [Method::ScalaPart, Method::Rcb, Method::ParMetisLike] {
        let r = run_method(method, &t.graph, t.coords.as_deref(), 16, 9);
        assert_eq!(r.cut, r.bisection.cut_edges(&t.graph), "{}", method.name());
    }
}
