//! End-to-end integration: the full ScalaPart pipeline across suite graphs
//! and rank counts.

use scalapart::{scalapart_bisect, sp_pg7nl_bisect, SpConfig};
use sp_graph::{SuiteGraph, TestScale};
use sp_machine::{CostModel, Machine};

#[test]
fn scalapart_runs_on_every_suite_graph() {
    for sg in SuiteGraph::all() {
        let t = sg.instantiate(TestScale::Tiny, 11);
        let mut m = Machine::new(16, CostModel::qdr_infiniband());
        let r = scalapart_bisect(&t.graph, &mut m, &SpConfig::default());
        r.bisection
            .validate(&t.graph)
            .unwrap_or_else(|e| panic!("{}: {e}", t.name));
        assert!(r.cut > 0, "{}: zero cut", t.name);
        assert!(r.imbalance < 0.15, "{}: imbalance {}", t.name, r.imbalance);
        // Cut sanity: far below a random bisection's expected m/2.
        assert!(
            r.cut < t.graph.m() / 3,
            "{}: cut {} vs m {}",
            t.name,
            r.cut,
            t.graph.m()
        );
    }
}

#[test]
fn scalapart_works_across_rank_counts() {
    let t = SuiteGraph::DelaunayN20.instantiate(TestScale::Tiny, 5);
    for p in [1usize, 2, 4, 16, 64, 256] {
        let mut m = Machine::new(p, CostModel::qdr_infiniband());
        let r = scalapart_bisect(&t.graph, &mut m, &SpConfig::default());
        r.bisection
            .validate(&t.graph)
            .unwrap_or_else(|e| panic!("P={p}: {e}"));
        assert!(r.cut > 0 && r.cut < t.graph.m() / 3, "P={p}: cut {}", r.cut);
    }
}

#[test]
fn pipeline_is_deterministic_per_seed() {
    let t = SuiteGraph::Ecology1.instantiate(TestScale::Tiny, 3);
    let run = |seed: u64| {
        let mut m = Machine::new(4, CostModel::qdr_infiniband());
        let r = scalapart_bisect(&t.graph, &mut m, &SpConfig::default().with_seed(seed));
        (r.cut, r.total_time.to_bits())
    };
    assert_eq!(run(7), run(7));
    // Different seeds explore different embeddings/cuts (almost surely).
    let a = run(7).0;
    let b = run(8).0;
    let c = run(9).0;
    assert!(a != b || b != c, "three seeds gave identical cuts {a}");
}

#[test]
fn strip_refinement_helps_or_is_neutral() {
    let t = SuiteGraph::DelaunayN20.instantiate(TestScale::Tiny, 13);
    let mut with = 0usize;
    let mut without = 0usize;
    for seed in 0..3 {
        let mut m1 = Machine::new(16, CostModel::qdr_infiniband());
        let mut m2 = Machine::new(16, CostModel::qdr_infiniband());
        let r1 = scalapart_bisect(&t.graph, &mut m1, &SpConfig::default().with_seed(seed));
        let cfg_off = SpConfig {
            strip_factor: 0.0,
            ..SpConfig::default().with_seed(seed)
        };
        let r2 = scalapart_bisect(&t.graph, &mut m2, &cfg_off);
        with += r1.cut;
        without += r2.cut;
        // Per-run: refinement can never make the selected separator worse.
        assert!(r1.cut <= r1.cut_before_refine);
    }
    assert!(with <= without, "strip refinement hurt: {with} > {without}");
}

#[test]
fn sp_pg7nl_on_mesh_coordinates_beats_random_cut() {
    let t = SuiteGraph::HugeTrace.instantiate(TestScale::Tiny, 2);
    let coords = t.coords.expect("trace mesh has coordinates");
    let mut m = Machine::new(64, CostModel::qdr_infiniband());
    let r = sp_pg7nl_bisect(&t.graph, &coords, &mut m, &SpConfig::default());
    r.bisection.validate(&t.graph).unwrap();
    assert!(
        r.cut < t.graph.m() / 10,
        "cut {} of m {}",
        r.cut,
        t.graph.m()
    );
}

#[test]
fn coordinate_free_graph_partitions_fine() {
    // kkt_power has no natural coordinates; ScalaPart must impart them.
    let t = SuiteGraph::KktPower.instantiate(TestScale::Tiny, 17);
    let mut m = Machine::new(16, CostModel::qdr_infiniband());
    let r = scalapart_bisect(&t.graph, &mut m, &SpConfig::default());
    r.bisection.validate(&t.graph).unwrap();
    // kkt is the adversarial case: just require a valid, balanced,
    // better-than-random cut.
    assert!(
        r.cut < t.graph.m() / 2,
        "cut {} of m {}",
        r.cut,
        t.graph.m()
    );
    assert!(r.imbalance < 0.15);
}
