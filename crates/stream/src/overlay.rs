//! `DeltaOverlay`: a mutable graph store layering a delta chain over an
//! immutable base CSR.
//!
//! The paper's pipeline (and everything downstream of it) consumes
//! immutable CSR graphs; rebuilding a full CSR per mutation step is
//! exactly the cost a dynamic workload cannot pay. The overlay instead
//! keeps the base behind an `Arc` and materialises a replacement
//! adjacency list *only for vertices a delta touched* (plus sparse vertex-
//! weight patches). Reads go through [`sp_graph::GraphAccess`], so the
//! refinement machinery runs directly on the overlay; [`DeltaOverlay::
//! compact`] folds the chain back into a fresh CSR when a full
//! re-partition (or a cheap long-term representation) is worth it.
//!
//! ## Canonical order and fingerprints
//!
//! Patched adjacency lists are kept ascending by neighbour id; untouched
//! vertices keep the base's order. `compact()` emits exactly the
//! neighbour order the overlay iterates, so refining on the overlay and
//! refining on its compacted CSR are bit-identical, and
//! [`DeltaOverlay::graph_fingerprint`] (which hashes the *logical* CSR
//! image: n, offsets, adjacency, edge-weight bits, vertex-weight bits —
//! the same scheme as sp-serve's cache fingerprint) is invariant under
//! [`DeltaOverlay::rebase`] at any point in the chain.

use crate::delta::{DeltaError, GraphDelta};
use sp_geometry::Point2;
use sp_graph::{Graph, GraphAccess};
use sp_trace::fnv::Fingerprint;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A delta chain layered over an immutable base CSR.
#[derive(Clone)]
pub struct DeltaOverlay {
    base: Arc<Graph>,
    /// Full replacement adjacency (ascending by neighbour) for touched
    /// vertices. `BTreeMap` keeps iteration deterministic.
    adj: BTreeMap<u32, Vec<(u32, f64)>>,
    /// Sparse vertex-weight patches.
    vwgt: BTreeMap<u32, f64>,
    /// Embedding coordinates (owned: coordinate drift mutates in place).
    coords: Option<Vec<Point2>>,
    /// Undirected edge count, maintained incrementally.
    m: usize,
    /// Deltas applied over the overlay's lifetime (survives rebase).
    deltas_applied: u64,
}

impl DeltaOverlay {
    /// Wrap a base graph (and optionally its embedding coordinates).
    pub fn new(base: Arc<Graph>, coords: Option<Vec<Point2>>) -> Result<Self, DeltaError> {
        if let Some(c) = &coords {
            if c.len() != base.n() {
                return Err(DeltaError::BadCoord);
            }
        }
        let m = base.m();
        Ok(DeltaOverlay {
            base,
            adj: BTreeMap::new(),
            vwgt: BTreeMap::new(),
            coords,
            m,
            deltas_applied: 0,
        })
    }

    /// Number of vertices (fixed for the overlay's lifetime).
    pub fn n(&self) -> usize {
        self.base.n()
    }

    /// Current undirected edge count.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Current degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        match self.adj.get(&v) {
            Some(list) => list.len(),
            None => self.base.degree(v),
        }
    }

    /// Current vertex weight of `v`.
    pub fn vwgt(&self, v: u32) -> f64 {
        match self.vwgt.get(&v) {
            Some(&w) => w,
            None => self.base.vwgt(v),
        }
    }

    /// Current neighbours of `v` with edge weights.
    pub fn neighbors_w(&self, v: u32) -> NeighborIter<'_> {
        match self.adj.get(&v) {
            Some(list) => NeighborIter::Patched(list.iter().copied()),
            None => {
                let r = self.base.xadj()[v as usize]..self.base.xadj()[v as usize + 1];
                NeighborIter::Base(
                    self.base.adjncy()[r.clone()]
                        .iter()
                        .copied()
                        .zip(self.base.ewgts()[r].iter().copied()),
                )
            }
        }
    }

    /// Current coordinates, if the overlay carries an embedding.
    pub fn coords(&self) -> Option<&[Point2]> {
        self.coords.as_deref()
    }

    /// The immutable base under the chain.
    pub fn base(&self) -> &Arc<Graph> {
        &self.base
    }

    /// Vertices with a materialised replacement list (chain footprint).
    pub fn patched_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Total deltas applied over the overlay's lifetime.
    pub fn deltas_applied(&self) -> u64 {
        self.deltas_applied
    }

    fn check_vertex(&self, v: u32) -> Result<(), DeltaError> {
        if (v as usize) < self.n() {
            Ok(())
        } else {
            Err(DeltaError::VertexOutOfRange { v, n: self.n() })
        }
    }

    fn list_mut(&mut self, v: u32) -> &mut Vec<(u32, f64)> {
        let base = &self.base;
        self.adj
            .entry(v)
            .or_insert_with(|| base.neighbors_w(v).collect())
    }

    fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors_w(u).any(|(x, _)| x == v)
    }

    /// Apply one delta. Errors leave the overlay untouched.
    pub fn apply(&mut self, d: &GraphDelta) -> Result<(), DeltaError> {
        match *d {
            GraphDelta::AddEdge { u, v, w } => {
                self.check_vertex(u)?;
                self.check_vertex(v)?;
                if u == v {
                    return Err(DeltaError::SelfLoop { v });
                }
                if !w.is_finite() || w <= 0.0 {
                    return Err(DeltaError::BadWeight { w });
                }
                if self.has_edge(u, v) {
                    return Err(DeltaError::DuplicateEdge { u, v });
                }
                for (a, b) in [(u, v), (v, u)] {
                    let list = self.list_mut(a);
                    // Base lists from GraphBuilder are ascending; patched
                    // lists are kept ascending, so a binary search works
                    // on both. (A base built from unsorted CSR falls back
                    // to the insertion point the search reports — still
                    // deterministic, still mirrored by compact().)
                    let pos = list.partition_point(|&(x, _)| x < b);
                    list.insert(pos, (b, w));
                }
                self.m += 1;
            }
            GraphDelta::RemoveEdge { u, v } => {
                self.check_vertex(u)?;
                self.check_vertex(v)?;
                if !self.has_edge(u, v) {
                    return Err(DeltaError::MissingEdge { u, v });
                }
                for (a, b) in [(u, v), (v, u)] {
                    let list = self.list_mut(a);
                    let pos = list.iter().position(|&(x, _)| x == b).unwrap();
                    list.remove(pos);
                }
                self.m -= 1;
            }
            GraphDelta::SetVwgt { v, w } => {
                self.check_vertex(v)?;
                if !w.is_finite() || w <= 0.0 {
                    return Err(DeltaError::BadWeight { w });
                }
                self.vwgt.insert(v, w);
            }
            GraphDelta::ShiftCoord { v, dx, dy } => {
                self.check_vertex(v)?;
                if !dx.is_finite() || !dy.is_finite() {
                    return Err(DeltaError::BadCoord);
                }
                let Some(coords) = self.coords.as_mut() else {
                    return Err(DeltaError::BadCoord);
                };
                let c = coords[v as usize];
                coords[v as usize] = Point2::new(c.x + dx, c.y + dy);
            }
        }
        self.deltas_applied += 1;
        Ok(())
    }

    /// Fold the chain into a fresh CSR. Neighbour order is exactly the
    /// overlay's iteration order, so the result partitions bit-identically.
    pub fn compact(&self) -> Graph {
        let n = self.n();
        let mut xadj = Vec::with_capacity(n + 1);
        xadj.push(0usize);
        for v in 0..n as u32 {
            xadj.push(xadj.last().unwrap() + self.degree(v));
        }
        let total = *xadj.last().unwrap();
        let mut adjncy = Vec::with_capacity(total);
        let mut ewgt = Vec::with_capacity(total);
        for v in 0..n as u32 {
            for (u, w) in self.neighbors_w(v) {
                adjncy.push(u);
                ewgt.push(w);
            }
        }
        let vwgt = (0..n as u32).map(|v| self.vwgt(v)).collect();
        Graph::from_csr(xadj, adjncy, ewgt, vwgt)
    }

    /// Replace the base with the compacted CSR and clear the chain. A
    /// pure representation change: every accessor and fingerprint returns
    /// the same values before and after, at any point in a delta stream.
    pub fn rebase(&mut self) {
        self.base = Arc::new(self.compact());
        self.adj.clear();
        self.vwgt.clear();
        self.m = self.base.m();
    }

    /// Fingerprint of the logical CSR image — identical to sp-serve's
    /// graph fingerprint of [`DeltaOverlay::compact`], and invariant under
    /// [`DeltaOverlay::rebase`].
    pub fn graph_fingerprint(&self) -> u64 {
        let n = self.n();
        let mut fp = Fingerprint::new();
        fp.u64(n as u64);
        let mut off = 0usize;
        fp.u64(0);
        for v in 0..n as u32 {
            off += self.degree(v);
            fp.u64(off as u64);
        }
        for v in 0..n as u32 {
            for (u, _) in self.neighbors_w(v) {
                fp.u64(u as u64);
            }
        }
        for v in 0..n as u32 {
            for (_, w) in self.neighbors_w(v) {
                fp.f64_bits(w);
            }
        }
        for v in 0..n as u32 {
            fp.f64_bits(self.vwgt(v));
        }
        fp.finish()
    }

    /// Fingerprint of graph + coordinates — identical to sp-serve's input
    /// fingerprint of the compacted graph with these coordinates.
    pub fn input_fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.u64(self.graph_fingerprint());
        match &self.coords {
            None => fp.byte(0),
            Some(c) => {
                fp.byte(1);
                for p in c {
                    fp.f64_bits(p.x);
                    fp.f64_bits(p.y);
                }
            }
        }
        fp.finish()
    }
}

impl GraphAccess for DeltaOverlay {
    fn n(&self) -> usize {
        DeltaOverlay::n(self)
    }
    fn m(&self) -> usize {
        DeltaOverlay::m(self)
    }
    fn degree(&self, v: u32) -> usize {
        DeltaOverlay::degree(self, v)
    }
    fn vwgt(&self, v: u32) -> f64 {
        DeltaOverlay::vwgt(self, v)
    }
    fn neighbors_w(&self, v: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        DeltaOverlay::neighbors_w(self, v)
    }
}

/// Neighbour iterator over either representation.
pub enum NeighborIter<'a> {
    Base(
        std::iter::Zip<
            std::iter::Copied<std::slice::Iter<'a, u32>>,
            std::iter::Copied<std::slice::Iter<'a, f64>>,
        >,
    ),
    Patched(std::iter::Copied<std::slice::Iter<'a, (u32, f64)>>),
}

impl Iterator for NeighborIter<'_> {
    type Item = (u32, f64);
    fn next(&mut self) -> Option<(u32, f64)> {
        match self {
            NeighborIter::Base(it) => it.next(),
            NeighborIter::Patched(it) => it.next(),
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            NeighborIter::Base(it) => it.size_hint(),
            NeighborIter::Patched(it) => it.size_hint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::gen::grid_2d;
    use sp_graph::GraphBuilder;

    fn overlay_of(g: Graph) -> DeltaOverlay {
        DeltaOverlay::new(Arc::new(g), None).unwrap()
    }

    #[test]
    fn add_remove_roundtrip_restores_fingerprint() {
        let g = grid_2d(6, 6);
        let mut ov = overlay_of(g);
        let fp0 = ov.graph_fingerprint();
        ov.apply(&GraphDelta::AddEdge {
            u: 0,
            v: 35,
            w: 2.0,
        })
        .unwrap();
        assert_ne!(ov.graph_fingerprint(), fp0);
        assert_eq!(ov.m(), 61);
        ov.apply(&GraphDelta::RemoveEdge { u: 35, v: 0 }).unwrap();
        assert_eq!(ov.graph_fingerprint(), fp0);
        assert_eq!(ov.m(), 60);
    }

    #[test]
    fn compact_matches_overlay_logically() {
        let g = grid_2d(5, 5);
        let mut ov = overlay_of(g);
        ov.apply(&GraphDelta::AddEdge {
            u: 0,
            v: 24,
            w: 3.0,
        })
        .unwrap();
        ov.apply(&GraphDelta::RemoveEdge { u: 0, v: 1 }).unwrap();
        ov.apply(&GraphDelta::SetVwgt { v: 12, w: 9.0 }).unwrap();
        let c = ov.compact();
        c.validate().unwrap();
        assert_eq!(c.n(), ov.n());
        assert_eq!(c.m(), ov.m());
        for v in 0..c.n() as u32 {
            assert_eq!(c.vwgt(v), ov.vwgt(v));
            let a: Vec<_> = c.neighbors_w(v).collect();
            let b: Vec<_> = ov.neighbors_w(v).collect();
            assert_eq!(a, b, "vertex {v}");
        }
    }

    #[test]
    fn rebase_is_invisible() {
        let g = grid_2d(4, 4);
        let mut a = overlay_of(g.clone());
        let mut b = overlay_of(g);
        let deltas = [
            GraphDelta::RemoveEdge { u: 5, v: 6 },
            GraphDelta::AddEdge {
                u: 0,
                v: 15,
                w: 1.5,
            },
            GraphDelta::SetVwgt { v: 3, w: 2.0 },
            GraphDelta::AddEdge { u: 5, v: 6, w: 7.0 },
        ];
        for (i, d) in deltas.iter().enumerate() {
            a.apply(d).unwrap();
            b.apply(d).unwrap();
            if i % 2 == 0 {
                b.rebase(); // only b compacts mid-chain
            }
            assert_eq!(a.graph_fingerprint(), b.graph_fingerprint(), "after {i}");
        }
        assert_eq!(b.patched_vertices(), 2); // cleared at the last rebase
    }

    #[test]
    fn apply_errors_leave_overlay_untouched() {
        let g = grid_2d(3, 3);
        let mut ov = overlay_of(g);
        let fp0 = ov.graph_fingerprint();
        let errs = [
            GraphDelta::AddEdge { u: 0, v: 1, w: 1.0 }, // duplicate
            GraphDelta::AddEdge { u: 2, v: 2, w: 1.0 }, // self loop
            GraphDelta::AddEdge {
                u: 0,
                v: 99,
                w: 1.0,
            }, // out of range
            GraphDelta::AddEdge {
                u: 0,
                v: 8,
                w: -1.0,
            }, // bad weight
            GraphDelta::RemoveEdge { u: 0, v: 8 },      // missing
            GraphDelta::SetVwgt { v: 0, w: f64::NAN },  // bad weight
            GraphDelta::ShiftCoord {
                v: 0,
                dx: 0.1,
                dy: 0.0,
            }, // no coords
        ];
        for d in &errs {
            assert!(ov.apply(d).is_err(), "{d:?}");
        }
        assert_eq!(ov.graph_fingerprint(), fp0);
        assert_eq!(ov.deltas_applied(), 0);
    }

    #[test]
    fn coordinate_drift_changes_input_fp_only() {
        let g = grid_2d(3, 3);
        let coords: Vec<Point2> = (0..9).map(|i| Point2::new(i as f64, 0.0)).collect();
        let mut ov = DeltaOverlay::new(Arc::new(g), Some(coords)).unwrap();
        let gfp = ov.graph_fingerprint();
        let ifp = ov.input_fingerprint();
        ov.apply(&GraphDelta::ShiftCoord {
            v: 4,
            dx: 0.5,
            dy: -0.5,
        })
        .unwrap();
        assert_eq!(ov.graph_fingerprint(), gfp);
        assert_ne!(ov.input_fingerprint(), ifp);
        assert_eq!(ov.coords().unwrap()[4], Point2::new(4.5, -0.5));
    }

    #[test]
    fn weighted_base_vertices_survive_patching() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.set_vwgt(1, 5.0);
        let mut ov = overlay_of(b.build());
        ov.apply(&GraphDelta::AddEdge { u: 0, v: 2, w: 2.0 })
            .unwrap();
        assert_eq!(ov.vwgt(1), 5.0);
        assert_eq!(ov.degree(1), 2);
        assert_eq!(GraphAccess::total_vwgt(&ov), 7.0);
    }
}
