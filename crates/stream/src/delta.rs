//! The graph update model: small, explicit mutations to an undirected
//! weighted graph (and, for mesh use cases, its embedding coordinates).
//!
//! A *delta chain* is an ordered sequence of [`GraphDelta`]s applied to an
//! immutable base CSR. Chains are fingerprinted incrementally — every
//! delta folds a canonical encoding into an FNV-1a accumulator — so two
//! sessions that opened the same base and applied the same deltas in the
//! same order share a fingerprint, which is what lets sp-serve key its
//! streaming result cache by `(base fingerprint, chain fingerprint)`.

use sp_trace::fnv::Fingerprint;

/// One mutation in a delta chain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphDelta {
    /// Insert the undirected edge `(u, v)` with weight `w`. The edge must
    /// not already exist (use [`GraphDelta::SetVwgt`]-style replace-by-
    /// remove-then-add for weight changes, keeping the chain canonical).
    AddEdge { u: u32, v: u32, w: f64 },
    /// Remove the undirected edge `(u, v)`. The edge must exist.
    RemoveEdge { u: u32, v: u32 },
    /// Replace the vertex weight (mass) of `v` with `w`.
    SetVwgt { v: u32, w: f64 },
    /// Shift the embedding coordinate of `v` by `(dx, dy)` — mesh drift.
    ShiftCoord { v: u32, dx: f64, dy: f64 },
}

/// Why a delta could not be applied.
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaError {
    /// Vertex id at or beyond `n` (the overlay never grows the vertex set).
    VertexOutOfRange { v: u32, n: usize },
    /// `AddEdge` with `u == v`.
    SelfLoop { v: u32 },
    /// `AddEdge` for an edge that already exists.
    DuplicateEdge { u: u32, v: u32 },
    /// `RemoveEdge` for an edge that does not exist.
    MissingEdge { u: u32, v: u32 },
    /// Non-finite or non-positive weight.
    BadWeight { w: f64 },
    /// `ShiftCoord` on an overlay opened without coordinates, or with a
    /// non-finite offset.
    BadCoord,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::VertexOutOfRange { v, n } => {
                write!(f, "vertex {v} out of range (n = {n})")
            }
            DeltaError::SelfLoop { v } => write!(f, "self loop at {v}"),
            DeltaError::DuplicateEdge { u, v } => write!(f, "edge ({u},{v}) already exists"),
            DeltaError::MissingEdge { u, v } => write!(f, "edge ({u},{v}) does not exist"),
            DeltaError::BadWeight { w } => write!(f, "bad weight {w}"),
            DeltaError::BadCoord => write!(f, "bad coordinate delta"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl GraphDelta {
    /// The vertices this delta touches (seeds of the dirty region).
    pub fn touches(&self) -> (u32, Option<u32>) {
        match *self {
            GraphDelta::AddEdge { u, v, .. } | GraphDelta::RemoveEdge { u, v } => (u, Some(v)),
            GraphDelta::SetVwgt { v, .. } | GraphDelta::ShiftCoord { v, .. } => (v, None),
        }
    }

    /// Fold a canonical encoding of this delta into `fp`. Endpoints of
    /// edge deltas are folded in `(min, max)` order, so `AddEdge(u, v)`
    /// and `AddEdge(v, u)` — the same logical mutation — fingerprint
    /// identically.
    pub fn fold(&self, fp: &mut Fingerprint) {
        match *self {
            GraphDelta::AddEdge { u, v, w } => {
                fp.byte(1);
                fp.u64(u.min(v) as u64);
                fp.u64(u.max(v) as u64);
                fp.f64_bits(w);
            }
            GraphDelta::RemoveEdge { u, v } => {
                fp.byte(2);
                fp.u64(u.min(v) as u64);
                fp.u64(u.max(v) as u64);
            }
            GraphDelta::SetVwgt { v, w } => {
                fp.byte(3);
                fp.u64(v as u64);
                fp.f64_bits(w);
            }
            GraphDelta::ShiftCoord { v, dx, dy } => {
                fp.byte(4);
                fp.u64(v as u64);
                fp.f64_bits(dx);
                fp.f64_bits(dy);
            }
        }
    }
}

/// Extend a chain fingerprint by one delta: `next = FNV(prev ‖ delta)`.
/// Starting from any fixed value (sessions start from the base
/// fingerprint), equal chains yield equal fingerprints and any prefix
/// divergence propagates to every later link.
pub fn chain_extend(prev: u64, d: &GraphDelta) -> u64 {
    let mut fp = Fingerprint::new();
    fp.u64(prev);
    d.fold(&mut fp);
    fp.finish()
}

/// Fold a marker event (e.g. "repartition requested") into a chain
/// fingerprint, so a cache key distinguishes `[δ₁, repartition, δ₂]`
/// from `[δ₁, δ₂, repartition]`.
pub fn chain_mark(prev: u64, tag: u8) -> u64 {
    let mut fp = Fingerprint::new();
    fp.u64(prev);
    fp.byte(0xF0);
    fp.byte(tag);
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_deltas_are_orientation_invariant() {
        let a = chain_extend(7, &GraphDelta::AddEdge { u: 3, v: 9, w: 2.0 });
        let b = chain_extend(7, &GraphDelta::AddEdge { u: 9, v: 3, w: 2.0 });
        assert_eq!(a, b);
        let ra = chain_extend(a, &GraphDelta::RemoveEdge { u: 9, v: 3 });
        let rb = chain_extend(a, &GraphDelta::RemoveEdge { u: 3, v: 9 });
        assert_eq!(ra, rb);
    }

    #[test]
    fn chains_distinguish_order_and_content() {
        let d1 = GraphDelta::SetVwgt { v: 1, w: 2.0 };
        let d2 = GraphDelta::SetVwgt { v: 2, w: 1.0 };
        let ab = chain_extend(chain_extend(0, &d1), &d2);
        let ba = chain_extend(chain_extend(0, &d2), &d1);
        assert_ne!(ab, ba);
        assert_ne!(
            chain_extend(0, &d1),
            chain_extend(0, &GraphDelta::SetVwgt { v: 1, w: 3.0 })
        );
    }

    #[test]
    fn marker_position_matters() {
        let d = GraphDelta::ShiftCoord {
            v: 0,
            dx: 0.1,
            dy: 0.0,
        };
        let early = chain_extend(chain_mark(0, 1), &d);
        let late = chain_mark(chain_extend(0, &d), 1);
        assert_ne!(early, late);
    }

    #[test]
    fn touches_reports_endpoints() {
        assert_eq!(
            GraphDelta::AddEdge { u: 5, v: 2, w: 1.0 }.touches(),
            (5, Some(2))
        );
        assert_eq!(GraphDelta::SetVwgt { v: 4, w: 1.0 }.touches(), (4, None));
    }
}
