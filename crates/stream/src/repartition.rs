//! Warm-start incremental repartitioning.
//!
//! ROADMAP item 3, and the workload the paper's conclusion motivates: a
//! deforming mesh streams updates; instead of re-partitioning from
//! scratch each step, the [`IncrementalRepartitioner`] keeps the previous
//! bisection, computes the *dirty region* (vertices within a configurable
//! hop radius of any touched vertex), and re-refines only that region
//! with the existing FM machinery — running directly on the
//! [`DeltaOverlay`], no CSR rebuild. When the dirty region exceeds a
//! threshold fraction of the graph the step falls back to a full
//! re-partition (the parallel geometric partitioner when the overlay
//! carries coordinates), compacting and rebasing the overlay on the way.
//!
//! Each step reports the repartitioning-with-migration trade-off the
//! "Recent Advances in Graph Partitioning" survey frames: `migration_
//! volume` (vertices that changed side — data that would move between
//! ranks) against the cut improvement bought. Full repartitions pick the
//! side labelling that minimises migration (cut is invariant under a
//! global label flip, so this is free).
//!
//! Everything is deterministic: dirty-region BFS seeds iterate in sorted
//! order, FM is serial, and the geometric fallback is the same
//! rank-count-invariant routine the batch pipeline uses. The sp-verify
//! `incremental` stage fuzzes this end to end across thread counts.

use crate::delta::{DeltaError, GraphDelta};
use crate::overlay::DeltaOverlay;
use sp_geopart::{parallel_geometric_partition, GeoConfig};
use sp_graph::access;
use sp_graph::distr::Distribution;
use sp_graph::Bisection;
use sp_machine::{CostModel, Machine};
use sp_obs::Registry;
use sp_refine::{fm_refine, fm_refine_on, strip_around_separator, FmConfig};
use sp_trace::fnv::Fingerprint;
use sp_trace::json::num;
use std::collections::{BTreeSet, VecDeque};
use std::time::Instant;

/// Controls for the incremental repartitioner.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Dirty region = vertices within this many hops of a touched vertex.
    pub hop_radius: u32,
    /// Fall back to a full re-partition when the dirty fraction of the
    /// vertex set exceeds this.
    pub full_threshold: f64,
    /// FM settings for both the localized and the full-path refinement.
    pub fm: FmConfig,
    /// Geometric try policy for the full fallback (needs coordinates).
    pub geo: GeoConfig,
    /// Strip size multiple for the full fallback's refinement.
    pub strip_factor: f64,
    /// Simulated ranks charged for repartition work.
    pub ranks: usize,
    /// Master seed for the geometric fallback.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            hop_radius: 2,
            full_threshold: 0.25,
            fm: FmConfig {
                max_passes: 4,
                balance_tol: 0.08,
                move_fraction: 1.0,
            },
            geo: GeoConfig::g7_nl(),
            strip_factor: 6.0,
            ranks: 64,
            seed: 0x5CA_1A9_A87,
        }
    }
}

/// How a step was executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepMode {
    /// Localized FM over the dirty region only.
    Incremental,
    /// Full re-partition of the compacted graph (bootstrap, or dirtiness
    /// over threshold).
    Full,
}

impl StepMode {
    pub fn as_str(self) -> &'static str {
        match self {
            StepMode::Incremental => "incremental",
            StepMode::Full => "full",
        }
    }
}

/// Outcome of one repartition step.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// Step index (0 = the bootstrap partition).
    pub step: u64,
    pub mode: StepMode,
    /// Vertices directly touched by deltas since the last repartition.
    pub touched: usize,
    /// Dirty-region size (touched + hop closure).
    pub dirty: usize,
    /// `dirty / n`.
    pub dirty_frac: f64,
    /// Weighted cut inherited into the step (after deltas, before work).
    pub cut_before: f64,
    /// Weighted cut after the step.
    pub cut_after: f64,
    /// Vertices that changed side — the data-migration objective.
    pub migration_volume: usize,
    /// Weighted imbalance after the step.
    pub imbalance: f64,
    /// FM passes executed.
    pub fm_passes: usize,
    /// Simulated machine time charged to the step.
    pub sim_time: f64,
    /// Host wall time (diagnostic only; never part of any fingerprint or
    /// served response — it would break byte-identical replay).
    pub wall_ms: f64,
    /// FNV fingerprint of the resulting side assignment.
    pub partition_fp: u64,
}

impl StepReport {
    /// One-line JSON record (`sp-stream-step-v1`), for obs logs and bench.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"schema\": \"sp-stream-step-v1\", \"step\": {}, \"mode\": \"{}\", ",
                "\"touched\": {}, \"dirty\": {}, \"dirty_frac\": {}, ",
                "\"cut_before\": {}, \"cut_after\": {}, \"migration_volume\": {}, ",
                "\"imbalance\": {}, \"fm_passes\": {}, \"sim_time\": {}, ",
                "\"wall_ms\": {}, \"partition_fp\": \"{:016x}\"}}"
            ),
            self.step,
            self.mode.as_str(),
            self.touched,
            self.dirty,
            num(self.dirty_frac),
            num(self.cut_before),
            num(self.cut_after),
            self.migration_volume,
            num(self.imbalance),
            self.fm_passes,
            num(self.sim_time),
            num(self.wall_ms),
            self.partition_fp,
        )
    }

    /// Record the migration-vs-cut objective into an sp-obs registry.
    pub fn record(&self, reg: &Registry) {
        reg.counter(
            "sp_stream_repartitions_total",
            "Incremental repartition steps executed",
        )
        .inc();
        if self.mode == StepMode::Full {
            reg.counter(
                "sp_stream_full_repartitions_total",
                "Steps that fell back to a full re-partition",
            )
            .inc();
        }
        reg.counter(
            "sp_stream_migrated_vertices_total",
            "Vertices that changed side across all steps (migration volume)",
        )
        .add(self.migration_volume as u64);
        let improved = (self.cut_before - self.cut_after).max(0.0);
        reg.counter(
            "sp_stream_cut_improvement_total",
            "Cumulative weighted cut improvement bought by repartition steps",
        )
        .add(improved.round() as u64);
        reg.gauge("sp_stream_cut", "Weighted cut after the latest step")
            .set(self.cut_after.round() as i64);
    }
}

/// Keeps a partition warm across a stream of graph deltas.
pub struct IncrementalRepartitioner {
    overlay: DeltaOverlay,
    side: Bisection,
    cfg: StreamConfig,
    /// Vertices touched by deltas since the last repartition (sorted).
    pending: BTreeSet<u32>,
    steps: u64,
}

impl IncrementalRepartitioner {
    /// Bootstrap: run a full partition of the overlay's current state.
    /// Returns the repartitioner plus the step-0 report.
    pub fn new(overlay: DeltaOverlay, cfg: StreamConfig) -> (Self, StepReport) {
        let n = overlay.n();
        let mut rp = IncrementalRepartitioner {
            overlay,
            side: Bisection::new(vec![0; n]),
            cfg,
            pending: BTreeSet::new(),
            steps: 0,
        };
        let report = rp.run_full(0, 0, n, true);
        rp.steps = 1;
        (rp, report)
    }

    /// The current overlay (base + chain).
    pub fn overlay(&self) -> &DeltaOverlay {
        &self.overlay
    }

    /// The current partition.
    pub fn partition(&self) -> &Bisection {
        &self.side
    }

    /// Current weighted cut.
    pub fn cut(&self) -> f64 {
        access::cut_of(&self.overlay, &self.side)
    }

    /// Current weighted imbalance.
    pub fn imbalance(&self) -> f64 {
        access::imbalance_of(&self.overlay, &self.side)
    }

    /// Deltas applied but not yet repartitioned over.
    pub fn pending_touched(&self) -> usize {
        self.pending.len()
    }

    /// Repartition steps executed (including the bootstrap).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// FNV fingerprint of the current side assignment.
    pub fn partition_fingerprint(&self) -> u64 {
        partition_fp(&self.side)
    }

    /// Fold the overlay's chain into its base now (pure representation
    /// change; exposed so tests can interleave compaction arbitrarily).
    pub fn force_rebase(&mut self) {
        self.overlay.rebase();
    }

    /// Adopt a previously computed side assignment for the *current*
    /// overlay state, in place of running [`IncrementalRepartitioner::
    /// repartition`]: pending touches clear and the step counter
    /// advances, exactly as if the step had been computed here. This is
    /// the cache-hit path of sp-serve's streaming sessions — because
    /// repartitioning is deterministic, a partition computed elsewhere
    /// for the same `(base fingerprint, delta chain)` is bit-identical
    /// to what this instance would have produced.
    pub fn adopt(&mut self, sides: Vec<u8>) -> Result<(), &'static str> {
        if sides.len() != self.overlay.n() {
            return Err("adopted partition has the wrong length");
        }
        if sides.iter().any(|&s| s > 1) {
            return Err("adopted partition has a side other than 0/1");
        }
        self.side = Bisection::new(sides);
        self.pending.clear();
        self.steps += 1;
        Ok(())
    }

    /// Apply a batch of deltas atomically: either every delta applies (in
    /// order) or the overlay is left untouched and the first error is
    /// returned. Touched vertices accumulate until the next repartition.
    pub fn apply(&mut self, batch: &[GraphDelta]) -> Result<(), DeltaError> {
        let mut trial = self.overlay.clone();
        for d in batch {
            trial.apply(d)?;
        }
        self.overlay = trial;
        for d in batch {
            let (a, b) = d.touches();
            self.pending.insert(a);
            if let Some(b) = b {
                self.pending.insert(b);
            }
        }
        Ok(())
    }

    /// Repartition over everything applied since the last step.
    pub fn repartition(&mut self) -> StepReport {
        let n = self.overlay.n();
        let touched: Vec<u32> = std::mem::take(&mut self.pending).into_iter().collect();
        let (mask, dirty) = self.dirty_mask(&touched);
        let dirty_frac = if n == 0 { 0.0 } else { dirty as f64 / n as f64 };
        let step = self.steps;
        self.steps += 1;

        if dirty_frac > self.cfg.full_threshold {
            self.run_full(step, touched.len(), dirty, false)
        } else {
            self.run_incremental(step, touched.len(), dirty, &mask)
        }
    }

    /// [`IncrementalRepartitioner::apply`] + [`IncrementalRepartitioner::
    /// repartition`] in one call.
    pub fn step(&mut self, batch: &[GraphDelta]) -> Result<StepReport, DeltaError> {
        self.apply(batch)?;
        Ok(self.repartition())
    }

    /// BFS closure of the touched set within `hop_radius` hops.
    fn dirty_mask(&self, touched: &[u32]) -> (Vec<bool>, usize) {
        let n = self.overlay.n();
        let mut dist = vec![u32::MAX; n];
        let mut q = VecDeque::new();
        for &v in touched {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = 0;
                q.push_back(v);
            }
        }
        let mut count = q.len();
        while let Some(v) = q.pop_front() {
            let d = dist[v as usize];
            if d >= self.cfg.hop_radius {
                continue;
            }
            for (u, _) in self.overlay.neighbors_w(v) {
                if dist[u as usize] == u32::MAX {
                    dist[u as usize] = d + 1;
                    count += 1;
                    q.push_back(u);
                }
            }
        }
        (dist.into_iter().map(|d| d != u32::MAX).collect(), count)
    }

    fn run_incremental(
        &mut self,
        step: u64,
        touched: usize,
        dirty: usize,
        mask: &[bool],
    ) -> StepReport {
        let t0 = Instant::now();
        let mut machine = Machine::new(self.cfg.ranks, CostModel::qdr_infiniband());
        let st = fm_refine_on(&self.overlay, &mut self.side, Some(mask), &self.cfg.fm);
        charge_fm(&mut machine, st.ops, st.passes);
        StepReport {
            step,
            mode: StepMode::Incremental,
            touched,
            dirty,
            dirty_frac: dirty as f64 / self.overlay.n().max(1) as f64,
            cut_before: st.cut_before,
            cut_after: st.cut_after,
            migration_volume: st.moved,
            imbalance: access::imbalance_of(&self.overlay, &self.side),
            fm_passes: st.passes,
            sim_time: machine.elapsed(),
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            partition_fp: partition_fp(&self.side),
        }
    }

    /// Full re-partition of the compacted graph. Rebases the overlay (the
    /// chain is already paid for) and picks the side labelling closest to
    /// the previous partition, since cut is invariant under a global flip
    /// but migration volume is not.
    fn run_full(&mut self, step: u64, touched: usize, dirty: usize, bootstrap: bool) -> StepReport {
        let t0 = Instant::now();
        self.overlay.rebase();
        let g = self.overlay.base().clone();
        let cut_before = access::cut_of(&self.overlay, &self.side);
        let mut machine = Machine::new(self.cfg.ranks, CostModel::qdr_infiniband());
        let mut passes = 0;
        let mut new_side = match self.overlay.coords() {
            Some(coords) => {
                let dist = Distribution::block(g.n(), self.cfg.ranks);
                let geo = parallel_geometric_partition(
                    &g,
                    coords,
                    &dist,
                    &mut machine,
                    &self.cfg.geo,
                    self.cfg.seed ^ 0x9E0,
                );
                let mut bi = geo.bisection;
                if self.cfg.strip_factor > 0.0 && geo.cut > 0 {
                    let target =
                        ((geo.cut as f64 * self.cfg.strip_factor) as usize).clamp(4, g.n());
                    let movable = strip_around_separator(&geo.separator.signed, target);
                    let st = fm_refine(&g, &mut bi, Some(&movable), &self.cfg.fm);
                    charge_fm(&mut machine, st.ops, st.passes);
                    passes = st.passes;
                }
                bi
            }
            None => {
                // No embedding to hand to the geometric partitioner: a
                // full-graph FM sweep from the inherited sides serves as
                // the coordinate-free fallback. A one-sided inheritance
                // (the bootstrap) has cut 0 — a degenerate local optimum
                // FM cannot leave — so seed it with a weighted half
                // split in index order first.
                let mut bi = self.side.clone();
                let (c0, c1) = bi.counts();
                if c0 == 0 || c1 == 0 {
                    let total: f64 = (0..g.n() as u32).map(|v| g.vwgt(v)).sum();
                    let mut acc = 0.0;
                    for v in 0..g.n() as u32 {
                        acc += g.vwgt(v);
                        bi.set(v, u8::from(acc > total / 2.0));
                    }
                }
                let st = fm_refine(&g, &mut bi, None, &self.cfg.fm);
                charge_fm(&mut machine, st.ops, st.passes);
                passes = st.passes;
                bi
            }
        };
        let migration_volume = if bootstrap {
            0
        } else {
            let moved = hamming(&self.side, &new_side);
            let flipped = new_side.len() - moved;
            if flipped < moved {
                for v in 0..new_side.len() as u32 {
                    new_side.flip(v);
                }
                flipped
            } else {
                moved
            }
        };
        self.side = new_side;
        StepReport {
            step,
            mode: StepMode::Full,
            touched,
            dirty,
            dirty_frac: dirty as f64 / self.overlay.n().max(1) as f64,
            cut_before,
            cut_after: access::cut_of(&self.overlay, &self.side),
            migration_volume,
            imbalance: access::imbalance_of(&self.overlay, &self.side),
            fm_passes: passes,
            sim_time: machine.elapsed(),
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            partition_fp: partition_fp(&self.side),
        }
    }
}

/// Charge an FM run to the machine the way the batch pipeline does: the
/// edge scans spread evenly over ranks plus one 2-word allreduce per pass.
fn charge_fm(machine: &mut Machine, ops: f64, passes: usize) {
    let p = machine.p();
    let mut states: Vec<()> = vec![(); p];
    let per_rank = ops / p as f64;
    machine.compute(&mut states, |_, _| per_rank);
    for _ in 0..passes {
        machine.allreduce_sum_costed(2);
    }
}

fn hamming(a: &Bisection, b: &Bisection) -> usize {
    debug_assert_eq!(a.len(), b.len());
    (0..a.len() as u32)
        .filter(|&v| a.side(v) != b.side(v))
        .count()
}

/// FNV fingerprint of a side assignment.
pub fn partition_fp(bi: &Bisection) -> u64 {
    let mut fp = Fingerprint::new();
    fp.u64(bi.len() as u64);
    fp.bytes(bi.sides());
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::DeltaOverlay;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sp_geometry::Point2;
    use sp_graph::gen::grid_2d;
    use std::sync::Arc;

    fn grid_overlay(rows: usize, cols: usize) -> DeltaOverlay {
        let g = grid_2d(rows, cols);
        let coords: Vec<Point2> = (0..rows * cols)
            .map(|i| Point2::new((i % cols) as f64, (i / cols) as f64))
            .collect();
        DeltaOverlay::new(Arc::new(g), Some(coords)).unwrap()
    }

    fn small_cfg() -> StreamConfig {
        StreamConfig {
            ranks: 4,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn bootstrap_produces_valid_partition() {
        let (rp, report) = IncrementalRepartitioner::new(grid_overlay(12, 12), small_cfg());
        assert_eq!(report.mode, StepMode::Full);
        assert_eq!(report.migration_volume, 0);
        assert!(report.cut_after > 0.0);
        rp.partition().validate(rp.overlay().base()).unwrap();
        assert!(rp.imbalance() <= 0.10 + 1e-9);
    }

    #[test]
    fn coordinate_free_bootstrap_is_balanced() {
        let g = Arc::new(grid_2d(10, 10));
        let ov = DeltaOverlay::new(g, None).unwrap();
        let (rp, report) = IncrementalRepartitioner::new(ov, small_cfg());
        let (c0, c1) = rp.partition().counts();
        assert!(c0 > 0 && c1 > 0, "both sides populated ({c0}/{c1})");
        assert!(report.cut_after > 0.0);
        assert!(rp.imbalance() <= rp.cfg.fm.balance_tol + 1e-9);
        rp.partition().validate(rp.overlay().base()).unwrap();
    }

    #[test]
    fn small_drift_stays_incremental_and_cheap() {
        let (mut rp, _) = IncrementalRepartitioner::new(grid_overlay(16, 16), small_cfg());
        let deltas = vec![
            GraphDelta::ShiftCoord {
                v: 10,
                dx: 0.1,
                dy: 0.0,
            },
            GraphDelta::SetVwgt { v: 40, w: 2.0 },
        ];
        let r = rp.step(&deltas).unwrap();
        assert_eq!(r.mode, StepMode::Incremental);
        assert!(r.dirty < rp.overlay().n() / 4);
        assert!(r.cut_after <= r.cut_before + 1e-9, "FM never worsens");
        rp.partition().validate(rp.overlay().base()).unwrap();
    }

    #[test]
    fn heavy_churn_falls_back_to_full() {
        let (mut rp, _) = IncrementalRepartitioner::new(grid_overlay(10, 10), small_cfg());
        // Touch vertices spread across the whole grid: the 2-hop closure
        // covers well over the threshold fraction.
        let deltas: Vec<GraphDelta> = (0..100)
            .step_by(4)
            .map(|v| GraphDelta::SetVwgt { v, w: 1.5 })
            .collect();
        let r = rp.step(&deltas).unwrap();
        assert_eq!(r.mode, StepMode::Full);
        assert_eq!(rp.overlay().patched_vertices(), 0, "full path rebases");
        rp.partition().validate(rp.overlay().base()).unwrap();
    }

    #[test]
    fn migration_volume_counts_side_changes() {
        let (mut rp, _) = IncrementalRepartitioner::new(grid_overlay(12, 12), small_cfg());
        let before = rp.partition().clone();
        let r = rp
            .step(&[GraphDelta::ShiftCoord {
                v: 70,
                dx: 0.3,
                dy: 0.3,
            }])
            .unwrap();
        let after = rp.partition();
        let changed = (0..before.len() as u32)
            .filter(|&v| before.side(v) != after.side(v))
            .count();
        assert_eq!(r.migration_volume, changed);
    }

    #[test]
    fn stream_is_deterministic_and_rebase_invariant() {
        let mk = || IncrementalRepartitioner::new(grid_overlay(14, 14), small_cfg()).0;
        let mut a = mk();
        let mut b = mk();
        let mut rng = StdRng::seed_from_u64(11);
        for step in 0..6 {
            let batch: Vec<GraphDelta> = (0..5)
                .map(|_| GraphDelta::ShiftCoord {
                    v: rng.random_range(0..196),
                    dx: rng.random_range(-0.2..0.2),
                    dy: rng.random_range(-0.2..0.2),
                })
                .collect();
            let ra = a.step(&batch).unwrap();
            let rb = b.step(&batch).unwrap();
            b.force_rebase(); // b compacts every step, a never
            assert_eq!(ra.partition_fp, rb.partition_fp, "step {step}");
            assert_eq!(ra.cut_after.to_bits(), rb.cut_after.to_bits());
            assert_eq!(ra.mode, rb.mode);
            assert_eq!(
                a.overlay().graph_fingerprint(),
                b.overlay().graph_fingerprint()
            );
        }
    }

    #[test]
    fn atomic_apply_rejects_bad_batch() {
        let (mut rp, _) = IncrementalRepartitioner::new(grid_overlay(6, 6), small_cfg());
        let fp = rp.overlay().graph_fingerprint();
        let bad = vec![
            GraphDelta::AddEdge {
                u: 0,
                v: 35,
                w: 1.0,
            }, // fine
            GraphDelta::RemoveEdge { u: 2, v: 30 }, // missing edge
        ];
        assert!(rp.apply(&bad).is_err());
        assert_eq!(rp.overlay().graph_fingerprint(), fp, "batch rolled back");
        assert_eq!(rp.pending_touched(), 0);
    }

    #[test]
    fn adopt_replays_a_computed_step_exactly() {
        // Two identical sessions; one computes a step, the other adopts
        // the first's resulting partition instead. Their states must be
        // indistinguishable afterwards — the serve cache-hit path.
        let mk = || IncrementalRepartitioner::new(grid_overlay(10, 10), small_cfg()).0;
        let mut computed = mk();
        let mut adopted = mk();
        let batch = [GraphDelta::ShiftCoord {
            v: 33,
            dx: 0.2,
            dy: 0.1,
        }];
        let r = computed.step(&batch).unwrap();
        adopted.apply(&batch).unwrap();
        adopted
            .adopt(computed.partition().sides().to_vec())
            .unwrap();
        assert_eq!(adopted.partition_fingerprint(), r.partition_fp);
        assert_eq!(adopted.steps(), computed.steps());
        assert_eq!(adopted.pending_touched(), 0);
        assert_eq!(adopted.cut().to_bits(), computed.cut().to_bits());
        assert!(adopted.adopt(vec![0; 3]).is_err(), "length checked");
        assert!(adopted.adopt(vec![2; 100]).is_err(), "sides checked");
    }

    #[test]
    fn report_json_and_obs_record() {
        let (mut rp, boot) = IncrementalRepartitioner::new(grid_overlay(8, 8), small_cfg());
        let j = boot.to_json();
        assert!(j.contains("\"sp-stream-step-v1\""), "{j}");
        assert!(j.contains("\"mode\": \"full\""), "{j}");
        let r = rp
            .step(&[GraphDelta::ShiftCoord {
                v: 1,
                dx: 0.1,
                dy: 0.0,
            }])
            .unwrap();
        let reg = Registry::new();
        boot.record(&reg);
        r.record(&reg);
        let text = sp_obs::prom::render(&reg);
        assert!(text.contains("sp_stream_repartitions_total 2"), "{text}");
        assert!(
            text.contains("sp_stream_full_repartitions_total 1"),
            "{text}"
        );
    }
}
