//! # sp-stream — dynamic graphs for ScalaPart
//!
//! The batch pipeline answers "partition this graph"; this crate answers
//! "keep a partition good while the graph changes". Three pieces:
//!
//! - [`GraphDelta`] / [`chain_extend`]: a canonical, fingerprintable
//!   update model (edge insert/remove, vertex-weight change, coordinate
//!   drift);
//! - [`DeltaOverlay`]: a delta chain layered over an immutable base CSR,
//!   readable through [`sp_graph::GraphAccess`] so refinement runs on it
//!   directly, with [`DeltaOverlay::compact`]/[`DeltaOverlay::rebase`] to
//!   fold the chain back into CSR form — provably without changing any
//!   observable (the sp-verify `incremental` stage fuzzes this);
//! - [`IncrementalRepartitioner`]: warm-starts from the previous
//!   bisection, re-refines only the dirty region around touched vertices,
//!   falls back to a full geometric re-partition when churn is heavy, and
//!   reports the migration-volume-vs-cut objective per step.
//!
//! sp-serve builds streaming sessions on top (`session_open` /
//! `session_delta` / `session_repartition` / `session_close`), caching
//! results by `(base fingerprint, delta-chain fingerprint)`.

pub mod delta;
pub mod overlay;
pub mod repartition;

pub use delta::{chain_extend, chain_mark, DeltaError, GraphDelta};
pub use overlay::DeltaOverlay;
pub use repartition::{partition_fp, IncrementalRepartitioner, StepMode, StepReport, StreamConfig};
