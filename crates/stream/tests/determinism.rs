//! Delta-chain determinism: compaction is a pure representation change
//! (any interleaving of `rebase()` is fingerprint-invisible), and a
//! mutated graph survives a Chaco round trip bit-exactly.

use proptest::prelude::*;
use sp_graph::gen::grid_2d;
use sp_graph::io::{read_chaco, write_chaco_weighted};
use sp_graph::GraphBuilder;
use sp_stream::{DeltaOverlay, GraphDelta};
use std::sync::Arc;

/// Decode an abstract op tuple into a delta against the current overlay
/// state; returns `None` for ops the validity rules reject (duplicate
/// adds, missing removes, …) so both overlays skip exactly the same ops.
fn decode(ov: &DeltaOverlay, op: u8, a: u32, b: u32, w: f64) -> Option<GraphDelta> {
    let n = ov.n() as u32;
    let (a, b) = (a % n, b % n);
    match op % 3 {
        0 => {
            let d = GraphDelta::AddEdge { u: a, v: b, w };
            (a != b && !ov.neighbors_w(a).any(|(x, _)| x == b)).then_some(d)
        }
        1 => {
            let d = GraphDelta::RemoveEdge { u: a, v: b };
            // Keep the graph from draining: only remove when both
            // endpoints keep at least one neighbour.
            (ov.neighbors_w(a).any(|(x, _)| x == b) && ov.degree(a) > 1 && ov.degree(b) > 1)
                .then_some(d)
        }
        _ => Some(GraphDelta::SetVwgt { v: a, w }),
    }
}

proptest! {
    /// Any interleaving of `rebase()` (fold-to-CSR) calls through a delta
    /// chain yields bit-identical fingerprints to the never-compacted
    /// overlay, and to the always-compacted one, at every step.
    #[test]
    fn rebase_interleaving_is_fingerprint_invisible(
        ops in proptest::collection::vec(
            (0u8..3, 0u32..64, 0u32..64, 1u32..64), 1..40),
        rebase_a in proptest::collection::vec(any::<bool>(), 40),
    ) {
        let base = Arc::new(grid_2d(8, 8));
        let mut never = DeltaOverlay::new(base.clone(), None).unwrap();
        let mut sometimes = DeltaOverlay::new(base.clone(), None).unwrap();
        let mut always = DeltaOverlay::new(base, None).unwrap();
        for (i, &(op, a, b, w)) in ops.iter().enumerate() {
            if let Some(d) = decode(&never, op, a, b, w as f64 / 4.0) {
                never.apply(&d).unwrap();
                sometimes.apply(&d).unwrap();
                always.apply(&d).unwrap();
            }
            if rebase_a[i] {
                sometimes.rebase();
            }
            always.rebase();
            prop_assert_eq!(never.graph_fingerprint(), sometimes.graph_fingerprint());
            prop_assert_eq!(never.graph_fingerprint(), always.graph_fingerprint());
            prop_assert_eq!(never.m(), always.m());
        }
        // The compacted CSR itself is structurally valid and logically
        // identical to the overlay.
        let c = never.compact();
        c.validate().unwrap();
        let fresh = DeltaOverlay::new(Arc::new(c), None).unwrap();
        prop_assert_eq!(fresh.graph_fingerprint(), never.graph_fingerprint());
    }
}

#[test]
fn mutated_graph_chaco_roundtrip_is_bit_exact() {
    // Build a weighted base, push a chain of mutations through the
    // overlay, fold to CSR, and round-trip through the Chaco format.
    let mut b = GraphBuilder::new(12);
    for i in 0..11u32 {
        b.add_edge(i, i + 1, 1.0 + i as f64 / 8.0);
    }
    b.add_edge(0, 11, 2.5);
    b.set_vwgt(3, 4.25);
    let mut ov = DeltaOverlay::new(Arc::new(b.build()), None).unwrap();
    for d in [
        GraphDelta::AddEdge {
            u: 2,
            v: 9,
            w: 0.375,
        },
        GraphDelta::RemoveEdge { u: 5, v: 6 },
        GraphDelta::SetVwgt { v: 7, w: 1.0 / 3.0 },
        GraphDelta::AddEdge { u: 1, v: 6, w: 7.0 },
    ] {
        ov.apply(&d).unwrap();
    }
    let g = ov.compact();
    g.validate().unwrap();

    let mut buf = Vec::new();
    write_chaco_weighted(&g, &mut buf).unwrap();
    let g2 = read_chaco(buf.as_slice()).unwrap();
    assert_eq!(g.xadj(), g2.xadj());
    assert_eq!(g.adjncy(), g2.adjncy());
    assert_eq!(g.ewgts(), g2.ewgts());
    assert_eq!(g.vwgts(), g2.vwgts());

    // Same logical fingerprint whether we look at the overlay, the
    // compacted CSR, or the graph read back from disk.
    let read_back = DeltaOverlay::new(Arc::new(g2), None).unwrap();
    assert_eq!(read_back.graph_fingerprint(), ov.graph_fingerprint());
}
