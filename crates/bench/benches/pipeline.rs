//! End-to-end pipeline benches: ScalaPart vs the comparators at a fixed
//! rank count (wall-clock of the simulation; simulated times come from the
//! `repro` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scalapart::{run_method, Method};
use sp_graph::{SuiteGraph, TestScale};

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    let t = SuiteGraph::DelaunayN20.instantiate(TestScale::Tiny, 7);
    let coords = t.coords.clone();
    for method in [
        Method::ScalaPart,
        Method::ParMetisLike,
        Method::PtScotchLike,
        Method::Rcb,
        Method::SpPg7Nl,
    ] {
        group.bench_with_input(
            BenchmarkId::new(method.name(), t.graph.n()),
            &t.graph,
            |b, g| b.iter(|| run_method(method, g, coords.as_deref(), 16, 9).cut),
        );
    }
    group.finish();
}

fn bench_rank_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalapart_by_p");
    group.sample_size(10);
    let t = SuiteGraph::Ecology1.instantiate(TestScale::Tiny, 9);
    for p in [1usize, 16, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| run_method(Method::ScalaPart, &t.graph, None, p, 3).cut)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods, bench_rank_counts);
criterion_main!(benches);
