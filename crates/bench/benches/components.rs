//! Component wall-clock benches: coarsening, embedding, geometric
//! partitioning, refinement, and the quadtree substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_coarsen::{contract, heavy_edge_matching, CoarsenConfig, Hierarchy};
use sp_embed::{force_layout, lattice_smooth, random_init, ForceParams, LatticeConfig};
use sp_geometry::QuadTree;
use sp_geopart::{geometric_partition, GeoConfig};
use sp_graph::gen::{delaunay_graph, grid_2d};
use sp_graph::Bisection;
use sp_machine::{CostModel, Machine};
use sp_refine::{fm_refine, FmConfig};

fn bench_coarsen(c: &mut Criterion) {
    let mut group = c.benchmark_group("coarsen");
    for side in [64usize, 128] {
        let g = grid_2d(side, side);
        group.bench_with_input(BenchmarkId::new("hem+contract", g.n()), &g, |b, g| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                let m = heavy_edge_matching(g, &mut rng);
                contract(g, &m).coarse.n()
            })
        });
        group.bench_with_input(BenchmarkId::new("hierarchy", g.n()), &g, |b, g| {
            b.iter(|| Hierarchy::build(g, &CoarsenConfig::default()).depth())
        });
    }
    group.finish();
}

fn bench_embed(c: &mut Criterion) {
    let mut group = c.benchmark_group("embed");
    group.sample_size(10);
    for side in [48usize, 96] {
        let g = grid_2d(side, side);
        let mut rng = StdRng::seed_from_u64(2);
        let coords0 = random_init(g.n(), &mut rng);
        let params = ForceParams::for_domain(0.2, g.n() as f64, g.n());
        group.bench_with_input(BenchmarkId::new("barnes_hut_10iters", g.n()), &g, |b, g| {
            b.iter(|| {
                let mut coords = coords0.clone();
                force_layout(g, &mut coords, &params, 0.85, 10, 0.9, 0.95)
            })
        });
        group.bench_with_input(BenchmarkId::new("lattice_10iters_q4", g.n()), &g, |b, g| {
            b.iter(|| {
                let mut coords = coords0.clone();
                let mut m = Machine::new(16, CostModel::qdr_infiniband());
                lattice_smooth(
                    g,
                    &mut coords,
                    4,
                    &mut m,
                    &LatticeConfig {
                        iters: 10,
                        ..Default::default()
                    },
                );
                coords[0]
            })
        });
    }
    group.finish();
}

fn bench_geopart(c: &mut Criterion) {
    let mut group = c.benchmark_group("geopart");
    group.sample_size(10);
    for n in [10_000usize, 40_000] {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, coords) = delaunay_graph(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("g7nl", n), &g, |b, g| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(4);
                geometric_partition(g, &coords, &GeoConfig::g7_nl(), &mut rng).cut
            })
        });
        group.bench_with_input(BenchmarkId::new("g30", n), &g, |b, g| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(4);
                geometric_partition(g, &coords, &GeoConfig::g30(), &mut rng).cut
            })
        });
    }
    group.finish();
}

fn bench_refine(c: &mut Criterion) {
    let mut group = c.benchmark_group("refine");
    for side in [64usize, 128] {
        let g = grid_2d(side, side);
        let noisy: Vec<u8> = (0..g.n())
            .map(|v| u8::from((v % side >= side / 2) != (v % 17 == 0)))
            .collect();
        group.bench_with_input(BenchmarkId::new("fm_full", g.n()), &g, |b, g| {
            b.iter(|| {
                let mut bi = Bisection::new(noisy.clone());
                fm_refine(g, &mut bi, None, &FmConfig::default()).cut_after
            })
        });
    }
    group.finish();
}

fn bench_quadtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("quadtree");
    for n in [10_000usize, 100_000] {
        let mut rng = StdRng::seed_from_u64(5);
        let pts = random_init(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("build", n), &pts, |b, pts| {
            b.iter(|| QuadTree::build(pts, None).node_count())
        });
        let tree = QuadTree::build(&pts, None);
        group.bench_with_input(BenchmarkId::new("query_theta0.85", n), &tree, |b, t| {
            b.iter(|| {
                let mut acc = 0.0;
                t.for_each_approx(pts[0], Some(0), 0.85, |p, m| acc += p.x * m);
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_coarsen,
    bench_embed,
    bench_geopart,
    bench_refine,
    bench_quadtree
);
criterion_main!(benches);
