//! Ablation benches for the design choices DESIGN.md calls out:
//! communication block size, strip refinement factor, hierarchy shrink
//! rate, and the lattice repulsion approximation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scalapart::{scalapart_bisect, SpConfig};
use sp_graph::{SuiteGraph, TestScale};
use sp_machine::{CostModel, Machine};

fn bench_block_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_block");
    group.sample_size(10);
    let t = SuiteGraph::Ecology1.instantiate(TestScale::Tiny, 1);
    for block in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(block), &block, |b, &block| {
            b.iter(|| {
                let mut cfg = SpConfig::default();
                cfg.embed.lattice.block = block;
                let mut m = Machine::new(64, CostModel::qdr_infiniband());
                scalapart_bisect(&t.graph, &mut m, &cfg).cut
            })
        });
    }
    group.finish();
}

fn bench_strip_factor(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_strip");
    group.sample_size(10);
    let t = SuiteGraph::DelaunayN20.instantiate(TestScale::Tiny, 2);
    for factor in [0u32, 6, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(factor), &factor, |b, &f| {
            b.iter(|| {
                let cfg = SpConfig {
                    strip_factor: f as f64,
                    ..Default::default()
                };
                let mut m = Machine::new(16, CostModel::qdr_infiniband());
                scalapart_bisect(&t.graph, &mut m, &cfg).cut
            })
        });
    }
    group.finish();
}

fn bench_shrink_rate(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_levels");
    group.sample_size(10);
    let t = SuiteGraph::Ecology2.instantiate(TestScale::Tiny, 3);
    for every_other in [true, false] {
        let name = if every_other { "4x" } else { "2x" };
        group.bench_with_input(BenchmarkId::from_parameter(name), &every_other, |b, &eo| {
            b.iter(|| {
                let mut cfg = SpConfig::default();
                cfg.coarsen.keep_every_other = eo;
                let mut m = Machine::new(16, CostModel::qdr_infiniband());
                scalapart_bisect(&t.graph, &mut m, &cfg).cut
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_block_size,
    bench_strip_factor,
    bench_shrink_rate
);
criterion_main!(benches);
