//! Shared experiment harness: graph/coordinate caches and memoised method
//! runs, so the many tables and figures that share sweeps (e.g. Table 3,
//! Table 4, Fig 3, Fig 5/6, Fig 9 all reuse the same method×graph×P grid)
//! compute each point exactly once.

use scalapart::pipeline::PhaseTimes;
use scalapart::{run_method, Method};
use sp_embed::{embed_multilevel_seq, SeqEmbedConfig};
use sp_geometry::Point2;
use sp_graph::{SuiteGraph, TestGraph, TestScale};
use std::collections::HashMap;

/// The paper's processor sweep.
pub fn sweep_p() -> Vec<usize> {
    vec![1, 4, 16, 64, 256, 1024]
}

/// One memoised method run.
#[derive(Clone, Debug)]
pub struct RunRecord {
    pub method: Method,
    pub graph: SuiteGraph,
    pub p: usize,
    pub cut: usize,
    pub time: f64,
    pub imbalance: f64,
    pub phases: Option<PhaseTimes>,
}

/// Experiment context: caches instantiated graphs, their coordinates
/// (natural, or Hu-style embedded for the coordinate-free kkt_power), and
/// completed runs.
pub struct Experiments {
    pub scale: TestScale,
    pub seed: u64,
    graphs: HashMap<SuiteGraph, TestGraph>,
    coords: HashMap<SuiteGraph, Vec<Point2>>,
    runs: HashMap<(Method, SuiteGraph, usize), RunRecord>,
    /// Verbose progress to stderr.
    pub verbose: bool,
}

impl Experiments {
    pub fn new(scale: TestScale, seed: u64) -> Self {
        Experiments {
            scale,
            seed,
            graphs: HashMap::new(),
            coords: HashMap::new(),
            runs: HashMap::new(),
            verbose: true,
        }
    }

    /// Instantiate (once) a suite graph at the configured scale.
    pub fn graph(&mut self, sg: SuiteGraph) -> &TestGraph {
        let scale = self.scale;
        let seed = self.seed;
        let verbose = self.verbose;
        self.graphs.entry(sg).or_insert_with(|| {
            if verbose {
                eprintln!("[gen] {} ...", sg.name());
            }
            sg.instantiate(scale, seed)
        })
    }

    /// Coordinates for geometric methods: the graph's natural coordinates
    /// where the family has them, otherwise a sequential force-directed
    /// embedding (the paper's protocol, standing in for Hu's Mathematica
    /// code; its time is not charged to any method).
    pub fn coords(&mut self, sg: SuiteGraph) -> Vec<Point2> {
        if let Some(c) = self.coords.get(&sg) {
            return c.clone();
        }
        let seed = self.seed;
        let verbose = self.verbose;
        let t = self.graph(sg);
        let c = match &t.coords {
            Some(c) => c.clone(),
            None => {
                if verbose {
                    eprintln!("[embed] {} (coordinate-free, Hu-style) ...", sg.name());
                }
                embed_multilevel_seq(
                    &t.graph,
                    &SeqEmbedConfig {
                        seed,
                        ..Default::default()
                    },
                )
            }
        };
        self.coords.insert(sg, c.clone());
        c
    }

    /// Run (or recall) a method on a suite graph at P ranks.
    pub fn run(&mut self, method: Method, sg: SuiteGraph, p: usize) -> RunRecord {
        if let Some(r) = self.runs.get(&(method, sg, p)) {
            return r.clone();
        }
        let seed = self.seed ^ (p as u64).wrapping_mul(0x9E37_79B9);
        let coords = if method.needs_coords() {
            Some(self.coords(sg))
        } else {
            None
        };
        let verbose = self.verbose;
        let t = self.graph(sg);
        if verbose {
            eprintln!("[run] {:<10} {:<18} P={}", method.name(), sg.name(), p);
        }
        let r = run_method(method, &t.graph, coords.as_deref(), p, seed);
        let rec = RunRecord {
            method,
            graph: sg,
            p,
            cut: r.cut,
            time: r.time,
            imbalance: r.imbalance,
            phases: r.phases,
        };
        self.runs.insert((method, sg, p), rec.clone());
        rec
    }

    /// Best (min) and worst (max) cut over a P sweep.
    pub fn cut_range(&mut self, method: Method, sg: SuiteGraph, ps: &[usize]) -> (usize, usize) {
        let cuts: Vec<usize> = ps.iter().map(|&p| self.run(method, sg, p).cut).collect();
        (*cuts.iter().min().unwrap(), *cuts.iter().max().unwrap())
    }

    /// Mean cut over a P sweep.
    pub fn cut_avg(&mut self, method: Method, sg: SuiteGraph, ps: &[usize]) -> f64 {
        let cuts: Vec<usize> = ps.iter().map(|&p| self.run(method, sg, p).cut).collect();
        cuts.iter().sum::<usize>() as f64 / cuts.len() as f64
    }

    /// Total simulated time of a method across all nine graphs at P.
    pub fn total_time(&mut self, method: Method, p: usize) -> f64 {
        SuiteGraph::all()
            .iter()
            .map(|&sg| self.run(method, sg, p).time)
            .sum()
    }

    /// Every memoised run, in deterministic (method, graph, P) order —
    /// the raw data behind all tables, for the per-run metrics artifact.
    pub fn run_records(&self) -> Vec<&RunRecord> {
        let mut v: Vec<&RunRecord> = self.runs.values().collect();
        v.sort_by_key(|r| (r.method.name(), r.graph.name(), r.p));
        v
    }
}

/// Geometric mean of positive values.
pub fn geomean(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    (vals.iter().map(|v| v.max(1e-30).ln()).sum::<f64>() / vals.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_are_memoised() {
        let mut ex = Experiments::new(TestScale::Tiny, 1);
        ex.verbose = false;
        let a = ex.run(Method::Rcb, SuiteGraph::Ecology1, 4);
        let b = ex.run(Method::Rcb, SuiteGraph::Ecology1, 4);
        assert_eq!(a.cut, b.cut);
        assert_eq!(a.time, b.time);
    }

    #[test]
    fn cut_range_orders() {
        let mut ex = Experiments::new(TestScale::Tiny, 2);
        ex.verbose = false;
        let (best, worst) = ex.cut_range(Method::ScalaPart, SuiteGraph::Ecology1, &[1, 16]);
        assert!(best <= worst);
        assert!(best > 0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn coords_exist_for_every_graph() {
        let mut ex = Experiments::new(TestScale::Tiny, 3);
        ex.verbose = false;
        for sg in [SuiteGraph::Ecology1, SuiteGraph::KktPower] {
            let c = ex.coords(sg);
            let n = ex.graph(sg).graph.n();
            assert_eq!(c.len(), n, "{}", sg.name());
        }
    }
}
