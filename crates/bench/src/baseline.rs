//! Baseline comparison for the wallclock harness: parse a committed
//! `BENCH_*.json` snapshot and diff a fresh run against it, flagging
//! wall-clock regressions beyond a tolerance.
//!
//! The parser is a deliberately small hand-rolled JSON reader — the repo
//! takes no serde dependency, and the only documents it ever sees are the
//! ones `wallclock` itself writes (flat objects, arrays, numbers,
//! strings, `null` for missing RSS). It still parses general JSON so a
//! hand-edited baseline cannot silently half-parse.

use std::collections::BTreeMap;

/// A parsed JSON value. Numbers are kept as `f64` — bench documents only
/// carry measurements and small integers, both exact in a double.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn parse(text: &str) -> Result<Json, String> {
        let b = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_str(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                out.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    b'u' => {
                        // \uXXXX — bench docs never emit these, but accept
                        // the BMP subset rather than corrupting input.
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        char::from_u32(cp).ok_or("surrogate \\u escape")?
                    }
                    other => return Err(format!("bad escape \\{}", *other as char)),
                });
                *pos += 1;
            }
            Some(&c) => {
                out.push(c as char);
                *pos += 1;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// One `embed_fastpath` row of a bench document.
#[derive(Clone, Debug)]
pub struct FastRow {
    pub rows: u64,
    pub cols: u64,
    pub q: u64,
    pub wall_ms_reference: f64,
    pub wall_ms_optimized: f64,
}

/// One `pipeline` row: per-phase wall milliseconds keyed by phase name.
#[derive(Clone, Debug)]
pub struct PipeRow {
    pub graph: String,
    pub p: u64,
    pub wall_ms: BTreeMap<String, f64>,
}

/// The measurements a wallclock bench document carries, independent of
/// which `BENCH_*.json` generation wrote it.
#[derive(Clone, Debug, Default)]
pub struct BenchDoc {
    pub fastpath: Vec<FastRow>,
    pub pipeline: Vec<PipeRow>,
}

impl BenchDoc {
    pub fn parse(text: &str) -> Result<BenchDoc, String> {
        let v = Json::parse(text)?;
        let mut doc = BenchDoc::default();
        for row in v
            .get("embed_fastpath")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
        {
            let f = |k: &str| row.get(k).and_then(Json::as_f64);
            doc.fastpath.push(FastRow {
                rows: f("rows").ok_or("fastpath row missing 'rows'")? as u64,
                cols: f("cols").ok_or("fastpath row missing 'cols'")? as u64,
                q: f("q").ok_or("fastpath row missing 'q'")? as u64,
                wall_ms_reference: f("wall_ms_reference").ok_or("missing wall_ms_reference")?,
                wall_ms_optimized: f("wall_ms_optimized").ok_or("missing wall_ms_optimized")?,
            });
        }
        for row in v.get("pipeline").and_then(Json::as_arr).unwrap_or(&[]) {
            let graph = row
                .get("graph")
                .and_then(Json::as_str)
                .ok_or("pipeline row missing 'graph'")?
                .to_string();
            let p = row
                .get("p")
                .and_then(Json::as_f64)
                .ok_or("pipeline row missing 'p'")? as u64;
            let mut wall_ms = BTreeMap::new();
            if let Some(Json::Obj(m)) = row.get("wall_ms") {
                for (phase, val) in m {
                    if let Some(x) = val.as_f64() {
                        wall_ms.insert(phase.clone(), x);
                    }
                }
            }
            doc.pipeline.push(PipeRow { graph, p, wall_ms });
        }
        Ok(doc)
    }
}

/// Result of diffing a fresh run against a committed baseline.
pub struct Comparison {
    /// Human-readable per-row speedup lines (baseline / current; >1 is a
    /// win, <1 a slowdown).
    pub lines: Vec<String>,
    /// Rows slower than `baseline * (1 + tolerance)`.
    pub regressions: Vec<String>,
}

impl Comparison {
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Diff `current` against `baseline`. Only rows present in *both*
/// documents are compared (a `--quick` run covers a subset of the full
/// scenario list). `tolerance` is fractional: 0.2 flags anything more
/// than 20% slower than the committed number.
pub fn compare(current: &BenchDoc, baseline: &BenchDoc, tolerance: f64) -> Comparison {
    let mut cmp = Comparison {
        lines: Vec::new(),
        regressions: Vec::new(),
    };
    let limit = 1.0 + tolerance;

    for cur in &current.fastpath {
        let Some(base) = baseline
            .fastpath
            .iter()
            .find(|b| (b.rows, b.cols, b.q) == (cur.rows, cur.cols, cur.q))
        else {
            continue;
        };
        let ratio = base.wall_ms_optimized / cur.wall_ms_optimized.max(1e-9);
        cmp.lines.push(format!(
            "fastpath {}x{} q={}: optimized {:.1} ms vs baseline {:.1} ms ({ratio:.2}x)",
            cur.rows, cur.cols, cur.q, cur.wall_ms_optimized, base.wall_ms_optimized
        ));
        if cur.wall_ms_optimized > base.wall_ms_optimized * limit {
            cmp.regressions.push(format!(
                "fastpath {}x{} q={}: {:.1} ms is >{:.0}% over baseline {:.1} ms",
                cur.rows,
                cur.cols,
                cur.q,
                cur.wall_ms_optimized,
                tolerance * 100.0,
                base.wall_ms_optimized
            ));
        }
    }

    for cur in &current.pipeline {
        let Some(base) = baseline
            .pipeline
            .iter()
            .find(|b| b.graph == cur.graph && b.p == cur.p)
        else {
            continue;
        };
        for (phase, &cur_ms) in &cur.wall_ms {
            let Some(&base_ms) = base.wall_ms.get(phase) else {
                continue;
            };
            let ratio = base_ms / cur_ms.max(1e-9);
            cmp.lines.push(format!(
                "pipeline {} p={} {phase}: {cur_ms:.1} ms vs baseline {base_ms:.1} ms ({ratio:.2}x)",
                cur.graph, cur.p
            ));
            if cur_ms > base_ms * limit {
                cmp.regressions.push(format!(
                    "pipeline {} p={} {phase}: {cur_ms:.1} ms is >{:.0}% over baseline {base_ms:.1} ms",
                    cur.graph,
                    cur.p,
                    tolerance * 100.0
                ));
            }
        }
    }

    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
      "bench": "wallclock",
      "embed_fastpath": [
        {"rows": 64, "cols": 64, "q": 4, "wall_ms_reference": 39.8,
         "wall_ms_optimized": 23.3, "speedup": 1.706,
         "simulated_time": 2.782e-3, "simulated_time_matches": true,
         "peak_rss_mb": 12.5}
      ],
      "pipeline": [
        {"graph": "grid96x96", "p": 4,
         "wall_ms": {"coarsen": 10.0, "embed": 40.0, "partition": 5.0, "refine": 2.0},
         "simulated": {"total": 1.0e-2}, "cut": 100, "peak_rss_mb": null}
      ]
    }"#;

    #[test]
    fn parses_a_real_shaped_document() {
        let doc = BenchDoc::parse(DOC).unwrap();
        assert_eq!(doc.fastpath.len(), 1);
        assert_eq!(doc.fastpath[0].rows, 64);
        assert_eq!(doc.fastpath[0].wall_ms_optimized, 23.3);
        assert_eq!(doc.pipeline.len(), 1);
        assert_eq!(doc.pipeline[0].wall_ms["embed"], 40.0);
    }

    #[test]
    fn json_corner_cases() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse(" null ").unwrap(), Json::Null);
        assert_eq!(
            Json::parse(r#""a\"b\n""#).unwrap(),
            Json::Str("a\"b\n".into())
        );
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert!(Json::parse("{\"a\": 1,}").is_err());
        assert!(Json::parse("[1 2]").is_err());
        assert!(Json::parse("{} garbage").is_err());
    }

    #[test]
    fn within_tolerance_passes_and_beyond_fails() {
        let base = BenchDoc::parse(DOC).unwrap();
        let mut cur = base.clone();
        // 10% slower everywhere: inside a 20% tolerance.
        cur.fastpath[0].wall_ms_optimized *= 1.10;
        for v in cur.pipeline[0].wall_ms.values_mut() {
            *v *= 1.10;
        }
        let cmp = compare(&cur, &base, 0.2);
        assert!(cmp.ok(), "{:?}", cmp.regressions);
        assert_eq!(cmp.lines.len(), 5, "1 fastpath + 4 phases compared");

        // One phase 30% slower: flagged by name.
        *cur.pipeline[0].wall_ms.get_mut("embed").unwrap() = 40.0 * 1.30;
        let cmp = compare(&cur, &base, 0.2);
        assert_eq!(cmp.regressions.len(), 1);
        assert!(
            cmp.regressions[0].contains("embed"),
            "{:?}",
            cmp.regressions
        );
    }

    #[test]
    fn rows_missing_from_either_side_are_skipped() {
        let base = BenchDoc::parse(DOC).unwrap();
        let cur = BenchDoc::default();
        // A quick run measuring nothing in common regresses nothing.
        let cmp = compare(&cur, &base, 0.2);
        assert!(cmp.ok() && cmp.lines.is_empty());
    }
}
