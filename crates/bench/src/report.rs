//! Plain-text table rendering plus CSV and JSON output for the repro
//! harness.

use sp_machine::trace::json::{escape, num};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A simple aligned text table with a header row.
pub struct Table {
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], width: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let pad = width[i];
                if i == 0 {
                    let _ = write!(out, "{c:<pad$}");
                } else {
                    let _ = write!(out, "  {c:>pad$}");
                }
            }
            out.push('\n');
        };
        line(&self.header, &width, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (ncol - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(row, &width, &mut out);
        }
        out
    }

    /// Write as CSV next to the text output.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Machine-readable JSON: `{"title", "columns", "rows": [{col: cell}]}`.
    /// Cells that parse as finite numbers are emitted as JSON numbers
    /// (shortest round-trip form); everything else as escaped strings.
    pub fn to_json(&self) -> String {
        let cell_json = |c: &str| match c.parse::<f64>() {
            Ok(x) if x.is_finite() => num(x),
            _ => format!("\"{}\"", escape(c)),
        };
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"title\": \"{}\",\n  \"columns\": [",
            escape(&self.title)
        );
        for (i, h) in self.header.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", escape(h));
        }
        out.push_str("],\n  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    {" } else { "\n    {" });
            for (j, (h, c)) in self.header.iter().zip(row).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\": {}", escape(h), cell_json(c));
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Render an optional peak-RSS byte count as a JSON value: MiB with one
/// decimal, or `null` where the platform has no `/proc` (peak RSS is a
/// Linux VmHWM read). Shared by the wallclock harness's BENCH_2 rows so
/// every row spells memory the same way.
pub fn rss_mb_json(bytes: Option<u64>) -> String {
    match bytes {
        Some(b) => format!("{:.1}", b as f64 / (1024.0 * 1024.0)),
        None => "null".to_string(),
    }
}

/// Write a table's CSV under `dir/name.csv`.
pub fn write_csv(table: &Table, dir: &Path, name: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::File::create(dir.join(format!("{name}.csv")))?;
    f.write_all(table.to_csv().as_bytes())
}

/// Write a table's JSON under `dir/name.json`.
pub fn write_json(table: &Table, dir: &Path, name: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::File::create(dir.join(format!("{name}.json")))?;
    f.write_all(table.to_json().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Right-aligned numeric column.
        assert!(lines[3].ends_with("    1"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["v,w".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"v,w\",2"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn json_numbers_round_trip_and_strings_escape() {
        let mut t = Table::new("demo \"quoted\"", &["graph", "P", "time"]);
        t.row(vec!["mesh\n1".into(), "64".into(), "0.125".into()]);
        t.row(vec!["G7-NL".into(), "1024".into(), "3.5e-3".into()]);
        let json = t.to_json();
        // Title and cell strings are escaped.
        assert!(json.contains("\"title\": \"demo \\\"quoted\\\"\""));
        assert!(json.contains("\"graph\": \"mesh\\n1\""));
        // Numeric cells become JSON numbers that parse back exactly.
        assert!(json.contains("\"P\": 64"));
        assert!(json.contains("\"time\": 0.125"));
        assert!("0.0035".parse::<f64>().unwrap() == 3.5e-3);
        assert!(json.contains("\"time\": 0.0035"));
        // Non-numeric method names stay strings.
        assert!(json.contains("\"graph\": \"G7-NL\""));
        // Balanced braces/brackets (cheap structural sanity).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_empty_table_is_valid() {
        let t = Table::new("empty", &["a"]);
        let json = t.to_json();
        assert!(json.contains("\"rows\": [\n  ]"));
    }
}
