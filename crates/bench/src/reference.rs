//! Pre-optimization reference implementation of fixed-lattice smoothing.
//!
//! This is the lattice smoother as it stood before the wall-clock fast
//! path (zero-alloc cost charging, fused counting, scratch reuse): it
//! rebuilds the owned-vertex lists every iteration, counts halo pairs with
//! a fresh map per iteration, and sends real `Vec<u64>` dummy payloads
//! through `Machine::exchange` / the data-carrying collectives so every
//! charged word is backed by an allocation, exactly like the old code.
//!
//! It exists for two reasons:
//!
//! 1. **Invariance oracle** — the optimized `sp_embed::lattice_smooth`
//!    must produce *bit-identical* simulated time and coordinates. The
//!    tests below and the `wallclock` benchmark assert exact `f64`
//!    equality of `Machine::elapsed()` between the two.
//! 2. **Wall-clock baseline** — the `wallclock` benchmark times both to
//!    report the host-side speedup of the fast path.
//!
//! The only deliberate deviation from the historical code: the per-pair
//! counters use `BTreeMap` instead of `HashMap`, so messages are emitted
//! in ascending-destination order. That is the canonical order the
//! optimized path now uses; f64 cost accumulation is order-sensitive, so
//! the reference must emit in the same order to be comparable. (The old
//! `HashMap` order was nondeterministic run-to-run, which is exactly the
//! trace-stability bug this PR fixes.)

use sp_embed::lattice::{LatticeConfig, LatticeStats};
use sp_embed::ForceParams;
use sp_geometry::{Aabb2, Point2};
use sp_graph::Graph;
use sp_machine::Machine;
use std::collections::BTreeMap;

/// One cell's special vertex β: total mass and centre of mass.
#[derive(Clone, Copy, Debug, Default)]
struct Beta {
    mu: f64,
    phi: Point2,
}

/// The pre-optimization quantile lattice, kept verbatim: its `build` fully
/// sorts the coordinate arrays where the optimized
/// `sp_embed::lattice::QuantileLattice` uses `select_nth_unstable_by`
/// order statistics. Successive selection on an array yields exactly the
/// values a full sort would put at the cut indices, so the two produce
/// bit-identical cuts (the sp-embed test
/// `quantile_build_matches_full_sort_reference` pins this) — only the
/// host-side cost differs, which is what this module exists to model.
struct RefLattice {
    q: usize,
    xcuts: Vec<f64>,
    ycuts: Vec<Vec<f64>>,
    bbox: Aabb2,
}

impl RefLattice {
    fn build(coords: &[Point2], q: usize) -> Self {
        let bbox = Aabb2::from_points(coords)
            .unwrap_or_else(Aabb2::unit)
            .inflated(0.02 + 1e-9);
        let n = coords.len().max(1);
        let mut xs: Vec<f64> = coords.iter().map(|c| c.x).collect();
        if xs.is_empty() {
            xs.push(0.0);
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let xcuts: Vec<f64> = (1..q).map(|k| xs[(k * n / q).min(xs.len() - 1)]).collect();
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); q];
        for c in coords {
            let i = xcuts.partition_point(|&cut| c.x >= cut);
            cols[i].push(c.y);
        }
        let ycuts = cols
            .into_iter()
            .map(|mut ys| {
                if ys.is_empty() {
                    let h = bbox.height() / q as f64;
                    return (1..q).map(|k| bbox.min.y + h * k as f64).collect();
                }
                ys.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let m = ys.len();
                (1..q).map(|k| ys[(k * m / q).min(m - 1)]).collect()
            })
            .collect();
        RefLattice {
            q,
            xcuts,
            ycuts,
            bbox,
        }
    }

    fn q(&self) -> usize {
        self.q
    }

    #[inline]
    fn cell_of(&self, p: Point2) -> (usize, usize) {
        let i = self.xcuts.partition_point(|&cut| p.x >= cut);
        let j = self.ycuts[i].partition_point(|&cut| p.y >= cut);
        (i, j)
    }

    fn cell_box(&self, i: usize, j: usize) -> Aabb2 {
        let x0 = if i == 0 {
            self.bbox.min.x
        } else {
            self.xcuts[i - 1]
        };
        let x1 = if i + 1 == self.q {
            self.bbox.max.x
        } else {
            self.xcuts[i]
        };
        let y0 = if j == 0 {
            self.bbox.min.y
        } else {
            self.ycuts[i][j - 1]
        };
        let y1 = if j + 1 == self.q {
            self.bbox.max.y
        } else {
            self.ycuts[i][j]
        };
        Aabb2::new(
            Point2::new(x0.min(x1), y0.min(y1)),
            Point2::new(x0.max(x1), y0.max(y1)),
        )
    }
}

/// The paper's neighbourhood: the *four* boxes at L1 distance 1.
#[inline]
fn cell_adjacent(q: usize, a: usize, b: usize) -> bool {
    let (ai, aj) = (a % q, a / q);
    let (bi, bj) = (b % q, b / q);
    ai.abs_diff(bi) + aj.abs_diff(bj) <= 1
}

/// Clamp a far ghost's (stale) position into the cell adjacent to `my_cell`
/// in the direction of the ghost's cell — the paper's shortest-L1 rule.
fn clamp_far(lattice: &RefLattice, my_cell: usize, ghost_cell: usize, pos: Point2) -> Point2 {
    let q = lattice.q();
    let (mi, mj) = (my_cell % q, my_cell / q);
    let (gi, gj) = (ghost_cell % q, ghost_cell / q);
    let ai = (mi as i64 + (gi as i64 - mi as i64).signum()).clamp(0, q as i64 - 1) as usize;
    let aj = (mj as i64 + (gj as i64 - mj as i64).signum()).clamp(0, q as i64 - 1) as usize;
    let cell = lattice.cell_box(ai, aj);
    let p = cell.clamp(pos);
    let ex = cell.width() * 1e-9;
    let ey = cell.height() * 1e-9;
    Point2::new(
        p.x.clamp(cell.min.x + ex, (cell.max.x - ex).max(cell.min.x)),
        p.y.clamp(cell.min.y + ey, (cell.max.y - ey).max(cell.min.y)),
    )
}

/// The pre-optimization `lattice_smooth` with the *current* force formula
/// (the sqrt-free `ForceParams::repulsive`): bit-identical to the
/// optimized smoother in both simulated time and coordinates, so it is
/// the invariance oracle of the tests and the `wallclock` benchmark.
pub fn reference_lattice_smooth(
    g: &Graph,
    coords: &mut [Point2],
    q: usize,
    machine: &mut Machine,
    cfg: &LatticeConfig,
) -> LatticeStats {
    reference_smooth_impl(g, coords, q, machine, cfg, |p, from, m1, to, m2| {
        p.repulsive(from, m1, to, m2)
    })
}

/// The `lattice_smooth` of the seed commit, fully faithful: the old
/// sqrt-then-square repulsion formula on top of the same pre-optimization
/// structure. This is the honest wall-clock baseline for the speedup
/// number in `BENCH_2.json` — but NOT bit-comparable to the optimized
/// path (`sqrt(x)²` re-rounds on non-Pythagorean inputs), which is why
/// the invariance assertions use [`reference_lattice_smooth`] instead.
pub fn seed_lattice_smooth(
    g: &Graph,
    coords: &mut [Point2],
    q: usize,
    machine: &mut Machine,
    cfg: &LatticeConfig,
) -> LatticeStats {
    reference_smooth_impl(g, coords, q, machine, cfg, |p, from, m1, to, m2| {
        let d = from - to;
        let dist = d.norm().max(1e-9);
        d * (p.c * p.k * p.k * m1 * m2 / (dist * dist))
    })
}

fn reference_smooth_impl(
    g: &Graph,
    coords: &mut [Point2],
    q: usize,
    machine: &mut Machine,
    cfg: &LatticeConfig,
    repulsive: impl Fn(&ForceParams, Point2, f64, Point2, f64) -> Point2 + Sync,
) -> LatticeStats {
    assert_eq!(coords.len(), g.n());
    assert!(
        q * q <= machine.p(),
        "lattice {q}×{q} needs ≥ {} ranks",
        q * q
    );
    let n = g.n();
    if n == 0 || cfg.iters == 0 {
        return LatticeStats::default();
    }
    let p = machine.p();
    let ncells = q * q;
    let bbox = Aabb2::from_points(coords).unwrap().inflated(0.02 + 1e-9);
    let params = ForceParams::for_domain(cfg.c, bbox.width() * bbox.height(), n);
    let mut step = cfg.step0 * params.k;
    let max_step = 3.0 * params.k;
    let t_ratio = cfg.cooling.clamp(0.5, 0.99);
    let mut energy = f64::INFINITY;
    let mut progress = 0u32;

    let mut lattice = RefLattice::build(coords, q);
    {
        let share = (n / ncells.max(1)) as f64;
        let mut states: Vec<()> = vec![(); p];
        machine.compute(&mut states, |r, _| if r < ncells { share } else { 0.0 });
        let _ = machine.group_allreduce_sum(ncells, &vec![vec![0.0; q]; p]);
    }
    let cell_of = |p: Point2, lattice: &RefLattice| -> u32 {
        let (i, j) = lattice.cell_of(p);
        (j * q + i) as u32
    };
    let mut owner: Vec<u32> = coords.iter().map(|&c| cell_of(c, &lattice)).collect();
    let mut snapshot: Vec<Point2> = coords.to_vec();
    let mut beta_snapshot: Vec<Beta> = vec![Beta::default(); ncells];
    let mut stats = LatticeStats::default();

    for it in 0..cfg.iters {
        // --- Owned vertex lists per cell (rebuilt from scratch, O(n)).
        let mut owned: Vec<Vec<u32>> = vec![Vec::new(); ncells];
        for (v, &c) in owner.iter().enumerate() {
            owned[c as usize].push(v as u32);
        }

        // --- β computation (each active rank scans its owned vertices).
        let mut betas: Vec<Beta> = vec![Beta::default(); ncells];
        {
            let owned_ref = &owned;
            let coords_ref = &*coords;
            let mut states: Vec<Beta> = vec![Beta::default(); p];
            machine.compute(&mut states, |r, b| {
                if r >= ncells {
                    return 0.0;
                }
                let mut mu = 0.0;
                let mut wsum = Point2::ZERO;
                for &v in &owned_ref[r] {
                    let m = g.vwgt(v);
                    mu += m;
                    wsum += coords_ref[v as usize] * m;
                }
                if mu > 0.0 {
                    *b = Beta { mu, phi: wsum / mu };
                }
                owned_ref[r].len() as f64
            });
            betas[..ncells].copy_from_slice(&states[..ncells]);
        }

        // --- Halo exchange with freshly-allocated dummy payloads.
        {
            let mut nbr_words: Vec<Vec<(usize, usize)>> = vec![Vec::new(); ncells];
            let mut pairs: BTreeMap<(usize, usize), usize> = BTreeMap::new();
            for v in 0..n as u32 {
                let cv = owner[v as usize] as usize;
                for &u in g.neighbors(v) {
                    let cu = owner[u as usize] as usize;
                    if cu != cv && cell_adjacent(q, cv, cu) {
                        *pairs.entry((cv, cu)).or_default() += 1;
                    }
                }
            }
            for ((from, to), cnt) in pairs {
                nbr_words[from].push((to, 3 + 2 * cnt));
            }
            let outbox: Vec<Vec<(usize, Vec<u64>)>> = (0..p)
                .map(|r| {
                    if r < ncells {
                        nbr_words[r]
                            .iter()
                            .map(|&(to, words)| (to, vec![0u64; words]))
                            .collect()
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            let _ = machine.exchange(outbox);
        }
        if it % cfg.block.max(1) == 0 {
            if it > 0 {
                lattice = RefLattice::build(coords, q);
                let share = (n / ncells.max(1)) as f64;
                let mut states: Vec<()> = vec![(); p];
                machine.compute(&mut states, |r, _| if r < ncells { share } else { 0.0 });
                let _ = machine.group_allreduce_sum(ncells, &vec![vec![0.0; q]; p]);
                for (v, c) in coords.iter().enumerate() {
                    owner[v] = cell_of(*c, &lattice);
                }
            }
            let mut far_counts = vec![0usize; ncells];
            for v in 0..n as u32 {
                let cv = owner[v as usize] as usize;
                for &u in g.neighbors(v) {
                    let cu = owner[u as usize] as usize;
                    if cu != cv && !cell_adjacent(q, cv, cu) {
                        far_counts[cv] += 1;
                    }
                }
            }
            let beta_payload: Vec<Vec<u64>> = (0..p)
                .map(|r| {
                    if r < ncells {
                        vec![0u64; 3 + 2 * far_counts[r]]
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            let _ = machine.group_allgather(ncells, beta_payload);
            let _ = machine.group_allreduce_sum(ncells, &vec![vec![0.0f64]; p]);
            snapshot.copy_from_slice(coords);
            beta_snapshot.copy_from_slice(&betas);
        }

        // --- Force computation and displacement per rank.
        let displacements: Vec<(Vec<(u32, Point2)>, f64)> = {
            let owned_ref = &owned;
            let coords_ref = &*coords;
            let owner_ref = &owner;
            let snapshot_ref = &snapshot;
            let betas_ref = &betas;
            let beta_snap_ref = &beta_snapshot;
            let lattice_ref = &lattice;
            let mut states: Vec<(Vec<(u32, Point2)>, f64)> = vec![(Vec::new(), 0.0); p];
            machine.compute(&mut states, |r, state| {
                let (out, local_energy) = state;
                if r >= ncells {
                    return 0.0;
                }
                let my = r;
                let mut ops = 0.0;
                let my_beta = betas_ref[my];
                let mut inherited = Point2::ZERO;
                if my_beta.mu > 0.0 {
                    for s in 0..ncells {
                        if s == my {
                            continue;
                        }
                        let b = if cell_adjacent(q, my, s) {
                            betas_ref[s]
                        } else {
                            beta_snap_ref[s]
                        };
                        if b.mu > 0.0 {
                            inherited += repulsive(&params, my_beta.phi, 1.0, b.phi, b.mu);
                        }
                        ops += 1.0;
                    }
                }
                const SUB: usize = 4;
                let my_box = lattice_ref.cell_box(my % q, my / q);
                let mut sub = [Beta::default(); SUB * SUB];
                let sub_of = |c: Point2| -> usize {
                    let (si, sj) = my_box.cell_of(SUB, c);
                    sj * SUB + si
                };
                for &v in &owned_ref[my] {
                    let c = coords_ref[v as usize];
                    let m = g.vwgt(v);
                    let b = &mut sub[sub_of(c)];
                    b.mu += m;
                    b.phi += c * m;
                    ops += 1.0;
                }
                for b in sub.iter_mut() {
                    if b.mu > 0.0 {
                        b.phi = b.phi / b.mu;
                    }
                }
                for &v in &owned_ref[my] {
                    let cv = coords_ref[v as usize];
                    let mv = g.vwgt(v);
                    let mut f = inherited * mv;
                    let own_sub = sub_of(cv);
                    for (si, b) in sub.iter().enumerate() {
                        ops += 1.0;
                        let mass = if si == own_sub { b.mu - mv } else { b.mu };
                        if mass > 1e-12 {
                            f += repulsive(&params, cv, mv, b.phi, mass);
                        }
                    }
                    for (u, w) in g.neighbors_w(v) {
                        let cu = owner_ref[u as usize] as usize;
                        let pu = if cu == my || cell_adjacent(q, my, cu) {
                            coords_ref[u as usize]
                        } else {
                            clamp_far(lattice_ref, my, cu, snapshot_ref[u as usize])
                        };
                        f += params.attractive(cv, pu) * w;
                        ops += 1.0;
                    }
                    let norm = f.norm();
                    *local_energy += norm * norm;
                    if norm > 1e-12 {
                        out.push((v, f * (step / norm)));
                    }
                    ops += 2.0;
                }
                ops
            });
            states
        };

        // --- Apply moves (owned vertices only).
        let mut total_move = 0.0;
        let mut moved = 0usize;
        let mut new_energy = 0.0;
        for (rank_moves, e) in &displacements {
            new_energy += e;
            for &(v, d) in rank_moves {
                let np = coords[v as usize] + d;
                total_move += d.norm();
                coords[v as usize] = np;
                moved += 1;
            }
        }
        stats.final_move = if moved > 0 {
            total_move / moved as f64 / params.k
        } else {
            0.0
        };

        // --- Migration with freshly-allocated dummy payloads.
        let mut migration_out: Vec<Vec<(usize, Vec<u64>)>> = vec![Vec::new(); p];
        let mut mig_counts: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for v in 0..n {
            let nc = cell_of(coords[v], &lattice);
            if nc != owner[v] {
                if !cell_adjacent(q, owner[v] as usize, nc as usize) {
                    *mig_counts
                        .entry((owner[v] as usize, nc as usize))
                        .or_default() += 1;
                }
                owner[v] = nc;
                stats.migrations += 1;
            }
        }
        for ((from, to), cnt) in mig_counts {
            migration_out[from].push((to, vec![0u64; 3 * cnt]));
        }
        let _ = machine.exchange(migration_out);

        if new_energy < energy {
            progress += 1;
            if progress >= 5 {
                progress = 0;
                step = (step / t_ratio).min(max_step);
            }
        } else {
            progress = 0;
            step *= t_ratio;
        }
        energy = new_energy;
        if step < 0.005 * params.k {
            break;
        }
    }
    stats
}

/// splitmix64 — a tiny deterministic integer hash, used to jitter the demo
/// grid without going through `rand` (whose offline stub has a different
/// stream than the real crate, which would make golden values environment
/// dependent).
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic, `rand`-free benchmark scenario: a `rows × cols` grid
/// graph with unit-spaced coordinates jittered by a splitmix64 hash of the
/// vertex index. Every operation is plain IEEE arithmetic, so the layout —
/// and therefore every simulated-time golden value derived from it — is
/// bit-identical on any platform.
pub fn demo_grid(rows: usize, cols: usize, seed: u64) -> (Graph, Vec<Point2>) {
    let g = sp_graph::gen::grid_2d(rows, cols);
    let coords = (0..g.n() as u64)
        .map(|v| {
            let h = splitmix64(seed ^ v);
            // Two 21-bit lanes → jitter in [-0.25, 0.25).
            let jx = ((h & 0x1f_ffff) as f64 / (1u64 << 21) as f64 - 0.5) * 0.5;
            let jy = (((h >> 21) & 0x1f_ffff) as f64 / (1u64 << 21) as f64 - 0.5) * 0.5;
            let r = (v as usize) / cols;
            let c = (v as usize) % cols;
            Point2::new(c as f64 + jx, r as f64 + jy)
        })
        .collect();
    (g, coords)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_embed::{lattice_smooth, lattice_smooth_with, SmoothScratch};
    use sp_machine::CostModel;

    fn run_new(rows: usize, cols: usize, q: usize, cfg: &LatticeConfig) -> (f64, Vec<Point2>) {
        let (g, mut coords) = demo_grid(rows, cols, 0xC0FFEE);
        let mut m = Machine::new(q * q, CostModel::qdr_infiniband());
        lattice_smooth(&g, &mut coords, q, &mut m, cfg);
        (m.elapsed(), coords)
    }

    fn run_reference(
        rows: usize,
        cols: usize,
        q: usize,
        cfg: &LatticeConfig,
    ) -> (f64, Vec<Point2>) {
        let (g, mut coords) = demo_grid(rows, cols, 0xC0FFEE);
        let mut m = Machine::new(q * q, CostModel::qdr_infiniband());
        reference_lattice_smooth(&g, &mut coords, q, &mut m, cfg);
        (m.elapsed(), coords)
    }

    /// The tentpole's core invariant: the optimized smoother and the
    /// pre-optimization reference produce bit-identical simulated time AND
    /// bit-identical coordinates, across lattice sizes and block settings.
    #[test]
    fn optimized_smoother_matches_reference_exactly() {
        for &(rows, cols, q, block) in &[
            (12usize, 12usize, 2usize, 4usize),
            (16, 16, 3, 4),
            (16, 20, 4, 2),
            (24, 24, 4, 1),
        ] {
            let cfg = LatticeConfig {
                iters: 13,
                block,
                ..LatticeConfig::default()
            };
            let (t_new, c_new) = run_new(rows, cols, q, &cfg);
            let (t_ref, c_ref) = run_reference(rows, cols, q, &cfg);
            assert_eq!(
                t_new.to_bits(),
                t_ref.to_bits(),
                "simulated time drifted for {rows}x{cols} q={q} block={block}: \
                 new={t_new:.17e} ref={t_ref:.17e}"
            );
            for (v, (a, b)) in c_new.iter().zip(&c_ref).enumerate() {
                assert_eq!(a.x.to_bits(), b.x.to_bits(), "x of v{v}");
                assert_eq!(a.y.to_bits(), b.y.to_bits(), "y of v{v}");
            }
        }
    }

    /// Idle ranks (p > q²) take the exact same charges too.
    #[test]
    fn invariance_holds_with_idle_ranks() {
        let cfg = LatticeConfig {
            iters: 9,
            ..LatticeConfig::default()
        };
        let (g, mut ca) = demo_grid(14, 14, 7);
        let (_, mut cb) = demo_grid(14, 14, 7);
        let mut ma = Machine::new(16, CostModel::qdr_infiniband());
        let mut mb = Machine::new(16, CostModel::qdr_infiniband());
        lattice_smooth(&g, &mut ca, 3, &mut ma, &cfg);
        reference_lattice_smooth(&g, &mut cb, 3, &mut mb, &cfg);
        assert_eq!(ma.elapsed().to_bits(), mb.elapsed().to_bits());
    }

    /// Golden pinned simulated time: guards the cost model end to end.
    /// This value was produced by this exact scenario at the seed commit's
    /// charging behaviour (the reference path) and must never drift — any
    /// optimization that changes it has changed the simulation, not just
    /// the host-side implementation. The scenario is `rand`-free and pure
    /// IEEE arithmetic, so the value is platform independent.
    #[test]
    fn golden_simulated_time_is_pinned() {
        let cfg = LatticeConfig {
            iters: 10,
            ..LatticeConfig::default()
        };
        let (t_new, _) = run_new(16, 16, 4, &cfg);
        let (t_ref, _) = run_reference(16, 16, 4, &cfg);
        assert_eq!(t_new.to_bits(), t_ref.to_bits());
        let golden = f64::from_bits(GOLDEN_16X16_Q4_BITS);
        assert_eq!(
            t_new.to_bits(),
            GOLDEN_16X16_Q4_BITS,
            "pinned simulated time drifted: got {t_new:.17e}, expected {golden:.17e}"
        );
    }

    /// See `golden_simulated_time_is_pinned`.
    const GOLDEN_16X16_Q4_BITS: u64 = 0x3F27_4A49_7A47_6ED5; // 1.7769…e-4 s

    /// The rayon-parallel host kernels must not change simulated time or
    /// coordinates with different thread counts: per-rank closures write
    /// disjoint state and the op-cost reduction is index-ordered, so a
    /// 1-thread pool and an N-thread pool are bit-identical.
    #[test]
    fn thread_count_does_not_change_results() {
        let cfg = LatticeConfig {
            iters: 8,
            ..LatticeConfig::default()
        };
        let run_with_threads = |threads: usize| -> (f64, Vec<Point2>) {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            pool.install(|| {
                let (g, mut coords) = demo_grid(16, 16, 99);
                let mut m = Machine::new(16, CostModel::qdr_infiniband());
                let mut scratch = SmoothScratch::new();
                lattice_smooth_with(&g, &mut coords, 4, &mut m, &cfg, &mut scratch);
                (m.elapsed(), coords)
            })
        };
        let (t1, c1) = run_with_threads(1);
        let (t4, c4) = run_with_threads(4);
        assert_eq!(t1.to_bits(), t4.to_bits());
        for (a, b) in c1.iter().zip(&c4) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
        }
    }
}
