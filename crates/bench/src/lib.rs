//! Benchmark harness: everything needed to regenerate the paper's tables
//! and figures (see DESIGN.md's experiment index). The `repro` binary
//! drives these; the Criterion benches cover component wall-clock costs.

pub mod baseline;
pub mod harness;
pub mod reference;
pub mod report;

pub use baseline::{compare, BenchDoc, Comparison};
pub use harness::{sweep_p, Experiments, RunRecord};
pub use report::{write_csv, Table};
