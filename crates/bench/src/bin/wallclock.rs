//! Host wall-clock benchmark for the simulated pipeline.
//!
//! Simulated time measures the *modelled* machine; this harness measures
//! the *host* — how long the simulation itself takes to run — and tracks
//! it in `BENCH_3.json` at the repo root so wall-clock regressions are
//! visible in review (`BENCH_2.json` is the frozen round-1 baseline that
//! `--baseline` diffs against). Two sections:
//!
//! * `embed_fastpath` — the headline comparison: the optimized
//!   `lattice_smooth` versus the pre-optimization reference
//!   (`sp_bench::reference`) on generated grids. The two must agree on
//!   simulated time to the last bit (the process panics on drift — CI
//!   runs this as a smoke test); the speedup column is the wall-clock win.
//! * `pipeline` — per-phase wall times (coarsen / embed / partition /
//!   refine) of the full ScalaPart pipeline at several processor counts,
//!   with the simulated phase times alongside for scale.
//! * `stream` — per-step wall time and migration volume of sp-stream's
//!   warm-start incremental repartitioner over a seeded delta stream on
//!   a Delaunay mesh (bootstrap row first). Tracked, not gated: the
//!   section has no BENCH_2 counterpart, so `--baseline` skips it.
//!
//! Run with `cargo run --release -p sp-bench --bin wallclock`; build with
//! `RUSTFLAGS="-C target-cpu=native"` for honest host numbers (the fast
//! path's long per-rank loops are written to vectorize, and a baseline
//! x86-64 build leaves the packed sqrt/div units idle). `--quick` trims
//! the scenario list to the small grids — the CI smoke configuration,
//! where the invariance assertions are the point and the wall numbers
//! from shared runners are informational.
//!
//! `--baseline` additionally diffs the fresh run against the committed
//! `BENCH_2.json` (rows present in both), prints the per-row and
//! per-phase speedups, and exits non-zero if anything ran more than 20%
//! slower than the committed number.
//!
//! Peak-RSS columns: each row resets the kernel's peak-RSS counter via
//! `/proc/self/clear_refs` before measuring. Where that write is
//! unavailable (non-Linux, restricted /proc), the row's `rss_reset` field
//! records `false` and `peak_rss_mb` falls back to the process-lifetime
//! high-water mark — still a valid upper bound for the row, just not
//! row-scoped.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scalapart::coarsen::{contract_with, parallel_hem_in, CoarsenArena, Hierarchy, Level};
use scalapart::embed::multilevel_lattice_embed;
use scalapart::geopart::parallel_geometric_partition;
use scalapart::graph::distr::Distribution;
use scalapart::graph::Graph;
use scalapart::machine::{CostModel, CostOnly, Machine};
use scalapart::obs::rss;
use scalapart::refine::{fm_refine, strip_around_separator};
use scalapart::stream::{DeltaOverlay, GraphDelta, IncrementalRepartitioner, StreamConfig};
use scalapart::SpConfig;
use sp_bench::baseline::{compare, BenchDoc};
use sp_bench::reference::{demo_grid, reference_lattice_smooth, seed_lattice_smooth};
use sp_bench::report::rss_mb_json;
use sp_embed::lattice::LatticeConfig;
use sp_embed::{lattice_smooth_with, SmoothScratch};
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let against_baseline = std::env::args().any(|a| a == "--baseline");
    // `--assert-speedup X`: fail unless the largest fast-path scenario
    // beats the reference smoother by at least X (CI runs this without
    // --quick so the gate covers the 256x256 wall).
    let mut assert_speedup = None;
    let mut argv = std::env::args();
    while let Some(a) = argv.next() {
        if a == "--assert-speedup" {
            let v = argv.next().expect("--assert-speedup needs a value");
            assert_speedup = Some(v.parse::<f64>().expect("bad --assert-speedup value"));
        }
    }
    let mut json = String::from("{\n  \"bench\": \"wallclock\",\n");

    // ---- Section 1: optimized vs reference lattice smoothing.
    json.push_str("  \"embed_fastpath\": [\n");
    let mut scenarios = vec![(64usize, 64usize, 4usize), (128, 128, 4)];
    if !quick {
        scenarios.push((256, 256, 4));
    }
    let mut scratch = SmoothScratch::new();
    let repeats = if quick { 1 } else { 5 };
    let mut headline_speedup = 0.0f64;
    for (i, &(rows, cols, q)) in scenarios.iter().enumerate() {
        let cfg = LatticeConfig::default();
        let (g, coords0) = demo_grid(rows, cols, 0xC0FFEE);

        // Best-of-N wall times: the minimum over interleaved repeats is
        // the standard noise-robust estimator (anything above the minimum
        // is interference, not the code under test). Invariance is
        // asserted on every repeat.
        let mut wall_ref = f64::INFINITY;
        let mut wall_new = f64::INFINITY;
        let mut sim_new = 0.0f64;
        // Peak RSS over the scenario. The reset is best-effort and its
        // outcome is recorded per row: when /proc/self/clear_refs rejects
        // the write, `peak_rss_mb` degrades to the process-lifetime
        // high-water mark — an upper bound, not a row-scoped peak.
        let rss_reset = rss::reset_peak();
        for _ in 0..repeats {
            // Wall-clock baseline: the seed commit's smoother, fully
            // faithful (full-sort lattice builds, per-iteration rebuilds
            // and maps, dummy payload allocations, sqrt-based repulsion).
            let mut coords_seed = coords0.clone();
            let mut m_seed = Machine::new(q * q, CostModel::qdr_infiniband());
            let t = Instant::now();
            seed_lattice_smooth(&g, &mut coords_seed, q, &mut m_seed, &cfg);
            wall_ref = wall_ref.min(t.elapsed().as_secs_f64() * 1e3);

            let mut coords_new = coords0.clone();
            let mut m_new = Machine::new(q * q, CostModel::qdr_infiniband());
            let t = Instant::now();
            lattice_smooth_with(&g, &mut coords_new, q, &mut m_new, &cfg, &mut scratch);
            wall_new = wall_new.min(t.elapsed().as_secs_f64() * 1e3);
            sim_new = m_new.elapsed();

            // Invariance oracle: the same pre-optimization structure with
            // the current (bit-equivalent) force formula.
            let mut coords_ref = coords0.clone();
            let mut m_ref = Machine::new(q * q, CostModel::qdr_infiniband());
            reference_lattice_smooth(&g, &mut coords_ref, q, &mut m_ref, &cfg);

            // Bit-exact invariance: the fast path must not change the
            // simulation. CI runs this binary, so drift fails the build.
            assert_eq!(
                m_new.elapsed().to_bits(),
                m_ref.elapsed().to_bits(),
                "simulated-time drift on {rows}x{cols} q={q}: \
                 optimized={:.17e} reference={:.17e}",
                m_new.elapsed(),
                m_ref.elapsed()
            );
            for (v, (a, b)) in coords_new.iter().zip(&coords_ref).enumerate() {
                assert!(
                    a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits(),
                    "coordinate drift at v{v} on {rows}x{cols} q={q}"
                );
            }
        }

        let speedup = wall_ref / wall_new.max(1e-9);
        headline_speedup = speedup; // scenarios grow, so the last is the headline
        let peak_rss = rss_mb_json(rss::peak_rss_bytes());
        eprintln!(
            "embed {rows}x{cols} q={q}: reference {wall_ref:.1} ms, \
             optimized {wall_new:.1} ms, speedup {speedup:.2}x, \
             simulated {sim_new:.6e} s (exact match), peak RSS {peak_rss} MiB"
        );
        let _ = writeln!(
            json,
            "    {{\"rows\": {rows}, \"cols\": {cols}, \"q\": {q}, \
             \"wall_ms_reference\": {wall_ref:.3}, \"wall_ms_optimized\": {wall_new:.3}, \
             \"speedup\": {speedup:.3}, \"simulated_time\": {sim_new:.17e}, \
             \"simulated_time_matches\": true, \"peak_rss_mb\": {peak_rss}, \
             \"rss_reset\": {rss_reset}}}{}",
            if i + 1 < scenarios.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");

    if let Some(min) = assert_speedup {
        if headline_speedup < min {
            eprintln!(
                "FAIL: largest fast-path scenario ran {headline_speedup:.2}x \
                 the reference smoother, below the {min:.2}x gate"
            );
            std::process::exit(1);
        }
        eprintln!("speedup gate: {headline_speedup:.2}x >= {min:.2}x");
    }

    // ---- Section 2: per-phase wall clock of the full pipeline.
    json.push_str("  \"pipeline\": [\n");
    let grids: &[(usize, usize)] = if quick {
        &[(96, 96)]
    } else {
        &[(96, 96), (192, 192)]
    };
    let ps: &[usize] = if quick { &[4, 16] } else { &[4, 16, 64] };
    let mut rows_out = Vec::new();
    for &(rows, cols) in grids {
        let g = scalapart::graph::gen::grid_2d(rows, cols);
        for &p in ps {
            rows_out.push(run_pipeline_phased(&g, rows, cols, p));
        }
    }
    json.push_str(&rows_out.join(",\n"));
    json.push_str("\n  ],\n");

    // ---- Section 3: dynamic-graph stream. A seeded delta stream (edge
    // churn + weight drift) drives the warm-start incremental
    // repartitioner; each row records the step's wall time, how much of
    // the graph went dirty, and the migration volume — the number a
    // from-scratch partition cannot keep small.
    json.push_str("  \"stream\": [\n");
    let (mesh_n, steps, batch) = if quick {
        (2_000usize, 4usize, 12usize)
    } else {
        (10_000, 8, 24)
    };
    let rss_reset = rss::reset_peak();
    let mut srng = StdRng::seed_from_u64(0x57AE);
    let (sg, scoords) = scalapart::graph::gen::delaunay_graph(mesh_n, &mut srng);
    let overlay = DeltaOverlay::new(std::sync::Arc::new(sg), Some(scoords)).expect("mesh is valid");
    let scfg = StreamConfig {
        ranks: 64,
        ..StreamConfig::default()
    };
    let t = Instant::now();
    let (mut rp, boot) = IncrementalRepartitioner::new(overlay, scfg);
    let boot_wall = t.elapsed().as_secs_f64() * 1e3;
    let mut stream_rows = vec![format!(
        "    {{\"mesh\": \"delaunay{mesh_n}\", \"step\": 0, \"mode\": \"full\", \
         \"touched\": 0, \"dirty_frac\": 0, \"migration_volume\": 0, \
         \"cut_after\": {:.3}, \"wall_ms\": {boot_wall:.3}, \"rss_reset\": {rss_reset}}}",
        boot.cut_after
    )];
    let mut migrated_total = 0usize;
    for _ in 0..steps {
        // Valid-by-construction deltas against the pre-batch overlay;
        // the seed is fixed, so the stream (and any intra-batch
        // conflict) is fully deterministic.
        let mut deltas = Vec::with_capacity(batch);
        for _ in 0..batch * 4 {
            if deltas.len() >= batch {
                break;
            }
            let a = srng.random_range(0..mesh_n as u32);
            let b = srng.random_range(0..mesh_n as u32);
            match srng.random_range(0..3u32) {
                0 if a != b && !rp.overlay().neighbors_w(a).any(|(x, _)| x == b) => {
                    deltas.push(GraphDelta::AddEdge { u: a, v: b, w: 1.0 });
                }
                1 if rp.overlay().neighbors_w(a).any(|(x, _)| x == b)
                    && rp.overlay().degree(a) > 1
                    && rp.overlay().degree(b) > 1 =>
                {
                    deltas.push(GraphDelta::RemoveEdge { u: a, v: b });
                }
                2 => deltas.push(GraphDelta::SetVwgt {
                    v: a,
                    w: 0.5 + srng.random_range(0.0..2.0),
                }),
                _ => {}
            }
        }
        let r = rp.step(&deltas).expect("generated deltas are valid");
        migrated_total += r.migration_volume;
        stream_rows.push(format!(
            "    {{\"mesh\": \"delaunay{mesh_n}\", \"step\": {}, \"mode\": \"{}\", \
             \"touched\": {}, \"dirty_frac\": {:.4}, \"migration_volume\": {}, \
             \"cut_after\": {:.3}, \"wall_ms\": {:.3}, \"rss_reset\": {rss_reset}}}",
            r.step,
            r.mode.as_str(),
            r.touched,
            r.dirty_frac,
            r.migration_volume,
            r.cut_after,
            r.wall_ms
        ));
    }
    let peak_rss = rss_mb_json(rss::peak_rss_bytes());
    eprintln!(
        "stream delaunay{mesh_n}: bootstrap {boot_wall:.1} ms (cut {:.0}), {steps} step(s), \
         {migrated_total} vertices migrated, final cut {:.0}, peak RSS {peak_rss} MiB",
        boot.cut_after,
        rp.cut()
    );
    json.push_str(&stream_rows.join(",\n"));
    json.push_str("\n  ]\n}\n");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_3.json");
    std::fs::write(out, &json).expect("write BENCH_3.json");
    eprintln!("wrote {out}");

    if against_baseline {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_2.json");
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("--baseline: cannot read {path}: {e}"));
        let base = BenchDoc::parse(&text)
            .unwrap_or_else(|e| panic!("--baseline: cannot parse {path}: {e}"));
        let cur = BenchDoc::parse(&json).expect("fresh run parses");
        let cmp = compare(&cur, &base, 0.2);
        for l in &cmp.lines {
            eprintln!("baseline: {l}");
        }
        if !cmp.ok() {
            for r in &cmp.regressions {
                eprintln!("baseline: REGRESSION {r}");
            }
            eprintln!(
                "baseline: {} row(s) more than 20% over BENCH_2.json",
                cmp.regressions.len()
            );
            std::process::exit(1);
        }
        eprintln!("baseline: all rows within 20% of BENCH_2.json");
    }
}

/// One full pipeline run with host wall-clock timing per phase. This
/// mirrors `scalapart_bisect` (same public building blocks, same charge
/// structure) but keeps an `Instant` around each phase — the library entry
/// point deliberately has no host-timing hooks.
fn run_pipeline_phased(g: &Graph, rows: usize, cols: usize, p: usize) -> String {
    // Per-run memory high-water mark (best-effort reset, recorded per
    // row — see the module docs for the fallback semantics).
    let rss_reset = rss::reset_peak();
    let cfg = SpConfig::default();
    let mut machine = Machine::new(p, CostModel::qdr_infiniband());
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Coarsen (parallel HEM, retain every other level; one scratch arena
    // reused across levels, as in the library pipeline).
    let t = Instant::now();
    let mut arena = CoarsenArena::new();
    let mut levels = vec![Level {
        graph: g.clone(),
        map_to_coarser: None,
    }];
    loop {
        let cur = &levels.last().unwrap().graph;
        if cur.n() <= cfg.coarsen.target_coarsest || levels.len() > cfg.coarsen.max_levels {
            break;
        }
        let step =
            |graph: &Graph, machine: &mut Machine, rng: &mut StdRng, arena: &mut CoarsenArena| {
                let dist = Distribution::block(graph.n(), p);
                let matching = parallel_hem_in(
                    graph,
                    &dist,
                    machine,
                    cfg.matching_rounds,
                    rng.random::<u64>(),
                    arena,
                );
                let c = contract_with(graph, &matching, arena);
                let mut states: Vec<()> = vec![(); p];
                let edges_per_rank = (graph.m() / p).max(1) as f64;
                machine.compute(&mut states, |_, _| edges_per_rank);
                if p > 1 {
                    let cross = dist.cross_edges(graph);
                    let words = (2 * cross / p).max(1);
                    let outbox: Vec<Vec<(usize, CostOnly)>> = (0..p)
                        .map(|r| vec![((r + 1) % p, CostOnly::new(words))])
                        .collect();
                    machine.exchange_costed(&outbox);
                }
                c
            };
        let c1 = step(cur, &mut machine, &mut rng, &mut arena);
        let (coarse, map) =
            if cfg.coarsen.keep_every_other && c1.coarse.n() > cfg.coarsen.target_coarsest {
                let c2 = step(&c1.coarse, &mut machine, &mut rng, &mut arena);
                let composed: Vec<u32> = c1.map.iter().map(|&mid| c2.map[mid as usize]).collect();
                (c2.coarse, composed)
            } else {
                (c1.coarse, c1.map)
            };
        if coarse.n() as f64 > 0.7 * levels.last().unwrap().graph.n() as f64 {
            break;
        }
        levels.last_mut().unwrap().map_to_coarser = Some(map);
        levels.push(Level {
            graph: coarse,
            map_to_coarser: None,
        });
    }
    let hierarchy = Hierarchy { levels };
    let wall_coarsen = t.elapsed().as_secs_f64() * 1e3;
    let sim_coarsen = machine.elapsed();

    // Embed (multilevel fixed-lattice smoothing).
    let t = Instant::now();
    let mut embed_cfg = cfg.embed;
    embed_cfg.seed = cfg.embed.seed ^ cfg.seed;
    let coords = multilevel_lattice_embed(&hierarchy, &mut machine, &embed_cfg);
    let wall_embed = t.elapsed().as_secs_f64() * 1e3;
    let sim_embed = machine.elapsed() - sim_coarsen;

    // Partition (geometric tries).
    let t = Instant::now();
    let dist = Distribution::block(g.n(), p);
    let geo = parallel_geometric_partition(g, &coords, &dist, &mut machine, &cfg.geo, cfg.seed);
    let mut bisection = geo.bisection;
    let wall_partition = t.elapsed().as_secs_f64() * 1e3;
    let sim_partition = machine.elapsed() - sim_coarsen - sim_embed;

    // Refine (strip FM around the separator).
    let t = Instant::now();
    if cfg.strip_factor > 0.0 && geo.cut > 0 {
        let target = ((geo.cut as f64 * cfg.strip_factor) as usize).clamp(4, g.n());
        let movable = strip_around_separator(&geo.separator.signed, target);
        let st = fm_refine(g, &mut bisection, Some(&movable), &cfg.fm);
        let mut states: Vec<()> = vec![(); p];
        let ops = st.ops / p as f64;
        machine.compute(&mut states, |_, _| ops);
        for _ in 0..st.passes {
            machine.allreduce_sum_costed(2);
        }
    }
    let wall_refine = t.elapsed().as_secs_f64() * 1e3;
    let sim_refine = machine.elapsed() - sim_coarsen - sim_embed - sim_partition;

    let cut = bisection.cut_edges(g);
    let peak_rss = rss_mb_json(rss::peak_rss_bytes());
    eprintln!(
        "pipeline grid{rows}x{cols} p={p}: wall ms coarsen {wall_coarsen:.1} / \
         embed {wall_embed:.1} / partition {wall_partition:.1} / refine {wall_refine:.1}, \
         simulated total {:.3e} s, cut {cut}, peak RSS {peak_rss} MiB",
        machine.elapsed()
    );
    format!(
        "    {{\"graph\": \"grid{rows}x{cols}\", \"p\": {p}, \
         \"wall_ms\": {{\"coarsen\": {wall_coarsen:.3}, \"embed\": {wall_embed:.3}, \
         \"partition\": {wall_partition:.3}, \"refine\": {wall_refine:.3}}}, \
         \"simulated\": {{\"coarsen\": {sim_coarsen:.6e}, \"embed\": {sim_embed:.6e}, \
         \"partition\": {sim_partition:.6e}, \"refine\": {sim_refine:.6e}, \
         \"total\": {:.6e}}}, \"cut\": {cut}, \"peak_rss_mb\": {peak_rss}, \
         \"rss_reset\": {rss_reset}}}",
        machine.elapsed()
    )
}
