//! `repro` — regenerate every table and figure of the paper.
//!
//! Usage:
//!   repro [--scale tiny|bench|paper] [--seed N] [--out DIR] <experiment>...
//!
//! Experiments: table1 table2 table3 table4 fig1 fig2 fig3 fig4 fig5 fig6
//!              fig7 fig8 fig9 ablation-block ablation-strip ablation-tries
//!              ablation-levels ablation-lattice all
//!
//! Text tables go to stdout; CSVs (and SVGs for fig1/fig2) to `--out`
//! (default `results/`). Absolute numbers come from the simulated machine
//! (see DESIGN.md); the *shapes* are the reproduction target.

use scalapart::Method;
use sp_bench::harness::{geomean, sweep_p, Experiments};
use sp_bench::report::{write_csv, write_json, Table};
use sp_graph::{SuiteGraph, TestScale};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = TestScale::Bench;
    let mut seed = 20130101u64;
    let mut out = PathBuf::from("results");
    let mut experiments: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = match it.next().map(|s| s.as_str()) {
                    Some("tiny") => TestScale::Tiny,
                    Some("bench") => TestScale::Bench,
                    Some("paper") => TestScale::Paper,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => {
                seed = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("bad --seed");
                    std::process::exit(2);
                })
            }
            "--out" => out = PathBuf::from(it.next().expect("--out DIR")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--scale tiny|bench|paper] [--seed N] [--out DIR] <exp>..."
                );
                return;
            }
            e => experiments.push(e.to_string()),
        }
    }
    if experiments.is_empty() {
        experiments.push("all".into());
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = [
            "table1",
            "table2",
            "table3",
            "table4",
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "ablation-block",
            "ablation-strip",
            "ablation-tries",
            "ablation-levels",
            "ablation-lattice",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let mut ex = Experiments::new(scale, seed);
    for e in &experiments {
        let table = match e.as_str() {
            "table1" => table1(&mut ex),
            "table2" => table2(&mut ex),
            "table3" => table3(&mut ex),
            "table4" => table4(&mut ex),
            "fig1" => fig1(&mut ex, &out),
            "fig2" => fig2(&mut ex, &out),
            "fig3" => fig_times_all(&mut ex, "fig3: total execution times over all 9 graphs"),
            "fig4" => fig4(&mut ex),
            "fig5" => fig_times_one(&mut ex, SuiteGraph::HugeBubbles, "fig5"),
            "fig6" => fig_times_one(&mut ex, SuiteGraph::G3Circuit, "fig6"),
            "fig7" => fig7(&mut ex),
            "fig8" => fig8(&mut ex),
            "fig9" => fig9(&mut ex),
            "ablation-block" => ablation_block(&mut ex),
            "ablation-strip" => ablation_strip(&mut ex),
            "ablation-tries" => ablation_tries(&mut ex),
            "ablation-levels" => ablation_levels(&mut ex),
            "ablation-lattice" => ablation_lattice(&mut ex),
            other => {
                eprintln!("unknown experiment '{other}', skipping");
                continue;
            }
        };
        println!("{}", table.render());
        if let Err(err) = write_csv(&table, &out, e) {
            eprintln!("warning: could not write {e}.csv: {err}");
        }
    }
    // Per-run metrics artifact: every memoised (method, graph, P) point
    // behind the tables above, machine-readable, next to the CSVs.
    let metrics = run_metrics(&ex);
    if let Err(err) = write_json(&metrics, &out, "run_metrics") {
        eprintln!("warning: could not write run_metrics.json: {err}");
    } else {
        eprintln!("wrote {}", out.join("run_metrics.json").display());
    }
}

/// One row per memoised run: simulated time, cut, imbalance, and the
/// ScalaPart phase split (comp/comm per phase, seconds) where available.
fn run_metrics(ex: &Experiments) -> Table {
    let mut t = Table::new(
        "per-run metrics",
        &[
            "method",
            "graph",
            "P",
            "cut",
            "time_s",
            "imbalance",
            "coarsen_comp_s",
            "coarsen_comm_s",
            "embed_comp_s",
            "embed_comm_s",
            "partition_comp_s",
            "partition_comm_s",
        ],
    );
    for r in ex.run_records() {
        let ph = r.phases.unwrap_or_default();
        t.row(vec![
            r.method.name().into(),
            r.graph.name().into(),
            r.p.to_string(),
            r.cut.to_string(),
            format!("{}", r.time),
            format!("{}", r.imbalance),
            format!("{}", ph.coarsen.comp),
            format!("{}", ph.coarsen.comm),
            format!("{}", ph.embed.comp),
            format!("{}", ph.embed.comm),
            format!("{}", ph.partition.comp),
            format!("{}", ph.partition.comm),
        ]);
    }
    t
}

fn fmt_t(t: f64) -> String {
    format!("{:.3}", t * 1e3) // milliseconds
}

/// Table 1: the test suite (generated sizes next to the paper's).
fn table1(ex: &mut Experiments) -> Table {
    let mut t = Table::new(
        "Table 1: test suite (generated at this scale vs paper)",
        &["graph", "N", "M", "paper N(10^6)", "paper M(10^6)"],
    );
    for sg in SuiteGraph::all() {
        let g = &ex.graph(sg).graph;
        t.row(vec![
            sg.name().into(),
            g.n().to_string(),
            g.m().to_string(),
            format!("{:.2}", sg.paper_n() as f64 / 1e6),
            format!("{:.2}", sg.paper_m() / 1e6),
        ]);
    }
    t
}

/// Table 2: cut sizes of the geometric methods relative to G30 = 1.
fn table2(ex: &mut Experiments) -> Table {
    let ps = sweep_p();
    let mut t = Table::new(
        "Table 2: relative cut-sizes of geometric methods (G30 = 1)",
        &["graph", "G7", "G7-NL", "RCB", "Avg SP", "Best SP"],
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for sg in SuiteGraph::all() {
        let g30 = ex.run(Method::G30, sg, 1).cut.max(1) as f64;
        let g7 = ex.run(Method::G7, sg, 1).cut as f64 / g30;
        let g7nl = ex.run(Method::G7Nl, sg, 1).cut as f64 / g30;
        let rcb = ex.run(Method::Rcb, sg, 1).cut as f64 / g30;
        let avg_sp = ex.cut_avg(Method::ScalaPart, sg, &ps) / g30;
        let (best, _) = ex.cut_range(Method::ScalaPart, sg, &ps);
        let best_sp = best as f64 / g30;
        for (c, v) in cols.iter_mut().zip([g7, g7nl, rcb, avg_sp, best_sp]) {
            c.push(v);
        }
        t.row(vec![
            sg.name().into(),
            format!("{g7:.2}"),
            format!("{g7nl:.2}"),
            format!("{rcb:.2}"),
            format!("{avg_sp:.2}"),
            format!("{best_sp:.2}"),
        ]);
    }
    t.row(
        std::iter::once("Geom. Mean".to_string())
            .chain(cols.iter().map(|c| format!("{:.2}", geomean(c))))
            .collect(),
    );
    t
}

/// Table 3: best–worst cut-size ranges across the P sweep.
fn table3(ex: &mut Experiments) -> Table {
    let ps = sweep_p();
    let mut t = Table::new(
        "Table 3: best - worst cut-sizes (P swept 1..1024)",
        &["graph", "Pt-Scotch", "ParMetis", "ScalaPart", "G30", "RCB"],
    );
    // For the geometric-mean row, relative to best Pt-Scotch per graph.
    let mut rel: Vec<Vec<f64>> = vec![Vec::new(); 8];
    for sg in SuiteGraph::all() {
        let ps_range = ex.cut_range(Method::PtScotchLike, sg, &ps);
        let pm_range = ex.cut_range(Method::ParMetisLike, sg, &ps);
        let sp_range = ex.cut_range(Method::ScalaPart, sg, &ps);
        let g30 = ex.run(Method::G30, sg, 1).cut;
        let rcb = ex.run(Method::Rcb, sg, 1).cut;
        let base = ps_range.0.max(1) as f64;
        for (i, v) in [
            ps_range.0 as f64,
            ps_range.1 as f64,
            pm_range.0 as f64,
            pm_range.1 as f64,
            sp_range.0 as f64,
            sp_range.1 as f64,
            g30 as f64,
            rcb as f64,
        ]
        .into_iter()
        .enumerate()
        {
            rel[i].push(v / base);
        }
        t.row(vec![
            sg.name().into(),
            format!("{} - {}", ps_range.0, ps_range.1),
            format!("{} - {}", pm_range.0, pm_range.1),
            format!("{} - {}", sp_range.0, sp_range.1),
            g30.to_string(),
            rcb.to_string(),
        ]);
    }
    t.row(vec![
        "Geom. Mean (rel.)".into(),
        format!("{:.2} - {:.2}", geomean(&rel[0]), geomean(&rel[1])),
        format!("{:.2} - {:.2}", geomean(&rel[2]), geomean(&rel[3])),
        format!("{:.2} - {:.2}", geomean(&rel[4]), geomean(&rel[5])),
        format!("{:.2}", geomean(&rel[6])),
        format!("{:.2}", geomean(&rel[7])),
    ]);
    t
}

/// Table 4: speed-ups at P = 1024 relative to Pt-Scotch.
fn table4(ex: &mut Experiments) -> Table {
    let p = 1024;
    let mut t = Table::new(
        "Table 4: speed-ups at P=1024 relative to Pt-Scotch (=1)",
        &["graphs", "ParMetis", "RCB", "ScalaPart", "SP-PG7-NL"],
    );
    let speedups = |ex: &mut Experiments, sgs: &[SuiteGraph]| -> [f64; 4] {
        let mut ps_t = 0.0;
        let mut o = [0.0f64; 4];
        for &sg in sgs {
            ps_t += ex.run(Method::PtScotchLike, sg, p).time;
            o[0] += ex.run(Method::ParMetisLike, sg, p).time;
            o[1] += ex.run(Method::Rcb, sg, p).time;
            o[2] += ex.run(Method::ScalaPart, sg, p).time;
            o[3] += ex.run(Method::SpPg7Nl, sg, p).time;
        }
        [ps_t / o[0], ps_t / o[1], ps_t / o[2], ps_t / o[3]]
    };
    let rows: [(&str, Vec<SuiteGraph>); 4] = [
        ("G3_circuit", vec![SuiteGraph::G3Circuit]),
        ("hugebubbles", vec![SuiteGraph::HugeBubbles]),
        ("All Graphs", SuiteGraph::all().to_vec()),
        ("Large 4 graphs", SuiteGraph::largest4().to_vec()),
    ];
    for (name, sgs) in rows {
        let s = speedups(ex, &sgs);
        t.row(vec![
            name.into(),
            format!("{:.2}", s[0]),
            format!("{:.2}", s[1]),
            format!("{:.2}", s[2]),
            format!("{:.2}", s[3]),
        ]);
    }
    t
}

/// Fig 1: the 3×3 lattice/β illustration — lattice occupancy stats + SVG.
fn fig1(ex: &mut Experiments, out: &PathBuf) -> Table {
    use scalapart::svg::render_lattice_svg;
    use scalapart::{scalapart_bisect, SpConfig};
    use sp_machine::{CostModel, Machine};
    let _ = ex;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let (g0, _) = sp_graph::gen::random_geometric_graph(600, 0.07, &mut rng);
    let (g, _) = sp_graph::traversal::largest_component(&g0);
    let mut m = Machine::new(9, CostModel::qdr_infiniband());
    let r = scalapart_bisect(&g, &mut m, &SpConfig::default());
    let q = 3;
    let bb = sp_geometry::Aabb2::from_points(&r.coords)
        .unwrap()
        .inflated(1e-9);
    let mut t = Table::new(
        "Fig 1: 3x3 domain lattice with beta special vertices",
        &["cell", "vertices", "mass", "phi_x", "phi_y"],
    );
    for j in 0..q {
        for i in 0..q {
            let cell = bb.lattice_cell(q, i, j);
            let mut mu = 0.0;
            let mut cnt = 0usize;
            let mut com = sp_geometry::Point2::ZERO;
            for (v, &c) in r.coords.iter().enumerate() {
                if cell.contains(c) {
                    mu += g.vwgt(v as u32);
                    com += c * g.vwgt(v as u32);
                    cnt += 1;
                }
            }
            if mu > 0.0 {
                com = com / mu;
            }
            t.row(vec![
                format!("({i},{j})"),
                cnt.to_string(),
                format!("{mu:.1}"),
                format!("{:.3}", com.x),
                format!("{:.3}", com.y),
            ]);
        }
    }
    let svg = render_lattice_svg(&g, &r.coords, q, 800.0);
    std::fs::create_dir_all(out).ok();
    std::fs::write(out.join("fig1_lattice.svg"), svg).ok();
    t
}

/// Fig 2: strip refinement on delaunay_n16 — strip/separator ratio + SVG.
fn fig2(ex: &mut Experiments, out: &PathBuf) -> Table {
    use scalapart::svg::render_svg;
    use scalapart::{scalapart_bisect, SpConfig};
    use sp_machine::{CostModel, Machine};
    let n = (1usize << 16) / ex.scale.divisor().clamp(1, 64);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(16);
    let (g, _) = sp_graph::gen::delaunay_graph(n.max(1024), &mut rng);
    let mut m = Machine::new(16, CostModel::qdr_infiniband());
    let r = scalapart_bisect(&g, &mut m, &SpConfig::default());
    let mut t = Table::new(
        "Fig 2: strip used to refine the separator (delaunay_n16 analog)",
        &["quantity", "value"],
    );
    t.row(vec!["graph N".into(), g.n().to_string()]);
    t.row(vec![
        "separator before refine".into(),
        r.cut_before_refine.to_string(),
    ]);
    t.row(vec!["separator after refine".into(), r.cut.to_string()]);
    t.row(vec![
        "strip size (vertices)".into(),
        r.strip_size.to_string(),
    ]);
    t.row(vec![
        "strip / separator ratio".into(),
        format!(
            "{:.1} (paper: 5.6)",
            r.strip_size as f64 / r.cut_before_refine.max(1) as f64
        ),
    ]);
    std::fs::create_dir_all(out).ok();
    std::fs::write(
        out.join("fig2_strip.svg"),
        render_svg(&g, &r.coords, Some(&r.bisection), 900.0),
    )
    .ok();
    t
}

/// Figs 3: total times over all graphs vs P for the four parallel methods.
fn fig_times_all(ex: &mut Experiments, title: &str) -> Table {
    let mut t = Table::new(title, &["P", "Pt-Scotch", "ParMetis", "ScalaPart", "RCB"]);
    for p in sweep_p() {
        t.row(vec![
            p.to_string(),
            fmt_t(ex.total_time(Method::PtScotchLike, p)),
            fmt_t(ex.total_time(Method::ParMetisLike, p)),
            fmt_t(ex.total_time(Method::ScalaPart, p)),
            fmt_t(ex.total_time(Method::Rcb, p)),
        ]);
    }
    t.header[1] = "Pt-Scotch(ms)".into();
    t
}

/// Fig 4: RCB vs SP-PG7-NL (partitioning only) total times vs P.
fn fig4(ex: &mut Experiments) -> Table {
    let mut t = Table::new(
        "fig4: RCB vs SP-PG7-NL (ScalaPart excl. coarsen+embed), total over all graphs",
        &["P", "RCB(ms)", "SP-PG7-NL(ms)"],
    );
    for p in sweep_p() {
        t.row(vec![
            p.to_string(),
            fmt_t(ex.total_time(Method::Rcb, p)),
            fmt_t(ex.total_time(Method::SpPg7Nl, p)),
        ]);
    }
    t
}

/// Figs 5/6: per-graph execution time vs P for all methods.
fn fig_times_one(ex: &mut Experiments, sg: SuiteGraph, figname: &str) -> Table {
    let mut t = Table::new(
        &format!("{figname}: execution time for {}", sg.name()),
        &[
            "P",
            "Pt-Scotch(ms)",
            "ParMetis(ms)",
            "ScalaPart(ms)",
            "RCB(ms)",
        ],
    );
    for p in sweep_p() {
        t.row(vec![
            p.to_string(),
            fmt_t(ex.run(Method::PtScotchLike, sg, p).time),
            fmt_t(ex.run(Method::ParMetisLike, sg, p).time),
            fmt_t(ex.run(Method::ScalaPart, sg, p).time),
            fmt_t(ex.run(Method::Rcb, sg, p).time),
        ]);
    }
    t
}

/// Fig 7: ScalaPart component times as fractions of the total, over all
/// graphs.
fn fig7(ex: &mut Experiments) -> Table {
    let mut t = Table::new(
        "fig7: ScalaPart component times (fraction of total, all graphs)",
        &["P", "coarsen", "embed", "partition"],
    );
    for p in sweep_p() {
        let mut c = 0.0;
        let mut e = 0.0;
        let mut q = 0.0;
        for sg in SuiteGraph::all() {
            let r = ex.run(Method::ScalaPart, sg, p);
            let ph = r.phases.expect("scalapart phases");
            c += ph.coarsen.total();
            e += ph.embed.total();
            q += ph.partition.total();
        }
        let total = (c + e + q).max(1e-30);
        t.row(vec![
            p.to_string(),
            format!("{:.3}", c / total),
            format!("{:.3}", e / total),
            format!("{:.3}", q / total),
        ]);
    }
    t
}

/// Fig 8: embedding time composition (communication fraction) vs P.
fn fig8(ex: &mut Experiments) -> Table {
    let mut t = Table::new(
        "fig8: embedding time composition (comm fraction, all graphs)",
        &["P", "comp", "comm", "comm fraction"],
    );
    for p in sweep_p() {
        let mut comp = 0.0;
        let mut comm = 0.0;
        for sg in SuiteGraph::all() {
            let r = ex.run(Method::ScalaPart, sg, p);
            let ph = r.phases.expect("scalapart phases");
            comp += ph.embed.comp;
            comm += ph.embed.comm;
        }
        t.row(vec![
            p.to_string(),
            fmt_t(comp),
            fmt_t(comm),
            format!("{:.3}", comm / (comp + comm).max(1e-30)),
        ]);
    }
    t
}

/// Fig 9: times for the four largest graphs at P = 16..1024, plus average.
fn fig9(ex: &mut Experiments) -> Table {
    let mut t = Table::new(
        "fig9: times for the 4 largest graphs (ms)",
        &["P", "graph", "Pt-Scotch", "ParMetis", "ScalaPart"],
    );
    for p in [16usize, 64, 256, 1024] {
        let mut sums = [0.0f64; 3];
        for sg in SuiteGraph::largest4() {
            let ps = ex.run(Method::PtScotchLike, sg, p).time;
            let pm = ex.run(Method::ParMetisLike, sg, p).time;
            let sp = ex.run(Method::ScalaPart, sg, p).time;
            sums[0] += ps;
            sums[1] += pm;
            sums[2] += sp;
            t.row(vec![
                p.to_string(),
                sg.name().into(),
                fmt_t(ps),
                fmt_t(pm),
                fmt_t(sp),
            ]);
        }
        t.row(vec![
            p.to_string(),
            "average".into(),
            fmt_t(sums[0] / 4.0),
            fmt_t(sums[1] / 4.0),
            fmt_t(sums[2] / 4.0),
        ]);
    }
    t
}

/// Ablation: communication block size (1 vs 2–8): embedding comm time and
/// resulting cut.
fn ablation_block(ex: &mut Experiments) -> Table {
    use scalapart::{scalapart_bisect, SpConfig};
    use sp_machine::{CostModel, Machine};
    let t_g = ex.graph(SuiteGraph::DelaunayN20);
    let g = &t_g.graph;
    let mut t = Table::new(
        "ablation: communication block size (delaunay_n20, P=64)",
        &["block", "cut", "embed comm (ms)", "embed total (ms)"],
    );
    for block in [1usize, 2, 4, 8] {
        let mut cfg = SpConfig::default();
        cfg.embed.lattice.block = block;
        let mut m = Machine::new(64, CostModel::qdr_infiniband());
        let r = scalapart_bisect(g, &mut m, &cfg);
        t.row(vec![
            block.to_string(),
            r.cut.to_string(),
            fmt_t(r.times.embed.comm),
            fmt_t(r.times.embed.total()),
        ]);
    }
    t
}

/// Ablation: strip refinement on/off and strip factor.
fn ablation_strip(ex: &mut Experiments) -> Table {
    use scalapart::{scalapart_bisect, SpConfig};
    use sp_machine::{CostModel, Machine};
    let t_g = ex.graph(SuiteGraph::DelaunayN20);
    let g = &t_g.graph;
    let mut t = Table::new(
        "ablation: strip refinement (delaunay_n20, P=64)",
        &["strip factor", "cut before", "cut after", "strip size"],
    );
    for factor in [0.0, 2.0, 6.0, 12.0] {
        let cfg = SpConfig {
            strip_factor: factor,
            ..Default::default()
        };
        let mut m = Machine::new(64, CostModel::qdr_infiniband());
        let r = scalapart_bisect(g, &mut m, &cfg);
        t.row(vec![
            format!("{factor:.0}"),
            r.cut_before_refine.to_string(),
            r.cut.to_string(),
            r.strip_size.to_string(),
        ]);
    }
    t
}

/// Ablation: number of geometric tries (G30 vs G7 vs G7-NL).
fn ablation_tries(ex: &mut Experiments) -> Table {
    let mut t = Table::new(
        "ablation: geometric try policy (sequential, per graph cut)",
        &["graph", "G30", "G7", "G7-NL"],
    );
    for sg in [
        SuiteGraph::Ecology1,
        SuiteGraph::DelaunayN20,
        SuiteGraph::HugeTrace,
    ] {
        let g30 = ex.run(Method::G30, sg, 1).cut;
        let g7 = ex.run(Method::G7, sg, 1).cut;
        let g7nl = ex.run(Method::G7Nl, sg, 1).cut;
        t.row(vec![
            sg.name().into(),
            g30.to_string(),
            g7.to_string(),
            g7nl.to_string(),
        ]);
    }
    t
}

/// Ablation: retain-every-other-level (4× shrink) vs every level (2×).
fn ablation_levels(ex: &mut Experiments) -> Table {
    use scalapart::{scalapart_bisect, SpConfig};
    use sp_machine::{CostModel, Machine};
    let t_g = ex.graph(SuiteGraph::Ecology1);
    let g = &t_g.graph;
    let mut t = Table::new(
        "ablation: hierarchy shrink rate (ecology1, P=64)",
        &[
            "retained shrink",
            "cut",
            "total time (ms)",
            "embed time (ms)",
        ],
    );
    for every_other in [true, false] {
        let mut cfg = SpConfig::default();
        cfg.coarsen.keep_every_other = every_other;
        let mut m = Machine::new(64, CostModel::qdr_infiniband());
        let r = scalapart_bisect(g, &mut m, &cfg);
        t.row(vec![
            if every_other { "~4x (paper)" } else { "~2x" }.into(),
            r.cut.to_string(),
            fmt_t(r.total_time),
            fmt_t(r.times.embed.total()),
        ]);
    }
    t
}

/// Ablation: lattice β repulsion vs exact Barnes–Hut (embedding quality and
/// resulting cut at P=1, where both are available).
fn ablation_lattice(ex: &mut Experiments) -> Table {
    use scalapart::{scalapart_bisect, SpConfig};
    use sp_embed::metrics::edge_length_stats;
    use sp_embed::{embed_multilevel_seq, SeqEmbedConfig};
    use sp_machine::{CostModel, Machine};
    let t_g = ex.graph(SuiteGraph::DelaunayN20);
    let g = t_g.graph.clone();
    let mut t = Table::new(
        "ablation: lattice beta approximation vs exact Barnes-Hut repulsion",
        &["repulsion", "edge-length cv", "geo cut"],
    );
    // Lattice (P = 64 ⇒ 8×8 lattice at the finest level).
    let mut m = Machine::new(64, CostModel::qdr_infiniband());
    let r = scalapart_bisect(&g, &mut m, &SpConfig::default());
    let cv_lattice = edge_length_stats(&g, &r.coords).cv();
    t.row(vec![
        "fixed lattice (P=64)".into(),
        format!("{cv_lattice:.3}"),
        r.cut.to_string(),
    ]);
    // Exact BH: sequential embedding, then the same geometric partitioner.
    let coords = embed_multilevel_seq(&g, &SeqEmbedConfig::default());
    let cv_bh = edge_length_stats(&g, &coords).cv();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let geo =
        sp_geopart::geometric_partition(&g, &coords, &sp_geopart::GeoConfig::g7_nl(), &mut rng);
    t.row(vec![
        "exact Barnes-Hut (seq)".into(),
        format!("{cv_bh:.3}"),
        geo.cut.to_string(),
    ]);
    t
}
