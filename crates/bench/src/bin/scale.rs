//! Paper-scale memory sweep: generate each synthetic suite family up to
//! the published vertex counts and record, per size, the wall time and
//! peak RSS of each pipeline-front phase — generation (the parallel
//! direct-CSR builders), compact conversion ([`CompactGraph`]), and
//! arena-backed coarsening — plus the bytes held by the compact versus
//! reference representation and the coarsening arena's scratch
//! high-water. Results land in `BENCH_4.json` at the repo root.
//!
//! A second section re-generates the largest grid through the legacy
//! `GraphBuilder` tuple-buffer path (the seed commit's `grid_2d`,
//! reproduced verbatim below) and compares generator peak RSS against
//! the direct path — the committed run must show the direct path at
//! least 1.5× leaner.
//!
//! Flags:
//!
//! * `--quick` — CI smoke sizes (seconds, not minutes). The committed
//!   `BENCH_4.json` comes from a full run, which reaches the 2^22-vertex
//!   grid and Delaunay instances.
//! * `--assert-rss-mb MB` — exit non-zero if the process peak RSS ever
//!   exceeds the budget (CI runs `--quick` with a budget so memory
//!   regressions fail the build).
//! * `--assert-gen-rss-factor X` — exit non-zero unless the builder
//!   path's generator peak-RSS delta is at least `X` times the direct
//!   path's.
//!
//! Peak-RSS methodology matches `wallclock.rs`: each measurement resets
//! the kernel's peak counter (`/proc/self/clear_refs`), records the
//! *base* RSS at reset, and reports both the absolute peak and the
//! delta over base — the delta is what the phase itself added, robust
//! against heap retained from earlier rows. Where the reset write is
//! unavailable the row records `rss_reset: false` and the absolute peak
//! degrades to the process-lifetime high-water mark.

use rand::rngs::StdRng;
use rand::SeedableRng;
use scalapart::coarsen::{CoarsenArena, CoarsenConfig, Hierarchy};
use scalapart::graph::gen::{delaunay_graph, grid_2d, kkt_graph, trace_mesh};
use scalapart::graph::{CompactGraph, Graph, GraphBuilder};
use scalapart::obs::rss;
use sp_bench::report::rss_mb_json;
use std::time::Instant;

/// One peak-RSS measurement window: reset, run, read.
struct RssWindow {
    reset: bool,
    base_mb: f64,
}

fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

impl RssWindow {
    fn open() -> RssWindow {
        let reset = rss::reset_peak();
        RssWindow {
            reset,
            base_mb: rss::current_rss_bytes().map_or(0.0, mb),
        }
    }

    /// Absolute peak (MiB) and delta over the base at reset.
    fn close(&self) -> (Option<f64>, Option<f64>) {
        let peak = rss::peak_rss_bytes().map(mb);
        (peak, peak.map(|p| (p - self.base_mb).max(0.0)))
    }
}

/// The seed commit's builder-based grid generator, kept verbatim as the
/// memory baseline the direct path is compared against.
fn grid_2d_via_builder(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut b = GraphBuilder::with_edge_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1), 1.0);
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c), 1.0);
            }
        }
    }
    b.build()
}

/// Approximate heap bytes of the reference representation (xadj + adjncy
/// + ewgt + vwgt at their natural widths).
fn reference_bytes(g: &Graph) -> usize {
    (g.n() + 1) * 8 + g.n() * 8 + 2 * g.m() * (4 + 8)
}

struct SweepRow {
    json: String,
    n: usize,
    m: usize,
}

/// Generate one family instance and run it through compact conversion
/// and arena coarsening, timing each phase.
fn sweep_row(family: &str, label: &str, generate: impl FnOnce() -> Graph) -> SweepRow {
    let win = RssWindow::open();

    let t = Instant::now();
    let g = generate();
    let wall_gen = t.elapsed().as_secs_f64() * 1e3;
    let (gen_peak, gen_delta) = win.close();

    let t = Instant::now();
    let compact = CompactGraph::from_graph(&g);
    let wall_compact = t.elapsed().as_secs_f64() * 1e3;
    let compact_bytes = compact.heap_bytes();
    let ref_bytes = reference_bytes(&g);
    drop(compact);

    let t = Instant::now();
    let mut arena = CoarsenArena::new();
    let h = Hierarchy::build_with_arena(&g, &CoarsenConfig::default(), &mut arena);
    let wall_coarsen = t.elapsed().as_secs_f64() * 1e3;
    let levels = h.depth();
    let coarsest_n = h.coarsest().n();
    let arena_bytes = arena.high_water_bytes();
    drop(h);

    let (peak, _) = win.close();
    eprintln!(
        "{label}: n={} m={} | gen {wall_gen:.0} ms (peak {} MiB, +{} MiB) | \
         compact {wall_compact:.0} ms ({:.1} vs {:.1} MiB) | \
         coarsen {wall_coarsen:.0} ms ({levels} levels -> {coarsest_n}, arena {:.1} MiB)",
        g.n(),
        g.m(),
        rss_mb_json(gen_peak.map(|p| (p * 1024.0 * 1024.0) as u64)),
        rss_mb_json(gen_delta.map(|d| (d * 1024.0 * 1024.0) as u64)),
        compact_bytes as f64 / (1024.0 * 1024.0),
        ref_bytes as f64 / (1024.0 * 1024.0),
        arena_bytes as f64 / (1024.0 * 1024.0),
    );

    let fmt_opt = |v: Option<f64>| match v {
        Some(x) => format!("{x:.1}"),
        None => "null".to_string(),
    };
    SweepRow {
        json: format!(
            "    {{\"family\": \"{family}\", \"graph\": \"{label}\", \"n\": {}, \"m\": {}, \
             \"wall_ms\": {{\"gen\": {wall_gen:.3}, \"compact\": {wall_compact:.3}, \
             \"coarsen\": {wall_coarsen:.3}}}, \
             \"gen_peak_rss_mb\": {}, \"gen_rss_delta_mb\": {}, \"row_peak_rss_mb\": {}, \
             \"rss_reset\": {}, \
             \"compact_bytes\": {compact_bytes}, \"reference_bytes\": {ref_bytes}, \
             \"coarsen_levels\": {levels}, \"coarsest_n\": {coarsest_n}, \
             \"arena_bytes\": {arena_bytes}}}",
            g.n(),
            g.m(),
            fmt_opt(gen_peak),
            fmt_opt(gen_delta),
            fmt_opt(peak),
            win.reset,
        ),
        n: g.n(),
        m: g.m(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut assert_rss_mb = None;
    let mut assert_factor = None;
    let mut argv = std::env::args();
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--assert-rss-mb" => {
                let v = argv.next().expect("--assert-rss-mb needs a value");
                assert_rss_mb = Some(v.parse::<f64>().expect("bad --assert-rss-mb value"));
            }
            "--assert-gen-rss-factor" => {
                let v = argv.next().expect("--assert-gen-rss-factor needs a value");
                assert_factor = Some(v.parse::<f64>().expect("bad --assert-gen-rss-factor value"));
            }
            _ => {}
        }
    }

    let mut json = String::from("{\n  \"bench\": \"scale\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"threads\": {},\n",
        rayon::current_num_threads()
    ));

    // ---- Section 1: the scale sweep.
    // Full mode reaches the paper's 2^22-vertex instances for the grid
    // and Delaunay families (delaunay_n22 is the shape of delaunay_n24 at
    // quarter scale; the full n24 instance is a Paper-scale suite run).
    let grid_side = |n: usize| (n as f64).sqrt().round() as usize;
    let sizes: Vec<(&str, usize)> = if quick {
        vec![
            ("grid", 1 << 16),
            ("delaunay", 1 << 15),
            ("trace", 1 << 14),
            ("kkt", 1 << 14),
        ]
    } else {
        vec![
            ("grid", 1 << 20),
            ("grid", 1 << 22),
            ("delaunay", 1 << 20),
            ("delaunay", 1 << 22),
            ("trace", 1 << 21),
            ("kkt", 1 << 21),
        ]
    };
    json.push_str("  \"sweep\": [\n");
    let mut first = true;
    for (family, n) in sizes {
        let label = format!("{family}_2^{}", n.trailing_zeros());
        let row = match family {
            "grid" => {
                let side = grid_side(n);
                sweep_row(family, &label, || grid_2d(side, side))
            }
            "delaunay" => sweep_row(family, &label, || {
                delaunay_graph(n, &mut StdRng::seed_from_u64(0xDE1A)).0
            }),
            "trace" => sweep_row(family, &label, || {
                trace_mesh(n, &mut StdRng::seed_from_u64(0x7ACE)).0
            }),
            "kkt" => sweep_row(family, &label, || {
                let primal = n * 2 / 3;
                kkt_graph(primal, n - primal, 6, &mut StdRng::seed_from_u64(0x77A7))
            }),
            _ => unreachable!(),
        };
        assert!(row.n >= n / 2, "{label}: generated {} of {n}", row.n);
        assert!(row.m > row.n / 2, "{label}: suspicious m={}", row.m);
        if !first {
            json.push_str(",\n");
        }
        first = false;
        json.push_str(&row.json);
    }
    json.push_str("\n  ],\n");

    // ---- Section 2: direct vs builder generator memory, largest grid.
    // Direct first (leaner), then builder on the freed heap: each leg
    // measures its delta over the RSS base at its own reset.
    let side = grid_side(if quick { 1 << 18 } else { 1 << 22 });
    let win = RssWindow::open();
    let t = Instant::now();
    let g_direct = grid_2d(side, side);
    let wall_direct = t.elapsed().as_secs_f64() * 1e3;
    let (direct_peak, direct_delta) = win.close();
    let (n_cmp, m_cmp) = (g_direct.n(), g_direct.m());
    drop(g_direct);

    let win = RssWindow::open();
    let t = Instant::now();
    let g_builder = grid_2d_via_builder(side, side);
    let wall_builder = t.elapsed().as_secs_f64() * 1e3;
    let (builder_peak, builder_delta) = win.close();
    assert_eq!((g_builder.n(), g_builder.m()), (n_cmp, m_cmp));
    drop(g_builder);

    let factor = match (direct_delta, builder_delta) {
        (Some(d), Some(b)) if d > 0.0 => Some(b / d),
        _ => None,
    };
    let fmt_opt = |v: Option<f64>| match v {
        Some(x) => format!("{x:.2}"),
        None => "null".to_string(),
    };
    eprintln!(
        "gen-rss grid {side}x{side}: direct {wall_direct:.0} ms +{} MiB vs \
         builder {wall_builder:.0} ms +{} MiB -> factor {}",
        fmt_opt(direct_delta),
        fmt_opt(builder_delta),
        fmt_opt(factor)
    );
    json.push_str(&format!(
        "  \"gen_rss\": [\n    {{\"family\": \"grid\", \"n\": {n_cmp}, \"m\": {m_cmp}, \
         \"direct_wall_ms\": {wall_direct:.3}, \"direct_peak_rss_mb\": {}, \
         \"direct_rss_delta_mb\": {}, \"builder_wall_ms\": {wall_builder:.3}, \
         \"builder_peak_rss_mb\": {}, \"builder_rss_delta_mb\": {}, \
         \"rss_factor\": {}, \"rss_reset\": {}}}\n  ],\n",
        fmt_opt(direct_peak),
        fmt_opt(direct_delta),
        fmt_opt(builder_peak),
        fmt_opt(builder_delta),
        fmt_opt(factor),
        win.reset,
    ));

    // ---- Process-lifetime peak + budget/factor gates.
    let lifetime_peak = rss::peak_rss_bytes().map(mb);
    json.push_str(&format!(
        "  \"process_peak_rss_mb\": {}\n}}\n",
        fmt_opt(lifetime_peak)
    ));
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_4.json");
    std::fs::write(out, &json).expect("write BENCH_4.json");
    eprintln!("wrote {out}");

    let mut failed = false;
    if let Some(budget) = assert_rss_mb {
        // The budget gates the per-row generator deltas, not the process
        // lifetime peak (the heap retained between rows is allocator
        // behaviour, not a per-phase property).
        match direct_delta {
            Some(d) if d > budget => {
                eprintln!("FAIL: direct generator RSS delta {d:.1} MiB over budget {budget} MiB");
                failed = true;
            }
            Some(d) => eprintln!("rss budget OK: direct delta {d:.1} <= {budget} MiB"),
            None => eprintln!("rss budget: no /proc, skipped"),
        }
    }
    if let Some(want) = assert_factor {
        match factor {
            Some(f) if f < want => {
                eprintln!("FAIL: builder/direct RSS factor {f:.2} < required {want}");
                failed = true;
            }
            Some(f) => eprintln!("rss factor OK: {f:.2} >= {want}"),
            None => eprintln!("rss factor: no /proc, skipped"),
        }
    }
    if failed {
        std::process::exit(1);
    }
}
