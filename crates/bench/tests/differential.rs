//! Full-pipeline differential tests: run ScalaPart once with the
//! optimized lattice smoother and once with the pre-optimization reference
//! smoother plugged into the same pipeline, and demand bit-identical
//! results. Every other stage is shared code, so any divergence indicts
//! the optimized smoothing kernel alone. (The FM counterpart — optimized
//! heap FM vs a naive full-recompute oracle — lives in
//! `sp-refine::naive`.)

use rand::rngs::StdRng;
use rand::SeedableRng;
use scalapart::{scalapart_bisect, scalapart_bisect_with, NoopObserver, SpConfig, SpResult};
use sp_bench::reference::reference_lattice_smooth;
use sp_graph::gen::{delaunay_graph, grid_2d, kkt_graph};
use sp_graph::Graph;
use sp_machine::{CostModel, Machine};

fn run_optimized(g: &Graph, p: usize, cfg: &SpConfig) -> (SpResult, f64) {
    let mut m = Machine::new(p, CostModel::qdr_infiniband());
    let r = scalapart_bisect(g, &mut m, cfg);
    let elapsed = m.elapsed();
    (r, elapsed)
}

fn run_reference(g: &Graph, p: usize, cfg: &SpConfig) -> (SpResult, f64) {
    let mut m = Machine::new(p, CostModel::qdr_infiniband());
    let r = scalapart_bisect_with(
        g,
        &mut m,
        cfg,
        &mut NoopObserver,
        &mut |g, c, q, mach, lcfg, _scratch| reference_lattice_smooth(g, c, q, mach, lcfg),
    );
    let elapsed = m.elapsed();
    (r, elapsed)
}

fn assert_bit_identical(g: &Graph, name: &str, a: &(SpResult, f64), b: &(SpResult, f64)) {
    let ((ra, ta), (rb, tb)) = (a, b);
    assert_eq!(ra.cut, rb.cut, "{name}: cut diverged");
    assert_eq!(
        ra.cut_before_refine, rb.cut_before_refine,
        "{name}: pre-refinement cut diverged"
    );
    for v in 0..g.n() as u32 {
        assert_eq!(
            ra.bisection.side(v),
            rb.bisection.side(v),
            "{name}: vertex {v} on different sides"
        );
    }
    for (i, (ca, cb)) in ra.coords.iter().zip(&rb.coords).enumerate() {
        assert_eq!(
            (ca.x.to_bits(), ca.y.to_bits()),
            (cb.x.to_bits(), cb.y.to_bits()),
            "{name}: coordinate {i} differs in bits"
        );
    }
    assert_eq!(
        ra.total_time.to_bits(),
        rb.total_time.to_bits(),
        "{name}: simulated pipeline time diverged ({} vs {})",
        ra.total_time,
        rb.total_time
    );
    assert_eq!(
        ta.to_bits(),
        tb.to_bits(),
        "{name}: machine clocks diverged ({ta} vs {tb})"
    );
}

#[test]
fn pipeline_matches_reference_on_grid() {
    let g = grid_2d(40, 40);
    let cfg = SpConfig::default().with_seed(0xD1FF_0001);
    let a = run_optimized(&g, 16, &cfg);
    let b = run_reference(&g, 16, &cfg);
    assert_bit_identical(&g, "grid 40x40", &a, &b);
    assert!(a.0.cut > 0);
}

#[test]
fn pipeline_matches_reference_on_delaunay() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0002);
    let (g, _) = delaunay_graph(2000, &mut rng);
    let cfg = SpConfig::default().with_seed(0xD1FF_0002);
    let a = run_optimized(&g, 16, &cfg);
    let b = run_reference(&g, 16, &cfg);
    assert_bit_identical(&g, "delaunay 2000", &a, &b);
}

#[test]
fn pipeline_matches_reference_on_kkt_power_law() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0003);
    let g = kkt_graph(1500, 60, 5, &mut rng);
    let cfg = SpConfig::default().with_seed(0xD1FF_0003);
    let a = run_optimized(&g, 9, &cfg);
    let b = run_reference(&g, 9, &cfg);
    assert_bit_identical(&g, "kkt 1500", &a, &b);
}
