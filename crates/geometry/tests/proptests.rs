//! Property-based tests for the geometric substrate.

use proptest::prelude::*;
use sp_geometry::bbox::Aabb2;
use sp_geometry::centerpoint::{centroid, halfspace_fraction, radon_point3};
use sp_geometry::conformal::ConformalMap;
use sp_geometry::point::{Point2, Point3};
use sp_geometry::sphere::{stereo_lift, stereo_project};

fn arb_p2() -> impl Strategy<Value = Point2> {
    (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(x, y)| Point2::new(x, y))
}

fn arb_unit3() -> impl Strategy<Value = Point3> {
    (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0).prop_filter_map("degenerate", |(x, y, z)| {
        let p = Point3::new(x, y, z);
        (p.norm() > 1e-3).then(|| p.normalized())
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn bbox_from_points_is_tight_and_containing(pts in prop::collection::vec(arb_p2(), 1..40)) {
        let bb = Aabb2::from_points(&pts).unwrap();
        for p in &pts {
            prop_assert!(bb.contains(*p));
        }
        // Tight: some point touches each face.
        let eps = 1e-12;
        prop_assert!(pts.iter().any(|p| (p.x - bb.min.x).abs() < eps));
        prop_assert!(pts.iter().any(|p| (p.x - bb.max.x).abs() < eps));
        prop_assert!(pts.iter().any(|p| (p.y - bb.min.y).abs() < eps));
        prop_assert!(pts.iter().any(|p| (p.y - bb.max.y).abs() < eps));
    }

    #[test]
    fn lattice_cell_assignment_is_consistent(p in arb_p2(), q in 1usize..9) {
        let bb = Aabb2::new(Point2::new(-10.0, -10.0), Point2::new(10.0, 10.0));
        let (i, j) = bb.cell_of(q, p);
        prop_assert!(i < q && j < q);
        prop_assert!(bb.lattice_cell(q, i, j).contains(p));
    }

    #[test]
    fn stereo_lift_is_an_isometry_onto_the_sphere(p in arb_p2()) {
        let s = stereo_lift(p);
        prop_assert!((s.norm() - 1.0).abs() < 1e-12);
        let back = stereo_project(s);
        prop_assert!(back.dist(p) < 1e-6 * (1.0 + p.norm()));
    }

    #[test]
    fn conformal_map_preserves_the_sphere(c in arb_unit3(), r in 0.0f64..0.9, p in arb_unit3()) {
        let m = ConformalMap::centering(c * r);
        let q = m.apply(p);
        prop_assert!((q.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn radon_point_lies_in_bounding_box(pts in prop::collection::vec(
        (-5.0f64..5.0, -5.0f64..5.0, -5.0f64..5.0), 5))
    {
        let group: [Point3; 5] = [
            Point3::new(pts[0].0, pts[0].1, pts[0].2),
            Point3::new(pts[1].0, pts[1].1, pts[1].2),
            Point3::new(pts[2].0, pts[2].1, pts[2].2),
            Point3::new(pts[3].0, pts[3].1, pts[3].2),
            Point3::new(pts[4].0, pts[4].1, pts[4].2),
        ];
        if let Some(r) = radon_point3(&group) {
            // A Radon point is a convex combination of a subset of the
            // input, so it lies inside the group's bounding box.
            for ax in 0..3 {
                let coord = |p: Point3| [p.x, p.y, p.z][ax];
                let lo = group.iter().map(|&p| coord(p)).fold(f64::INFINITY, f64::min);
                let hi = group.iter().map(|&p| coord(p)).fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(coord(r) >= lo - 1e-6 && coord(r) <= hi + 1e-6);
            }
        }
    }

    #[test]
    fn centroid_halfspace_fraction_sane(pts in prop::collection::vec(
        (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0), 10..60), n in arb_unit3())
    {
        let cloud: Vec<Point3> =
            pts.iter().map(|&(x, y, z)| Point3::new(x, y, z)).collect();
        let c = centroid(&cloud);
        let f = halfspace_fraction(&cloud, c, n);
        prop_assert!((0.0..=1.0).contains(&f));
    }
}
