//! Hilbert space-filling curve on a 2^k × 2^k grid.
//!
//! Used in two places: (1) the Delaunay generator inserts points in Hilbert
//! order so that successive insertions are spatially close, making walk-based
//! point location nearly O(1) amortised; (2) initial block distribution of an
//! embedded graph over ranks can follow the curve for locality.

/// Map grid coordinates `(x, y)` on a `2^order × 2^order` grid to the
/// distance along the Hilbert curve.
pub fn hilbert_xy2d(order: u32, mut x: u32, mut y: u32) -> u64 {
    let n = 1u32 << order;
    debug_assert!(x < n && y < n);
    let mut rx: u32;
    let mut ry: u32;
    let mut d: u64 = 0;
    let mut s = n >> 1;
    while s > 0 {
        rx = u32::from((x & s) > 0);
        ry = u32::from((y & s) > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // Rotate quadrant.
        if ry == 0 {
            if rx == 1 {
                x = s.wrapping_sub(1).wrapping_sub(x) & (n - 1);
                y = s.wrapping_sub(1).wrapping_sub(y) & (n - 1);
            }
            std::mem::swap(&mut x, &mut y);
        }
        s >>= 1;
    }
    d
}

/// Inverse of [`hilbert_xy2d`].
pub fn hilbert_d2xy(order: u32, mut d: u64) -> (u32, u32) {
    let n = 1u64 << order;
    let mut x: u64 = 0;
    let mut y: u64 = 0;
    let mut s: u64 = 1;
    while s < n {
        let rx = 1 & (d / 2);
        let ry = 1 & (d ^ rx);
        // Rotate.
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        d /= 4;
        s *= 2;
    }
    (x as u32, y as u32)
}

/// Hilbert key of a point in the unit square, quantised to a `2^order` grid.
pub fn hilbert_key_unit(order: u32, fx: f64, fy: f64) -> u64 {
    let n = (1u32 << order) as f64;
    let x = ((fx * n) as i64).clamp(0, (1i64 << order) - 1) as u32;
    let y = ((fy * n) as i64).clamp(0, (1i64 << order) - 1) as u32;
    hilbert_xy2d(order, x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_order_4() {
        let order = 4;
        let n = 1u32 << order;
        let mut seen = vec![false; (n * n) as usize];
        for x in 0..n {
            for y in 0..n {
                let d = hilbert_xy2d(order, x, y);
                assert!((d as usize) < seen.len());
                assert!(!seen[d as usize], "curve index {d} repeated");
                seen[d as usize] = true;
                assert_eq!(hilbert_d2xy(order, d), (x, y));
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn curve_is_contiguous() {
        // Consecutive curve positions are grid neighbours (the defining
        // property of the Hilbert curve).
        let order = 5;
        let n = 1u64 << order;
        for d in 0..(n * n - 1) {
            let (x0, y0) = hilbert_d2xy(order, d);
            let (x1, y1) = hilbert_d2xy(order, d + 1);
            let step = x0.abs_diff(x1) + y0.abs_diff(y1);
            assert_eq!(step, 1, "jump at d={d}");
        }
    }

    #[test]
    fn unit_key_clamps() {
        // Values outside [0,1) quantise to the border cells without panic.
        let _ = hilbert_key_unit(8, -0.5, 1.5);
        let a = hilbert_key_unit(8, 0.0, 0.0);
        let b = hilbert_key_unit(8, 1e-9, 1e-9);
        assert_eq!(a, b);
    }
}
