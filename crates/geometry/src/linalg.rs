//! Tiny dense linear algebra: just enough to compute Radon points.

/// Solve `A x = b` for a small dense system by Gaussian elimination with
/// partial pivoting. `a` is row-major `n × n`. Returns `None` if the matrix
/// is (numerically) singular.
pub fn solve_dense(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n);
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let mut piv = col;
        let mut best = m[col * n + col].abs();
        for r in col + 1..n {
            let v = m[r * n + col].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if best < 1e-12 {
            return None;
        }
        if piv != col {
            for c in 0..n {
                m.swap(col * n + c, piv * n + c);
            }
            rhs.swap(col, piv);
        }
        let d = m[col * n + col];
        for r in col + 1..n {
            let f = m[r * n + col] / d;
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                m[r * n + c] -= f * m[col * n + c];
            }
            rhs[r] -= f * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut s = rhs[row];
        for c in row + 1..n {
            s -= m[row * n + c] * x[c];
        }
        x[row] = s / m[row * n + row];
    }
    Some(x)
}

/// Find a non-trivial solution of the homogeneous system used by the Radon
/// partition: given `k` points in `d` dimensions with `k = d + 2`, find
/// coefficients `λ` with `Σ λ_i p_i = 0` and `Σ λ_i = 0`, `λ ≠ 0`.
///
/// We fix `λ_{k-1} = 1` and solve the resulting `(d+1) × (d+1)` system; if
/// that system is singular we fall back to fixing a different coefficient.
pub fn radon_coefficients(points: &[&[f64]], d: usize) -> Option<Vec<f64>> {
    let k = points.len();
    assert_eq!(k, d + 2);
    for fixed in (0..k).rev() {
        // Unknowns: λ_i for i != fixed (k-1 = d+1 of them).
        let n = k - 1;
        let mut a = vec![0.0; n * n];
        let mut b = vec![0.0; n];
        // Rows 0..d: Σ λ_i p_i[r] = -p_fixed[r]
        for r in 0..d {
            let mut cj = 0;
            for (i, p) in points.iter().enumerate() {
                if i == fixed {
                    continue;
                }
                a[r * n + cj] = p[r];
                cj += 1;
            }
            b[r] = -points[fixed][r];
        }
        // Row d: Σ λ_i = -1
        for c in 0..n {
            a[d * n + c] = 1.0;
        }
        b[d] = -1.0;
        if let Some(x) = solve_dense(&a, &b, n) {
            let mut lam = Vec::with_capacity(k);
            let mut cj = 0;
            for i in 0..k {
                if i == fixed {
                    lam.push(1.0);
                } else {
                    lam.push(x[cj]);
                    cj += 1;
                }
            }
            return Some(lam);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [3.0, -2.0];
        let x = solve_dense(&a, &b, 2).unwrap();
        assert_eq!(x, vec![3.0, -2.0]);
    }

    #[test]
    fn solve_general_3x3() {
        let a = [2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0];
        let b = [8.0, -11.0, -3.0];
        let x = solve_dense(&a, &b, 3).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        assert!((x[2] - -1.0).abs() < 1e-9);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = [1.0, 2.0, 2.0, 4.0];
        assert!(solve_dense(&a, &[1.0, 2.0], 2).is_none());
    }

    #[test]
    fn radon_coefficients_sum_to_zero() {
        // 4 points in 2-D (d + 2 = 4).
        let pts: Vec<Vec<f64>> = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.6, 0.6],
        ];
        let refs: Vec<&[f64]> = pts.iter().map(|p| p.as_slice()).collect();
        let lam = radon_coefficients(&refs, 2).unwrap();
        let s: f64 = lam.iter().sum();
        assert!(s.abs() < 1e-9);
        for r in 0..2 {
            let v: f64 = lam.iter().zip(&pts).map(|(l, p)| l * p[r]).sum();
            assert!(v.abs() < 1e-9, "weighted point sum nonzero: {v}");
        }
        assert!(lam.iter().any(|&l| l.abs() > 1e-9));
    }
}
