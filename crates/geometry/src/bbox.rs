//! Axis-aligned bounding boxes in the plane.

use crate::point::Point2;

/// A 2-D axis-aligned bounding box. The fixed-lattice embedder views the
/// domain as a box `B` subdivided into a √P × √P lattice of sub-boxes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb2 {
    pub min: Point2,
    pub max: Point2,
}

impl Aabb2 {
    pub fn new(min: Point2, max: Point2) -> Self {
        debug_assert!(min.x <= max.x && min.y <= max.y);
        Aabb2 { min, max }
    }

    /// The unit box `[0,1]²`.
    pub fn unit() -> Self {
        Aabb2::new(Point2::ZERO, Point2::new(1.0, 1.0))
    }

    /// Smallest box containing all `pts`; `None` for an empty slice.
    pub fn from_points(pts: &[Point2]) -> Option<Self> {
        let first = *pts.first()?;
        let mut bb = Aabb2 {
            min: first,
            max: first,
        };
        for &p in &pts[1..] {
            bb.expand(p);
        }
        Some(bb)
    }

    /// Grow to include `p`.
    pub fn expand(&mut self, p: Point2) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    #[inline]
    pub fn center(&self) -> Point2 {
        (self.min + self.max) * 0.5
    }

    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Longest side; used by the quadtree opening criterion and RCB.
    #[inline]
    pub fn longest_side(&self) -> f64 {
        self.width().max(self.height())
    }

    /// Scale the box about the origin by `s` (the multilevel projection step
    /// scales the bounding box by 2 in each dimension per level).
    pub fn scaled(&self, s: f64) -> Aabb2 {
        Aabb2 {
            min: self.min * s,
            max: self.max * s,
        }
    }

    /// Grow symmetrically by a fraction `f` of each side (used to give the
    /// lattice a little slack so moved vertices rarely exit the domain).
    pub fn inflated(&self, f: f64) -> Aabb2 {
        let dx = self.width() * f;
        let dy = self.height() * f;
        Aabb2 {
            min: Point2::new(self.min.x - dx, self.min.y - dy),
            max: Point2::new(self.max.x + dx, self.max.y + dy),
        }
    }

    /// Clamp a point into the box.
    pub fn clamp(&self, p: Point2) -> Point2 {
        Point2::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// The sub-box (i, j) of a `q × q` lattice subdivision of this box, with
    /// `i` indexing x and `j` indexing y.
    pub fn lattice_cell(&self, q: usize, i: usize, j: usize) -> Aabb2 {
        let w = self.width() / q as f64;
        let h = self.height() / q as f64;
        let min = Point2::new(self.min.x + w * i as f64, self.min.y + h * j as f64);
        Aabb2::new(min, Point2::new(min.x + w, min.y + h))
    }

    /// Which cell of a `q × q` lattice the point falls into (clamped to the
    /// lattice so points on/outside the boundary still get a home cell).
    pub fn cell_of(&self, q: usize, p: Point2) -> (usize, usize) {
        let fx = if self.width() > 0.0 {
            (p.x - self.min.x) / self.width()
        } else {
            0.0
        };
        let fy = if self.height() > 0.0 {
            (p.y - self.min.y) / self.height()
        } else {
            0.0
        };
        let i = ((fx * q as f64) as isize).clamp(0, q as isize - 1) as usize;
        let j = ((fy * q as f64) as isize).clamp(0, q as isize - 1) as usize;
        (i, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_covers_all() {
        let pts = [
            Point2::new(1.0, 2.0),
            Point2::new(-3.0, 0.5),
            Point2::new(2.0, -1.0),
        ];
        let bb = Aabb2::from_points(&pts).unwrap();
        for p in pts {
            assert!(bb.contains(p));
        }
        assert_eq!(bb.min, Point2::new(-3.0, -1.0));
        assert_eq!(bb.max, Point2::new(2.0, 2.0));
        assert!(Aabb2::from_points(&[]).is_none());
    }

    #[test]
    fn lattice_cells_tile_the_box() {
        let bb = Aabb2::unit();
        let q = 4;
        let mut area = 0.0;
        for i in 0..q {
            for j in 0..q {
                let c = bb.lattice_cell(q, i, j);
                area += c.width() * c.height();
            }
        }
        assert!((area - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cell_of_matches_lattice_cell() {
        let bb = Aabb2::new(Point2::new(-1.0, -1.0), Point2::new(1.0, 1.0));
        let q = 3;
        let p = Point2::new(0.9, -0.9);
        let (i, j) = bb.cell_of(q, p);
        assert!(bb.lattice_cell(q, i, j).contains(p));
        // Out-of-box points clamp to a border cell.
        assert_eq!(bb.cell_of(q, Point2::new(10.0, 10.0)), (2, 2));
        assert_eq!(bb.cell_of(q, Point2::new(-10.0, -10.0)), (0, 0));
    }

    #[test]
    fn clamp_and_inflate() {
        let bb = Aabb2::unit();
        assert_eq!(bb.clamp(Point2::new(2.0, -1.0)), Point2::new(1.0, 0.0));
        let big = bb.inflated(0.5);
        assert_eq!(big.width(), 2.0);
        assert_eq!(big.center(), bb.center());
    }

    #[test]
    fn scaled_doubles_extent() {
        let bb = Aabb2::new(Point2::new(-1.0, 0.0), Point2::new(1.0, 2.0)).scaled(2.0);
        assert_eq!(bb.min, Point2::new(-2.0, 0.0));
        assert_eq!(bb.max, Point2::new(2.0, 4.0));
    }
}
