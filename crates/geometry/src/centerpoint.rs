//! Approximate centerpoints via iterated Radon points.
//!
//! A centerpoint of a point set `S` in ℝ^d is a point `c` such that every
//! halfspace containing `c` contains at least `|S|/(d+1)` points of `S`.
//! Gilbert–Miller–Teng partitioning computes a centerpoint of the lifted
//! points on the sphere and conformally maps it to the origin before cutting
//! with random great circles.
//!
//! We use the classic randomized scheme (Clarkson et al.): repeatedly draw
//! `d + 2` points from the working set, replace one of them with the Radon
//! point of the group, and iterate. The Radon point of `d + 2` points lies in
//! the intersection of the convex hulls of both sides of its Radon partition,
//! so the iteration drives points toward the "deep" region; the final
//! surviving point is a centerpoint with high probability.

use crate::linalg::radon_coefficients;
use crate::point::Point3;
use rand::Rng;

/// Controls for the iterated-Radon-point centerpoint approximation.
#[derive(Clone, Copy, Debug)]
pub struct CenterpointConfig {
    /// Number of sample points drawn from the input (the paper computes the
    /// centerpoint on a sample gathered across processors).
    pub sample_size: usize,
    /// Number of Radon replacement iterations.
    pub iterations: usize,
}

impl Default for CenterpointConfig {
    fn default() -> Self {
        CenterpointConfig {
            sample_size: 1000,
            iterations: 600,
        }
    }
}

/// Radon point of `d + 2 = 5` points in ℝ³.
///
/// Splits the group by the sign of the Radon coefficients and returns the
/// common point of the two convex hulls. Returns `None` for degenerate
/// configurations.
pub fn radon_point3(pts: &[Point3; 5]) -> Option<Point3> {
    let rows: Vec<Vec<f64>> = pts.iter().map(|p| vec![p.x, p.y, p.z]).collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let lam = radon_coefficients(&refs, 3)?;
    // Positive side: point = Σ_{λ_i > 0} λ_i p_i / Σ_{λ_i > 0} λ_i.
    let mut num = Point3::ZERO;
    let mut den = 0.0;
    for (l, p) in lam.iter().zip(pts.iter()) {
        if *l > 0.0 {
            num += *p * *l;
            den += *l;
        }
    }
    if den <= 1e-12 {
        return None;
    }
    let r = num / den;
    r.is_finite().then_some(r)
}

/// Approximate centerpoint of `pts` (3-D) by iterated Radon points.
///
/// Operates on a random sample of `cfg.sample_size` points; each iteration
/// overwrites a random sample slot with the Radon point of five random slots.
/// Falls back to the centroid if the input is too small or too degenerate.
pub fn centerpoint<R: Rng>(pts: &[Point3], cfg: &CenterpointConfig, rng: &mut R) -> Point3 {
    if pts.is_empty() {
        return Point3::ZERO;
    }
    if pts.len() < 8 {
        return centroid(pts);
    }
    let m = cfg.sample_size.min(pts.len());
    let mut work: Vec<Point3> = (0..m)
        .map(|_| pts[rng.random_range(0..pts.len())])
        .collect();
    let mut last_good = centroid(&work);
    for _ in 0..cfg.iterations {
        let mut group = [Point3::ZERO; 5];
        let mut idx = [0usize; 5];
        for k in 0..5 {
            idx[k] = rng.random_range(0..work.len());
            group[k] = work[idx[k]];
        }
        if let Some(r) = radon_point3(&group) {
            work[idx[0]] = r;
            last_good = r;
        }
    }
    last_good
}

/// Arithmetic mean of a point set.
pub fn centroid(pts: &[Point3]) -> Point3 {
    if pts.is_empty() {
        return Point3::ZERO;
    }
    let mut s = Point3::ZERO;
    for &p in pts {
        s += p;
    }
    s / pts.len() as f64
}

/// Fraction of `pts` on the positive side of the plane through `c` with
/// normal `n`; used to validate centerpoint depth in tests.
pub fn halfspace_fraction(pts: &[Point3], c: Point3, n: Point3) -> f64 {
    if pts.is_empty() {
        return 0.0;
    }
    let cnt = pts.iter().filter(|p| (**p - c).dot(n) > 0.0).count();
    cnt as f64 / pts.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sphere_cloud(n: usize, rng: &mut StdRng) -> Vec<Point3> {
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                )
                .normalized()
            })
            .collect()
    }

    #[test]
    fn radon_point_of_simplex_interior() {
        // Four corners of a tetrahedron plus its centroid: the Radon point
        // must coincide with the interior point (up to solver tolerance).
        let pts = [
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
            Point3::new(0.0, 0.0, 1.0),
            Point3::new(0.25, 0.25, 0.25),
        ];
        let r = radon_point3(&pts).unwrap();
        assert!(r.dist(Point3::new(0.25, 0.25, 0.25)) < 1e-9);
    }

    #[test]
    fn centerpoint_of_uniform_sphere_is_deep() {
        let mut rng = StdRng::seed_from_u64(7);
        let pts = sphere_cloud(4000, &mut rng);
        // The default iteration budget leaves the final Radon point shallow
        // on unlucky streams (observed min fractions of 0.18–0.35 across
        // generators); 1500 iterations converges to ≥ 0.37 regardless of
        // the underlying RNG, so the depth bar holds for any stream.
        let cfg = CenterpointConfig {
            iterations: 1500,
            ..CenterpointConfig::default()
        };
        let c = centerpoint(&pts, &cfg, &mut rng);
        // A true centerpoint guarantees every halfspace through it holds at
        // least 1/(d+1) = 25% of the points; the randomized approximation on
        // a symmetric cloud should comfortably beat 20%.
        let mut probe = StdRng::seed_from_u64(11);
        for _ in 0..40 {
            let n = Point3::new(
                probe.random_range(-1.0..1.0),
                probe.random_range(-1.0..1.0),
                probe.random_range(-1.0..1.0),
            )
            .normalized();
            let f = halfspace_fraction(&pts, c, n);
            assert!(f > 0.20 && f < 0.80, "halfspace fraction {f} too shallow");
        }
    }

    #[test]
    fn centerpoint_small_input_is_centroid() {
        let pts = vec![Point3::new(1.0, 0.0, 0.0), Point3::new(-1.0, 0.0, 0.0)];
        let mut rng = StdRng::seed_from_u64(1);
        let c = centerpoint(&pts, &CenterpointConfig::default(), &mut rng);
        assert!(c.dist(Point3::ZERO) < 1e-12);
    }

    #[test]
    fn centroid_empty_is_zero() {
        assert_eq!(centroid(&[]), Point3::ZERO);
    }
}
