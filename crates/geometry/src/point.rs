//! Fixed-dimension points and vectors.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point (or vector) in the plane. The embedding stage works entirely in
/// two dimensions, matching the paper's 2-D domain lattice.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point2 {
    pub x: f64,
    pub y: f64,
}

/// A point (or vector) in 3-space; used for the sphere lift in
/// Gilbert–Miller–Teng partitioning (2-D coordinates lift to S² ⊂ ℝ³).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Point2 {
    pub const ZERO: Point2 = Point2 { x: 0.0, y: 0.0 };

    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    #[inline]
    pub fn dot(self, o: Point2) -> f64 {
        self.x * o.x + self.y * o.y
    }

    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(self, o: Point2) -> f64 {
        (self - o).norm()
    }

    /// L1 (Manhattan) distance; the lattice ghost-clamping rule in the paper
    /// places ghosts at shortest L1 distance.
    #[inline]
    pub fn dist_l1(self, o: Point2) -> f64 {
        (self.x - o.x).abs() + (self.y - o.y).abs()
    }

    /// Unit vector in the direction of `self`, or zero if degenerate.
    #[inline]
    pub fn normalized(self) -> Point2 {
        let n = self.norm();
        if n > 0.0 {
            self / n
        } else {
            Point2::ZERO
        }
    }

    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Point3 {
    pub const ZERO: Point3 = Point3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    #[inline]
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    #[inline]
    pub fn dot(self, o: Point3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Point3) -> Point3 {
        Point3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    #[inline]
    pub fn dist(self, o: Point3) -> f64 {
        (self - o).norm()
    }

    #[inline]
    pub fn normalized(self) -> Point3 {
        let n = self.norm();
        if n > 0.0 {
            self / n
        } else {
            Point3::ZERO
        }
    }

    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    pub fn as_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    pub fn from_array(a: [f64; 3]) -> Self {
        Point3::new(a[0], a[1], a[2])
    }
}

macro_rules! impl_ops2 {
    ($t:ty, $($f:ident),+) => {
        impl Add for $t {
            type Output = $t;
            #[inline]
            fn add(self, o: $t) -> $t { Self { $($f: self.$f + o.$f),+ } }
        }
        impl Sub for $t {
            type Output = $t;
            #[inline]
            fn sub(self, o: $t) -> $t { Self { $($f: self.$f - o.$f),+ } }
        }
        impl Neg for $t {
            type Output = $t;
            #[inline]
            fn neg(self) -> $t { Self { $($f: -self.$f),+ } }
        }
        impl Mul<f64> for $t {
            type Output = $t;
            #[inline]
            fn mul(self, s: f64) -> $t { Self { $($f: self.$f * s),+ } }
        }
        impl Div<f64> for $t {
            type Output = $t;
            #[inline]
            fn div(self, s: f64) -> $t { Self { $($f: self.$f / s),+ } }
        }
        impl AddAssign for $t {
            #[inline]
            fn add_assign(&mut self, o: $t) { $(self.$f += o.$f;)+ }
        }
        impl SubAssign for $t {
            #[inline]
            fn sub_assign(&mut self, o: $t) { $(self.$f -= o.$f;)+ }
        }
    };
}

impl_ops2!(Point2, x, y);
impl_ops2!(Point3, x, y, z);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point2_arithmetic() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(3.0, -1.0);
        assert_eq!(a + b, Point2::new(4.0, 1.0));
        assert_eq!(a - b, Point2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point2::new(1.5, -0.5));
        assert_eq!(-a, Point2::new(-1.0, -2.0));
    }

    #[test]
    fn point2_metrics() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.dist_l1(b), 7.0);
        assert_eq!(b.norm_sq(), 25.0);
        let u = b.normalized();
        assert!((u.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point2_normalized_zero_is_zero() {
        assert_eq!(Point2::ZERO.normalized(), Point2::ZERO);
    }

    #[test]
    fn point3_cross_orthogonal() {
        let a = Point3::new(1.0, 0.0, 0.0);
        let b = Point3::new(0.0, 1.0, 0.0);
        let c = a.cross(b);
        assert_eq!(c, Point3::new(0.0, 0.0, 1.0));
        assert_eq!(c.dot(a), 0.0);
        assert_eq!(c.dot(b), 0.0);
    }

    #[test]
    fn point3_norm_and_dist() {
        let a = Point3::new(1.0, 2.0, 2.0);
        assert_eq!(a.norm(), 3.0);
        assert_eq!(a.dist(Point3::ZERO), 3.0);
        assert!((a.normalized().norm() - 1.0).abs() < 1e-12);
    }
}
