//! Stereographic lifting between the plane and the unit sphere S² ⊂ ℝ³.
//!
//! Gilbert–Miller–Teng mesh partitioning projects the (2-D) vertex
//! coordinates onto the unit sphere one dimension up, computes a centerpoint
//! there, and cuts with great circles. We use the standard stereographic map
//! from the north pole `(0,0,1)`:
//!
//! lift:    (x, y)      ↦ (2x, 2y, |p|² − 1) / (|p|² + 1)
//! project: (X, Y, Z)   ↦ (X, Y) / (1 − Z)
//!
//! Both maps are mutually inverse away from the pole, and circles on the
//! sphere correspond to circles or lines in the plane.

use crate::point::{Point2, Point3};

/// Lift a planar point onto the unit sphere by inverse stereographic
/// projection from the north pole.
#[inline]
pub fn stereo_lift(p: Point2) -> Point3 {
    let n2 = p.norm_sq();
    let d = n2 + 1.0;
    Point3::new(2.0 * p.x / d, 2.0 * p.y / d, (n2 - 1.0) / d)
}

/// Project a sphere point back to the plane (stereographic projection from
/// the north pole). Points at the pole itself map to a far-away sentinel.
#[inline]
pub fn stereo_project(s: Point3) -> Point2 {
    let d = 1.0 - s.z;
    if d.abs() < 1e-12 {
        return Point2::new(f64::MAX / 4.0, f64::MAX / 4.0);
    }
    Point2::new(s.x / d, s.y / d)
}

/// Normalize coordinates into a centered, unit-scale cloud before lifting:
/// translating to the median-ish center and scaling by the RMS radius keeps
/// the lifted points spread over the sphere instead of bunched at a pole,
/// which is what makes random great circles informative.
pub fn normalize_for_lift(coords: &[Point2]) -> (Point2, f64) {
    if coords.is_empty() {
        return (Point2::ZERO, 1.0);
    }
    let mut c = Point2::ZERO;
    for &p in coords {
        c += p;
    }
    c = c / coords.len() as f64;
    let mut rms = 0.0;
    for &p in coords {
        rms += (p - c).norm_sq();
    }
    rms = (rms / coords.len() as f64).sqrt();
    if rms <= 0.0 {
        rms = 1.0;
    }
    (c, rms)
}

/// Apply the normalization returned by [`normalize_for_lift`] and lift.
#[inline]
pub fn lift_normalized(p: Point2, center: Point2, scale: f64) -> Point3 {
    stereo_lift((p - center) / scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lift_lands_on_unit_sphere() {
        for p in [
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(-3.5, 2.25),
            Point2::new(1e3, -1e3),
        ] {
            let s = stereo_lift(p);
            assert!((s.norm() - 1.0).abs() < 1e-12, "not on sphere: {s:?}");
        }
    }

    #[test]
    fn lift_project_roundtrip() {
        for p in [
            Point2::new(0.3, -0.7),
            Point2::new(5.0, 2.0),
            Point2::new(-0.001, 0.002),
        ] {
            let q = stereo_project(stereo_lift(p));
            assert!(p.dist(q) < 1e-9, "{p:?} vs {q:?}");
        }
    }

    #[test]
    fn origin_maps_to_south_pole() {
        let s = stereo_lift(Point2::ZERO);
        assert!(s.dist(Point3::new(0.0, 0.0, -1.0)) < 1e-12);
    }

    #[test]
    fn normalize_centers_and_scales() {
        let pts = vec![
            Point2::new(10.0, 10.0),
            Point2::new(12.0, 10.0),
            Point2::new(10.0, 12.0),
            Point2::new(12.0, 12.0),
        ];
        let (c, s) = normalize_for_lift(&pts);
        assert!(c.dist(Point2::new(11.0, 11.0)) < 1e-12);
        assert!(s > 0.0);
        // After normalization the RMS radius is 1.
        let mut rms = 0.0;
        for &p in &pts {
            rms += ((p - c) / s).norm_sq();
        }
        rms = (rms / pts.len() as f64).sqrt();
        assert!((rms - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_degenerate_cloud() {
        let pts = vec![Point2::new(3.0, 3.0); 5];
        let (c, s) = normalize_for_lift(&pts);
        assert_eq!(c, Point2::new(3.0, 3.0));
        assert_eq!(s, 1.0);
    }
}
