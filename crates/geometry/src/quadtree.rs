//! An arena-allocated Barnes–Hut quadtree over weighted planar points.
//!
//! The sequential force-directed embedder (Hu 2006 style) approximates the
//! O(n²) repulsive force sum in O(n log n) by treating distant clusters as
//! single bodies at their centre of mass. The fixed-lattice scheme in the
//! paper is explicitly described as "a fixed lattice Barnes–Hut type
//! approximation", so this tree is both the sequential baseline and the
//! reference for the lattice-approximation ablation.

use crate::bbox::Aabb2;
use crate::point::Point2;

const LEAF_CAPACITY: usize = 8;
const MAX_DEPTH: usize = 48;

#[derive(Clone, Debug)]
struct Node {
    bbox: Aabb2,
    /// Total mass of bodies below this node.
    mass: f64,
    /// Centre of mass of bodies below this node.
    com: Point2,
    /// Index of the first of four children in the arena, or `u32::MAX`.
    children: u32,
    /// Body indices for leaves.
    bodies: Vec<u32>,
}

/// Barnes–Hut quadtree over a fixed set of weighted points.
pub struct QuadTree {
    nodes: Vec<Node>,
    points: Vec<Point2>,
    masses: Vec<f64>,
}

impl QuadTree {
    /// Build a tree over `points` with the given per-point `masses`
    /// (pass `None` for unit masses).
    pub fn build(points: &[Point2], masses: Option<&[f64]>) -> Self {
        let masses: Vec<f64> = match masses {
            Some(m) => {
                assert_eq!(m.len(), points.len());
                m.to_vec()
            }
            None => vec![1.0; points.len()],
        };
        let bbox = Aabb2::from_points(points)
            .unwrap_or_else(Aabb2::unit)
            .inflated(1e-9 + 1e-12);
        let mut tree = QuadTree {
            nodes: vec![Node {
                bbox,
                mass: 0.0,
                com: Point2::ZERO,
                children: u32::MAX,
                bodies: Vec::new(),
            }],
            points: points.to_vec(),
            masses,
        };
        for i in 0..points.len() {
            tree.insert(0, i as u32, 0);
        }
        tree.finalize(0);
        tree
    }

    fn insert(&mut self, node: usize, body: u32, depth: usize) {
        let p = self.points[body as usize];
        let m = self.masses[body as usize];
        self.nodes[node].mass += m;
        self.nodes[node].com += p * m;
        if self.nodes[node].children == u32::MAX {
            if self.nodes[node].bodies.len() < LEAF_CAPACITY || depth >= MAX_DEPTH {
                self.nodes[node].bodies.push(body);
                return;
            }
            // Split: push four children and re-insert resident bodies.
            let bb = self.nodes[node].bbox;
            let first = self.nodes.len() as u32;
            self.nodes[node].children = first;
            let c = bb.center();
            let quads = [
                Aabb2::new(bb.min, c),
                Aabb2::new(Point2::new(c.x, bb.min.y), Point2::new(bb.max.x, c.y)),
                Aabb2::new(Point2::new(bb.min.x, c.y), Point2::new(c.x, bb.max.y)),
                Aabb2::new(c, bb.max),
            ];
            for q in quads {
                self.nodes.push(Node {
                    bbox: q,
                    mass: 0.0,
                    com: Point2::ZERO,
                    children: u32::MAX,
                    bodies: Vec::new(),
                });
            }
            let resident = std::mem::take(&mut self.nodes[node].bodies);
            for b in resident {
                let q = self.quadrant(node, self.points[b as usize]);
                self.insert_into_child(first, q, b, depth + 1);
            }
        }
        let first = self.nodes[node].children;
        let q = self.quadrant(node, p);
        self.insert_into_child(first, q, body, depth + 1);
    }

    fn insert_into_child(&mut self, first: u32, quad: usize, body: u32, depth: usize) {
        self.insert(first as usize + quad, body, depth);
    }

    fn quadrant(&self, node: usize, p: Point2) -> usize {
        let c = self.nodes[node].bbox.center();
        usize::from(p.x >= c.x) + 2 * usize::from(p.y >= c.y)
    }

    fn finalize(&mut self, node: usize) {
        // Convert mass-weighted sums into centres of mass (iterative to
        // avoid recursion-depth issues on adversarial inputs).
        let mut stack = vec![node];
        while let Some(i) = stack.pop() {
            if self.nodes[i].mass > 0.0 {
                self.nodes[i].com = self.nodes[i].com / self.nodes[i].mass;
            }
            if self.nodes[i].children != u32::MAX {
                let f = self.nodes[i].children as usize;
                stack.extend([f, f + 1, f + 2, f + 3]);
            }
        }
    }

    /// Total mass in the tree.
    pub fn total_mass(&self) -> f64 {
        self.nodes[0].mass
    }

    /// Visit approximated bodies for a query point: clusters whose opening
    /// ratio `side / dist` is below `theta` are reported once as
    /// `(centre_of_mass, mass)`; near clusters are opened, and individual
    /// bodies (excluding `skip`) are reported exactly.
    ///
    /// Returns the number of interactions visited (for cost accounting).
    pub fn for_each_approx<F: FnMut(Point2, f64)>(
        &self,
        query: Point2,
        skip: Option<u32>,
        theta: f64,
        mut visit: F,
    ) -> usize {
        let mut count = 0;
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            let node = &self.nodes[i];
            if node.mass <= 0.0 {
                continue;
            }
            let d = query.dist(node.com);
            let side = node.bbox.longest_side();
            if node.children == u32::MAX {
                for &b in &node.bodies {
                    if Some(b) == skip {
                        continue;
                    }
                    visit(self.points[b as usize], self.masses[b as usize]);
                    count += 1;
                }
            } else if d > 0.0 && side / d < theta {
                visit(node.com, node.mass);
                count += 1;
            } else {
                let f = node.children as usize;
                stack.extend([f, f + 1, f + 2, f + 3]);
            }
        }
        count
    }

    /// Number of arena nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cloud(n: usize, seed: u64) -> Vec<Point2> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point2::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
            .collect()
    }

    #[test]
    fn mass_is_conserved() {
        let pts = cloud(500, 1);
        let masses: Vec<f64> = (0..500).map(|i| 1.0 + (i % 7) as f64).collect();
        let t = QuadTree::build(&pts, Some(&masses));
        let want: f64 = masses.iter().sum();
        assert!((t.total_mass() - want).abs() < 1e-9);
    }

    #[test]
    fn theta_zero_visits_every_body() {
        let pts = cloud(200, 2);
        let t = QuadTree::build(&pts, None);
        let mut m = 0.0;
        let n = t.for_each_approx(Point2::new(0.5, 0.5), None, 0.0, |_, mass| m += mass);
        assert_eq!(n, 200);
        assert!((m - 200.0).abs() < 1e-9);
    }

    #[test]
    fn skip_excludes_the_query_body() {
        let pts = cloud(64, 3);
        let t = QuadTree::build(&pts, None);
        let mut m = 0.0;
        t.for_each_approx(pts[10], Some(10), 0.0, |_, mass| m += mass);
        assert!((m - 63.0).abs() < 1e-9);
    }

    #[test]
    fn approximation_conserves_visited_mass() {
        // With any theta, the sum of visited masses equals the total mass
        // when nothing is skipped (approximated clusters report full mass).
        let pts = cloud(1000, 4);
        let t = QuadTree::build(&pts, None);
        for theta in [0.3, 0.7, 1.2] {
            let mut m = 0.0;
            let visited =
                t.for_each_approx(Point2::new(0.1, 0.9), None, theta, |_, mass| m += mass);
            assert!((m - 1000.0).abs() < 1e-9, "theta {theta}: mass {m}");
            assert!(visited <= 1000);
        }
    }

    #[test]
    fn larger_theta_visits_fewer_interactions() {
        let pts = cloud(2000, 5);
        let t = QuadTree::build(&pts, None);
        let exact = t.for_each_approx(Point2::new(0.5, 0.5), None, 0.0, |_, _| {});
        let approx = t.for_each_approx(Point2::new(0.5, 0.5), None, 1.0, |_, _| {});
        assert!(approx < exact / 4, "approx {approx} vs exact {exact}");
    }

    #[test]
    fn duplicate_points_do_not_overflow_depth() {
        let pts = vec![Point2::new(0.25, 0.25); 100];
        let t = QuadTree::build(&pts, None);
        assert!((t.total_mass() - 100.0).abs() < 1e-9);
        let mut cnt = 0;
        t.for_each_approx(Point2::new(0.75, 0.75), None, 0.0, |_, _| cnt += 1);
        assert_eq!(cnt, 100);
    }

    #[test]
    fn approx_force_matches_exact_within_tolerance() {
        // Compare an inverse-distance "force" computed exactly and with
        // theta = 0.5; they should agree to a few percent.
        let pts = cloud(1500, 6);
        let t = QuadTree::build(&pts, None);
        let q = Point2::new(-0.5, -0.5); // outside the cloud: smooth field
        let force = |theta: f64| {
            let mut f = Point2::ZERO;
            t.for_each_approx(q, None, theta, |p, m| {
                let d = q - p;
                let n = d.norm().max(1e-9);
                f += d / n * (m / n);
            });
            f
        };
        let exact = force(0.0);
        let approx = force(0.5);
        assert!(exact.dist(approx) / exact.norm() < 0.03);
    }
}
