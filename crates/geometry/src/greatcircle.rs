//! Great-circle (and shifted small-circle) separators on the sphere.

use crate::point::Point3;
use rand::Rng;

/// A circle on the unit sphere given by the plane `normal · p = offset`.
/// `offset = 0` is a great circle; a nonzero offset is the parallel "small
/// circle" obtained by shifting the plane to (say) the projection median,
/// which keeps the separator a circle in the original plane while making the
/// bisection exactly balanced.
#[derive(Clone, Copy, Debug)]
pub struct GreatCircle {
    pub normal: Point3,
    pub offset: f64,
}

impl GreatCircle {
    pub fn new(normal: Point3) -> Self {
        GreatCircle {
            normal: normal.normalized(),
            offset: 0.0,
        }
    }

    pub fn with_offset(normal: Point3, offset: f64) -> Self {
        GreatCircle {
            normal: normal.normalized(),
            offset,
        }
    }

    /// Signed distance of a sphere point from the cutting plane.
    #[inline]
    pub fn signed(&self, p: Point3) -> f64 {
        self.normal.dot(p) - self.offset
    }

    /// Which side of the circle a point lies on (`true` = positive side).
    #[inline]
    pub fn side(&self, p: Point3) -> bool {
        self.signed(p) > 0.0
    }
}

/// A uniformly random unit vector in ℝ³ (Marsaglia rejection).
pub fn random_unit_vector<R: Rng>(rng: &mut R) -> Point3 {
    loop {
        let p = Point3::new(
            rng.random_range(-1.0..1.0),
            rng.random_range(-1.0..1.0),
            rng.random_range(-1.0..1.0),
        );
        let n2 = p.norm_sq();
        if n2 > 1e-6 && n2 <= 1.0 {
            return p / n2.sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_unit_vectors_are_unit_and_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mean = Point3::ZERO;
        for _ in 0..2000 {
            let u = random_unit_vector(&mut rng);
            assert!((u.norm() - 1.0).abs() < 1e-12);
            mean += u;
        }
        mean = mean / 2000.0;
        assert!(mean.norm() < 0.08, "directions biased: {mean:?}");
    }

    #[test]
    fn sides_partition_the_sphere() {
        let gc = GreatCircle::new(Point3::new(0.0, 0.0, 1.0));
        assert!(gc.side(Point3::new(0.0, 0.0, 1.0)));
        assert!(!gc.side(Point3::new(0.0, 0.0, -1.0)));
        assert_eq!(gc.signed(Point3::new(1.0, 0.0, 0.0)), 0.0);
    }

    #[test]
    fn offset_shifts_the_split() {
        let gc = GreatCircle::with_offset(Point3::new(0.0, 0.0, 1.0), 0.5);
        assert!(!gc.side(Point3::new(1.0, 0.0, 0.0)));
        assert!(gc.side(Point3::new(0.0, 0.0, 1.0)));
    }

    #[test]
    fn normal_is_normalized() {
        let gc = GreatCircle::new(Point3::new(0.0, 3.0, 4.0));
        assert!((gc.normal.norm() - 1.0).abs() < 1e-12);
    }
}
