//! Geometric primitives for the ScalaPart reproduction.
//!
//! This crate provides everything the embedding and geometric-partitioning
//! stages need: fixed-dimension points, bounding boxes, a Barnes–Hut
//! quadtree, Hilbert-curve ordering, stereographic lifting onto the sphere,
//! approximate centerpoints via iterated Radon points, conformal maps on the
//! sphere, and great-circle sampling — i.e. the computational geometry layer
//! of Gilbert–Miller–Teng mesh partitioning and of force-directed embedding.

pub mod bbox;
pub mod centerpoint;
pub mod conformal;
pub mod greatcircle;
pub mod hilbert;
pub mod linalg;
pub mod point;
pub mod quadtree;
pub mod sphere;

pub use bbox::Aabb2;
pub use centerpoint::{centerpoint, CenterpointConfig};
pub use conformal::ConformalMap;
pub use greatcircle::{random_unit_vector, GreatCircle};
pub use hilbert::{hilbert_d2xy, hilbert_key_unit, hilbert_xy2d};
pub use point::{Point2, Point3};
pub use quadtree::QuadTree;
pub use sphere::{lift_normalized, normalize_for_lift, stereo_lift, stereo_project};
