//! The conformal (Möbius) map that centers a point set on the sphere.
//!
//! After lifting the mesh points to S² and computing a centerpoint `c`
//! (an interior point of the ball, |c| = r < 1), Gilbert–Miller–Teng apply a
//! sphere-preserving Möbius transformation that sends `c` to the center of
//! the ball. Random great circles through the origin of the *mapped* sphere
//! then correspond to circles in the original plane and inherit the
//! centerpoint's balance guarantee.
//!
//! The map is the classic composition: rotate `c` onto the +z axis, then
//! "stereographically dilate" by `α = √((1−r)/(1+r))` — project from the
//! north pole to the plane, scale by α, lift back. The dilation is a Möbius
//! transformation of the ball taking `(0,0,r)` to the origin.

use crate::point::Point3;
use crate::sphere::{stereo_lift, stereo_project};

/// A rotation followed by a stereographic dilation; maps the unit sphere to
/// itself and the configured centerpoint (approximately) to the origin.
#[derive(Clone, Debug)]
pub struct ConformalMap {
    /// Row-major rotation matrix taking the centerpoint direction to +z.
    rot: [[f64; 3]; 3],
    /// Dilation factor √((1−r)/(1+r)).
    alpha: f64,
}

/// Build the rotation matrix taking unit vector `u` to `e_z` (Rodrigues).
fn rotation_to_z(u: Point3) -> [[f64; 3]; 3] {
    let ez = Point3::new(0.0, 0.0, 1.0);
    let c = u.dot(ez);
    if c > 1.0 - 1e-12 {
        return [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]];
    }
    if c < -1.0 + 1e-12 {
        // 180° turn about the x axis.
        return [[1.0, 0.0, 0.0], [0.0, -1.0, 0.0], [0.0, 0.0, -1.0]];
    }
    let axis = u.cross(ez).normalized();
    let s = (1.0 - c * c).sqrt();
    let t = 1.0 - c;
    let (x, y, z) = (axis.x, axis.y, axis.z);
    [
        [t * x * x + c, t * x * y - s * z, t * x * z + s * y],
        [t * x * y + s * z, t * y * y + c, t * y * z - s * x],
        [t * x * z - s * y, t * y * z + s * x, t * z * z + c],
    ]
}

fn mat_apply(m: &[[f64; 3]; 3], p: Point3) -> Point3 {
    Point3::new(
        m[0][0] * p.x + m[0][1] * p.y + m[0][2] * p.z,
        m[1][0] * p.x + m[1][1] * p.y + m[1][2] * p.z,
        m[2][0] * p.x + m[2][1] * p.y + m[2][2] * p.z,
    )
}

impl ConformalMap {
    /// Construct the map for centerpoint `c` (a point strictly inside the
    /// unit ball). A centerpoint at the origin yields the identity.
    pub fn centering(c: Point3) -> Self {
        let r = c.norm().min(0.999_999);
        if r < 1e-12 {
            return ConformalMap {
                rot: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
                alpha: 1.0,
            };
        }
        let rot = rotation_to_z(c / c.norm());
        let alpha = ((1.0 - r) / (1.0 + r)).sqrt();
        ConformalMap { rot, alpha }
    }

    /// Apply the map to a point on the unit sphere.
    pub fn apply(&self, p: Point3) -> Point3 {
        let q = mat_apply(&self.rot, p);
        // Stereographic dilation about the north pole.
        if q.z > 1.0 - 1e-12 {
            return q; // the pole is a fixed point of the dilation
        }
        let plane = stereo_project(q) * self.alpha;
        stereo_lift(plane)
    }

    /// The dilation factor (1.0 means the map is a pure rotation).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_for_origin_centerpoint() {
        let m = ConformalMap::centering(Point3::ZERO);
        let p = Point3::new(0.6, 0.0, 0.8);
        assert!(m.apply(p).dist(p) < 1e-12);
    }

    #[test]
    fn maps_sphere_to_sphere() {
        let m = ConformalMap::centering(Point3::new(0.2, -0.3, 0.4));
        for p in [
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 0.0, -1.0),
            Point3::new(0.577, 0.577, 0.577).normalized(),
        ] {
            let q = m.apply(p);
            assert!((q.norm() - 1.0).abs() < 1e-9, "not on sphere: {q:?}");
        }
    }

    #[test]
    fn centerpoint_moves_toward_origin() {
        // The Möbius extension maps c = (0,0,r) to the origin; verify via the
        // sphere action: points symmetric about c's axis must map to points
        // whose mean is near the origin along z.
        let c = Point3::new(0.0, 0.0, 0.5);
        let m = ConformalMap::centering(c);
        // A ring at height z = 0.5 (around the centerpoint) maps to a ring
        // whose z-coordinate is near 0.
        let r = (1.0f64 - 0.25).sqrt();
        let mut zsum = 0.0;
        let n = 16;
        for k in 0..n {
            let a = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
            let p = Point3::new(r * a.cos(), r * a.sin(), 0.5);
            zsum += m.apply(p).z;
        }
        assert!((zsum / n as f64).abs() < 1e-9);
    }

    #[test]
    fn rotation_to_z_handles_poles() {
        let i = rotation_to_z(Point3::new(0.0, 0.0, 1.0));
        assert_eq!(i[0][0], 1.0);
        let f = rotation_to_z(Point3::new(0.0, 0.0, -1.0));
        let p = mat_apply(&f, Point3::new(0.0, 0.0, -1.0));
        assert!(p.dist(Point3::new(0.0, 0.0, 1.0)) < 1e-12);
    }

    #[test]
    fn rotation_sends_centerpoint_axis_to_z() {
        let u = Point3::new(0.3, -0.4, 0.2).normalized();
        let m = rotation_to_z(u);
        let r = mat_apply(&m, u);
        assert!(r.dist(Point3::new(0.0, 0.0, 1.0)) < 1e-9);
    }
}
