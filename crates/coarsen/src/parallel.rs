//! SPMD heavy-edge matching on the simulated machine.
//!
//! ParMetis-style parallel matching: in each round every still-unmatched
//! vertex is randomly a *proposer* or a *responder* (a deterministic hash
//! coin, so the whole computation is reproducible). Proposers pick their
//! heaviest unmatched neighbour and send a proposal to the owner of that
//! neighbour; responders accept the heaviest proposal they receive. Grants
//! flow back and matches are committed. Proposals to remote vertices and
//! ghost match-status refreshes are real messages whose cost is charged to
//! the machine.

use crate::arena::CoarsenArena;
use crate::matching::Matching;
use sp_graph::distr::Distribution;
use sp_graph::Graph;
use sp_machine::Machine;

/// Per-rank outboxes of `(dest, edge-pair payload)` messages.
type PairOutbox = Vec<Vec<(usize, Vec<(u32, u32)>)>>;

/// Deterministic per-round coin: `true` = proposer.
#[inline]
fn coin(v: u32, round: u32, seed: u64) -> bool {
    // SplitMix64-style scramble.
    let mut x = (v as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((round as u64) << 32)
        .wrapping_add(seed);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x & 1 == 0
}

/// Run up to `rounds` rounds of SPMD heavy-edge matching over the block
/// distribution `dist`, charging computation and communication to
/// `machine`. Stops early once 85% of vertices are matched (ParMetis-class
/// behaviour: contractions then halve the graph as intended).
pub fn parallel_hem(
    g: &Graph,
    dist: &Distribution,
    machine: &mut Machine,
    rounds: u32,
    seed: u64,
) -> Matching {
    parallel_hem_in(g, dist, machine, rounds, seed, &mut CoarsenArena::new())
}

/// [`parallel_hem`] with arena-owned matched flags — identical results,
/// but the per-level `n`-sized scratch comes from (and stays in) `arena`
/// so repeated levels of a hierarchy reuse one allocation.
pub fn parallel_hem_in(
    g: &Graph,
    dist: &Distribution,
    machine: &mut Machine,
    rounds: u32,
    seed: u64,
    arena: &mut CoarsenArena,
) -> Matching {
    assert_eq!(dist.p, machine.p());
    let n = g.n();
    let p = machine.p();
    let mut mate: Vec<u32> = (0..n as u32).collect();
    let matched = arena.matched_scratch(n);
    let mut matched_count = 0usize;
    let rank_verts = dist.rank_vertices();

    for round in 0..rounds {
        // --- Proposal step (per rank, parallel): each proposer picks its
        // heaviest unmatched responder neighbour.
        let mut proposals: Vec<Vec<(u32, u32)>> = vec![Vec::new(); p]; // (proposer, target)
        {
            let matched_ref = &matched;
            let mut states: Vec<(usize, Vec<(u32, u32)>)> =
                (0..p).map(|r| (r, Vec::new())).collect();
            machine.compute(&mut states, |r, out| {
                let mut ops = 0.0;
                // Heavy-edge preference in the early rounds; after that a
                // randomised preference (Metis's RM fallback) breaks the
                // proposal collisions that stall HEM on coarse weighted
                // graphs with heavy hub vertices.
                let hem = round < 4;
                for &v in &rank_verts[r] {
                    if matched_ref[v as usize] || !coin(v, round, seed) {
                        continue;
                    }
                    let mut best: Option<(f64, u32)> = None;
                    for (u, w) in g.neighbors_w(v) {
                        ops += 1.0;
                        if matched_ref[u as usize] || coin(u, round, seed) {
                            continue;
                        }
                        let key = if hem {
                            w
                        } else {
                            // Deterministic pseudo-random preference.
                            let mut x = (u as u64 ^ (v as u64) << 20)
                                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                .wrapping_add(seed ^ round as u64);
                            x ^= x >> 29;
                            (x & 0xFFFF) as f64
                        };
                        match best {
                            Some((bw, bu)) if key < bw || (key == bw && u >= bu) => {}
                            _ => best = Some((key, u)),
                        }
                    }
                    if let Some((_, u)) = best {
                        out.1.push((v, u));
                    }
                }
                ops
            });
            for (r, props) in states {
                proposals[r] = props;
            }
        }

        // --- Route proposals to the owner of the target vertex.
        let mut outbox: PairOutbox = (0..p).map(|_| Vec::new()).collect();
        let mut local: Vec<Vec<(u32, u32)>> = vec![Vec::new(); p];
        for (r, props) in proposals.into_iter().enumerate() {
            let mut by_dest: Vec<Vec<(u32, u32)>> = vec![Vec::new(); p];
            for (v, u) in props {
                let owner = dist.owner[u as usize] as usize;
                if owner == r {
                    local[r].push((v, u));
                } else {
                    by_dest[owner].push((v, u));
                }
            }
            for (d, msgs) in by_dest.into_iter().enumerate() {
                if !msgs.is_empty() {
                    outbox[r].push((d, msgs));
                }
            }
        }
        let inbox = machine.exchange(outbox);

        // --- Grant step: each responder accepts the heaviest proposal.
        // (Committed centrally but deterministically, per owner rank.)
        let mut accept: Vec<(u32, u32)> = Vec::new(); // (responder, proposer)
        for r in 0..p {
            let mut incoming: Vec<(u32, u32)> = local[r].clone();
            for (_, msgs) in &inbox[r] {
                incoming.extend_from_slice(msgs);
            }
            // Group by responder; accept heaviest edge, tie → lowest id.
            incoming.sort_unstable_by_key(|&(v, u)| (u, v));
            let mut i = 0;
            machine.charge_ops(r, incoming.len() as f64);
            while i < incoming.len() {
                let u = incoming[i].1;
                let mut best: Option<(f64, u32)> = None;
                while i < incoming.len() && incoming[i].1 == u {
                    let v = incoming[i].0;
                    if !matched[v as usize] {
                        let w = g
                            .neighbors_w(u)
                            .find(|&(x, _)| x == v)
                            .map(|(_, w)| w)
                            .unwrap_or(0.0);
                        match best {
                            Some((bw, bv)) if w < bw || (w == bw && v >= bv) => {}
                            _ => best = Some((w, v)),
                        }
                    }
                    i += 1;
                }
                if matched[u as usize] {
                    continue;
                }
                if let Some((_, v)) = best {
                    accept.push((u, v));
                }
            }
        }
        // --- Commit and send grants back (cost: same routing reversed).
        let mut grant_out: PairOutbox = (0..p).map(|_| Vec::new()).collect();
        for &(u, v) in &accept {
            matched[u as usize] = true;
            matched[v as usize] = true;
            matched_count += 2;
            mate[u as usize] = v;
            mate[v as usize] = u;
            let ro = dist.owner[u as usize] as usize;
            let rp = dist.owner[v as usize] as usize;
            if ro != rp {
                grant_out[ro].push((rp, vec![(u, v)]));
            }
        }
        let _ = machine.exchange(grant_out);
        if matched_count * 100 >= n * 92 || accept.is_empty() {
            break;
        }
    }
    // Local cleanup: unmatched vertices pair with unmatched *local*
    // neighbours (heaviest edge first) — no communication, and it lifts the
    // matched fraction to near-maximal so retained levels shrink by the
    // intended factor.
    {
        let mut states: Vec<Vec<(u32, u32)>> = vec![Vec::new(); p];
        let matched_ref = &matched;
        machine.compute(&mut states, |r, out| {
            let mut ops = 0.0;
            let mut local_matched: std::collections::HashSet<u32> =
                std::collections::HashSet::new();
            for &v in &rank_verts[r] {
                if matched_ref[v as usize] || local_matched.contains(&v) {
                    continue;
                }
                let mut best: Option<(f64, u32)> = None;
                for (u, w) in g.neighbors_w(v) {
                    ops += 1.0;
                    if matched_ref[u as usize]
                        || local_matched.contains(&u)
                        || dist.owner[u as usize] as usize != r
                    {
                        continue;
                    }
                    match best {
                        Some((bw, bu)) if w < bw || (w == bw && u >= bu) => {}
                        _ => best = Some((w, u)),
                    }
                }
                if let Some((_, u)) = best {
                    local_matched.insert(v);
                    local_matched.insert(u);
                    out.push((v, u));
                }
            }
            ops
        });
        for pairs in states {
            for (v, u) in pairs {
                debug_assert!(!matched[v as usize] && !matched[u as usize]);
                matched[v as usize] = true;
                matched[u as usize] = true;
                mate[v as usize] = u;
                mate[u as usize] = v;
            }
        }
    }
    Matching { mate }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::validate_matching;
    use sp_graph::gen::grid_2d;
    use sp_machine::CostModel;

    #[test]
    fn parallel_matching_is_valid() {
        let g = grid_2d(24, 24);
        let dist = Distribution::block(g.n(), 4);
        let mut m = Machine::new(4, CostModel::qdr_infiniband());
        let matching = parallel_hem(&g, &dist, &mut m, 4, 7);
        validate_matching(&g, &matching).unwrap();
        assert!(m.elapsed() > 0.0);
    }

    #[test]
    fn parallel_matching_matches_most_vertices() {
        let g = grid_2d(32, 32);
        let dist = Distribution::block(g.n(), 8);
        let mut m = Machine::new(8, CostModel::qdr_infiniband());
        let matching = parallel_hem(&g, &dist, &mut m, 6, 3);
        let frac = 2.0 * matching.pairs() as f64 / g.n() as f64;
        assert!(frac > 0.7, "matched fraction {frac}");
    }

    #[test]
    fn deterministic_across_runs() {
        let g = grid_2d(16, 16);
        let dist = Distribution::block(g.n(), 4);
        let mut m1 = Machine::new(4, CostModel::qdr_infiniband());
        let mut m2 = Machine::new(4, CostModel::qdr_infiniband());
        let a = parallel_hem(&g, &dist, &mut m1, 4, 9);
        let b = parallel_hem(&g, &dist, &mut m2, 4, 9);
        assert_eq!(a.mate, b.mate);
        assert_eq!(m1.elapsed(), m2.elapsed());
    }

    #[test]
    fn single_rank_works() {
        let g = grid_2d(10, 10);
        let dist = Distribution::block(g.n(), 1);
        let mut m = Machine::new(1, CostModel::qdr_infiniband());
        let matching = parallel_hem(&g, &dist, &mut m, 4, 1);
        validate_matching(&g, &matching).unwrap();
        assert!(matching.pairs() > 0);
    }

    #[test]
    fn communication_grows_with_ranks() {
        let g = grid_2d(32, 32);
        let mut comm = Vec::new();
        for p in [2usize, 16] {
            let dist = Distribution::block(g.n(), p);
            let mut m = Machine::new(p, CostModel::qdr_infiniband());
            let _ = parallel_hem(&g, &dist, &mut m, 4, 5);
            comm.push(m.comm_time());
        }
        assert!(comm[1] > 0.0);
    }
}
