//! Reusable scratch for the coarsening hierarchy.
//!
//! Every level of match-and-contract used to allocate its own scratch —
//! matching visit order and matched flags, coarse-weight accumulators,
//! and (worst of all) a `GraphBuilder` tuple buffer for the coarse graph.
//! [`CoarsenArena`] owns all of it: buffers are sized once at level 0 and
//! reused down the hierarchy, so level transitions perform no scratch
//! allocation — only the retained products (the coarse CSR itself, the
//! fine→coarse map, the matching's mate array) are allocated per level,
//! and those at exact size.
//!
//! [`contract_with`] also replaces the builder-based contraction with a
//! gather-merge: for each coarse vertex, the members' fine adjacencies
//! are merged through a stamp array into a staging row, sorted ascending,
//! and appended to a staging CSR that lives in the arena; the coarse
//! graph is an exact-size copy of the staged prefix. Weight merges
//! accumulate in fine traversal order (deterministic; exact for the
//! integer-valued weights coarsening produces from unit inputs).

use crate::matching::Matching;
use rand::seq::SliceRandom;
use rand::Rng;
use sp_graph::Graph;

const UNSTAMPED: u32 = u32::MAX;

/// Scratch reused across hierarchy levels. Create once per coarsening
/// run; every buffer grows to its level-0 high-water mark and stays.
#[derive(Default)]
pub struct CoarsenArena {
    /// Coarse vertex weight accumulator (coarse n).
    cw: Vec<f64>,
    /// Representative (first) fine vertex of each coarse vertex.
    rep: Vec<u32>,
    /// Stamp: which coarse row a coarse neighbour was last seen in.
    row_mark: Vec<u32>,
    /// Position of that neighbour in the current staging row.
    row_pos: Vec<u32>,
    /// Current coarse row under accumulation.
    row: Vec<(u32, f64)>,
    /// Staging CSR for the coarse graph, copied out at exact size.
    stage_xadj: Vec<usize>,
    stage_adjncy: Vec<u32>,
    stage_ewgt: Vec<f64>,
    /// Matching scratch: visit order and matched flags.
    order: Vec<u32>,
    matched: Vec<bool>,
    /// Largest number of scratch bytes held at any point.
    high_water: usize,
}

impl CoarsenArena {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently held by the arena's buffers (capacity, not len —
    /// this is what the process actually pays for).
    pub fn bytes(&self) -> usize {
        self.cw.capacity() * 8
            + self.rep.capacity() * 4
            + self.row_mark.capacity() * 4
            + self.row_pos.capacity() * 4
            + self.row.capacity() * 16
            + self.stage_xadj.capacity() * 8
            + self.stage_adjncy.capacity() * 4
            + self.stage_ewgt.capacity() * 8
            + self.order.capacity() * 4
            + self.matched.capacity()
    }

    /// High-water mark of [`CoarsenArena::bytes`] over the arena's life.
    pub fn high_water_bytes(&self) -> usize {
        self.high_water
    }

    fn note_high_water(&mut self) {
        self.high_water = self.high_water.max(self.bytes());
    }

    /// The matched-flags scratch, cleared and sized for `n` vertices.
    /// Shared by the sequential and SPMD matchers.
    pub(crate) fn matched_scratch(&mut self, n: usize) -> &mut Vec<bool> {
        self.matched.clear();
        self.matched.resize(n, false);
        self.high_water = self.high_water.max(self.bytes());
        &mut self.matched
    }
}

/// Heavy-edge matching with arena-owned scratch: identical results to
/// [`crate::matching::heavy_edge_matching`] (same RNG consumption, same
/// tie-breaks), but the visit order and matched flags come from `arena`.
pub fn heavy_edge_matching_in<R: Rng>(
    g: &Graph,
    rng: &mut R,
    arena: &mut CoarsenArena,
) -> Matching {
    let n = g.n();
    let mut mate: Vec<u32> = (0..n as u32).collect();
    arena.matched.clear();
    arena.matched.resize(n, false);
    arena.order.clear();
    arena.order.extend(0..n as u32);
    arena.order.shuffle(rng);
    // Split borrows: order is read-only while matched is mutated.
    let (order, matched) = (&arena.order, &mut arena.matched);
    for &v in order {
        if matched[v as usize] {
            continue;
        }
        let mut best: Option<(f64, u32)> = None;
        for (u, w) in g.neighbors_w(v) {
            if matched[u as usize] {
                continue;
            }
            match best {
                Some((bw, bu)) if w < bw || (w == bw && u >= bu) => {}
                _ => best = Some((w, u)),
            }
        }
        if let Some((_, u)) = best {
            mate[v as usize] = u;
            mate[u as usize] = v;
            matched[v as usize] = true;
            matched[u as usize] = true;
        }
    }
    arena.note_high_water();
    Matching { mate }
}

/// Contract `g` along matching `m` using arena scratch: every matched
/// pair becomes one coarse vertex (weights summed), unmatched vertices
/// survive as singletons, multi-edges merge with summed weights, and
/// intra-pair edges vanish. Semantics match [`crate::contract::contract`];
/// the coarse CSR is assembled by gather-merge instead of a builder.
pub fn contract_with(g: &Graph, m: &Matching, arena: &mut CoarsenArena) -> crate::Contraction {
    let n = g.n();
    let mut map = vec![u32::MAX; n];
    arena.rep.clear();
    let mut next = 0u32;
    for v in 0..n as u32 {
        if map[v as usize] != u32::MAX {
            continue;
        }
        let u = m.mate[v as usize];
        map[v as usize] = next;
        map[u as usize] = next; // u == v for singletons
        arena.rep.push(v);
        next += 1;
    }
    let cn = next as usize;
    // Coarse vertex weights, accumulated in ascending fine-vertex order.
    arena.cw.clear();
    arena.cw.resize(cn, 0.0);
    for v in 0..n as u32 {
        arena.cw[map[v as usize] as usize] += g.vwgt(v);
    }
    // Gather-merge each coarse row through the stamp array.
    arena.row_mark.clear();
    arena.row_mark.resize(cn, UNSTAMPED);
    arena.row_pos.clear();
    arena.row_pos.resize(cn, 0);
    arena.stage_xadj.clear();
    arena.stage_xadj.reserve(cn + 1);
    arena.stage_xadj.push(0);
    arena.stage_adjncy.clear();
    arena.stage_ewgt.clear();
    for c in 0..cn as u32 {
        let v = arena.rep[c as usize];
        let u = m.mate[v as usize];
        arena.row.clear();
        let members = if u == v { [v, v] } else { [v, u] };
        let member_count = if u == v { 1 } else { 2 };
        for &mv in &members[..member_count] {
            for (nb, w) in g.neighbors_w(mv) {
                let cu = map[nb as usize];
                if cu == c {
                    continue; // intra-pair edge vanishes
                }
                if arena.row_mark[cu as usize] == c {
                    arena.row[arena.row_pos[cu as usize] as usize].1 += w;
                } else {
                    arena.row_mark[cu as usize] = c;
                    arena.row_pos[cu as usize] = arena.row.len() as u32;
                    arena.row.push((cu, w));
                }
            }
        }
        arena.row.sort_unstable_by_key(|p| p.0);
        for &(cu, w) in &arena.row {
            arena.stage_adjncy.push(cu);
            arena.stage_ewgt.push(w);
        }
        arena.stage_xadj.push(arena.stage_adjncy.len());
    }
    arena.note_high_water();
    // Exact-size retained copies out of the staging buffers.
    let coarse = Graph::from_csr(
        arena.stage_xadj.clone(),
        arena.stage_adjncy.clone(),
        arena.stage_ewgt.clone(),
        arena.cw.clone(),
    );
    crate::Contraction { coarse, map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{contract, validate_contraction};
    use crate::matching::heavy_edge_matching;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sp_graph::gen::{grid_2d, kkt_graph};

    #[test]
    fn matching_in_arena_matches_plain() {
        let g = grid_2d(20, 20);
        let mut arena = CoarsenArena::new();
        let a = heavy_edge_matching(&g, &mut StdRng::seed_from_u64(17));
        let b = heavy_edge_matching_in(&g, &mut StdRng::seed_from_u64(17), &mut arena);
        assert_eq!(a.mate, b.mate);
    }

    #[test]
    fn contract_with_matches_builder_contract() {
        // Structure must agree exactly with the legacy builder path; on
        // unit-weight inputs the weights agree bit-for-bit too (integer
        // sums are exact in any order).
        for g in [
            grid_2d(18, 23),
            kkt_graph(500, 250, 5, &mut StdRng::seed_from_u64(2)),
        ] {
            let m = heavy_edge_matching(&g, &mut StdRng::seed_from_u64(6));
            let reference = contract(&g, &m);
            let mut arena = CoarsenArena::new();
            let lean = contract_with(&g, &m, &mut arena);
            assert_eq!(reference.map, lean.map);
            assert_eq!(reference.coarse.xadj(), lean.coarse.xadj());
            assert_eq!(reference.coarse.adjncy(), lean.coarse.adjncy());
            assert_eq!(reference.coarse.ewgts(), lean.coarse.ewgts());
            assert_eq!(reference.coarse.vwgts(), lean.coarse.vwgts());
            validate_contraction(&g, &m, &lean).unwrap();
        }
    }

    #[test]
    fn arena_reuse_across_levels_allocates_no_new_scratch() {
        let g = grid_2d(40, 40);
        let mut arena = CoarsenArena::new();
        let mut rng = StdRng::seed_from_u64(9);
        // Level 0 sizes the arena.
        let m = heavy_edge_matching_in(&g, &mut rng, &mut arena);
        let c = contract_with(&g, &m, &mut arena);
        let sized = arena.bytes();
        assert!(sized > 0);
        // Coarser levels fit in the existing O(n)/O(m) buffers: their
        // capacities never move again. Only `row` — the single-row gather
        // scratch, O(max coarse degree) — may still grow, because merged
        // coarse vertices can out-degree any fine vertex.
        let big_caps = |a: &CoarsenArena| {
            [
                a.cw.capacity(),
                a.rep.capacity(),
                a.row_mark.capacity(),
                a.row_pos.capacity(),
                a.stage_xadj.capacity(),
                a.stage_adjncy.capacity(),
                a.stage_ewgt.capacity(),
                a.order.capacity(),
                a.matched.capacity(),
            ]
        };
        let sized_caps = big_caps(&arena);
        let mut cur = c.coarse;
        for _ in 0..4 {
            if cur.n() <= 8 {
                break;
            }
            let m = heavy_edge_matching_in(&cur, &mut rng, &mut arena);
            let c = contract_with(&cur, &m, &mut arena);
            assert_eq!(
                big_caps(&arena),
                sized_caps,
                "arena grew on a coarser level"
            );
            cur = c.coarse;
        }
        assert!(arena.high_water_bytes() >= sized);
        assert!(arena.high_water_bytes() <= sized + arena.row.capacity() * 16);
    }

    #[test]
    fn deep_contract_stays_valid_on_weighted_levels() {
        // Run several arena levels and validate each contraction — the
        // coarser levels carry non-unit vertex and edge weights.
        let g = grid_2d(32, 32);
        let mut arena = CoarsenArena::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mut cur = g;
        for _ in 0..5 {
            if cur.n() <= 16 {
                break;
            }
            let m = heavy_edge_matching_in(&cur, &mut rng, &mut arena);
            let c = contract_with(&cur, &m, &mut arena);
            validate_contraction(&cur, &m, &c).unwrap();
            cur = c.coarse;
        }
        assert!(cur.n() < 100);
    }
}
