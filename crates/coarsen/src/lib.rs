//! Multilevel coarsening via heavy-edge matching (HEM).
//!
//! ScalaPart "coarsens graphs in the same manner as in ParMetis": repeated
//! heavy-edge matching and contraction, halving the vertex count per step.
//! The paper's one adaptation — retaining only every *other* graph so
//! successive retained levels shrink by ≈ 4× (and the active rank count
//! shrinks by 4× with them) — lives in [`hierarchy`].
//!
//! Both a sequential matcher and the SPMD formulation (proposal/grant
//! rounds with communication charged to a [`sp_machine::Machine`]) are
//! provided; they produce matchings of the same quality class.

pub mod arena;
pub mod contract;
pub mod hierarchy;
pub mod matching;
pub mod parallel;

pub use arena::{contract_with, heavy_edge_matching_in, CoarsenArena};
pub use contract::{contract, validate_contraction, Contraction};
pub use hierarchy::{CoarsenConfig, Hierarchy, Level};
pub use matching::{heavy_edge_matching, validate_matching, Matching};
pub use parallel::{parallel_hem, parallel_hem_in};
