//! The multilevel hierarchy: repeated match-and-contract with the paper's
//! retain-every-other-level adaptation (≈¼ shrink between retained levels).

use crate::arena::{contract_with, heavy_edge_matching_in, CoarsenArena};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_graph::Graph;

/// Controls for hierarchy construction.
#[derive(Clone, Copy, Debug)]
pub struct CoarsenConfig {
    /// Stop once the coarsest graph has at most this many vertices
    /// (the paper keeps it "in the hundreds or few thousands").
    pub target_coarsest: usize,
    /// Retain every other contraction so retained levels shrink ≈ 4×
    /// (the paper's adaptation). `false` retains every level (≈ 2×),
    /// which the ablation benches compare against.
    pub keep_every_other: bool,
    /// Safety cap on retained levels.
    pub max_levels: usize,
    /// RNG seed for the matchings.
    pub seed: u64,
}

impl Default for CoarsenConfig {
    fn default() -> Self {
        CoarsenConfig {
            target_coarsest: 1000,
            keep_every_other: true,
            max_levels: 40,
            seed: 0x5CA1AB1E,
        }
    }
}

/// One retained level of the hierarchy.
pub struct Level {
    /// The graph at this level (`levels[0]` is the input graph).
    pub graph: Graph,
    /// For non-coarsest levels: `map[v]` = vertex of the next retained
    /// (coarser) level containing `v`.
    pub map_to_coarser: Option<Vec<u32>>,
}

/// A coarsening hierarchy `G⁰ ⊃ G¹ ⊃ … ⊃ Gᵏ`.
pub struct Hierarchy {
    pub levels: Vec<Level>,
}

impl Hierarchy {
    /// Build the hierarchy for `g`.
    pub fn build(g: &Graph, cfg: &CoarsenConfig) -> Hierarchy {
        // One arena serves the whole descent: scratch sized at level 0 is
        // reused by every coarser level (no per-level scratch allocation).
        Self::build_with_arena(g, cfg, &mut CoarsenArena::new())
    }

    /// [`Hierarchy::build`] with a caller-owned arena, so the caller can
    /// inspect scratch usage afterwards (or share the arena across
    /// several hierarchies).
    pub fn build_with_arena(g: &Graph, cfg: &CoarsenConfig, arena: &mut CoarsenArena) -> Hierarchy {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut levels = vec![Level {
            graph: g.clone(),
            map_to_coarser: None,
        }];
        loop {
            let cur = &levels.last().unwrap().graph;
            if cur.n() <= cfg.target_coarsest || levels.len() > cfg.max_levels {
                break;
            }
            // One or two contractions, composed into one retained step.
            let m1 = heavy_edge_matching_in(cur, &mut rng, arena);
            let c1 = contract_with(cur, &m1, arena);
            let (coarse, map) = if cfg.keep_every_other && c1.coarse.n() > cfg.target_coarsest {
                let m2 = heavy_edge_matching_in(&c1.coarse, &mut rng, arena);
                let c2 = contract_with(&c1.coarse, &m2, arena);
                let composed: Vec<u32> = c1.map.iter().map(|&mid| c2.map[mid as usize]).collect();
                (c2.coarse, composed)
            } else {
                (c1.coarse, c1.map)
            };
            // Coarsening stalls on pathological graphs; bail out rather
            // than looping forever.
            if coarse.n() as f64 > 0.95 * cur.n() as f64 {
                break;
            }
            levels.last_mut().unwrap().map_to_coarser = Some(map);
            levels.push(Level {
                graph: coarse,
                map_to_coarser: None,
            });
        }
        Hierarchy { levels }
    }

    /// Number of retained levels (≥ 1).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The coarsest graph.
    pub fn coarsest(&self) -> &Graph {
        &self.levels.last().unwrap().graph
    }

    /// Project per-vertex data at level `i+1` down to level `i` (each fine
    /// vertex inherits its coarse vertex's value).
    pub fn project_down<T: Copy>(&self, level: usize, coarse_vals: &[T]) -> Vec<T> {
        let map = self.levels[level]
            .map_to_coarser
            .as_ref()
            .expect("level has no coarser neighbour");
        assert_eq!(coarse_vals.len(), self.levels[level + 1].graph.n());
        map.iter().map(|&c| coarse_vals[c as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::gen::grid_2d;

    #[test]
    fn hierarchy_reaches_target() {
        let g = grid_2d(64, 64);
        let h = Hierarchy::build(
            &g,
            &CoarsenConfig {
                target_coarsest: 300,
                ..Default::default()
            },
        );
        assert!(h.coarsest().n() <= 300);
        assert!(h.depth() >= 2);
        for l in &h.levels {
            l.graph.validate().unwrap();
        }
    }

    #[test]
    fn retained_levels_shrink_by_about_four() {
        let g = grid_2d(80, 80);
        let h = Hierarchy::build(&g, &CoarsenConfig::default());
        for w in h.levels.windows(2) {
            let ratio = w[1].graph.n() as f64 / w[0].graph.n() as f64;
            assert!(
                (0.2..0.45).contains(&ratio) || w[1].graph.n() <= 1000,
                "level shrink ratio {ratio}"
            );
        }
    }

    #[test]
    fn every_level_mode_shrinks_by_about_two() {
        let g = grid_2d(60, 60);
        let cfg = CoarsenConfig {
            keep_every_other: false,
            target_coarsest: 500,
            ..Default::default()
        };
        let h = Hierarchy::build(&g, &cfg);
        let ratio = h.levels[1].graph.n() as f64 / h.levels[0].graph.n() as f64;
        assert!((0.45..0.65).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn vertex_weight_conserved_through_hierarchy() {
        let g = grid_2d(40, 40);
        let h = Hierarchy::build(
            &g,
            &CoarsenConfig {
                target_coarsest: 100,
                ..Default::default()
            },
        );
        let w0 = g.total_vwgt();
        for l in &h.levels {
            assert!((l.graph.total_vwgt() - w0).abs() < 1e-6);
        }
    }

    #[test]
    fn maps_cover_all_coarse_vertices() {
        let g = grid_2d(32, 32);
        let h = Hierarchy::build(
            &g,
            &CoarsenConfig {
                target_coarsest: 64,
                ..Default::default()
            },
        );
        for i in 0..h.depth() - 1 {
            let map = h.levels[i].map_to_coarser.as_ref().unwrap();
            let cn = h.levels[i + 1].graph.n();
            let mut seen = vec![false; cn];
            for &c in map {
                seen[c as usize] = true;
            }
            assert!(seen.iter().all(|&b| b), "level {i} map not surjective");
        }
    }

    #[test]
    fn project_down_inherits_values() {
        let g = grid_2d(20, 20);
        let h = Hierarchy::build(
            &g,
            &CoarsenConfig {
                target_coarsest: 50,
                ..Default::default()
            },
        );
        let k = h.depth() - 1;
        let coarse_vals: Vec<f64> = (0..h.levels[k].graph.n()).map(|i| i as f64).collect();
        let fine = h.project_down(k - 1, &coarse_vals);
        let map = h.levels[k - 1].map_to_coarser.as_ref().unwrap();
        for (v, &val) in fine.iter().enumerate() {
            assert_eq!(val, coarse_vals[map[v] as usize]);
        }
    }

    #[test]
    fn tiny_graph_single_level() {
        let g = grid_2d(5, 5);
        let h = Hierarchy::build(
            &g,
            &CoarsenConfig {
                target_coarsest: 100,
                ..Default::default()
            },
        );
        assert_eq!(h.depth(), 1);
        assert_eq!(h.coarsest().n(), 25);
    }
}
