//! Sequential heavy-edge matching.

use rand::seq::SliceRandom;
use rand::Rng;
use sp_graph::Graph;

/// A matching: `mate[v] = u` if `v` is matched with `u`, `mate[v] = v` if
/// unmatched (a singleton that survives contraction alone).
#[derive(Clone, Debug)]
pub struct Matching {
    pub mate: Vec<u32>,
}

impl Matching {
    /// Number of matched pairs.
    pub fn pairs(&self) -> usize {
        self.mate
            .iter()
            .enumerate()
            .filter(|&(v, &m)| (v as u32) < m)
            .count()
    }

    /// Number of coarse vertices the matching will produce.
    pub fn coarse_n(&self) -> usize {
        self.mate.len() - self.pairs()
    }
}

/// Heavy-edge matching: visit vertices in random order; match each
/// unmatched vertex to its heaviest-edge unmatched neighbour (ties broken
/// toward lower vertex id for determinism given the visit order).
pub fn heavy_edge_matching<R: Rng>(g: &Graph, rng: &mut R) -> Matching {
    let n = g.n();
    let mut mate: Vec<u32> = (0..n as u32).collect();
    let mut matched = vec![false; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    for &v in &order {
        if matched[v as usize] {
            continue;
        }
        let mut best: Option<(f64, u32)> = None;
        for (u, w) in g.neighbors_w(v) {
            if matched[u as usize] {
                continue;
            }
            match best {
                Some((bw, bu)) if w < bw || (w == bw && u >= bu) => {}
                _ => best = Some((w, u)),
            }
        }
        if let Some((_, u)) = best {
            mate[v as usize] = u;
            mate[u as usize] = v;
            matched[v as usize] = true;
            matched[u as usize] = true;
        }
    }
    Matching { mate }
}

/// Check the matching invariants: involution (`mate[mate[v]] == v`) and
/// matched pairs joined by an actual edge.
pub fn validate_matching(g: &Graph, m: &Matching) -> Result<(), String> {
    if m.mate.len() != g.n() {
        return Err("matching length mismatch".into());
    }
    for v in 0..g.n() as u32 {
        let u = m.mate[v as usize];
        if u as usize >= g.n() {
            return Err(format!("mate {u} out of range"));
        }
        if m.mate[u as usize] != v {
            return Err(format!("mate not involutive at {v}"));
        }
        if u != v && !g.neighbors(v).contains(&u) {
            return Err(format!("matched pair ({v},{u}) not an edge"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sp_graph::gen::grid_2d;
    use sp_graph::GraphBuilder;

    #[test]
    fn matching_on_grid_is_valid_and_large() {
        let g = grid_2d(20, 20);
        let mut rng = StdRng::seed_from_u64(1);
        let m = heavy_edge_matching(&g, &mut rng);
        validate_matching(&g, &m).unwrap();
        // A maximal matching on a grid matches nearly everything.
        assert!(m.pairs() * 2 > g.n() * 8 / 10, "pairs = {}", m.pairs());
        assert!(m.coarse_n() < g.n() * 6 / 10);
    }

    #[test]
    fn matching_prefers_heavy_edges() {
        // Star where one edge is much heavier: it must be chosen whenever
        // the centre is visited first; with weights, any maximal matching
        // here has exactly one pair — check the heavy edge wins across
        // seeds where vertex 0 is reachable first.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 10.0);
        b.add_edge(0, 3, 1.0);
        let g = b.build();
        let mut heavy_chosen = 0;
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = heavy_edge_matching(&g, &mut rng);
            validate_matching(&g, &m).unwrap();
            if m.mate[0] == 2 {
                heavy_chosen += 1;
            }
        }
        // Whenever the centre (or vertex 2) is visited before the light
        // leaves claim the centre, the heavy edge 0-2 wins; that happens in
        // half the visit orders in expectation. Seeing it rarely would mean
        // weights are being ignored.
        assert!(
            heavy_chosen >= 5,
            "heavy edge chosen only {heavy_chosen}/20 times"
        );
    }

    #[test]
    fn matching_is_maximal() {
        let g = grid_2d(10, 10);
        let mut rng = StdRng::seed_from_u64(2);
        let m = heavy_edge_matching(&g, &mut rng);
        // No edge may connect two unmatched vertices.
        for v in 0..g.n() as u32 {
            if m.mate[v as usize] != v {
                continue;
            }
            for &u in g.neighbors(v) {
                assert_ne!(m.mate[u as usize], u, "edge ({v},{u}) both unmatched");
            }
        }
    }

    #[test]
    fn empty_and_single_vertex() {
        let g = GraphBuilder::new(1).build();
        let mut rng = StdRng::seed_from_u64(3);
        let m = heavy_edge_matching(&g, &mut rng);
        validate_matching(&g, &m).unwrap();
        assert_eq!(m.coarse_n(), 1);
    }
}
