//! Graph contraction given a matching.

use crate::matching::Matching;
use sp_graph::{Graph, GraphBuilder};

/// The result of contracting a graph along a matching.
pub struct Contraction {
    /// The coarse graph (vertex weights summed, parallel edges merged).
    pub coarse: Graph,
    /// `map[v]` = coarse vertex id of fine vertex `v`.
    pub map: Vec<u32>,
}

/// Contract `g` along matching `m`: every matched pair becomes one coarse
/// vertex (weights summed), unmatched vertices survive as singletons, and
/// multi-edges merge with summed weights. Edges internal to a pair vanish.
pub fn contract(g: &Graph, m: &Matching) -> Contraction {
    let n = g.n();
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if map[v as usize] != u32::MAX {
            continue;
        }
        let u = m.mate[v as usize];
        map[v as usize] = next;
        map[u as usize] = next; // u == v for singletons
        next += 1;
    }
    let cn = next as usize;
    let mut b = GraphBuilder::with_edge_capacity(cn, g.m());
    // Coarse vertex weights.
    let mut cw = vec![0.0f64; cn];
    for v in 0..n as u32 {
        cw[map[v as usize] as usize] += g.vwgt(v);
    }
    for (c, &w) in cw.iter().enumerate() {
        b.set_vwgt(c as u32, w);
    }
    // Coarse edges.
    for v in 0..n as u32 {
        let cv = map[v as usize];
        for (u, w) in g.neighbors_w(v) {
            if u > v {
                let cu = map[u as usize];
                if cu != cv {
                    b.add_edge(cv, cu, w);
                }
            }
        }
    }
    Contraction {
        coarse: b.build(),
        map,
    }
}

/// Validate a contraction against the fine graph and matching it came
/// from: the map is total and dense, matched pairs share a coarse vertex,
/// no coarse vertex absorbs more than a pair, vertex weight is conserved,
/// and cross-pair edge weight is conserved (intra-pair edges vanish).
///
/// Used by sp-verify's invariant checker at every coarsening checkpoint.
pub fn validate_contraction(g: &Graph, m: &Matching, c: &Contraction) -> Result<(), String> {
    let n = g.n();
    let cn = c.coarse.n();
    if c.map.len() != n {
        return Err(format!("map length {} != fine n {}", c.map.len(), n));
    }
    if m.mate.len() != n {
        return Err(format!("matching length {} != fine n {}", m.mate.len(), n));
    }
    let mut group = vec![0u32; cn];
    for v in 0..n {
        let cv = c.map[v];
        if cv as usize >= cn {
            return Err(format!("map[{v}] = {cv} out of range (coarse n = {cn})"));
        }
        group[cv as usize] += 1;
        let u = m.mate[v] as usize;
        if c.map[u] != cv {
            return Err(format!(
                "matched pair ({v}, {u}) maps to different coarse vertices ({cv}, {})",
                c.map[u]
            ));
        }
    }
    for (cv, &sz) in group.iter().enumerate() {
        if sz == 0 {
            return Err(format!("coarse vertex {cv} has no fine preimage"));
        }
        if sz > 2 {
            return Err(format!(
                "coarse vertex {cv} absorbs {sz} fine vertices (matching pairs only)"
            ));
        }
    }
    let dv = c.coarse.total_vwgt() - g.total_vwgt();
    if dv.abs() > 1e-9 * g.total_vwgt().max(1.0) {
        return Err(format!("vertex weight drifts by {dv} under contraction"));
    }
    // Edge weight accounting: fine cross-pair weight == coarse weight.
    let mut cross = 0.0;
    for v in 0..n as u32 {
        for (u, w) in g.neighbors_w(v) {
            if u > v && c.map[u as usize] != c.map[v as usize] {
                cross += w;
            }
        }
    }
    let mut coarse_w = 0.0;
    for v in 0..cn as u32 {
        for (u, w) in c.coarse.neighbors_w(v) {
            if u > v {
                coarse_w += w;
            }
        }
    }
    if (cross - coarse_w).abs() > 1e-9 * cross.max(1.0) {
        return Err(format!(
            "edge weight not conserved: fine cross-pair {cross} vs coarse {coarse_w}"
        ));
    }
    c.coarse
        .validate()
        .map_err(|e| format!("coarse graph invalid: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::heavy_edge_matching;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sp_graph::gen::grid_2d;
    use sp_graph::GraphBuilder;

    #[test]
    fn contract_halves_a_path() {
        // Path 0-1-2-3 with matching (0,1) (2,3) → 2 coarse vertices, 1 edge.
        let mut b = GraphBuilder::new(4);
        for i in 0..3 {
            b.add_edge(i, i + 1, 1.0);
        }
        let g = b.build();
        let m = Matching {
            mate: vec![1, 0, 3, 2],
        };
        let c = contract(&g, &m);
        assert_eq!(c.coarse.n(), 2);
        assert_eq!(c.coarse.m(), 1);
        assert_eq!(c.coarse.vwgt(0), 2.0);
        assert_eq!(c.coarse.vwgt(1), 2.0);
        c.coarse.validate().unwrap();
    }

    #[test]
    fn vertex_weight_is_conserved() {
        let g = grid_2d(15, 15);
        let mut rng = StdRng::seed_from_u64(4);
        let m = heavy_edge_matching(&g, &mut rng);
        let c = contract(&g, &m);
        assert!((c.coarse.total_vwgt() - g.total_vwgt()).abs() < 1e-9);
        c.coarse.validate().unwrap();
    }

    #[test]
    fn cross_pair_edge_weights_merge() {
        // Square 0-1-2-3-0 with matching (0,1),(2,3): coarse has the two
        // cross edges 1-2 and 3-0 merged into one edge of weight 2.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 3, 1.0);
        b.add_edge(3, 0, 1.0);
        let g = b.build();
        let m = Matching {
            mate: vec![1, 0, 3, 2],
        };
        let c = contract(&g, &m);
        assert_eq!(c.coarse.n(), 2);
        assert_eq!(c.coarse.m(), 1);
        let w = c.coarse.neighbors_w(0).next().unwrap().1;
        assert_eq!(w, 2.0);
    }

    #[test]
    fn map_is_consistent_with_matching() {
        let g = grid_2d(12, 12);
        let mut rng = StdRng::seed_from_u64(5);
        let m = heavy_edge_matching(&g, &mut rng);
        let c = contract(&g, &m);
        for v in 0..g.n() as u32 {
            assert_eq!(c.map[v as usize], c.map[m.mate[v as usize] as usize]);
        }
        // Coarse ids are dense.
        let mx = *c.map.iter().max().unwrap() as usize;
        assert_eq!(mx + 1, c.coarse.n());
    }

    #[test]
    fn validate_contraction_accepts_hem_output() {
        let g = grid_2d(20, 20);
        let mut rng = StdRng::seed_from_u64(8);
        let m = heavy_edge_matching(&g, &mut rng);
        let c = contract(&g, &m);
        validate_contraction(&g, &m, &c).unwrap();
    }

    #[test]
    fn validate_contraction_rejects_broken_map() {
        let g = grid_2d(10, 10);
        let mut rng = StdRng::seed_from_u64(8);
        let m = heavy_edge_matching(&g, &mut rng);
        let mut c = contract(&g, &m);
        // Point a matched vertex somewhere else: pair consistency breaks.
        let v = (0..g.n()).find(|&v| m.mate[v] != v as u32).unwrap();
        c.map[v] = (c.map[v] + 1) % c.coarse.n() as u32;
        let err = validate_contraction(&g, &m, &c).unwrap_err();
        assert!(err.contains("coarse"), "{err}");
    }

    #[test]
    fn contraction_shrinks_towards_half() {
        let g = grid_2d(30, 30);
        let mut rng = StdRng::seed_from_u64(6);
        let m = heavy_edge_matching(&g, &mut rng);
        let c = contract(&g, &m);
        let ratio = c.coarse.n() as f64 / g.n() as f64;
        assert!((0.5..0.62).contains(&ratio), "shrink ratio {ratio}");
    }
}
