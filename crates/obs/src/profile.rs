//! Per-phase resource profiling: host wall time + peak RSS per pipeline
//! phase, accumulated across recursive bisections.
//!
//! The profiler is deliberately dumb about *what* the phases are — core's
//! `ProfilingObserver` adapter decides where phase boundaries fall (the
//! `PipelineObserver` checkpoints) and calls [`PhaseProfiler::mark`] at
//! each. Everything between two marks is attributed to the named phase;
//! recursive bisections re-enter the same phases, so samples accumulate
//! per name rather than appending a new row each time.
//!
//! RSS is sampled at each mark via [`crate::rss`]; the per-phase figure is
//! the maximum RSS observed at that phase's closing marks — a boundary
//! sample, not a continuous peak, which is the honest trade for staying
//! passive (no sampler thread perturbing the run).

use std::time::Instant;

#[derive(Clone, Debug)]
pub struct PhaseSample {
    pub phase: String,
    pub wall_ms: f64,
    /// Max RSS in bytes observed at this phase's closing boundaries;
    /// `None` where /proc is unavailable.
    pub rss_bytes: Option<u64>,
    /// How many spans were folded into this row (≥ 1; bisection recursion
    /// revisits phases).
    pub spans: u64,
}

pub struct PhaseProfiler {
    started: Instant,
    last_mark: Instant,
    samples: Vec<PhaseSample>,
}

impl Default for PhaseProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseProfiler {
    pub fn new() -> PhaseProfiler {
        let now = Instant::now();
        PhaseProfiler {
            started: now,
            last_mark: now,
            samples: Vec::new(),
        }
    }

    /// Close the span since the previous mark and attribute it to `phase`.
    pub fn mark(&mut self, phase: &str) {
        let now = Instant::now();
        let wall_ms = now.duration_since(self.last_mark).as_secs_f64() * 1e3;
        self.last_mark = now;
        let rss = crate::rss::current_rss_bytes();
        match self.samples.iter_mut().find(|s| s.phase == phase) {
            Some(s) => {
                s.wall_ms += wall_ms;
                s.rss_bytes = match (s.rss_bytes, rss) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                };
                s.spans += 1;
            }
            None => self.samples.push(PhaseSample {
                phase: phase.to_string(),
                wall_ms,
                rss_bytes: rss,
                spans: 1,
            }),
        }
    }

    /// Total wall time since the profiler was created, in milliseconds.
    pub fn total_wall_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }

    pub fn samples(&self) -> &[PhaseSample] {
        &self.samples
    }

    /// Render the samples as a JSON array for a `phase_profile` record:
    /// `[{"phase":"coarsen","wall_ms":1.2,"rss_mb":34.5,"spans":3},…]`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"phase\":\"{}\",\"wall_ms\":{},\"rss_mb\":{},\"spans\":{}}}",
                sp_trace::json::escape(&s.phase),
                sp_trace::json::num(s.wall_ms),
                s.rss_bytes
                    .map(|b| sp_trace::json::num(crate::rss::bytes_to_mib(b)))
                    .unwrap_or_else(|| "null".to_string()),
                s.spans
            ));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_accumulate_per_phase() {
        let mut p = PhaseProfiler::new();
        p.mark("coarsen");
        p.mark("embed");
        p.mark("coarsen"); // recursion revisits
        assert_eq!(p.samples().len(), 2);
        let c = &p.samples()[0];
        assert_eq!(c.phase, "coarsen");
        assert_eq!(c.spans, 2);
        assert!(c.wall_ms >= 0.0);
        let e = &p.samples()[1];
        assert_eq!(e.spans, 1);
    }

    #[test]
    fn json_is_well_formed() {
        let mut p = PhaseProfiler::new();
        p.mark("partition");
        let j = p.to_json();
        assert!(j.starts_with('['), "{j}");
        assert!(j.contains("\"phase\":\"partition\""), "{j}");
        assert!(j.contains("\"spans\":1"), "{j}");
        assert!(j.ends_with(']'), "{j}");
        // Empty profiler → empty array, still valid JSON.
        assert_eq!(PhaseProfiler::new().to_json(), "[]");
    }

    #[test]
    fn total_wall_dominates_phase_sum() {
        let mut p = PhaseProfiler::new();
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.mark("a");
        let sum: f64 = p.samples().iter().map(|s| s.wall_ms).sum();
        assert!(
            p.total_wall_ms() >= sum * 0.99,
            "{} < {}",
            p.total_wall_ms(),
            sum
        );
    }
}
