//! Structured JSONL event log.
//!
//! One JSON object per line, append-only, flushed per record so a crash
//! loses at most the record being written. Records are built with
//! [`Record`] — a tiny ordered field builder over the workspace's
//! serde-free JSON helpers — and every record carries:
//!
//! - `ts_ms`: wall-clock milliseconds since the Unix epoch (host time;
//!   simulated time stays in sp-trace),
//! - `event`: the record type (`job_enqueued`, `phase_profile`, …),
//! - `job`: the job ID when the event belongs to one.
//!
//! The sink is `Mutex<Writer>`; job runners format their record outside
//! the lock and hold it only for one `write_all` + `flush`, so the log
//! can be shared by a worker pool without serialising the workers.

use sp_trace::json;
use std::io::Write;
use std::sync::Mutex;

/// An ordered JSON-object builder. Field order is emission order, which
/// keeps the logs grep-friendly (`^{"ts_ms":…,"event":"…"`).
pub struct Record {
    buf: String,
}

impl Record {
    pub fn new(event: &str) -> Record {
        let ts_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut r = Record {
            buf: String::with_capacity(128),
        };
        r.buf.push('{');
        r.raw("ts_ms", &ts_ms.to_string());
        r.str("event", event);
        r
    }

    fn raw(&mut self, key: &str, value: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&json::escape(key));
        self.buf.push_str("\":");
        self.buf.push_str(value);
    }

    pub fn str(&mut self, key: &str, value: &str) -> &mut Record {
        let quoted = format!("\"{}\"", json::escape(value));
        self.raw(key, &quoted);
        self
    }

    pub fn u64(&mut self, key: &str, value: u64) -> &mut Record {
        self.raw(key, &value.to_string());
        self
    }

    pub fn i64(&mut self, key: &str, value: i64) -> &mut Record {
        self.raw(key, &value.to_string());
        self
    }

    pub fn f64(&mut self, key: &str, value: f64) -> &mut Record {
        self.raw(key, &json::num(value));
        self
    }

    pub fn bool(&mut self, key: &str, value: bool) -> &mut Record {
        self.raw(key, if value { "true" } else { "false" });
        self
    }

    /// Embed a pre-rendered JSON value verbatim (object, array, …). The
    /// caller vouches for its validity.
    pub fn json(&mut self, key: &str, value: &str) -> &mut Record {
        self.raw(key, value);
        self
    }

    pub fn finish(&self) -> String {
        let mut s = self.buf.clone();
        s.push('}');
        s
    }
}

/// An append-only JSONL sink. Clone the `Arc` around it freely; `emit`
/// is the only lock-taking call.
pub struct JsonlLog {
    sink: Mutex<Box<dyn Write + Send>>,
}

impl JsonlLog {
    /// Open (append) a log file at `path`.
    pub fn open(path: &str) -> std::io::Result<JsonlLog> {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JsonlLog {
            sink: Mutex::new(Box::new(std::io::BufWriter::new(f))),
        })
    }

    /// A log writing to an arbitrary sink (tests, stderr).
    pub fn to_writer(w: Box<dyn Write + Send>) -> JsonlLog {
        JsonlLog {
            sink: Mutex::new(w),
        }
    }

    /// Write one record and flush. I/O errors are swallowed: observability
    /// must never take down the observed process.
    pub fn emit(&self, record: &Record) {
        let line = record.finish();
        let mut sink = self.sink.lock().unwrap();
        let _ = sink.write_all(line.as_bytes());
        let _ = sink.write_all(b"\n");
        let _ = sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A Write impl capturing into a shared buffer.
    struct Shared(Arc<StdMutex<Vec<u8>>>);
    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn records_are_one_json_object_per_line() {
        let buf = Arc::new(StdMutex::new(Vec::new()));
        let log = JsonlLog::to_writer(Box::new(Shared(buf.clone())));
        let mut r = Record::new("job_done");
        r.u64("job", 7)
            .str("method", "sp")
            .f64("latency_ms", 12.5)
            .bool("cache_hit", false);
        log.emit(&r);
        let mut r2 = Record::new("phase_profile");
        r2.u64("job", 8).json("phases", "[{\"phase\":\"embed\"}]");
        log.emit(&r2);

        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"job_done\""));
        assert!(lines[0].contains("\"job\":7"));
        assert!(lines[0].contains("\"cache_hit\":false"));
        assert!(lines[1].contains("\"phases\":[{\"phase\":\"embed\"}]"));
        for l in &lines {
            assert!(l.starts_with("{\"ts_ms\":"), "ts first: {l}");
            assert!(l.ends_with('}'));
        }
    }

    #[test]
    fn strings_are_escaped() {
        let mut r = Record::new("x");
        r.str("msg", "a\"b\nc");
        let s = r.finish();
        assert!(s.contains("\"msg\":\"a\\\"b\\nc\""), "{s}");
    }

    #[test]
    fn file_log_appends() {
        let dir = std::env::temp_dir().join(format!("sp-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.jsonl");
        let p = path.to_str().unwrap();
        {
            let log = JsonlLog::open(p).unwrap();
            log.emit(Record::new("a").u64("n", 1));
        }
        {
            let log = JsonlLog::open(p).unwrap();
            log.emit(Record::new("b").u64("n", 2));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
