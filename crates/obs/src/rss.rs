//! Process memory sampling from `/proc/self/status`.
//!
//! `VmRSS` is the current resident set, `VmHWM` the peak ("high water
//! mark") since process start — or since the last peak reset. Linux lets
//! a process reset its own VmHWM by writing `5` to
//! `/proc/self/clear_refs`, which is what makes *per-run* peak RSS
//! possible in `sp-bench wallclock`: reset, run, sample.
//!
//! On non-Linux hosts (or a hardened /proc) every call degrades to
//! `None`/no-op; callers must treat absence as "unknown", not zero.

/// Parse a `VmRSS:   123456 kB`-style line into bytes.
fn parse_kb_line(line: &str) -> Option<u64> {
    let rest = line.split(':').nth(1)?;
    let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
    Some(kb * 1024)
}

fn read_status_field(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with(field))
        .and_then(parse_kb_line)
}

/// Current resident set size in bytes.
pub fn current_rss_bytes() -> Option<u64> {
    read_status_field("VmRSS:")
}

/// Peak resident set size in bytes (since start or last [`reset_peak`]).
pub fn peak_rss_bytes() -> Option<u64> {
    read_status_field("VmHWM:")
}

/// Reset the kernel's peak-RSS high-water mark to the current RSS.
/// Returns `false` where unsupported (non-Linux, restricted /proc) —
/// peak values then cover the whole process lifetime.
pub fn reset_peak() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Bytes → MiB with one decimal, for human-facing reports.
pub fn bytes_to_mib(b: u64) -> f64 {
    (b as f64 / (1024.0 * 1024.0) * 10.0).round() / 10.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_lines() {
        assert_eq!(parse_kb_line("VmRSS:\t  123456 kB"), Some(123456 * 1024));
        assert_eq!(parse_kb_line("VmHWM:      8 kB"), Some(8 * 1024));
        assert_eq!(parse_kb_line("garbage"), None);
    }

    #[test]
    fn live_sampling_is_consistent_where_supported() {
        // If /proc is available (Linux CI), RSS must be nonzero and peak
        // must dominate current.
        if let (Some(cur), Some(peak)) = (current_rss_bytes(), peak_rss_bytes()) {
            assert!(cur > 0);
            assert!(
                peak >= cur / 2,
                "peak {peak} implausibly below current {cur}"
            );
        }
    }

    #[test]
    fn reset_peak_tightens_the_high_water_mark() {
        if !reset_peak() {
            return; // unsupported host: nothing to assert
        }
        // After a reset, the peak tracks from the current RSS again, so it
        // must be within an order of magnitude of current (not a stale
        // process-lifetime maximum after a large allocation dies).
        let big: Vec<u8> = vec![1; 64 << 20];
        std::hint::black_box(&big);
        drop(big);
        assert!(reset_peak());
        let (cur, peak) = (current_rss_bytes().unwrap(), peak_rss_bytes().unwrap());
        assert!(
            peak <= cur + (16 << 20),
            "peak {peak} should be near current {cur} after reset"
        );
    }

    #[test]
    fn mib_rounding() {
        assert_eq!(bytes_to_mib(1024 * 1024), 1.0);
        assert_eq!(bytes_to_mib(1536 * 1024), 1.5);
    }
}
