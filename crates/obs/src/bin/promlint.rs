//! promlint — validate Prometheus text exposition on stdin or from files.
//!
//! In-repo replacement for `promtool check metrics`, so CI can lint a
//! scrape without network access or external binaries. Exit 0 when every
//! input is clean; exit 1 listing each problem otherwise.
//!
//! Usage:
//!   promlint [FILE...]        # no files: read stdin

use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut failed = false;
    if args.is_empty() {
        let mut text = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut text) {
            eprintln!("promlint: stdin: {e}");
            std::process::exit(2);
        }
        failed |= lint_one("<stdin>", &text);
    } else {
        for path in &args {
            match std::fs::read_to_string(path) {
                Ok(text) => failed |= lint_one(path, &text),
                Err(e) => {
                    eprintln!("promlint: {path}: {e}");
                    failed = true;
                }
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

/// Returns true when the input has problems.
fn lint_one(name: &str, text: &str) -> bool {
    let errs = sp_obs::prom::lint(text);
    if errs.is_empty() {
        let samples = text
            .lines()
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .count();
        eprintln!("promlint: {name}: OK ({samples} samples)");
        false
    } else {
        for e in &errs {
            eprintln!("promlint: {name}: {e}");
        }
        true
    }
}
