//! The metrics registry: named counters, gauges, and histograms.
//!
//! Design goals, in order:
//!
//! 1. **Lock-cheap on the hot path.** Every instrument is a handful of
//!    atomics behind an `Arc`; incrementing a counter or observing a
//!    histogram sample takes no lock. The registry's own mutex is touched
//!    only at registration (once per instrument, typically at service
//!    start) and at scrape time.
//! 2. **Provably passive.** Instruments never allocate after registration
//!    and never touch the code under observation — a counter bump cannot
//!    change a partition bit. The sp-verify passivity fuzz enforces this
//!    end to end.
//! 3. **Saturating, never wrapping.** A counter that would overflow pins
//!    at `u64::MAX` instead of wrapping to a small value that monitoring
//!    would misread as a reset.
//!
//! Instruments carry an optional label set fixed at registration
//! (`histogram_with(name, …, &[("phase", "embed")])`); series sharing a
//! name form one family in the Prometheus exposition. Registering the
//! same `(name, labels)` twice returns the existing instrument, so
//! independent subsystems can share a series without coordination.

use crate::hist::Histogram;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically non-decreasing counter. Saturates at `u64::MAX`.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    /// Saturating add: a counter pinned at `u64::MAX` stays there rather
    /// than wrapping (a wrap would read as a counter reset downstream).
    pub fn add(&self, n: u64) {
        let mut cur = self.v.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            match self
                .v
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// An instantaneous value that can move both ways (queue depth, active
/// workers), plus a monotone `set_max` for high-water marks.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.v.fetch_add(d, Ordering::Relaxed);
    }

    pub fn sub(&self, d: i64) {
        self.v.fetch_sub(d, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if it is below it (high-water marks).
    pub fn set_max(&self, v: i64) {
        self.v.fetch_max(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// What kind of instrument a family holds (all series of one name share
/// a kind — enforced at registration).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    pub fn prom_type(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
pub(crate) enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

pub(crate) struct Series {
    /// `(key, value)` label pairs, fixed at registration.
    pub labels: Vec<(String, String)>,
    pub instrument: Instrument,
}

pub(crate) struct Family {
    pub name: String,
    pub help: String,
    pub kind: Kind,
    pub series: Vec<Series>,
}

/// The registry: a set of metric families shared by everything that
/// observes one process. Cheap to clone handles out of; the internal lock
/// guards only registration and scrape.
#[derive(Default)]
pub struct Registry {
    pub(crate) families: Mutex<Vec<Family>>,
}

/// A metric name usable in the Prometheus exposition format.
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn valid_label(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with("__")
        && name
            .chars()
            .enumerate()
            .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit()))
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        mk: impl FnOnce() -> Instrument,
    ) -> Instrument {
        assert!(valid_name(name), "bad metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_label(k), "bad label name {k:?} on {name}");
        }
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut fams = self.families.lock().unwrap();
        if let Some(f) = fams.iter_mut().find(|f| f.name == name) {
            assert_eq!(
                f.kind, kind,
                "metric {name} registered as {:?} and {:?}",
                f.kind, kind
            );
            if let Some(s) = f.series.iter().find(|s| s.labels == labels) {
                return s.instrument.clone();
            }
            let instrument = mk();
            f.series.push(Series {
                labels,
                instrument: instrument.clone(),
            });
            return instrument;
        }
        let instrument = mk();
        fams.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            series: vec![Series {
                labels,
                instrument: instrument.clone(),
            }],
        });
        instrument
    }

    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, Kind::Counter, labels, || {
            Instrument::Counter(Arc::new(Counter::new()))
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, Kind::Gauge, labels, || {
            Instrument::Gauge(Arc::new(Gauge::new()))
        }) {
            Instrument::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, help, bounds, &[])
    }

    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.register(name, help, Kind::Histogram, labels, || {
            Instrument::Histogram(Arc::new(Histogram::new(bounds)))
        }) {
            Instrument::Histogram(h) => h,
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX, "must pin, not wrap");
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_moves_both_ways_and_tracks_high_water() {
        let g = Gauge::new();
        g.add(3);
        g.sub(1);
        assert_eq!(g.get(), 2);
        g.set_max(10);
        g.set_max(4);
        assert_eq!(g.get(), 10, "set_max never lowers");
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn reregistration_returns_the_same_instrument() {
        let r = Registry::new();
        let a = r.counter("sp_test_total", "help");
        let b = r.counter("sp_test_total", "help");
        a.inc();
        assert_eq!(b.get(), 1, "same series, same atomics");
        let h1 = r.histogram_with("sp_h", "h", &[1.0, 2.0], &[("phase", "embed")]);
        let h2 = r.histogram_with("sp_h", "h", &[1.0, 2.0], &[("phase", "embed")]);
        h1.observe(1.5);
        assert_eq!(h2.count(), 1);
        // A different label set is a distinct series in the same family.
        let h3 = r.histogram_with("sp_h", "h", &[1.0, 2.0], &[("phase", "coarsen")]);
        assert_eq!(h3.count(), 0);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflicts_are_rejected() {
        let r = Registry::new();
        r.counter("sp_x", "x");
        r.gauge("sp_x", "x");
    }

    #[test]
    #[should_panic(expected = "bad metric name")]
    fn invalid_names_are_rejected() {
        Registry::new().counter("2bad-name", "x");
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let r = Registry::new();
        let c = r.counter("sp_conc_total", "x");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
