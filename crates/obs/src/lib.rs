//! sp-obs — host-runtime observability for the ScalaPart workspace.
//!
//! This crate watches the *host* process: wall-clock time, resident
//! memory, queue depths, cache hit rates. It is the complement of
//! sp-trace, which records the *simulated* machine (message counts,
//! simulated seconds, deterministic event streams). The two never mix:
//! sp-trace numbers are bit-reproducible artifacts of the model; sp-obs
//! numbers describe one particular run on one particular box.
//!
//! Pieces:
//! - [`registry`] — lock-cheap counters/gauges/histograms ([`Registry`]);
//! - [`hist`] — fixed-bucket histograms with p50/p90/p99 summaries;
//! - [`prom`] — Prometheus text exposition 0.0.4 render + an in-repo lint
//!   (used by CI instead of an external promtool);
//! - [`log`] — structured JSONL event log ([`JsonlLog`], [`Record`]);
//! - [`rss`] — `/proc/self/status` VmRSS/VmHWM sampling and per-run peak
//!   reset;
//! - [`profile`] — per-phase wall + RSS accumulation ([`PhaseProfiler`]).
//!
//! The cardinal rule is passivity: observing a run must not change its
//! outputs. Instruments are atomics (no allocation, no locks on the hot
//! path), the profiler samples only at phase boundaries, and sp-verify
//! carries a fuzz asserting bit-identical partitions with observability
//! on and off.

pub mod hist;
pub mod log;
pub mod profile;
pub mod prom;
pub mod registry;
pub mod rss;

pub use hist::Histogram;
pub use log::{JsonlLog, Record};
pub use profile::{PhaseProfiler, PhaseSample};
pub use registry::{Counter, Gauge, Kind, Registry};
