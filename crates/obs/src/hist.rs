//! Fixed-bucket histograms with lock-free observation.
//!
//! Buckets are chosen at registration and never change, so `observe` is a
//! binary search plus two atomic adds — safe to call from worker threads
//! on every job. Quantiles (p50/p90/p99) are estimated at read time by
//! linear interpolation within the owning bucket, the same estimate
//! Prometheus' `histogram_quantile` computes from the exposition; the
//! error is bounded by the bucket width, which is the deal fixed-bucket
//! histograms make for a lock-free hot path.
//!
//! Edge cases are defined, not accidental:
//! - **zero samples** — every quantile is 0, `sum` is 0;
//! - **out-of-range values** — samples above the last bound land in the
//!   implicit `+Inf` bucket (quantiles then report the last finite bound:
//!   the histogram honestly can't resolve further); negative samples
//!   clamp into the first bucket;
//! - **non-finite values** — NaN/±Inf are counted (the event happened)
//!   but contribute 0 to the sum so one poisoned sample cannot destroy
//!   the aggregate;
//! - **saturating counts** — bucket counts pin at `u64::MAX` like
//!   [`Counter`](crate::registry::Counter).

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Histogram {
    /// Finite upper bounds, strictly increasing. An implicit `+Inf`
    /// bucket follows the last.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; `buckets[i]` counts samples with
    /// `value <= bounds[i]` (last bucket: everything else).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of finite samples, stored as f64 bits and CAS-added.
    sum_bits: AtomicU64,
}

fn saturating_inc(a: &AtomicU64) {
    let mut cur = a.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(1);
        match a.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl Histogram {
    /// `bounds` must be finite, strictly increasing, and non-empty.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "bounds must be strictly increasing");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "bounds must be finite (the +Inf bucket is implicit)"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Standard latency bounds in milliseconds: 0.1 ms … ~100 s in
    /// roughly ×3 steps.
    pub fn latency_ms_bounds() -> Vec<f64> {
        vec![
            0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1_000.0, 3_000.0, 10_000.0, 30_000.0,
            100_000.0,
        ]
    }

    pub fn observe(&self, value: f64) {
        let idx = if value.is_nan() {
            // The event happened; count it where it can't skew quantiles
            // downward (the overflow bucket).
            self.buckets.len() - 1
        } else {
            self.bounds.partition_point(|&b| b < value)
        };
        saturating_inc(&self.buckets[idx]);
        saturating_inc(&self.count);
        if value.is_finite() {
            let mut cur = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + value).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Upper bounds (finite part) and per-bucket counts, cumulative form
    /// left to the caller. Used by the Prometheus renderer.
    pub fn snapshot(&self) -> (Vec<f64>, Vec<u64>) {
        (
            self.bounds.clone(),
            self.buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        )
    }

    /// Estimate the `q`-quantile (0 ≤ q ≤ 1) by interpolating within the
    /// owning bucket. Zero samples → 0. Samples beyond the last finite
    /// bound report that bound.
    pub fn quantile(&self, q: f64) -> f64 {
        let (bounds, counts) = self.snapshot();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based, at least 1.
        let rank = ((total as f64 * q).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            let prev_seen = seen;
            seen = seen.saturating_add(c);
            if seen >= rank {
                if i >= bounds.len() {
                    // +Inf bucket: the honest answer is "at least the
                    // last finite bound".
                    return *bounds.last().unwrap();
                }
                let lo = if i == 0 { 0.0 } else { bounds[i - 1] };
                let hi = bounds[i];
                if c == 0 {
                    return hi;
                }
                let frac = (rank - prev_seen) as f64 / c as f64;
                return lo + (hi - lo) * frac.clamp(0.0, 1.0);
            }
        }
        *bounds.last().unwrap()
    }

    /// `(p50, p90, p99)` in one pass-friendly call.
    pub fn summary(&self) -> (f64, f64, f64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_samples_are_all_zero() {
        let h = Histogram::new(&[1.0, 10.0]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
        let (bounds, counts) = h.snapshot();
        assert_eq!(bounds, vec![1.0, 10.0]);
        assert_eq!(counts, vec![0, 0, 0]);
    }

    #[test]
    fn samples_land_in_the_right_buckets() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        let (_, counts) = h.snapshot();
        // 0.5 and 1.0 (≤ 1.0) | 5.0 | 50.0 | 500.0 overflow
        assert_eq!(counts, vec![2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 556.5).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_values_clamp_not_crash() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(-5.0); // below range → first bucket
        h.observe(1e300); // far above → +Inf bucket
        let (_, counts) = h.snapshot();
        assert_eq!(counts, vec![1, 0, 1]);
        // Quantiles can't resolve past the last finite bound.
        assert_eq!(h.quantile(0.99), 2.0);
        // The negative sample still contributes to the sum (finite).
        assert!((h.sum() - (1e300 - 5.0)).abs() < 1e285);
    }

    #[test]
    fn non_finite_samples_count_but_do_not_poison_the_sum() {
        let h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(0.5);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 0.5, "NaN/Inf must not reach the sum");
        let (_, counts) = h.snapshot();
        assert_eq!(counts, vec![1, 2], "NaN and +Inf land in the last bucket");
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new(&[10.0, 20.0, 30.0]);
        // 10 samples in (10, 20].
        for _ in 0..10 {
            h.observe(15.0);
        }
        let p50 = h.quantile(0.5);
        assert!((10.0..=20.0).contains(&p50), "p50 {p50}");
        assert_eq!(h.quantile(1.0), 20.0);
        // Add 90 samples in (20, 30] → p50 moves into the third bucket.
        for _ in 0..90 {
            h.observe(25.0);
        }
        let p50 = h.quantile(0.5);
        assert!((20.0..=30.0).contains(&p50), "p50 {p50}");
        let (p50s, p90, p99) = h.summary();
        assert!(p50s <= p90 && p90 <= p99, "{p50s} {p90} {p99}");
    }

    #[test]
    fn saturating_counts_pin_at_max() {
        let h = Histogram::new(&[1.0]);
        // Force the count to the brink, then step over it.
        h.count.store(u64::MAX - 1, Ordering::Relaxed);
        h.buckets[0].store(u64::MAX - 1, Ordering::Relaxed);
        h.observe(0.5);
        h.observe(0.5);
        assert_eq!(h.count(), u64::MAX);
        let (_, counts) = h.snapshot();
        assert_eq!(counts[0], u64::MAX);
        // Quantiles still answer (no overflow panic in the scan).
        assert!(h.quantile(0.5) <= 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one bound")]
    fn empty_bounds_are_rejected() {
        Histogram::new(&[]);
    }
}
