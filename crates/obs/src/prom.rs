//! Prometheus text exposition (format 0.0.4) — render and lint.
//!
//! The renderer walks a [`Registry`](crate::registry::Registry) snapshot
//! and emits one block per family: `# HELP`, `# TYPE`, then one sample
//! line per series. Histograms expand to cumulative `_bucket{le=…}`
//! lines plus `_sum` and `_count`, exactly what `histogram_quantile`
//! expects on the scraping side.
//!
//! The lint exists so CI can validate a scrape without an external
//! `promtool` binary: it checks the structural rules a real Prometheus
//! server enforces at ingest (names, label syntax, TYPE/HELP placement,
//! cumulative bucket monotonicity, `+Inf` bucket == `_count`).

use crate::registry::{Instrument, Registry};
use std::fmt::Write as _;

/// Format a float the way Prometheus clients conventionally do: integers
/// without a trailing `.0`, non-finite values as `+Inf`/`-Inf`/`NaN`.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        return "NaN".to_string();
    }
    if v.is_infinite() {
        return if v > 0.0 { "+Inf" } else { "-Inf" }.to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Escape a label value: backslash, double-quote, and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape a HELP text: backslash and newline (quotes are fine there).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Render the registry in Prometheus text exposition format 0.0.4.
pub fn render(registry: &Registry) -> String {
    let fams = registry.families.lock().unwrap();
    let mut out = String::new();
    for f in fams.iter() {
        let _ = writeln!(out, "# HELP {} {}", f.name, escape_help(&f.help));
        let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.prom_type());
        for s in &f.series {
            match &s.instrument {
                Instrument::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        f.name,
                        label_block(&s.labels, None),
                        c.get()
                    );
                }
                Instrument::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        f.name,
                        label_block(&s.labels, None),
                        g.get()
                    );
                }
                Instrument::Histogram(h) => {
                    let (bounds, counts) = h.snapshot();
                    let mut cum = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        cum = cum.saturating_add(*c);
                        let le = if i < bounds.len() {
                            fmt_value(bounds[i])
                        } else {
                            "+Inf".to_string()
                        };
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            f.name,
                            label_block(&s.labels, Some(("le", &le))),
                            cum
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        f.name,
                        label_block(&s.labels, None),
                        fmt_value(h.sum())
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        f.name,
                        label_block(&s.labels, None),
                        h.count()
                    );
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Lint
// ---------------------------------------------------------------------------

fn is_valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn is_valid_label_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .enumerate()
            .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit()))
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

fn parse_labels(s: &str, line_no: usize, errors: &mut Vec<String>) -> Vec<(String, String)> {
    // s is the text inside `{...}`, e.g. `phase="embed",le="+Inf"`.
    let mut out = Vec::new();
    let mut rest = s;
    while !rest.is_empty() {
        let Some(eq) = rest.find('=') else {
            errors.push(format!("line {line_no}: label pair missing '='"));
            return out;
        };
        let key = rest[..eq].trim().to_string();
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            errors.push(format!("line {line_no}: label value not quoted"));
            return out;
        }
        rest = &rest[1..];
        let mut val = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => val.push('\n'),
                    Some((_, '\\')) => val.push('\\'),
                    Some((_, '"')) => val.push('"'),
                    _ => {
                        errors.push(format!("line {line_no}: bad escape in label value"));
                        return out;
                    }
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                _ => val.push(c),
            }
        }
        let Some(end) = end else {
            errors.push(format!("line {line_no}: unterminated label value"));
            return out;
        };
        out.push((key, val));
        rest = rest[end + 1..].trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            errors.push(format!("line {line_no}: junk after label value: {rest:?}"));
            return out;
        }
    }
    out
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse::<f64>().ok(),
    }
}

/// Validate a Prometheus text exposition. Returns the list of problems;
/// empty means the text would be accepted by a Prometheus scrape.
pub fn lint(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    // name -> declared TYPE
    let mut types: Vec<(String, String)> = Vec::new();
    let mut helps: Vec<String> = Vec::new();
    let mut samples: Vec<(usize, Sample)> = Vec::new();
    let mut seen_series: Vec<String> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let Some((name, _)) = rest.split_once(' ') else {
                errors.push(format!("line {line_no}: HELP without text"));
                continue;
            };
            if !is_valid_metric_name(name) {
                errors.push(format!("line {line_no}: HELP for invalid name {name:?}"));
            }
            if helps.iter().any(|h| h == name) {
                errors.push(format!("line {line_no}: duplicate HELP for {name}"));
            }
            helps.push(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let Some((name, ty)) = rest.split_once(' ') else {
                errors.push(format!("line {line_no}: TYPE without a type"));
                continue;
            };
            if !is_valid_metric_name(name) {
                errors.push(format!("line {line_no}: TYPE for invalid name {name:?}"));
            }
            if !matches!(
                ty,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                errors.push(format!("line {line_no}: unknown type {ty:?}"));
            }
            if types.iter().any(|(n, _)| n == name) {
                errors.push(format!("line {line_no}: duplicate TYPE for {name}"));
            }
            // TYPE must precede any sample of that family.
            let owns = |s: &str| {
                s == name
                    || (s.starts_with(name)
                        && matches!(&s[name.len()..], "_bucket" | "_sum" | "_count"))
            };
            if samples.iter().any(|(_, s)| owns(&s.name)) {
                errors.push(format!("line {line_no}: TYPE for {name} after its samples"));
            }
            types.push((name.to_string(), ty.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        // Sample line: name[{labels}] value [timestamp]
        let (name_labels, value_part) = match line.find('{') {
            Some(brace) => {
                let Some(close) = line.rfind('}') else {
                    errors.push(format!("line {line_no}: unterminated label block"));
                    continue;
                };
                (
                    (&line[..brace], Some(&line[brace + 1..close])),
                    line[close + 1..].trim(),
                )
            }
            None => {
                let Some((n, v)) = line.split_once(char::is_whitespace) else {
                    errors.push(format!("line {line_no}: sample without value"));
                    continue;
                };
                ((n, None), v.trim())
            }
        };
        let (name, labels_src) = name_labels;
        if !is_valid_metric_name(name) {
            errors.push(format!("line {line_no}: invalid metric name {name:?}"));
            continue;
        }
        let labels = match labels_src {
            Some(src) => parse_labels(src, line_no, &mut errors),
            None => Vec::new(),
        };
        for (k, _) in &labels {
            if !is_valid_label_name(k) {
                errors.push(format!("line {line_no}: invalid label name {k:?}"));
            }
        }
        // Duplicate (name, labels) series are an ingest error.
        let series_key = {
            let mut ls: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            ls.sort();
            format!("{name}|{}", ls.join(","))
        };
        if seen_series.contains(&series_key) {
            errors.push(format!("line {line_no}: duplicate series {series_key}"));
        }
        seen_series.push(series_key);
        let value_str = value_part.split_whitespace().next().unwrap_or("");
        let Some(value) = parse_value(value_str) else {
            errors.push(format!("line {line_no}: unparseable value {value_str:?}"));
            continue;
        };
        samples.push((
            line_no,
            Sample {
                name: name.to_string(),
                labels,
                value,
            },
        ));
    }

    // Histogram structural checks.
    for (name, ty) in &types {
        if ty != "histogram" {
            // Counters must not be negative.
            if ty == "counter" {
                for (ln, s) in &samples {
                    if &s.name == name && s.value < 0.0 {
                        errors.push(format!("line {ln}: counter {name} is negative"));
                    }
                }
            }
            continue;
        }
        let bucket_name = format!("{name}_bucket");
        let count_name = format!("{name}_count");
        // Group buckets by their non-`le` labels.
        let mut groups: Vec<(String, Vec<(f64, f64)>)> = Vec::new(); // key -> (le, cum)
        for (ln, s) in &samples {
            if s.name != bucket_name {
                continue;
            }
            let Some(le) = s.labels.iter().find(|(k, _)| k == "le") else {
                errors.push(format!("line {ln}: {bucket_name} without le label"));
                continue;
            };
            let Some(le_v) = parse_value(&le.1) else {
                errors.push(format!("line {ln}: bad le value {:?}", le.1));
                continue;
            };
            let mut key: Vec<String> = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            key.sort();
            let key = key.join(",");
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => v.push((le_v, s.value)),
                None => groups.push((key, vec![(le_v, s.value)])),
            }
        }
        if groups.is_empty() {
            errors.push(format!("histogram {name} has no _bucket samples"));
        }
        for (key, buckets) in &groups {
            let mut prev = f64::NEG_INFINITY;
            let mut prev_cum = -1.0;
            let mut has_inf = false;
            let mut inf_cum = 0.0;
            for (le, cum) in buckets {
                if *le <= prev {
                    errors.push(format!(
                        "histogram {name}{{{key}}}: le values not increasing"
                    ));
                }
                if *cum < prev_cum {
                    errors.push(format!(
                        "histogram {name}{{{key}}}: bucket counts not cumulative"
                    ));
                }
                prev = *le;
                prev_cum = *cum;
                if le.is_infinite() {
                    has_inf = true;
                    inf_cum = *cum;
                }
            }
            if !has_inf {
                errors.push(format!("histogram {name}{{{key}}}: missing +Inf bucket"));
            }
            // +Inf bucket must equal _count for the same label set.
            let count = samples.iter().find(|(_, s)| {
                s.name == count_name && {
                    let mut k: Vec<String> =
                        s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                    k.sort();
                    k.join(",") == *key
                }
            });
            match count {
                Some((_, c)) if has_inf && c.value != inf_cum => {
                    errors.push(format!(
                        "histogram {name}{{{key}}}: +Inf bucket {} != _count {}",
                        inf_cum, c.value
                    ));
                }
                None => errors.push(format!("histogram {name}{{{key}}}: missing _count")),
                _ => {}
            }
        }
    }

    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with_everything() -> Registry {
        let r = Registry::new();
        let c = r.counter("sp_jobs_total", "Jobs ever submitted");
        c.add(3);
        let g = r.gauge("sp_queue_depth", "Jobs waiting in the queue");
        g.set(2);
        let h = r.histogram_with(
            "sp_job_latency_milliseconds",
            "End-to-end job latency",
            &[1.0, 10.0, 100.0],
            &[("phase", "total")],
        );
        h.observe(0.5);
        h.observe(5.0);
        h.observe(500.0);
        r
    }

    #[test]
    fn render_is_lint_clean() {
        let text = render(&registry_with_everything());
        let errs = lint(&text);
        assert!(
            errs.is_empty(),
            "lint errors: {errs:?}\n--- text ---\n{text}"
        );
    }

    #[test]
    fn render_shapes_histograms_correctly() {
        let text = render(&registry_with_everything());
        assert!(text.contains("# TYPE sp_job_latency_milliseconds histogram"));
        assert!(text.contains("sp_job_latency_milliseconds_bucket{phase=\"total\",le=\"1\"} 1"));
        assert!(text.contains("sp_job_latency_milliseconds_bucket{phase=\"total\",le=\"+Inf\"} 3"));
        assert!(text.contains("sp_job_latency_milliseconds_count{phase=\"total\"} 3"));
        assert!(text.contains("sp_jobs_total 3"));
        assert!(text.contains("sp_queue_depth 2"));
    }

    #[test]
    fn lint_catches_noncumulative_buckets() {
        let bad = "\
# HELP sp_h h
# TYPE sp_h histogram
sp_h_bucket{le=\"1\"} 5
sp_h_bucket{le=\"+Inf\"} 3
sp_h_sum 1
sp_h_count 3
";
        let errs = lint(bad);
        assert!(
            errs.iter().any(|e| e.contains("not cumulative")),
            "{errs:?}"
        );
    }

    #[test]
    fn lint_catches_missing_inf_bucket_and_count_mismatch() {
        let bad = "\
# HELP sp_h h
# TYPE sp_h histogram
sp_h_bucket{le=\"1\"} 2
sp_h_sum 1
sp_h_count 2
";
        let errs = lint(bad);
        assert!(errs.iter().any(|e| e.contains("missing +Inf")), "{errs:?}");

        let bad2 = "\
# HELP sp_h h
# TYPE sp_h histogram
sp_h_bucket{le=\"1\"} 2
sp_h_bucket{le=\"+Inf\"} 2
sp_h_sum 1
sp_h_count 3
";
        let errs = lint(bad2);
        assert!(errs.iter().any(|e| e.contains("!= _count")), "{errs:?}");
    }

    #[test]
    fn lint_catches_duplicate_series_and_bad_names() {
        let bad = "\
# TYPE sp_c counter
sp_c 1
sp_c 2
2bad 7
";
        let errs = lint(bad);
        assert!(
            errs.iter().any(|e| e.contains("duplicate series")),
            "{errs:?}"
        );
        assert!(
            errs.iter().any(|e| e.contains("invalid metric name")),
            "{errs:?}"
        );
    }

    #[test]
    fn lint_catches_type_after_samples() {
        let bad = "\
sp_c 1
# TYPE sp_c counter
";
        let errs = lint(bad);
        assert!(
            errs.iter().any(|e| e.contains("after its samples")),
            "{errs:?}"
        );
    }

    #[test]
    fn lint_accepts_escaped_label_values() {
        let ok = "\
# TYPE sp_g gauge
sp_g{path=\"a\\\\b\\\"c\\nd\"} 1
";
        let errs = lint(ok);
        assert!(errs.is_empty(), "{errs:?}");
    }
}
