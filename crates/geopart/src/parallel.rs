//! SP-PG7-NL: the parallel formulation of geometric mesh partitioning
//! (§3, "Parallel Geometric Mesh Partitioning").
//!
//! Key elements, as in the paper: sampling across ranks to compute the
//! centerpoint fast; great circles generated *redundantly* on every rank
//! (same seeded stream, no communication); every rank computes its local
//! contribution to each separator's cut; a reduction selects the best cut.
//! Circle offsets come from the gathered sample's median, so the split is
//! near-balanced without a distributed median search.

use crate::config::GeoConfig;
use crate::gmt::GeoPartResult;
use crate::separator::{median, Separator, SeparatorKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_geometry::{
    centerpoint, lift_normalized, normalize_for_lift, random_unit_vector, CenterpointConfig,
    ConformalMap, Point2, Point3,
};
use sp_graph::distr::Distribution;
use sp_graph::{Bisection, Graph};
use sp_machine::Machine;

/// Parallel geometric partition of an embedded graph.
///
/// `dist` assigns vertices to ranks (cut contributions are counted at the
/// owner of the lower endpoint). Communication and per-rank computation are
/// charged to `machine`; the result is identical for any rank count.
pub fn parallel_geometric_partition(
    g: &Graph,
    coords: &[Point2],
    dist: &Distribution,
    machine: &mut Machine,
    cfg: &GeoConfig,
    seed: u64,
) -> GeoPartResult {
    assert_eq!(coords.len(), g.n());
    assert_eq!(dist.p, machine.p());
    let p = machine.p();
    let n = g.n();
    let mut rng = StdRng::seed_from_u64(seed);

    // --- Normalisation: local moments + allreduce of 4 words.
    let (center, scale) = normalize_for_lift(coords);
    {
        let rank_sizes = dist.rank_sizes();
        let mut states: Vec<f64> = vec![0.0; p];
        machine.compute(&mut states, |r, _| rank_sizes[r] as f64);
        machine.allreduce_sum_costed(4);
    }

    // --- Sampling across ranks + allgather.
    let total_sample = cfg.sample_size.min(n);
    let stride = (n / total_sample.max(1)).max(1);
    let sample: Vec<Point2> = (0..n)
        .step_by(stride)
        .take(total_sample)
        .map(|v| coords[v])
        .collect();
    machine.allgather_costed(p * (2 * sample.len() / p.max(1)));
    let lifted_sample: Vec<Point3> = sample
        .iter()
        .map(|&s| lift_normalized(s, center, scale))
        .collect();

    // --- Redundant separator generation on every rank (identical stream).
    struct Try {
        map: ConformalMap,
        normal: Point3,
        offset: f64,
    }
    let cp_cfg = CenterpointConfig {
        sample_size: cfg.sample_size,
        iterations: 400,
    };
    let mut tries: Vec<Try> = Vec::with_capacity(cfg.total_tries());
    for _ in 0..cfg.n_centerpoints {
        let cp = centerpoint(&lifted_sample, &cp_cfg, &mut rng);
        let map = ConformalMap::centering(cp);
        let mapped_sample: Vec<Point3> = lifted_sample.iter().map(|&s| map.apply(s)).collect();
        for _ in 0..cfg.circles_per_centerpoint {
            let normal = random_unit_vector(&mut rng);
            let vals: Vec<f64> = mapped_sample.iter().map(|&s| normal.dot(s)).collect();
            let offset = median(&vals);
            tries.push(Try {
                map: map.clone(),
                normal,
                offset,
            });
        }
    }
    // (No line separators in the parallel formulation — the paper's NL.)
    {
        // Charge the redundant centerpoint + circle generation per rank.
        let cost = (cfg.sample_size * (cfg.n_centerpoints * 3 + cfg.total_tries())) as f64;
        let mut states: Vec<()> = vec![(); p];
        machine.compute(&mut states, |_, _| cost);
    }

    // --- Local cut and balance contributions per try, in parallel over
    // ranks; each rank scans its owned vertices and their edges.
    let rank_verts = dist.rank_vertices();
    let t = tries.len().max(1);
    let contribs: Vec<Vec<f64>> = {
        let tries_ref = &tries;
        let rank_verts_ref = &rank_verts;
        let mut states: Vec<Vec<f64>> = vec![vec![0.0; 2 * t]; p];
        machine.compute(&mut states, |r, acc| {
            let mut ops = 0.0;
            for &v in &rank_verts_ref[r] {
                let pv = lift_normalized(coords[v as usize], center, scale);
                for (ti, tr) in tries_ref.iter().enumerate() {
                    let sv = tr.normal.dot(tr.map.apply(pv)) - tr.offset;
                    if sv > 0.0 {
                        acc[2 * ti + 1] += 1.0; // side-1 population
                    }
                    for &u in g.neighbors(v) {
                        if u < v {
                            continue; // counted at the lower endpoint's owner
                        }
                        let pu = lift_normalized(coords[u as usize], center, scale);
                        let su = tr.normal.dot(tr.map.apply(pu)) - tr.offset;
                        if (sv > 0.0) != (su > 0.0) {
                            acc[2 * ti] += 1.0;
                        }
                        ops += 1.0;
                    }
                    ops += 1.0;
                }
            }
            ops
        });
        states
    };
    // --- Three short reductions (cut totals, balance totals, winner).
    let totals = machine.allreduce_sum(&contribs);
    machine.allreduce_sum_costed(1);
    let mut keys = vec![f64::INFINITY; p];
    let mut best_try = usize::MAX;
    let mut best_cut = usize::MAX;
    for ti in 0..t {
        let cut = totals[2 * ti] as usize;
        let side1 = totals[2 * ti + 1];
        let imb = (side1.max(n as f64 - side1)) / (n as f64 / 2.0) - 1.0;
        if side1 > 0.0 && side1 < n as f64 && imb <= cfg.balance_tol && cut < best_cut {
            best_cut = cut;
            best_try = ti;
        }
    }
    keys[0] = best_cut as f64;
    let _ = machine.allreduce_min_index(&keys);

    // --- Materialise the winning separator (or fall back to a line
    // median when nothing was eligible).
    if best_try != usize::MAX {
        let tr = &tries[best_try];
        let signed: Vec<f64> = coords
            .iter()
            .map(|&c| {
                tr.normal
                    .dot(tr.map.apply(lift_normalized(c, center, scale)))
                    - tr.offset
            })
            .collect();
        let sep = Separator {
            kind: SeparatorKind::Circle {
                normal: tr.normal,
                offset: tr.offset,
            },
            signed,
        };
        let bisection = Bisection::new(sep.sides());
        let cut = bisection.cut_edges(g);
        GeoPartResult {
            bisection,
            cut,
            separator: sep,
            try_cuts: vec![cut],
        }
    } else {
        let vals: Vec<f64> = coords.iter().map(|c| c.x).collect();
        let th = median(&vals);
        let mut signed: Vec<f64> = vals.iter().map(|&v| v - th).collect();
        // Guarantee non-degeneracy on tie plateaus by index split.
        let ones = signed.iter().filter(|&&s| s > 0.0).count();
        if ones == 0 || ones == n {
            for (i, s) in signed.iter_mut().enumerate() {
                *s = if i >= n / 2 { 1.0 } else { -1.0 };
            }
        }
        let sep = Separator {
            kind: SeparatorKind::Line {
                dir: Point2::new(1.0, 0.0),
                threshold: th,
            },
            signed,
        };
        let bisection = Bisection::new(sep.sides());
        let cut = bisection.cut_edges(g);
        GeoPartResult {
            bisection,
            cut,
            separator: sep,
            try_cuts: vec![cut],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::gen::{delaunay_graph, grid_2d, grid_2d_coords};
    use sp_machine::CostModel;

    #[test]
    fn parallel_result_is_rank_count_invariant() {
        let g = grid_2d(16, 16);
        let coords = grid_2d_coords(16, 16);
        let mut cuts = Vec::new();
        for p in [1usize, 4, 16] {
            let dist = Distribution::block(g.n(), p);
            let mut m = Machine::new(p, CostModel::qdr_infiniband());
            let r =
                parallel_geometric_partition(&g, &coords, &dist, &mut m, &GeoConfig::g7_nl(), 42);
            r.bisection.validate(&g).unwrap();
            cuts.push(r.cut);
        }
        assert_eq!(cuts[0], cuts[1]);
        assert_eq!(cuts[1], cuts[2]);
    }

    #[test]
    fn parallel_cut_quality_is_reasonable() {
        let mut rng = StdRng::seed_from_u64(9);
        let (g, coords) = delaunay_graph(2500, &mut rng);
        let dist = Distribution::block(g.n(), 8);
        let mut m = Machine::new(8, CostModel::qdr_infiniband());
        let r = parallel_geometric_partition(&g, &coords, &dist, &mut m, &GeoConfig::g7_nl(), 3);
        r.bisection.validate(&g).unwrap();
        assert!(r.cut < 400, "cut {}", r.cut);
        assert!(r.bisection.imbalance(&g) < 0.12);
    }

    #[test]
    fn partition_time_shrinks_with_ranks() {
        let mut rng = StdRng::seed_from_u64(11);
        let (g, coords) = delaunay_graph(4000, &mut rng);
        let mut times = Vec::new();
        for p in [1usize, 16] {
            let dist = Distribution::block(g.n(), p);
            let mut m = Machine::new(p, CostModel::qdr_infiniband());
            let _ =
                parallel_geometric_partition(&g, &coords, &dist, &mut m, &GeoConfig::g7_nl(), 5);
            times.push(m.elapsed());
        }
        assert!(times[1] < times[0] / 2.0, "times {times:?}");
    }

    #[test]
    fn charges_three_reduction_class_comm() {
        let g = grid_2d(12, 12);
        let coords = grid_2d_coords(12, 12);
        let dist = Distribution::block(g.n(), 4);
        let mut m = Machine::new(4, CostModel::qdr_infiniband());
        let _ = parallel_geometric_partition(&g, &coords, &dist, &mut m, &GeoConfig::g7_nl(), 7);
        assert!(m.comm_time() > 0.0);
        // Communication is "low": a handful of small collectives, so well
        // under a millisecond at QDR parameters.
        assert!(m.comm_time() < 1e-3);
    }

    #[test]
    fn collapsed_coordinates_fall_back() {
        let g = grid_2d(8, 8);
        let coords = vec![Point2::ZERO; 64];
        let dist = Distribution::block(64, 2);
        let mut m = Machine::new(2, CostModel::qdr_infiniband());
        let r = parallel_geometric_partition(&g, &coords, &dist, &mut m, &GeoConfig::g7_nl(), 1);
        r.bisection.validate(&g).unwrap();
    }
}
