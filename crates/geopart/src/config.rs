//! Try policies for the geometric partitioner.

/// How many separators of each kind to try, and how to sample.
#[derive(Clone, Copy, Debug)]
pub struct GeoConfig {
    /// Independent centerpoint computations.
    pub n_centerpoints: usize,
    /// Great circles tried per centerpoint.
    pub circles_per_centerpoint: usize,
    /// Line (hyperplane) separators tried.
    pub n_lines: usize,
    /// Sample size for the centerpoint approximation.
    pub sample_size: usize,
    /// Allowed imbalance for a try to be eligible (median splits are
    /// exactly balanced; parallel sampled medians are nearly so).
    pub balance_tol: f64,
}

impl GeoConfig {
    /// The paper's G30: best of 30 tries — 22 great circles over 2
    /// centerpoints, 7 line separators (plus the final median fallback).
    pub fn g30() -> Self {
        GeoConfig {
            n_centerpoints: 2,
            circles_per_centerpoint: 11,
            n_lines: 7,
            sample_size: 1000,
            balance_tol: 0.10,
        }
    }

    /// The paper's G7: 5 great circles with 1 centerpoint, 2 lines.
    pub fn g7() -> Self {
        GeoConfig {
            n_centerpoints: 1,
            circles_per_centerpoint: 5,
            n_lines: 2,
            sample_size: 1000,
            balance_tol: 0.10,
        }
    }

    /// G7-NL: G7 without the line separators — the variant ScalaPart
    /// parallelises (lines would need an eigenvector computation the paper
    /// avoids for scalability).
    pub fn g7_nl() -> Self {
        GeoConfig {
            n_lines: 0,
            ..Self::g7()
        }
    }

    /// Total separator tries.
    pub fn total_tries(&self) -> usize {
        self.n_centerpoints * self.circles_per_centerpoint + self.n_lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_counts() {
        assert_eq!(GeoConfig::g30().total_tries(), 29); // 22 circles + 7 lines
        assert_eq!(GeoConfig::g7().total_tries(), 7);
        assert_eq!(GeoConfig::g7_nl().total_tries(), 5);
        assert_eq!(GeoConfig::g7_nl().n_lines, 0);
    }
}
