//! Sequential Gilbert–Miller–Teng geometric mesh partitioning.

use crate::config::GeoConfig;
use crate::separator::{median, Separator, SeparatorKind};
use rand::Rng;
use sp_geometry::{
    centerpoint, lift_normalized, normalize_for_lift, random_unit_vector, CenterpointConfig,
    ConformalMap, Point2, Point3,
};
use sp_graph::{Bisection, Graph};

/// Result of a geometric partitioning run.
pub struct GeoPartResult {
    /// The best bisection found.
    pub bisection: Bisection,
    /// Its unweighted cut size |S|.
    pub cut: usize,
    /// The winning separator (with per-vertex signed distances, for strip
    /// refinement).
    pub separator: Separator,
    /// Cut size of every eligible try, in try order (diagnostics).
    pub try_cuts: Vec<usize>,
}

impl GeoPartResult {
    /// Structural validity against the graph the result partitions: the
    /// bisection is a valid two-way partition, its sides agree with the
    /// separator's signed distances, and the reported cut is exactly the
    /// bisection's recomputed edge cut. Used by sp-verify's partition
    /// checkpoint.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        self.bisection
            .validate(g)
            .map_err(|e| format!("bisection invalid: {e}"))?;
        if self.separator.signed.len() != g.n() {
            return Err(format!(
                "separator has {} signed values for {} vertices",
                self.separator.signed.len(),
                g.n()
            ));
        }
        for v in 0..g.n() as u32 {
            if self.separator.side(v) != self.bisection.side(v) {
                return Err(format!(
                    "vertex {v}: separator side {} != bisection side {}",
                    self.separator.side(v),
                    self.bisection.side(v)
                ));
            }
        }
        let recomputed = self.bisection.cut_edges(g);
        if recomputed != self.cut {
            return Err(format!(
                "reported cut {} != recomputed edge cut {recomputed}",
                self.cut
            ));
        }
        Ok(())
    }
}

/// Partition `g` using the embedded `coords` with the given try policy.
///
/// Every great-circle try is shifted to the sample median of its projection
/// values, so both halves are balanced while the separator remains a circle
/// in the plane; line tries split at the exact median of the directional
/// projection.
pub fn geometric_partition<R: Rng>(
    g: &Graph,
    coords: &[Point2],
    cfg: &GeoConfig,
    rng: &mut R,
) -> GeoPartResult {
    assert_eq!(coords.len(), g.n());
    assert!(g.n() >= 2, "nothing to partition");
    let (center, scale) = normalize_for_lift(coords);
    let lifted: Vec<Point3> = coords
        .iter()
        .map(|&p| lift_normalized(p, center, scale))
        .collect();

    let mut best: Option<(usize, Separator, Bisection)> = None;
    let mut try_cuts = Vec::with_capacity(cfg.total_tries());
    let cp_cfg = CenterpointConfig {
        sample_size: cfg.sample_size,
        iterations: 400,
    };

    for _ in 0..cfg.n_centerpoints {
        let cp = centerpoint(&lifted, &cp_cfg, rng);
        let map = ConformalMap::centering(cp);
        let mapped: Vec<Point3> = lifted.iter().map(|&p| map.apply(p)).collect();
        for _ in 0..cfg.circles_per_centerpoint {
            let normal = random_unit_vector(rng);
            let vals: Vec<f64> = mapped.iter().map(|&p| normal.dot(p)).collect();
            let offset = median(&vals);
            let signed: Vec<f64> = vals.iter().map(|&v| v - offset).collect();
            consider(
                g,
                Separator {
                    kind: SeparatorKind::Circle { normal, offset },
                    signed,
                },
                cfg.balance_tol,
                &mut best,
                &mut try_cuts,
            );
        }
    }
    for t in 0..cfg.n_lines {
        // Mix of coordinate axes and random directions, like meshpart.
        let dir = match t {
            0 => Point2::new(1.0, 0.0),
            1 => Point2::new(0.0, 1.0),
            _ => {
                let a: f64 = rng.random_range(0.0..std::f64::consts::TAU);
                Point2::new(a.cos(), a.sin())
            }
        };
        let vals: Vec<f64> = coords.iter().map(|&p| dir.dot(p)).collect();
        let threshold = median(&vals);
        let signed: Vec<f64> = vals.iter().map(|&v| v - threshold).collect();
        consider(
            g,
            Separator {
                kind: SeparatorKind::Line { dir, threshold },
                signed,
            },
            cfg.balance_tol,
            &mut best,
            &mut try_cuts,
        );
    }
    // Fallback: if every try was ineligible (degenerate coordinates can
    // put the median on a huge tie plateau), use an index split.
    let (cut, separator, bisection) = best.unwrap_or_else(|| {
        let half = g.n() / 2;
        let signed: Vec<f64> = (0..g.n())
            .map(|v| if v >= half { 1.0 } else { -1.0 })
            .collect();
        let sep = Separator {
            kind: SeparatorKind::Line {
                dir: Point2::new(1.0, 0.0),
                threshold: 0.0,
            },
            signed,
        };
        let bi = Bisection::new(sep.sides());
        let cut = bi.cut_edges(g);
        (cut, sep, bi)
    });
    GeoPartResult {
        bisection,
        cut,
        separator,
        try_cuts,
    }
}

fn consider(
    g: &Graph,
    sep: Separator,
    balance_tol: f64,
    best: &mut Option<(usize, Separator, Bisection)>,
    try_cuts: &mut Vec<usize>,
) {
    let bi = Bisection::new(sep.sides());
    let (a, b) = bi.counts();
    let n = a + b;
    let imb = (a.max(b) as f64) / (n as f64 / 2.0) - 1.0;
    if a == 0 || b == 0 || imb > balance_tol {
        return;
    }
    let cut = bi.cut_edges(g);
    try_cuts.push(cut);
    if best.as_ref().is_none_or(|(c, _, _)| cut < *c) {
        *best = Some((cut, sep, bi));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sp_graph::gen::{delaunay_graph, grid_2d, grid_2d_coords};

    #[test]
    fn grid_with_true_coords_cuts_near_side() {
        let g = grid_2d(24, 24);
        let coords = grid_2d_coords(24, 24);
        let mut rng = StdRng::seed_from_u64(1);
        let r = geometric_partition(&g, &coords, &GeoConfig::g30(), &mut rng);
        r.validate(&g).unwrap();
        // Optimal straight cut = 24; a geometric cut should land within ~2×.
        assert!(r.cut <= 52, "cut {}", r.cut);
        assert!(r.bisection.imbalance(&g) < 0.11);
        assert_eq!(r.cut, r.bisection.cut_edges(&g));
    }

    #[test]
    fn validate_rejects_tampered_results() {
        let g = grid_2d(10, 10);
        let coords = grid_2d_coords(10, 10);
        let mut rng = StdRng::seed_from_u64(3);
        let mut r = geometric_partition(&g, &coords, &GeoConfig::g30(), &mut rng);
        r.validate(&g).unwrap();
        r.cut += 1;
        assert!(r.validate(&g).unwrap_err().contains("recomputed"));
        r.cut -= 1;
        let v = 0u32;
        r.bisection.flip(v);
        let err = r.validate(&g).unwrap_err();
        assert!(err.contains("side") || err.contains("cut"), "{err}");
    }

    #[test]
    fn delaunay_cut_scales_like_sqrt_n() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, coords) = delaunay_graph(3000, &mut rng);
        let r = geometric_partition(&g, &coords, &GeoConfig::g30(), &mut rng);
        r.bisection.validate(&g).unwrap();
        // √3000 ≈ 55; allow generous slack but far below m/2 ≈ 4500.
        assert!(r.cut < 350, "cut {}", r.cut);
    }

    #[test]
    fn g30_beats_or_ties_g7_nl_in_expectation() {
        let mut wins = 0;
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let (g, coords) = delaunay_graph(800, &mut rng);
            let c30 = geometric_partition(&g, &coords, &GeoConfig::g30(), &mut rng).cut;
            let c7 = geometric_partition(&g, &coords, &GeoConfig::g7_nl(), &mut rng).cut;
            if c30 <= c7 {
                wins += 1;
            }
        }
        assert!(wins >= 4, "G30 ≤ G7-NL in only {wins}/6 runs");
    }

    #[test]
    fn signed_distances_are_consistent_with_sides() {
        let g = grid_2d(10, 10);
        let coords = grid_2d_coords(10, 10);
        let mut rng = StdRng::seed_from_u64(3);
        let r = geometric_partition(&g, &coords, &GeoConfig::g7_nl(), &mut rng);
        for v in 0..g.n() as u32 {
            assert_eq!(r.bisection.side(v), r.separator.side(v));
        }
    }

    #[test]
    fn collapsed_coords_fall_back_gracefully() {
        let g = grid_2d(8, 8);
        let coords = vec![Point2::ZERO; 64];
        let mut rng = StdRng::seed_from_u64(4);
        let r = geometric_partition(&g, &coords, &GeoConfig::g7_nl(), &mut rng);
        r.bisection.validate(&g).unwrap();
        let (a, b) = r.bisection.counts();
        assert_eq!(a + b, 64);
        assert!(a > 0 && b > 0);
    }

    #[test]
    fn try_cuts_contains_the_winner() {
        let g = grid_2d(12, 12);
        let coords = grid_2d_coords(12, 12);
        let mut rng = StdRng::seed_from_u64(5);
        let r = geometric_partition(&g, &coords, &GeoConfig::g30(), &mut rng);
        assert!(!r.try_cuts.is_empty());
        assert_eq!(*r.try_cuts.iter().min().unwrap(), r.cut);
    }
}
