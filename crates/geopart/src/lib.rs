//! Geometric mesh partitioning (Gilbert–Miller–Teng) and its parallel
//! formulation SP-PG7-NL.
//!
//! The sequential partitioner lifts the embedded vertices onto the unit
//! sphere, computes an approximate centerpoint, conformally maps it to the
//! sphere's centre, cuts with random great circles (shifted to the sample
//! median so both halves are balanced — on the plane the separator is still
//! a circle), optionally tries line separators, and keeps the best cut.
//! Presets reproduce the paper's G30 / G7 / G7-NL try policies.
//!
//! The parallel formulation follows the paper: sampling across ranks for a
//! fast centerpoint, redundant great-circle generation on every rank,
//! local cut contributions, and a single reduction to select the best cut.

pub mod config;
pub mod gmt;
pub mod parallel;
pub mod separator;

pub use config::GeoConfig;
pub use gmt::{geometric_partition, GeoPartResult};
pub use parallel::parallel_geometric_partition;
pub use separator::{Separator, SeparatorKind};
