//! Separator descriptions and evaluation.

use sp_geometry::{Point2, Point3};

/// What kind of geometric separator produced a bisection.
#[derive(Clone, Debug)]
pub enum SeparatorKind {
    /// A circle: the image of a (shifted) great circle of the conformally
    /// mapped sphere. `normal · mapped(p) > offset` defines side 1.
    Circle { normal: Point3, offset: f64 },
    /// A line: `dir · p > threshold` in the original plane defines side 1.
    Line { dir: Point2, threshold: f64 },
}

/// A geometric separator together with each vertex's signed distance from
/// it (in the separator's own metric) — the strip refinement selects
/// movable vertices by small |signed distance|.
#[derive(Clone, Debug)]
pub struct Separator {
    pub kind: SeparatorKind,
    /// Per-vertex signed value; side 1 ⇔ positive.
    pub signed: Vec<f64>,
}

impl Separator {
    /// Side of vertex `v` (`1` = positive side).
    #[inline]
    pub fn side(&self, v: u32) -> u8 {
        u8::from(self.signed[v as usize] > 0.0)
    }

    /// Sides for all vertices.
    pub fn sides(&self) -> Vec<u8> {
        self.signed.iter().map(|&s| u8::from(s > 0.0)).collect()
    }
}

/// Median of a slice (by value, averaging is unnecessary for splitting).
pub fn median(vals: &[f64]) -> f64 {
    assert!(!vals.is_empty());
    let mut v = vals.to_vec();
    let mid = v.len() / 2;
    v.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).unwrap());
    v[mid]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_splits_half() {
        let vals: Vec<f64> = (0..101).map(|i| i as f64).collect();
        assert_eq!(median(&vals), 50.0);
        let below = vals.iter().filter(|&&v| v < 50.0).count();
        assert_eq!(below, 50);
    }

    #[test]
    fn sides_follow_sign() {
        let s = Separator {
            kind: SeparatorKind::Line {
                dir: Point2::new(1.0, 0.0),
                threshold: 0.0,
            },
            signed: vec![-1.0, 0.5, 0.0, 2.0],
        };
        assert_eq!(s.sides(), vec![0, 1, 0, 1]);
        assert_eq!(s.side(3), 1);
    }
}
