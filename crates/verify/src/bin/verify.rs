//! `verify` — run the deterministic-simulation verification suite from the
//! command line. Exit code 0 means every fuzzed schedule produced
//! bit-identical output with zero invariant violations; exit code 1 prints
//! each violation with the seed that replays it.
//!
//! ```text
//! verify [--ranks N] [--schedules N] [--seed HEX] [--graph grid:RxC|delaunay:N]
//!        [--replay HEX] [--skip-perturb] [--skip-passivity] [--skip-parallel]
//!        [--skip-multinode] [--multinode-requests N] [--multinode-shards N]
//!        [--skip-incremental] [--incremental-streams N] [--incremental-steps N]
//!        [--skip-repr] [--self-test]
//! ```

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_geometry::Point2;
use sp_graph::gen::{delaunay_graph, grid_2d, grid_2d_coords};
use sp_graph::Graph;
use sp_verify::{
    run_campaign, run_incremental_campaign, run_multinode_campaign, run_once,
    run_parallel_campaign, run_passivity, run_perturbations, run_repr_campaign, FuzzConfig,
    IncrementalFuzzConfig, MultinodeFuzzConfig, ParallelFuzzConfig, ReprFuzzConfig,
};

struct Cli {
    ranks: usize,
    schedules: usize,
    seed: u64,
    graph: String,
    replay: Option<u64>,
    skip_perturb: bool,
    skip_passivity: bool,
    skip_parallel: bool,
    skip_multinode: bool,
    skip_incremental: bool,
    skip_repr: bool,
    multinode_requests: usize,
    multinode_shards: usize,
    incremental_streams: usize,
    incremental_steps: usize,
    self_test: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: verify [--ranks N] [--schedules N] [--seed HEX] \
         [--graph grid:RxC|delaunay:N] [--replay HEX] [--skip-perturb] \
         [--skip-passivity] [--skip-parallel] [--skip-multinode] \
         [--multinode-requests N] [--multinode-shards N] \
         [--skip-incremental] [--incremental-streams N] \
         [--incremental-steps N] [--skip-repr] [--self-test]"
    );
    std::process::exit(2)
}

fn parse_u64(s: &str) -> u64 {
    let r = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    r.unwrap_or_else(|_| {
        eprintln!("verify: bad number {s:?}");
        usage()
    })
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        ranks: 16,
        schedules: 8,
        seed: 0x5CA1_AB1E,
        graph: "grid:48x48".to_string(),
        replay: None,
        skip_perturb: false,
        skip_passivity: false,
        skip_parallel: false,
        skip_multinode: false,
        skip_incremental: false,
        skip_repr: false,
        multinode_requests: MultinodeFuzzConfig::default().requests,
        multinode_shards: MultinodeFuzzConfig::default().shards,
        incremental_streams: IncrementalFuzzConfig::default().streams,
        incremental_steps: IncrementalFuzzConfig::default().steps,
        self_test: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || {
            args.next().unwrap_or_else(|| {
                eprintln!("verify: missing value");
                usage()
            })
        };
        match a.as_str() {
            "--ranks" => cli.ranks = parse_u64(&val()) as usize,
            "--schedules" => cli.schedules = parse_u64(&val()) as usize,
            "--seed" => cli.seed = parse_u64(&val()),
            "--graph" => cli.graph = val(),
            "--replay" => cli.replay = Some(parse_u64(&val())),
            "--skip-perturb" => cli.skip_perturb = true,
            "--skip-passivity" => cli.skip_passivity = true,
            "--skip-parallel" => cli.skip_parallel = true,
            "--skip-multinode" => cli.skip_multinode = true,
            "--skip-incremental" => cli.skip_incremental = true,
            "--skip-repr" => cli.skip_repr = true,
            "--multinode-requests" => cli.multinode_requests = parse_u64(&val()) as usize,
            "--multinode-shards" => cli.multinode_shards = parse_u64(&val()) as usize,
            "--incremental-streams" => cli.incremental_streams = parse_u64(&val()) as usize,
            "--incremental-steps" => cli.incremental_steps = parse_u64(&val()) as usize,
            "--self-test" => cli.self_test = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("verify: unknown flag {other:?}");
                usage()
            }
        }
    }
    cli
}

fn build_graph(spec: &str) -> (Graph, Vec<Point2>) {
    if let Some(dims) = spec.strip_prefix("grid:") {
        let (r, c) = dims.split_once('x').unwrap_or_else(|| usage());
        let (r, c) = (parse_u64(r) as usize, parse_u64(c) as usize);
        return (grid_2d(r, c), grid_2d_coords(r, c));
    }
    if let Some(n) = spec.strip_prefix("delaunay:") {
        let mut rng = StdRng::seed_from_u64(0xDE1A);
        return delaunay_graph(parse_u64(n) as usize, &mut rng);
    }
    eprintln!("verify: unknown graph spec {spec:?}");
    usage()
}

fn main() -> ExitCode {
    let cli = parse_cli();
    let (g, coords) = build_graph(&cli.graph);
    let cfg = FuzzConfig {
        ranks: cli.ranks,
        schedules: cli.schedules,
        master_seed: cli.seed,
        corrupt_vertex: None,
        ..FuzzConfig::default()
    };
    println!(
        "verify: graph {} (n={} m={}), {} ranks",
        cli.graph,
        g.n(),
        g.m(),
        cfg.ranks
    );

    if let Some(seed) = cli.replay {
        // Replay a single failing schedule seed from a previous report.
        let run = run_once(&g, &cfg, Some(seed));
        println!(
            "replay seed {seed:#018x}: fingerprint {:#018x}, elapsed {:.6}, {} checkpoint(s)",
            run.fingerprint, run.elapsed, run.checkpoints
        );
        if run.ok() {
            println!("replay: no violations");
            return ExitCode::SUCCESS;
        }
        for v in &run.violations {
            println!("replay: {v}");
        }
        return ExitCode::FAILURE;
    }

    let mut failed = false;

    if cli.self_test {
        // Inject a deliberate fault and demand the checker catches it.
        let mut bad = cfg.clone();
        bad.corrupt_vertex = Some(11);
        let report = run_campaign(&g, &bad);
        let caught = report
            .failures
            .iter()
            .any(|f| f.violations.iter().any(|v| v.invariant == "cut-accounting"));
        let with_seed = report.failures.iter().any(|f| f.seed.is_some());
        if caught && with_seed {
            let f = report.failures.iter().find(|f| f.seed.is_some()).unwrap();
            println!(
                "self-test: OK — corrupted label caught ({} failure(s), replay seed {:#018x})",
                report.failures.len(),
                f.seed.unwrap()
            );
        } else {
            println!("self-test: FAILED — injected corruption was NOT detected");
            failed = true;
        }
    }

    let report = run_campaign(&g, &cfg);
    println!(
        "fuzz: {} run(s) (baseline + {} schedule(s)), {} checkpoint(s)/run, fingerprint {:#018x}",
        report.runs, cfg.schedules, report.checkpoints, report.baseline_fingerprint
    );
    if report.ok() {
        println!("fuzz: all schedules bit-identical, zero violations");
    } else {
        failed = true;
        for f in &report.failures {
            match f.seed {
                Some(s) => println!(
                    "fuzz: FAILED under schedule seed {s:#018x} (replay with --replay {s:#x}):"
                ),
                None => println!("fuzz: FAILED on the baseline schedule:"),
            }
            for v in &f.violations {
                println!("  {v}");
            }
        }
    }

    if !cli.skip_passivity {
        let report = run_passivity(&g, &cfg);
        if report.ok() {
            println!(
                "passivity: {} run pair(s) bit-identical with observability off/on",
                report.runs.len()
            );
        } else {
            failed = true;
            for r in report.failures() {
                let which = match r.seed {
                    Some(s) => format!("schedule seed {s:#018x}"),
                    None => "the baseline schedule".to_string(),
                };
                println!(
                    "passivity: FAILED on {which}: fingerprint off {:#018x} vs on {:#018x}, \
                     elapsed bits {:#x} vs {:#x}",
                    r.fp_off, r.fp_on, r.elapsed_bits_off, r.elapsed_bits_on
                );
            }
        }
    }

    if !cli.skip_parallel {
        let pcfg = ParallelFuzzConfig {
            ranks: cli.ranks,
            batches: vec![1, 4, cli.ranks],
            ..ParallelFuzzConfig::default()
        };
        let report = run_parallel_campaign(&g, &pcfg);
        if report.ok() {
            println!(
                "parallel: {} run(s) (serial baseline + batches {:?} × threads {:?}) \
                 bit-identical, fingerprint {:#018x}",
                report.runs, pcfg.batches, pcfg.threads, report.baseline_fingerprint
            );
        } else {
            failed = true;
            for f in &report.failures {
                println!("parallel: FAILED at {f}");
            }
        }
    }

    if !cli.skip_multinode {
        let mcfg = MultinodeFuzzConfig {
            shards: cli.multinode_shards,
            requests: cli.multinode_requests,
            master_seed: cli.seed,
            ..MultinodeFuzzConfig::default()
        };
        let report = run_multinode_campaign(&mcfg);
        if report.passed() {
            println!("multinode: OK — {report}");
        } else {
            failed = true;
            println!("multinode: FAILED — {report}");
            for f in &report.failures {
                println!("multinode:   {f}");
            }
        }
    }

    if !cli.skip_incremental {
        let icfg = IncrementalFuzzConfig {
            streams: cli.incremental_streams,
            steps: cli.incremental_steps,
            seed: cli.seed,
            ..IncrementalFuzzConfig::default()
        };
        let report = run_incremental_campaign(&g, Some(&coords), &icfg);
        if report.ok() {
            println!(
                "incremental: {} step(s) across {} stream(s) ({} incremental, {} full) \
                 bit-identical over threads {:?}, overlay == compacted CSR, \
                 batch framing invisible, cut within {}x+{} of scratch",
                report.steps_run,
                icfg.streams,
                report.incremental_steps,
                report.full_steps,
                icfg.threads,
                icfg.cut_factor,
                icfg.cut_slack
            );
        } else {
            failed = true;
            for f in &report.failures {
                println!("incremental: FAILED at {f}");
            }
        }
    }

    if !cli.skip_repr {
        let rcfg = ReprFuzzConfig {
            ranks: cli.ranks,
            ..ReprFuzzConfig::default()
        };
        let report = run_repr_campaign(&g, &rcfg);
        if report.ok() {
            println!(
                "repr: {} pipeline run(s) (reference + compact × threads {:?}) \
                 bit-identical, graph fp {:#018x}, compact {} KiB vs reference {} KiB",
                report.runs,
                rcfg.threads,
                report.graph_fingerprint,
                report.compact_bytes / 1024,
                report.reference_bytes / 1024
            );
        } else {
            failed = true;
            for f in &report.failures {
                println!("repr: FAILED: {f}");
            }
        }
    }

    if !cli.skip_perturb {
        let report = run_perturbations(&g, &cfg);
        for s in &report.scenarios {
            if s.ok() {
                println!("perturb: {} OK", s.name);
            } else {
                failed = true;
                for v in &s.violations {
                    println!("perturb: {} FAILED: {v}", s.name);
                }
            }
        }
    }

    if failed {
        println!("verify: FAILED");
        ExitCode::FAILURE
    } else {
        println!("verify: all checks passed");
        ExitCode::SUCCESS
    }
}
