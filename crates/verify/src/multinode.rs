//! Multinode determinism fuzz: distributed sp-serve against a single-node
//! oracle.
//!
//! Spins 2–4 loopback shards and a router in-process, then plays a seeded
//! request stream through the router while killing a shard mid-run and
//! rejoining a replacement later. Every routed response is compared —
//! as raw bytes — against the same request served by a standalone
//! single-shard oracle. The determinism contract under test: a response's
//! `(result_json, sim-time bits, input fingerprint)` may not depend on
//! which shard served it, whether the entry came from cache, or whether
//! the job was re-routed after a failure. The campaign also folds every
//! response's identity spans into one fingerprint and demands router and
//! oracle agree on the whole stream, so a single flipped byte anywhere
//! fails loudly.
//!
//! The kill is [`sp_serve::net::Server::kill`] — a SIGKILL-equivalent
//! that severs the listener and every open connection with no drain. The
//! router must re-hash the dead shard's keyspace to survivors (only its
//! keys move — the ring property) and replay without the client noticing.
//! The rejoin warms the newcomer's cache from survivors, and warmed
//! entries must replay the donor's exact bytes.

use crate::rng::{derive_seed, splitmix64, Fingerprint};
use sp_serve::net::{Client, Server};
use sp_serve::proto::extract_raw_field;
use sp_serve::router::{Router, RouterConfig, RouterServer};
use sp_serve::service::ServeConfig;
use std::sync::Arc;

/// Configuration of a multinode fuzz campaign.
#[derive(Clone, Debug)]
pub struct MultinodeFuzzConfig {
    /// Backend shards behind the router (clamped to 2..=4).
    pub shards: usize,
    /// Requests in the seeded stream.
    pub requests: usize,
    /// Master seed; request `i` derives from `derive_seed(master, i)`.
    pub master_seed: u64,
    /// Simulated ranks per job — identical on every shard and the oracle
    /// (it participates in the cache key).
    pub ranks: usize,
    /// Cache entries streamed per survivor when the replacement joins.
    pub warm_limit: usize,
}

impl Default for MultinodeFuzzConfig {
    fn default() -> Self {
        MultinodeFuzzConfig {
            shards: 3,
            requests: 24,
            master_seed: 0xD157_2188,
            ranks: 4,
            warm_limit: 32,
        }
    }
}

/// One request whose routed response diverged from the oracle.
#[derive(Clone, Debug)]
pub struct MultinodeFailure {
    /// Index in the request stream.
    pub index: usize,
    /// The submit frame that diverged.
    pub request: String,
    pub detail: String,
}

impl std::fmt::Display for MultinodeFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "request {} ({}): {}",
            self.index, self.request, self.detail
        )
    }
}

/// Result of a multinode fuzz campaign.
pub struct MultinodeReport {
    pub shards: usize,
    pub requests: usize,
    /// Request index after which the shard was killed.
    pub killed_after: usize,
    /// Request index after which the replacement joined.
    pub rejoined_after: usize,
    /// Cache entries streamed to the replacement at join.
    pub warmed: usize,
    /// Fingerprint over every routed response's identity spans, in stream
    /// order.
    pub routed_fingerprint: u64,
    /// Same, for the single-node oracle.
    pub oracle_fingerprint: u64,
    pub failures: Vec<MultinodeFailure>,
}

impl MultinodeReport {
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && self.routed_fingerprint == self.oracle_fingerprint
    }
}

impl std::fmt::Display for MultinodeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests over {} shards (kill after {}, rejoin after {}, {} warmed): fp {:016x} vs oracle {:016x}, {} divergence(s)",
            self.requests,
            self.shards,
            self.killed_after,
            self.rejoined_after,
            self.warmed,
            self.routed_fingerprint,
            self.oracle_fingerprint,
            self.failures.len()
        )
    }
}

fn shard_cfg(ranks: usize) -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 32,
        cache_capacity: 64,
        ranks,
        ..Default::default()
    }
}

/// The seeded request stream. Every 5th request repeats an earlier one so
/// the stream exercises cache hits (including post-warming hits on the
/// rejoined shard).
fn gen_requests(cfg: &MultinodeFuzzConfig) -> Vec<String> {
    const METHODS: [&str; 4] = ["sp", "rcb", "parmetis", "ptscotch"];
    let mut reqs: Vec<String> = Vec::with_capacity(cfg.requests);
    for i in 0..cfg.requests {
        if i % 5 == 4 && i >= 5 {
            let again = reqs[i - 3].clone();
            reqs.push(again);
            continue;
        }
        let mut s = derive_seed(cfg.master_seed, i as u64);
        let w = 8 + (splitmix64(&mut s) % 17) as usize;
        let h = 8 + (splitmix64(&mut s) % 17) as usize;
        let method = METHODS[(splitmix64(&mut s) % METHODS.len() as u64) as usize];
        let parts = 2 + (splitmix64(&mut s) % 3) as usize;
        let seed = splitmix64(&mut s) & 0xFFFF;
        reqs.push(format!(
            "{{\"type\": \"submit\", \"graph\": \"gen:grid:{w}x{h}\", \"method\": \"{method}\", \"parts\": {parts}, \"seed\": {seed}}}"
        ));
    }
    reqs
}

/// The determinism-relevant spans of an ok response, as raw bytes.
fn identity_spans(resp: &str) -> Result<(String, String, String), String> {
    let get = |f: &str| {
        extract_raw_field(resp, f)
            .map(str::to_string)
            .ok_or_else(|| format!("response lacks {f:?}: {resp}"))
    };
    Ok((get("result")?, get("sim_time")?, get("fingerprint")?))
}

/// Run the campaign. Failures are collected, never panicked, so one
/// report lists every divergent request with its reproducing seed stream.
pub fn run_multinode_campaign(cfg: &MultinodeFuzzConfig) -> MultinodeReport {
    let cfg = MultinodeFuzzConfig {
        shards: cfg.shards.clamp(2, 4),
        requests: cfg.requests.max(6),
        ..cfg.clone()
    };
    let requests = gen_requests(&cfg);
    let killed_after = cfg.requests / 3;
    let rejoined_after = 2 * cfg.requests / 3;

    // Oracle first: one standalone shard answers the whole stream.
    let oracle = Server::bind("127.0.0.1:0", shard_cfg(cfg.ranks)).expect("bind oracle");
    let mut oracle_client = Client::connect(&oracle.local_addr()).expect("connect oracle");
    let mut oracle_spans: Vec<Result<(String, String, String), String>> = Vec::new();
    let mut oracle_fp = Fingerprint::new();
    for req in &requests {
        let spans = oracle_client
            .request(req)
            .map_err(|e| format!("oracle io: {e}"))
            .and_then(|resp| identity_spans(&resp));
        if let Ok((r, t, f)) = &spans {
            oracle_fp.bytes(r.as_bytes());
            oracle_fp.bytes(t.as_bytes());
            oracle_fp.bytes(f.as_bytes());
        }
        oracle_spans.push(spans);
    }

    // The fleet: N shards, a router with health probing on (the probe
    // path is part of what we fuzz; response bytes are timing-free).
    let mut shards: Vec<Arc<Server>> = (0..cfg.shards)
        .map(|_| Server::bind("127.0.0.1:0", shard_cfg(cfg.ranks)).expect("bind shard"))
        .collect();
    let spec: Vec<(String, String)> = shards
        .iter()
        .enumerate()
        .map(|(i, s)| (format!("shard-{i}"), s.local_addr().to_string()))
        .collect();
    let router = Router::new(
        RouterConfig {
            health_interval_ms: 200,
            forward_timeout_ms: 60_000,
            warm_limit: cfg.warm_limit,
            ..Default::default()
        },
        &spec,
    )
    .expect("router");
    let rs = RouterServer::bind("127.0.0.1:0", router).expect("bind router");

    let mut failures: Vec<MultinodeFailure> = Vec::new();
    let mut routed_fp = Fingerprint::new();
    let mut warmed = 0usize;
    let mut killed: Option<Arc<Server>> = None;
    for (i, req) in requests.iter().enumerate() {
        // A fresh connection per request: mid-stream shard death must not
        // wedge later requests, and neither may router keep-alive state.
        let routed = Client::connect(&rs.local_addr())
            .and_then(|mut c| c.request(req))
            .map_err(|e| format!("router io: {e}"))
            .and_then(|resp| identity_spans(&resp));
        if let Ok((r, t, f)) = &routed {
            routed_fp.bytes(r.as_bytes());
            routed_fp.bytes(t.as_bytes());
            routed_fp.bytes(f.as_bytes());
        }
        match (&routed, &oracle_spans[i]) {
            (Ok(got), Ok(want)) if got != want => failures.push(MultinodeFailure {
                index: i,
                request: req.clone(),
                detail: format!("bytes diverge: routed {got:?} vs oracle {want:?}"),
            }),
            (Err(e), Ok(_)) => failures.push(MultinodeFailure {
                index: i,
                request: req.clone(),
                detail: format!("routed request failed while oracle succeeded: {e}"),
            }),
            (Ok(_), Err(e)) => failures.push(MultinodeFailure {
                index: i,
                request: req.clone(),
                detail: format!("oracle failed ({e}) but router answered"),
            }),
            _ => {}
        }

        if i + 1 == killed_after {
            shards[0].kill();
            killed = Some(shards[0].clone());
        }
        if i + 1 == rejoined_after {
            let replacement =
                Server::bind("127.0.0.1:0", shard_cfg(cfg.ranks)).expect("bind replacement");
            warmed = rs
                .router()
                .rejoin("shard-0", &replacement.local_addr().to_string())
                .unwrap_or(0);
            shards[0] = replacement;
        }
    }

    rs.shutdown();
    for s in &shards {
        s.shutdown();
    }
    if let Some(k) = killed {
        // The killed listener is gone but its worker pool and handler
        // threads survive the crash injection (kill() returns without
        // joining — abruptness is the point); reap both so the campaign
        // leaks no threads.
        k.service().shutdown();
        k.wait();
    }
    oracle.shutdown();

    MultinodeReport {
        shards: cfg.shards,
        requests: cfg.requests,
        killed_after,
        rejoined_after,
        warmed,
        routed_fingerprint: routed_fp.finish(),
        oracle_fingerprint: oracle_fp.finish(),
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_stream_is_deterministic_and_contains_repeats() {
        let cfg = MultinodeFuzzConfig::default();
        let a = gen_requests(&cfg);
        let b = gen_requests(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.requests);
        assert_eq!(a[9], a[6], "every 5th request repeats an earlier one");
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn small_campaign_passes_through_kill_and_rejoin() {
        let report = run_multinode_campaign(&MultinodeFuzzConfig {
            shards: 2,
            requests: 9,
            master_seed: 0xBEEF,
            ranks: 4,
            warm_limit: 8,
        });
        assert!(
            report.passed(),
            "{report}\n{}",
            report
                .failures
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert_eq!(report.killed_after, 3);
        assert_eq!(report.rejoined_after, 6);
    }
}
