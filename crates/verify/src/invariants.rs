//! The pipeline-wide invariant checker: a [`PipelineObserver`] that
//! validates every checkpoint the pipeline exposes and a pair of
//! result/machine checks for the end of a run. Violations are collected,
//! not panicked, so a fuzzing campaign can report every failure with its
//! replay seed instead of dying on the first.

use scalapart::{PipelineObserver, SpResult};
use sp_coarsen::{validate_contraction, validate_matching, Contraction, Hierarchy, Matching};
use sp_embed::check_embedding;
use sp_geometry::Point2;
use sp_geopart::GeoPartResult;
use sp_graph::{Bisection, Graph};
use sp_machine::MachineStats;
use sp_refine::FmStats;
use sp_trace::{check_accounting, crosscheck, TraceRecorder};

/// One detected invariant violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which invariant broke (stable identifier, e.g. `"cut-accounting"`).
    pub invariant: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// Collects violations across all pipeline checkpoints of one run.
pub struct InvariantChecker {
    /// Allowed final weighted imbalance (tolerance of the run's FM config
    /// plus slack for the pre-refinement geometric split).
    pub balance_bound: f64,
    /// Everything that broke, in detection order.
    pub violations: Vec<Violation>,
    /// Checkpoints inspected (a run that checked nothing is itself
    /// suspicious — the fuzzer asserts this is non-zero).
    pub checkpoints: usize,
}

impl InvariantChecker {
    pub fn new(balance_bound: f64) -> Self {
        InvariantChecker {
            balance_bound,
            violations: Vec::new(),
            checkpoints: 0,
        }
    }

    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    fn fail(&mut self, invariant: &'static str, detail: String) {
        self.violations.push(Violation { invariant, detail });
    }

    fn check(&mut self, invariant: &'static str, r: Result<(), String>) {
        self.checkpoints += 1;
        if let Err(e) = r {
            self.fail(invariant, e);
        }
    }

    /// Final-result invariants: partition validity, cut/edge accounting,
    /// balance, refinement monotonicity, coordinate sanity, simulated-time
    /// sanity.
    pub fn check_result(&mut self, g: &Graph, r: &SpResult) {
        self.check("partition-valid", r.bisection.validate(g));
        self.checkpoints += 1;
        let recomputed = r.bisection.cut_edges(g);
        if recomputed != r.cut {
            self.fail(
                "cut-accounting",
                format!("reported cut {} != recomputed edge cut {recomputed}", r.cut),
            );
        }
        if r.cut > r.cut_before_refine {
            self.fail(
                "refine-monotone",
                format!(
                    "refinement worsened the cut: {} -> {}",
                    r.cut_before_refine, r.cut
                ),
            );
        }
        let imb = r.bisection.imbalance(g);
        if (imb - r.imbalance).abs() > 1e-9 {
            self.fail(
                "imbalance-accounting",
                format!("reported imbalance {} != recomputed {imb}", r.imbalance),
            );
        }
        if imb > self.balance_bound {
            self.fail(
                "balance-bound",
                format!("imbalance {imb} exceeds bound {}", self.balance_bound),
            );
        }
        self.check("embedding-valid", check_embedding(g, &r.coords));
        if !(r.total_time.is_finite() && r.total_time > 0.0) {
            self.fail(
                "time-sane",
                format!("total simulated time {} not finite-positive", r.total_time),
            );
        }
        if r.times.total() > r.total_time * (1.0 + 1e-9) + 1e-12 {
            self.fail(
                "time-accounting",
                format!(
                    "phase walls sum to {} > total {}",
                    r.times.total(),
                    r.total_time
                ),
            );
        }
    }

    /// Machine-side invariants: the accounting snapshot is internally
    /// consistent, and (when a trace was captured) the event stream agrees
    /// with the charged costs.
    pub fn check_machine(&mut self, stats: &MachineStats, rec: Option<&TraceRecorder>) {
        self.check("machine-accounting", check_accounting(stats));
        if let Some(rec) = rec {
            self.check("trace-crosscheck", crosscheck(stats, rec));
        }
    }
}

impl PipelineObserver for InvariantChecker {
    fn on_matching(&mut self, g: &Graph, m: &Matching) {
        self.check("matching-valid", validate_matching(g, m));
    }

    fn on_contraction(&mut self, fine: &Graph, m: &Matching, c: &Contraction) {
        self.check("contraction-valid", validate_contraction(fine, m, c));
    }

    fn on_hierarchy(&mut self, h: &Hierarchy) {
        self.checkpoints += 1;
        for (lvl, pair) in h.levels.windows(2).enumerate() {
            let (fine, coarse) = (&pair[0], &pair[1]);
            if coarse.graph.n() >= fine.graph.n() {
                self.fail(
                    "hierarchy-shrinks",
                    format!(
                        "level {lvl} -> {}: {} -> {} vertices (no shrink)",
                        lvl + 1,
                        fine.graph.n(),
                        coarse.graph.n()
                    ),
                );
            }
            match &fine.map_to_coarser {
                None => self.fail(
                    "hierarchy-maps",
                    format!("level {lvl} has a coarser level but no map"),
                ),
                Some(map) => {
                    if map.len() != fine.graph.n() {
                        self.fail(
                            "hierarchy-maps",
                            format!(
                                "level {lvl} map covers {} of {} vertices",
                                map.len(),
                                fine.graph.n()
                            ),
                        );
                    } else if let Some(&bad) =
                        map.iter().find(|&&cv| cv as usize >= coarse.graph.n())
                    {
                        self.fail(
                            "hierarchy-maps",
                            format!("level {lvl} maps to out-of-range coarse vertex {bad}"),
                        );
                    }
                }
            }
        }
        if let Some(last) = h.levels.last() {
            if last.map_to_coarser.is_some() {
                self.fail(
                    "hierarchy-maps",
                    "coarsest level has a dangling map".to_string(),
                );
            }
        }
    }

    fn on_embedding(&mut self, g: &Graph, coords: &[Point2]) {
        self.check("embedding-valid", check_embedding(g, coords));
    }

    fn on_geo_partition(&mut self, g: &Graph, geo: &GeoPartResult) {
        self.check("geo-partition-valid", geo.validate(g));
    }

    fn on_refined(&mut self, g: &Graph, bi: &Bisection, st: &FmStats) {
        self.checkpoints += 1;
        if st.cut_after > st.cut_before + 1e-9 {
            self.fail(
                "refine-monotone",
                format!("FM worsened the cut: {} -> {}", st.cut_before, st.cut_after),
            );
        }
        let actual = bi.cut(g);
        if (actual - st.cut_after).abs() > 1e-9 * actual.max(1.0) {
            self.fail(
                "refine-accounting",
                format!(
                    "FM reports cut {} but bisection cuts {actual}",
                    st.cut_after
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalapart::{scalapart_bisect_observed, SpConfig};
    use sp_graph::gen::grid_2d;
    use sp_machine::{CostModel, Machine};

    #[test]
    fn clean_pipeline_run_has_no_violations() {
        let g = grid_2d(32, 32);
        let mut m = Machine::new(16, CostModel::qdr_infiniband());
        let mut chk = InvariantChecker::new(0.15);
        let r = scalapart_bisect_observed(&g, &mut m, &SpConfig::default(), &mut chk);
        chk.check_result(&g, &r);
        chk.check_machine(&m.stats(), None);
        assert!(chk.ok(), "violations: {:?}", chk.violations);
        assert!(chk.checkpoints >= 8, "only {} checkpoints", chk.checkpoints);
    }

    #[test]
    fn corrupted_label_is_caught() {
        let g = grid_2d(24, 24);
        let mut m = Machine::new(4, CostModel::qdr_infiniband());
        let mut chk = InvariantChecker::new(0.15);
        let mut r = scalapart_bisect_observed(&g, &mut m, &SpConfig::default(), &mut chk);
        r.bisection.flip(7);
        chk.check_result(&g, &r);
        assert!(!chk.ok());
        assert!(chk
            .violations
            .iter()
            .any(|v| v.invariant == "cut-accounting"));
    }
}
