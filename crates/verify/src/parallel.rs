//! Parallel-vs-serial determinism fuzz: the simulated machine may pack
//! rank closures into host-task batches of any size and run them on any
//! number of host threads, and none of it may be observable in the
//! simulation. This module runs the **full pipeline** (coarsen → embed →
//! partition → refine) once serially — every superstep inline on the
//! calling thread — and then across a matrix of rank-batch sizes and
//! pool widths, demanding the complete fingerprint (partition labels,
//! coordinate bits, cut statistics, simulated-time bits) be identical on
//! every run.
//!
//! Why this must hold: each rank closure touches only its own rank's
//! state and writes its op count into its own rank's slot; clock charges
//! and outbox merges always walk ranks in ascending order afterwards.
//! Host scheduling decides only *when* a closure runs, never what it
//! computes or where its result lands — the same argument that makes the
//! `Schedule` fuzzer's permutations invisible (see DESIGN.md, "Host
//! performance round 2").

use scalapart::{scalapart_bisect, SpConfig};
use sp_graph::Graph;
use sp_machine::{CostModel, Machine};

use crate::fuzz::fingerprint_result;

/// Configuration of a parallel-execution fuzz campaign.
#[derive(Clone, Debug)]
pub struct ParallelFuzzConfig {
    /// Simulated ranks.
    pub ranks: usize,
    /// Pipeline configuration shared by every run.
    pub sp: SpConfig,
    /// Rank-batch sizes to sweep (`ranks` itself degenerates to the
    /// serial inline path; 1 is maximal fan-out).
    pub batches: Vec<usize>,
    /// Host pool widths to sweep (installed per run, the in-process
    /// equivalent of `RAYON_NUM_THREADS`).
    pub threads: Vec<usize>,
}

impl Default for ParallelFuzzConfig {
    fn default() -> Self {
        let ranks = 16;
        ParallelFuzzConfig {
            ranks,
            sp: SpConfig::default(),
            batches: vec![1, 4, ranks],
            threads: vec![1, 4, 8],
        }
    }
}

/// One diverging run of the campaign.
#[derive(Clone, Debug)]
pub struct ParallelFailure {
    pub batch: usize,
    pub threads: usize,
    pub detail: String,
}

impl std::fmt::Display for ParallelFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch {} on {} host threads: {}",
            self.batch, self.threads, self.detail
        )
    }
}

/// Result of a parallel-execution fuzz campaign.
pub struct ParallelReport {
    /// Fingerprint of the serial baseline (labels + coords + cut +
    /// simulated-time bits).
    pub baseline_fingerprint: u64,
    /// Simulated elapsed time of the baseline.
    pub baseline_elapsed: f64,
    /// Total pipeline runs performed (baseline + matrix).
    pub runs: usize,
    pub failures: Vec<ParallelFailure>,
}

impl ParallelReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run the pipeline once with the given rank batch, returning the full
/// fingerprint and simulated elapsed time.
fn run_pipeline(g: &Graph, cfg: &ParallelFuzzConfig, batch: usize) -> (u64, f64) {
    let mut machine = Machine::new(cfg.ranks, CostModel::qdr_infiniband());
    machine.set_rank_batch(batch);
    let r = scalapart_bisect(g, &mut machine, &cfg.sp);
    (fingerprint_result(g, &r, true), machine.elapsed())
}

/// Serial baseline plus the full `batches × threads` matrix. Every run
/// must reproduce the baseline fingerprint bit-for-bit.
pub fn run_parallel_campaign(g: &Graph, cfg: &ParallelFuzzConfig) -> ParallelReport {
    // Baseline: one batch covering all ranks on a one-thread pool — the
    // machine's inline serial path, no task dispatch anywhere.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool");
    let (baseline_fp, baseline_elapsed) = pool.install(|| run_pipeline(g, cfg, cfg.ranks));

    let mut runs = 1;
    let mut failures = Vec::new();
    for &threads in &cfg.threads {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        for &batch in &cfg.batches {
            let (fp, elapsed) = pool.install(|| run_pipeline(g, cfg, batch));
            runs += 1;
            if fp != baseline_fp {
                failures.push(ParallelFailure {
                    batch,
                    threads,
                    detail: format!(
                        "fingerprint {:#018x} != serial baseline {:#018x} \
                         (simulated {} vs {})",
                        fp, baseline_fp, elapsed, baseline_elapsed
                    ),
                });
            }
        }
    }

    ParallelReport {
        baseline_fingerprint: baseline_fp,
        baseline_elapsed,
        runs,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::gen::grid_2d;

    fn small_cfg() -> ParallelFuzzConfig {
        ParallelFuzzConfig {
            ranks: 8,
            batches: vec![1, 4, 8],
            threads: vec![1, 4, 8],
            ..ParallelFuzzConfig::default()
        }
    }

    #[test]
    fn pipeline_is_batch_and_thread_invariant_on_grid() {
        let g = grid_2d(24, 24);
        let report = run_parallel_campaign(&g, &small_cfg());
        assert_eq!(report.runs, 10, "baseline + 3×3 matrix");
        for f in &report.failures {
            eprintln!("{f}");
        }
        assert!(report.ok());
    }

    #[test]
    fn campaign_actually_exercises_distinct_batch_shapes() {
        // Guard against the sweep silently collapsing to one shape: with 8
        // ranks, batch 1 fans out to 8 tasks, batch 4 to 2, batch 8 runs
        // inline. All must agree with each other, not just exist.
        let g = grid_2d(16, 16);
        let a = run_parallel_campaign(
            &g,
            &ParallelFuzzConfig {
                ranks: 8,
                batches: vec![1],
                threads: vec![8],
                ..ParallelFuzzConfig::default()
            },
        );
        let b = run_parallel_campaign(
            &g,
            &ParallelFuzzConfig {
                ranks: 8,
                batches: vec![3],
                threads: vec![2],
                ..ParallelFuzzConfig::default()
            },
        );
        assert!(a.ok() && b.ok());
        assert_eq!(a.baseline_fingerprint, b.baseline_fingerprint);
        assert_eq!(
            a.baseline_elapsed.to_bits(),
            b.baseline_elapsed.to_bits(),
            "simulated time must not depend on host execution shape"
        );
    }
}
