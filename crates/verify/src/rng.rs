//! Seed derivation and result fingerprinting. Both are hand-rolled and
//! dependency-free so fingerprints and replay seeds are stable across rand
//! versions and platforms.
//!
//! The FNV-1a accumulator itself lives in `sp_trace::fnv` (the
//! dependency-free leaf crate) so sp-serve can share it for cache keys
//! without depending on this crate; it is re-exported here under its
//! historical name.

pub use sp_trace::fnv::Fingerprint;

/// splitmix64 step.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The i-th schedule seed derived from a master seed. Stable: failure
/// reports print the derived seed, and replaying with it alone reproduces
/// the schedule.
pub fn derive_seed(master: u64, i: u64) -> u64 {
    let mut s = master ^ i.wrapping_mul(0xA076_1D64_78BD_642F);
    splitmix64(&mut s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..32).map(|i| derive_seed(0x5EED, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len());
        assert_eq!(
            seeds,
            (0..32).map(|i| derive_seed(0x5EED, i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let mut a = Fingerprint::new();
        a.u64(1);
        a.u64(2);
        let mut b = Fingerprint::new();
        b.u64(2);
        b.u64(1);
        assert_ne!(a.finish(), b.finish());
    }
}
