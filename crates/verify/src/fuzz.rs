//! The schedule-fuzzing campaign: run the full pipeline once on the
//! canonical schedule, then repeatedly under fuzzed host-execution and
//! message-delivery orders, checking every invariant and demanding
//! bit-exact output equality. Every failure carries the derived schedule
//! seed, so `--replay <seed>` (or `Schedule::seeded(seed)`) reproduces it.

use scalapart::{scalapart_bisect_observed, SpConfig, SpResult};
use sp_graph::Graph;
use sp_machine::{CostModel, Machine, Schedule};
use sp_trace::TraceRecorder;

use crate::invariants::{InvariantChecker, Violation};
use crate::rng::{derive_seed, Fingerprint};

/// Configuration of one fuzzing campaign.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Simulated ranks.
    pub ranks: usize,
    /// Fuzzed schedules to run beyond the canonical baseline.
    pub schedules: usize,
    /// Master seed; schedule `i` runs under `derive_seed(master_seed, i)`.
    pub master_seed: u64,
    /// Pipeline configuration shared by every run.
    pub sp: SpConfig,
    /// Allowed final imbalance (passed to the invariant checker).
    pub balance_bound: f64,
    /// Self-test hook: corrupt this vertex's partition label after the
    /// pipeline but before the final checks. The campaign must then fail.
    pub corrupt_vertex: Option<u32>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            ranks: 16,
            schedules: 8,
            master_seed: 0x5CA1_AB1E,
            sp: SpConfig::default(),
            balance_bound: 0.15,
            corrupt_vertex: None,
        }
    }
}

/// Outcome of a single pipeline run under one schedule.
pub struct RunOutcome {
    /// Schedule seed, or `None` for the canonical baseline schedule.
    pub seed: Option<u64>,
    /// Fingerprint over all output data (labels, coords, cut) AND the
    /// simulated clock — the full bit-exactness contract.
    pub fingerprint: u64,
    /// Fingerprint over output data only (no simulated time); used by
    /// perturbation scenarios where time may legitimately move.
    pub data_fingerprint: u64,
    /// Simulated elapsed time.
    pub elapsed: f64,
    /// Everything that broke.
    pub violations: Vec<Violation>,
    /// Checkpoints the invariant checker inspected.
    pub checkpoints: usize,
}

impl RunOutcome {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Fingerprint a pipeline result: partition labels, coordinate bits, cut
/// statistics, and (optionally) the simulated clock.
pub fn fingerprint_result(g: &Graph, r: &SpResult, include_time: bool) -> u64 {
    let mut fp = Fingerprint::new();
    for v in 0..g.n() {
        fp.byte(r.bisection.side(v as u32));
    }
    for c in &r.coords {
        fp.f64_bits(c.x);
        fp.f64_bits(c.y);
    }
    fp.u64(r.cut as u64);
    fp.u64(r.cut_before_refine as u64);
    fp.f64_bits(r.imbalance);
    if include_time {
        fp.f64_bits(r.total_time);
    }
    fp.finish()
}

/// Run the full pipeline once under an optional fuzzed schedule, with the
/// invariant checker on every checkpoint and the trace crosscheck on the
/// recorded event stream.
pub fn run_once(g: &Graph, cfg: &FuzzConfig, seed: Option<u64>) -> RunOutcome {
    let mut machine = Machine::new(cfg.ranks, CostModel::qdr_infiniband());
    if let Some(s) = seed {
        machine.set_schedule(Schedule::seeded(s));
    }
    machine.set_recorder(Box::new(TraceRecorder::new(cfg.ranks)));

    let mut chk = InvariantChecker::new(cfg.balance_bound);
    let mut r = scalapart_bisect_observed(g, &mut machine, &cfg.sp, &mut chk);

    if let Some(v) = cfg.corrupt_vertex {
        // Deliberate fault injection: the checker must catch this.
        r.bisection.flip(v % g.n() as u32);
    }

    chk.check_result(g, &r);
    let rec = TraceRecorder::downcast(machine.take_recorder().unwrap()).unwrap();
    chk.check_machine(&machine.stats(), Some(&rec));

    RunOutcome {
        seed,
        fingerprint: fingerprint_result(g, &r, true),
        data_fingerprint: fingerprint_result(g, &r, false),
        elapsed: machine.elapsed(),
        violations: chk.violations,
        checkpoints: chk.checkpoints,
    }
}

/// One failed run of a campaign.
pub struct Failure {
    /// Replay seed (`None` = the baseline schedule failed).
    pub seed: Option<u64>,
    pub violations: Vec<Violation>,
}

/// Result of a whole schedule-fuzzing campaign.
pub struct CampaignReport {
    /// Fingerprint of the canonical baseline run.
    pub baseline_fingerprint: u64,
    /// Total runs performed (baseline + fuzzed).
    pub runs: usize,
    /// Checkpoints inspected by the baseline run.
    pub checkpoints: usize,
    pub failures: Vec<Failure>,
}

impl CampaignReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run the baseline plus `cfg.schedules` fuzzed schedules, collecting
/// invariant violations and any schedule-determinism breaks.
pub fn run_campaign(g: &Graph, cfg: &FuzzConfig) -> CampaignReport {
    let baseline = run_once(g, cfg, None);
    let mut failures = Vec::new();
    if !baseline.ok() {
        failures.push(Failure {
            seed: None,
            violations: baseline.violations.clone(),
        });
    }
    assert!(
        baseline.checkpoints > 0,
        "invariant checker saw no checkpoints — observer wiring is broken"
    );

    let mut runs = 1;
    for i in 0..cfg.schedules {
        let seed = derive_seed(cfg.master_seed, i as u64);
        let run = run_once(g, cfg, Some(seed));
        runs += 1;
        let mut violations = run.violations;
        if run.fingerprint != baseline.fingerprint {
            violations.push(Violation {
                invariant: "schedule-determinism",
                detail: format!(
                    "fingerprint {:#018x} != baseline {:#018x} (elapsed {} vs {})",
                    run.fingerprint, baseline.fingerprint, run.elapsed, baseline.elapsed
                ),
            });
        }
        if !violations.is_empty() {
            failures.push(Failure {
                seed: Some(seed),
                violations,
            });
        }
    }

    CampaignReport {
        baseline_fingerprint: baseline.fingerprint,
        runs,
        checkpoints: baseline.checkpoints,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::gen::grid_2d;

    fn small_cfg(schedules: usize) -> FuzzConfig {
        FuzzConfig {
            ranks: 8,
            schedules,
            ..FuzzConfig::default()
        }
    }

    #[test]
    fn campaign_is_clean_and_bit_exact_on_grid() {
        let g = grid_2d(24, 24);
        let report = run_campaign(&g, &small_cfg(4));
        assert_eq!(report.runs, 5);
        for f in &report.failures {
            for v in &f.violations {
                eprintln!("seed {:?}: {v}", f.seed);
            }
        }
        assert!(report.ok());
    }

    #[test]
    fn self_test_corruption_is_caught_with_replay_seed() {
        let g = grid_2d(24, 24);
        let mut cfg = small_cfg(2);
        cfg.corrupt_vertex = Some(11);
        let report = run_campaign(&g, &cfg);
        assert!(!report.ok(), "corrupted run must fail");
        // The baseline is corrupted too, and every fuzzed schedule carries
        // its replay seed.
        assert!(report
            .failures
            .iter()
            .any(|f| f.seed.is_some()
                && f.violations.iter().any(|v| v.invariant == "cut-accounting")));
    }

    #[test]
    fn replaying_a_seed_reproduces_the_run_exactly() {
        let g = grid_2d(20, 20);
        let cfg = small_cfg(0);
        let seed = derive_seed(cfg.master_seed, 3);
        let a = run_once(&g, &cfg, Some(seed));
        let b = run_once(&g, &cfg, Some(seed));
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.elapsed.to_bits(), b.elapsed.to_bits());
    }
}
