//! Representation-blindness verification: the compact CSR
//! ([`sp_graph::CompactGraph`], u32 offsets + elided unit weights) must be
//! indistinguishable from the reference [`Graph`] everywhere it can be
//! observed — structurally (bit-identical round-trip, equal
//! [`graph_fingerprint`], agreeing induced subgraphs) and behaviourally
//! (the **full pipeline** run on the compact-round-tripped graph must
//! reproduce the reference run's complete fingerprint: partition labels,
//! coordinate bits, cut statistics, and simulated-time bits), across a
//! host thread-pool matrix. Any divergence means some stage secretly
//! depends on the in-memory representation rather than the graph.

use scalapart::{scalapart_bisect, SpConfig};
use sp_graph::{graph_fingerprint, CompactGraph, Graph};
use sp_machine::{CostModel, Machine};

use crate::fuzz::fingerprint_result;

/// Configuration of a representation-blindness campaign.
#[derive(Clone, Debug)]
pub struct ReprFuzzConfig {
    /// Simulated ranks.
    pub ranks: usize,
    /// Pipeline configuration shared by every run.
    pub sp: SpConfig,
    /// Host pool widths to sweep for the pipeline leg.
    pub threads: Vec<usize>,
}

impl Default for ReprFuzzConfig {
    fn default() -> Self {
        ReprFuzzConfig {
            ranks: 16,
            sp: SpConfig::default(),
            threads: vec![1, 4, 8],
        }
    }
}

/// Result of a representation-blindness campaign.
pub struct ReprReport {
    /// Full-pipeline fingerprint of the reference-representation baseline.
    pub baseline_fingerprint: u64,
    /// Structural fingerprint shared by both representations.
    pub graph_fingerprint: u64,
    /// Heap bytes of the compact vs reference representation.
    pub compact_bytes: usize,
    pub reference_bytes: usize,
    /// Total pipeline runs performed (reference + compact, per width).
    pub runs: usize,
    pub failures: Vec<String>,
}

impl ReprReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

fn run_pipeline(g: &Graph, cfg: &ReprFuzzConfig) -> u64 {
    let mut machine = Machine::new(cfg.ranks, CostModel::qdr_infiniband());
    let r = scalapart_bisect(g, &mut machine, &cfg.sp);
    fingerprint_result(g, &r, true)
}

/// Run the representation-blindness campaign on `g`.
///
/// Structural leg: compact round-trip must be bit-identical and the two
/// representations must agree on [`graph_fingerprint`] and on an induced
/// subgraph. Behavioural leg: for every pool width, the pipeline run on
/// the reference graph and on the compact-round-tripped graph must both
/// reproduce the single-thread reference baseline's fingerprint.
pub fn run_repr_campaign(g: &Graph, cfg: &ReprFuzzConfig) -> ReprReport {
    let mut failures = Vec::new();

    // --- Structural leg.
    let compact = CompactGraph::from_graph(g);
    let round = compact.to_graph();
    if round.xadj() != g.xadj()
        || round.adjncy() != g.adjncy()
        || round.ewgts() != g.ewgts()
        || round.vwgts() != g.vwgts()
    {
        failures.push("compact round-trip is not bit-identical".to_string());
    }
    let fp_ref = graph_fingerprint(g);
    let fp_cmp = graph_fingerprint(&compact);
    if fp_ref != fp_cmp {
        failures.push(format!(
            "graph fingerprint diverges: reference {fp_ref:#018x} vs compact {fp_cmp:#018x}"
        ));
    }
    // Induced subgraph of the even vertices through both representations.
    let verts: Vec<u32> = (0..g.n() as u32).step_by(2).collect();
    if !verts.is_empty() {
        let (sg, _) = g.induced_subgraph(&verts);
        let (sc, _) = compact.induced_subgraph(&verts);
        if graph_fingerprint(&sc) != graph_fingerprint(&sg) {
            failures.push("induced subgraphs diverge between representations".to_string());
        }
    }

    // --- Behavioural leg: full pipeline across the thread matrix, both
    // representations, all against one single-thread reference baseline.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool");
    let baseline_fp = pool.install(|| run_pipeline(g, cfg));
    let mut runs = 1;
    for &threads in &cfg.threads {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        for (label, graph) in [("reference", g), ("compact", &round)] {
            let fp = pool.install(|| run_pipeline(graph, cfg));
            runs += 1;
            if fp != baseline_fp {
                failures.push(format!(
                    "{label} representation on {threads} host thread(s): pipeline \
                     fingerprint {fp:#018x} != baseline {baseline_fp:#018x}"
                ));
            }
        }
    }

    ReprReport {
        baseline_fingerprint: baseline_fp,
        graph_fingerprint: fp_ref,
        compact_bytes: compact.heap_bytes(),
        reference_bytes: g.n() * 8 + g.xadj().len() * 8 + 2 * g.m() * (4 + 8),
        runs,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sp_graph::gen::{delaunay_graph, grid_2d};

    #[test]
    fn grid_pipeline_is_representation_blind() {
        let g = grid_2d(24, 24);
        let report = run_repr_campaign(
            &g,
            &ReprFuzzConfig {
                ranks: 8,
                threads: vec![1, 4],
                ..ReprFuzzConfig::default()
            },
        );
        for f in &report.failures {
            eprintln!("{f}");
        }
        assert!(report.ok());
        assert_eq!(report.runs, 5, "baseline + 2 reprs × 2 widths");
        // Unit-weight grid: the compact representation must actually be
        // smaller, not just equivalent.
        assert!(report.compact_bytes * 2 < report.reference_bytes);
    }

    #[test]
    fn delaunay_pipeline_is_representation_blind() {
        let (g, _) = delaunay_graph(600, &mut StdRng::seed_from_u64(21));
        let report = run_repr_campaign(
            &g,
            &ReprFuzzConfig {
                ranks: 4,
                threads: vec![2],
                ..ReprFuzzConfig::default()
            },
        );
        for f in &report.failures {
            eprintln!("{f}");
        }
        assert!(report.ok());
    }
}
