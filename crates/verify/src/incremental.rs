//! Incremental-repartitioning fuzz: seeded delta streams driven through
//! [`sp_stream`]'s warm-start repartitioner, with four properties
//! demanded at every step:
//!
//! 1. **Validity** — the partition stays a two-sided cover with both
//!    sides populated, whatever the delta chain did to the graph.
//! 2. **Representation invisibility** — a twin session that compacts its
//!    overlay to a fresh CSR after every step (`force_rebase`) produces
//!    bit-identical partition fingerprints. The overlay is a view, never
//!    a semantic.
//! 3. **Batch-split invisibility** — delivering the same deltas one at a
//!    time instead of as one batch changes nothing: the repartitioner's
//!    state is a function of the delta *chain*, not its framing.
//! 4. **Differential cut bound** — the warm incremental cut stays within
//!    a configured factor (plus absolute slack) of a from-scratch
//!    partition of the same mutated graph. Warm-starting trades cut
//!    quality for migration volume; this bounds how much.
//!
//! The whole campaign then re-runs under a matrix of host pool widths
//! (the in-process `RAYON_NUM_THREADS`), demanding every step fingerprint
//! be identical to the single-thread baseline — same contract as the
//! [`parallel`](crate::parallel) stage, extended to the dynamic path.
//!
//! Every failure carries the stream seed that reproduces it.

use crate::rng::{derive_seed, splitmix64};
use scalapart::stream::{DeltaOverlay, GraphDelta, IncrementalRepartitioner, StreamConfig};
use sp_geometry::Point2;
use sp_graph::Graph;
use std::sync::Arc;

/// Configuration of an incremental-repartitioning fuzz campaign.
#[derive(Clone, Debug)]
pub struct IncrementalFuzzConfig {
    /// Independent delta streams (each gets a derived seed).
    pub streams: usize,
    /// Repartition steps per stream.
    pub steps: usize,
    /// Deltas applied between consecutive repartitions.
    pub batch: usize,
    /// Master seed; stream `i` runs on `derive_seed(seed, i)`.
    pub seed: u64,
    /// Host pool widths to sweep; every width must reproduce the
    /// single-thread step fingerprints bit-for-bit.
    pub threads: Vec<usize>,
    /// Incremental cut must satisfy
    /// `cut <= scratch_cut * cut_factor + cut_slack`.
    pub cut_factor: f64,
    pub cut_slack: f64,
    /// Repartitioner settings shared by every session in the campaign.
    pub stream_cfg: StreamConfig,
}

impl Default for IncrementalFuzzConfig {
    fn default() -> Self {
        IncrementalFuzzConfig {
            streams: 4,
            steps: 6,
            batch: 8,
            seed: 0x5EED_D1FF,
            threads: vec![1, 4, 8],
            cut_factor: 2.0,
            cut_slack: 8.0,
            stream_cfg: StreamConfig::default(),
        }
    }
}

/// One violated property.
#[derive(Clone, Debug)]
pub struct IncrementalFailure {
    /// Stream index within the campaign.
    pub stream: usize,
    /// Derived seed that reproduces the stream.
    pub seed: u64,
    /// Step index (0 = bootstrap).
    pub step: u64,
    pub detail: String,
}

impl std::fmt::Display for IncrementalFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stream {} (seed {:#x}) step {}: {}",
            self.stream, self.seed, self.step, self.detail
        )
    }
}

/// Result of an incremental fuzz campaign.
pub struct IncrementalReport {
    /// Repartition steps executed across all streams and sessions.
    pub steps_run: usize,
    /// Steps answered by the incremental (dirty-region) path.
    pub incremental_steps: usize,
    /// Steps that fell back to a full re-partition.
    pub full_steps: usize,
    pub failures: Vec<IncrementalFailure>,
}

impl IncrementalReport {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Draw the next valid delta for the overlay's current state. Rejection
/// sampling against the validity rules (no duplicate adds, no removes
/// that strand a vertex), bounded so a pathological state cannot spin.
fn next_delta(ov: &DeltaOverlay, state: &mut u64) -> Option<GraphDelta> {
    let n = ov.n() as u64;
    for _ in 0..64 {
        let r = splitmix64(state);
        let a = ((r >> 8) % n) as u32;
        let b = ((r >> 34) % n) as u32;
        let mag = ((r >> 16) & 0xF) as f64;
        match r % 4 {
            0 => {
                if a != b && !ov.neighbors_w(a).any(|(x, _)| x == b) {
                    return Some(GraphDelta::AddEdge {
                        u: a,
                        v: b,
                        w: 0.25 + mag / 4.0,
                    });
                }
            }
            1 => {
                if ov.neighbors_w(a).any(|(x, _)| x == b) && ov.degree(a) > 1 && ov.degree(b) > 1 {
                    return Some(GraphDelta::RemoveEdge { u: a, v: b });
                }
            }
            2 => {
                return Some(GraphDelta::SetVwgt {
                    v: a,
                    w: 0.5 + mag / 2.0,
                })
            }
            _ => {
                if ov.coords().is_some() {
                    return Some(GraphDelta::ShiftCoord {
                        v: a,
                        dx: (mag - 7.5) / 16.0,
                        dy: (7.5 - mag) / 16.0,
                    });
                }
            }
        }
    }
    None
}

fn overlay_of(g: &Arc<Graph>, coords: Option<&[Point2]>) -> DeltaOverlay {
    DeltaOverlay::new(g.clone(), coords.map(|c| c.to_vec())).expect("base graph is valid")
}

/// Deltas for step `s` of a stream: even steps deliver a single delta
/// (a small dirty region, exercising the localized incremental path),
/// odd steps the full configured batch (driving the dirty fraction over
/// the fallback threshold on small graphs). Both execution paths get
/// fuzzed regardless of base-graph size.
fn batch_for(
    ov: &DeltaOverlay,
    rng: &mut u64,
    s: usize,
    cfg: &IncrementalFuzzConfig,
) -> Vec<GraphDelta> {
    let size = if s.is_multiple_of(2) { 1 } else { cfg.batch };
    let mut batch = Vec::with_capacity(size);
    for _ in 0..size {
        if let Some(d) = next_delta(ov, rng) {
            batch.push(d);
        }
    }
    batch
}

/// Check one partition for validity; returns a failure detail if broken.
fn validity_of(rp: &IncrementalRepartitioner) -> Option<String> {
    let bi = rp.partition();
    let n = rp.overlay().n();
    if bi.len() != n {
        return Some(format!(
            "partition has {} labels for {} vertices",
            bi.len(),
            n
        ));
    }
    let zeros = (0..n as u32).filter(|&v| bi.side(v) == 0).count();
    if n >= 2 && (zeros == 0 || zeros == n) {
        return Some(format!("one-sided partition ({zeros} of {n} on side 0)"));
    }
    None
}

/// Run one seeded stream with all per-step properties checked. Returns
/// the per-step partition fingerprints (bootstrap first) for cross-run
/// comparison, plus the per-mode step counts.
fn run_stream(
    g: &Arc<Graph>,
    coords: Option<&[Point2]>,
    cfg: &IncrementalFuzzConfig,
    stream: usize,
    seed: u64,
    failures: &mut Vec<IncrementalFailure>,
) -> (Vec<u64>, usize, usize) {
    let mut fail = |step: u64, detail: String| {
        failures.push(IncrementalFailure {
            stream,
            seed,
            step,
            detail,
        })
    };
    let scfg = StreamConfig {
        seed,
        ..cfg.stream_cfg
    };
    let (mut main, boot) = IncrementalRepartitioner::new(overlay_of(g, coords), scfg);
    let (mut twin, twin_boot) = IncrementalRepartitioner::new(overlay_of(g, coords), scfg);
    let (mut split, _) = IncrementalRepartitioner::new(overlay_of(g, coords), scfg);
    let mut fps = vec![boot.partition_fp];
    let mut incremental = 0usize;
    let mut full = 1usize; // the bootstrap
    if boot.partition_fp != twin_boot.partition_fp {
        fail(0, "bootstrap is not reproducible".to_string());
    }
    let mut rng = seed;
    for s in 0..cfg.steps {
        let batch = batch_for(main.overlay(), &mut rng, s, cfg);
        let report = match main.step(&batch) {
            Ok(r) => r,
            Err(e) => {
                fail(main.steps(), format!("generated delta rejected: {e}"));
                break;
            }
        };
        fps.push(report.partition_fp);
        match report.mode {
            scalapart::stream::StepMode::Incremental => incremental += 1,
            scalapart::stream::StepMode::Full => full += 1,
        }

        // 1. Validity.
        if let Some(detail) = validity_of(&main) {
            fail(report.step, detail);
        }

        // 2. Representation invisibility: the twin compacts after every
        // step yet must match bit-for-bit.
        match twin.step(&batch) {
            Ok(t) => {
                twin.force_rebase();
                if t.partition_fp != report.partition_fp
                    || t.cut_after.to_bits() != report.cut_after.to_bits()
                {
                    fail(
                        report.step,
                        format!(
                            "compacted twin diverged: fp {:#018x} vs {:#018x}, cut {} vs {}",
                            t.partition_fp, report.partition_fp, t.cut_after, report.cut_after
                        ),
                    );
                }
            }
            Err(e) => fail(
                report.step,
                format!("twin rejected a batch the main session accepted: {e}"),
            ),
        }

        // 3. Batch-split invisibility: one delta at a time, then one
        // repartition — identical outcome.
        let split_err = batch
            .iter()
            .find_map(|d| split.apply(std::slice::from_ref(d)).err());
        match split_err {
            Some(e) => fail(
                report.step,
                format!("singleton delivery rejected a batched delta: {e}"),
            ),
            None => {
                let sp = split.repartition();
                if sp.partition_fp != report.partition_fp {
                    fail(
                        report.step,
                        format!(
                            "batch framing leaked into the result: split fp {:#018x} vs {:#018x}",
                            sp.partition_fp, report.partition_fp
                        ),
                    );
                }
            }
        }

        // 4. Differential cut bound against a from-scratch oracle on the
        // same mutated graph.
        let compacted = Arc::new(main.overlay().compact());
        let (_, scratch) =
            IncrementalRepartitioner::new(overlay_of(&compacted, main.overlay().coords()), scfg);
        let bound = scratch.cut_after * cfg.cut_factor + cfg.cut_slack;
        if main.cut() > bound {
            fail(
                report.step,
                format!(
                    "incremental cut {} exceeds bound {} (scratch {} x {} + {})",
                    main.cut(),
                    bound,
                    scratch.cut_after,
                    cfg.cut_factor,
                    cfg.cut_slack
                ),
            );
        }
    }
    (fps, incremental, full)
}

/// Run the full campaign on a base graph: every stream with all per-step
/// properties on a single-thread pool, then the step-fingerprint
/// sequences re-derived under each pool width in `threads`.
pub fn run_incremental_campaign(
    g: &Graph,
    coords: Option<&[Point2]>,
    cfg: &IncrementalFuzzConfig,
) -> IncrementalReport {
    let g = Arc::new(g.clone());
    let mut failures = Vec::new();
    let mut steps_run = 0usize;
    let mut incremental_steps = 0usize;
    let mut full_steps = 0usize;

    let baseline: Vec<(u64, Vec<u64>)> = {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool");
        pool.install(|| {
            (0..cfg.streams)
                .map(|i| {
                    let seed = derive_seed(cfg.seed, i as u64);
                    let (fps, inc, full) = run_stream(&g, coords, cfg, i, seed, &mut failures);
                    steps_run += fps.len();
                    incremental_steps += inc;
                    full_steps += full;
                    (seed, fps)
                })
                .collect()
        })
    };

    // Thread-width sweep: a cheap replay (main session only, no twins)
    // per width, compared against the single-thread fingerprints.
    for &threads in &cfg.threads {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(|| {
            for (i, (seed, expected)) in baseline.iter().enumerate() {
                let scfg = StreamConfig {
                    seed: *seed,
                    ..cfg.stream_cfg
                };
                let (mut rp, boot) = IncrementalRepartitioner::new(overlay_of(&g, coords), scfg);
                let mut fps = vec![boot.partition_fp];
                let mut rng = *seed;
                for s in 0..cfg.steps {
                    let batch = batch_for(rp.overlay(), &mut rng, s, cfg);
                    match rp.step(&batch) {
                        Ok(r) => fps.push(r.partition_fp),
                        Err(_) => break,
                    }
                }
                steps_run += fps.len().saturating_sub(1);
                if &fps != expected {
                    let step = fps
                        .iter()
                        .zip(expected)
                        .position(|(a, b)| a != b)
                        .unwrap_or(expected.len().min(fps.len()));
                    failures.push(IncrementalFailure {
                        stream: i,
                        seed: *seed,
                        step: step as u64,
                        detail: format!(
                            "step fingerprints diverge on a {threads}-thread pool \
                             (first divergence at step {step})"
                        ),
                    });
                }
            }
        });
    }

    IncrementalReport {
        steps_run,
        incremental_steps,
        full_steps,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::gen::{grid_2d, grid_2d_coords};

    fn small_cfg() -> IncrementalFuzzConfig {
        IncrementalFuzzConfig {
            streams: 2,
            steps: 4,
            batch: 6,
            threads: vec![1, 4],
            ..IncrementalFuzzConfig::default()
        }
    }

    #[test]
    fn campaign_passes_on_grid_with_coords() {
        let g = grid_2d(12, 12);
        let coords = grid_2d_coords(12, 12);
        let report = run_incremental_campaign(&g, Some(&coords), &small_cfg());
        for f in &report.failures {
            eprintln!("{f}");
        }
        assert!(report.ok());
        assert!(report.steps_run > 0);
        assert!(
            report.incremental_steps > 0,
            "campaign never exercised the incremental path"
        );
    }

    #[test]
    fn campaign_passes_without_coordinates() {
        // The coordinate-free fallback path (full steps use FM from the
        // inherited sides) must satisfy the same properties.
        let g = grid_2d(10, 10);
        let report = run_incremental_campaign(&g, None, &small_cfg());
        for f in &report.failures {
            eprintln!("{f}");
        }
        assert!(report.ok());
    }

    #[test]
    fn delta_generator_is_deterministic_and_productive() {
        let g = Arc::new(grid_2d(8, 8));
        let ov = overlay_of(&g, None);
        let mut a = 42u64;
        let mut b = 42u64;
        let da: Vec<_> = (0..32).filter_map(|_| next_delta(&ov, &mut a)).collect();
        let db: Vec<_> = (0..32).filter_map(|_| next_delta(&ov, &mut b)).collect();
        assert_eq!(da.len(), 32, "generator starved on a healthy graph");
        assert_eq!(format!("{da:?}"), format!("{db:?}"));
    }
}
