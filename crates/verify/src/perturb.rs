//! Perturbation injection: exercise the nondeterminism the design
//! *tolerates* — rank compute skew, delayed collectives, extra staleness in
//! the blocked nearest-neighbour exchange — and assert the pipeline's
//! contract under each. Skew and delay may move the simulated clock but
//! must never change output data; staleness may change data but every
//! invariant must still hold.

use scalapart::scalapart_bisect_observed;
use sp_graph::Graph;
use sp_machine::{CostModel, Machine, Perturbation};
use sp_trace::TraceRecorder;

use crate::fuzz::{fingerprint_result, FuzzConfig, RunOutcome};
use crate::invariants::{InvariantChecker, Violation};

/// Outcome of one perturbation scenario.
pub struct ScenarioOutcome {
    pub name: &'static str,
    pub violations: Vec<Violation>,
}

impl ScenarioOutcome {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Report over all perturbation scenarios.
pub struct PerturbReport {
    pub scenarios: Vec<ScenarioOutcome>,
}

impl PerturbReport {
    pub fn ok(&self) -> bool {
        self.scenarios.iter().all(|s| s.ok())
    }
}

/// Run the pipeline under an optional perturbation, invariant-checked.
fn run_perturbed(g: &Graph, cfg: &FuzzConfig, pert: Option<&Perturbation>) -> RunOutcome {
    let mut machine = Machine::new(cfg.ranks, CostModel::qdr_infiniband());
    if let Some(p) = pert {
        machine.set_perturbation(p);
    }
    machine.set_recorder(Box::new(TraceRecorder::new(cfg.ranks)));

    let mut chk = InvariantChecker::new(cfg.balance_bound);
    let r = scalapart_bisect_observed(g, &mut machine, &cfg.sp, &mut chk);

    chk.check_result(g, &r);
    let rec = TraceRecorder::downcast(machine.take_recorder().unwrap()).unwrap();
    chk.check_machine(&machine.stats(), Some(&rec));

    RunOutcome {
        seed: Some(pert.map_or(0, |p| p.seed)),
        fingerprint: fingerprint_result(g, &r, true),
        data_fingerprint: fingerprint_result(g, &r, false),
        elapsed: machine.elapsed(),
        violations: chk.violations,
        checkpoints: chk.checkpoints,
    }
}

fn data_scenario(
    name: &'static str,
    baseline: &RunOutcome,
    run: RunOutcome,
    expect_slower: bool,
) -> ScenarioOutcome {
    let mut violations = run.violations;
    if run.data_fingerprint != baseline.data_fingerprint {
        violations.push(Violation {
            invariant: "perturb-data-stable",
            detail: format!(
                "{name}: data fingerprint {:#018x} != baseline {:#018x} — \
                 a time-only perturbation changed output data",
                run.data_fingerprint, baseline.data_fingerprint
            ),
        });
    }
    if expect_slower && run.elapsed < baseline.elapsed {
        violations.push(Violation {
            invariant: "perturb-time-monotone",
            detail: format!(
                "{name}: perturbed run finished earlier ({} < {}) despite \
                 only slowdowns being injected",
                run.elapsed, baseline.elapsed
            ),
        });
    }
    ScenarioOutcome { name, violations }
}

/// Run every perturbation scenario against a shared unperturbed baseline.
pub fn run_perturbations(g: &Graph, cfg: &FuzzConfig) -> PerturbReport {
    let baseline = run_perturbed(g, cfg, None);
    let mut scenarios = Vec::new();

    // Zero perturbation must be a bit-exact identity, including time.
    let zero = run_perturbed(g, cfg, Some(&Perturbation::default()));
    let mut violations = zero.violations.clone();
    if zero.fingerprint != baseline.fingerprint {
        violations.push(Violation {
            invariant: "perturb-zero-identity",
            detail: format!(
                "zero perturbation changed the run: {:#018x} != {:#018x}",
                zero.fingerprint, baseline.fingerprint
            ),
        });
    }
    scenarios.push(ScenarioOutcome {
        name: "zero-identity",
        violations,
    });

    // Rank compute skew: ranks run up to 35% slower. Simulated time grows,
    // data must not move.
    let skew = Perturbation {
        compute_skew: 0.35,
        collective_delay: 0.0,
        seed: cfg.master_seed ^ 0x5EED_5EED,
    };
    scenarios.push(data_scenario(
        "compute-skew",
        &baseline,
        run_perturbed(g, cfg, Some(&skew)),
        true,
    ));

    // Delayed collectives: every barrier/allreduce costs an extra 10µs.
    let delay = Perturbation {
        compute_skew: 0.0,
        collective_delay: 1e-5,
        seed: 0,
    };
    scenarios.push(data_scenario(
        "collective-delay",
        &baseline,
        run_perturbed(g, cfg, Some(&delay)),
        true,
    ));

    // Both at once.
    let both = Perturbation {
        compute_skew: 0.2,
        collective_delay: 5e-6,
        seed: cfg.master_seed ^ 0xB07_B07,
    };
    scenarios.push(data_scenario(
        "skew-plus-delay",
        &baseline,
        run_perturbed(g, cfg, Some(&both)),
        true,
    ));

    // Extra staleness in the blocked nearest-neighbour exchange: the
    // smoother exchanges halos every `block` sweeps, so varying the block
    // changes how stale neighbour coordinates get. This nondeterminism is
    // *tolerated*: outputs may differ, but every invariant must hold.
    for block in [1usize, 8] {
        let mut stale_cfg = cfg.clone();
        stale_cfg.sp.embed.lattice.block = block;
        let run = run_perturbed(g, &stale_cfg, None);
        let name: &'static str = if block == 1 {
            "staleness-block-1"
        } else {
            "staleness-block-8"
        };
        scenarios.push(ScenarioOutcome {
            name,
            violations: run.violations,
        });
    }

    PerturbReport { scenarios }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::gen::grid_2d;

    #[test]
    fn all_perturbation_scenarios_hold() {
        let g = grid_2d(24, 24);
        let cfg = FuzzConfig {
            ranks: 8,
            schedules: 0,
            ..FuzzConfig::default()
        };
        let report = run_perturbations(&g, &cfg);
        for s in &report.scenarios {
            for v in &s.violations {
                eprintln!("{}: {v}", s.name);
            }
        }
        assert!(report.ok());
        assert_eq!(report.scenarios.len(), 6);
    }

    #[test]
    fn skew_actually_slows_the_clock() {
        let g = grid_2d(20, 20);
        let cfg = FuzzConfig {
            ranks: 8,
            schedules: 0,
            ..FuzzConfig::default()
        };
        let base = run_perturbed(&g, &cfg, None);
        let pert = Perturbation {
            compute_skew: 0.5,
            collective_delay: 0.0,
            seed: 7,
        };
        let run = run_perturbed(&g, &cfg, Some(&pert));
        assert!(run.elapsed > base.elapsed);
        assert_eq!(run.data_fingerprint, base.data_fingerprint);
    }
}
