//! Observability passivity fuzz: prove that watching a run does not
//! change it.
//!
//! sp-obs instruments (and core's `ProfilingObserver`) claim to be
//! *passive*: they read clocks and `/proc`, bump atomics, and never touch
//! the graph, machine, RNG streams, or any observer-visible state. This
//! module turns that claim into a fuzzed, bit-exact contract: for the
//! canonical schedule and every fuzzed schedule, the pipeline runs twice —
//! once under [`NoopObserver`] ("observability off") and once under a
//! [`ProfilingObserver`] ("observability on") — and both runs must agree
//! on the **full** fingerprint: partition labels, coordinate bits, cut
//! statistics, *and the simulated clock*. A profiler that so much as
//! nudged a simulated timestamp or reordered a reduction would show up as
//! a fingerprint split with a replay seed attached.
//!
//! The serve-level counterpart (`tests/passivity.rs` in sp-serve) runs
//! the same batch through two services with observation on/off and
//! compares response bytes and cache fingerprints; this module covers the
//! pipeline itself, schedule by schedule.

use scalapart::{scalapart_bisect_observed, NoopObserver, ProfilingObserver};
use sp_graph::Graph;
use sp_machine::{CostModel, Machine, Schedule};

use crate::fuzz::{fingerprint_result, FuzzConfig};
use crate::rng::derive_seed;

/// One schedule's on/off comparison.
pub struct PassivityRun {
    /// Schedule seed (`None` = canonical baseline schedule).
    pub seed: Option<u64>,
    /// Full fingerprint (labels + coords + cut + simulated time) with
    /// observability off / on.
    pub fp_off: u64,
    pub fp_on: u64,
    /// Data-only fingerprints (what a result cache would key on).
    pub data_fp_off: u64,
    pub data_fp_on: u64,
    /// Simulated elapsed time of each run, as raw bits for exact
    /// comparison.
    pub elapsed_bits_off: u64,
    pub elapsed_bits_on: u64,
    /// Phases the profiler attributed spans to (sanity: must be nonzero
    /// for a ScalaPart run, or profiling silently observed nothing).
    pub profiled_phases: usize,
}

impl PassivityRun {
    pub fn ok(&self) -> bool {
        self.fp_off == self.fp_on
            && self.data_fp_off == self.data_fp_on
            && self.elapsed_bits_off == self.elapsed_bits_on
    }
}

/// Report of a passivity campaign.
pub struct PassivityReport {
    pub runs: Vec<PassivityRun>,
}

impl PassivityReport {
    pub fn ok(&self) -> bool {
        self.runs.iter().all(PassivityRun::ok)
    }

    pub fn failures(&self) -> impl Iterator<Item = &PassivityRun> {
        self.runs.iter().filter(|r| !r.ok())
    }
}

fn run_pair(g: &Graph, cfg: &FuzzConfig, seed: Option<u64>) -> PassivityRun {
    let machine = |seed: Option<u64>| {
        let mut m = Machine::new(cfg.ranks, CostModel::qdr_infiniband());
        if let Some(s) = seed {
            m.set_schedule(Schedule::seeded(s));
        }
        m
    };

    // Observability off: the do-nothing observer.
    let mut m_off = machine(seed);
    let r_off = scalapart_bisect_observed(g, &mut m_off, &cfg.sp, &mut NoopObserver);

    // Observability on: profiler sampling wall clocks and RSS at every
    // checkpoint.
    let mut m_on = machine(seed);
    let mut prof = ProfilingObserver::new();
    let r_on = scalapart_bisect_observed(g, &mut m_on, &cfg.sp, &mut prof);

    PassivityRun {
        seed,
        fp_off: fingerprint_result(g, &r_off, true),
        fp_on: fingerprint_result(g, &r_on, true),
        data_fp_off: fingerprint_result(g, &r_off, false),
        data_fp_on: fingerprint_result(g, &r_on, false),
        elapsed_bits_off: m_off.elapsed().to_bits(),
        elapsed_bits_on: m_on.elapsed().to_bits(),
        profiled_phases: prof.profiler().samples().len(),
    }
}

/// Run the baseline schedule plus `cfg.schedules` fuzzed schedules, each
/// with observability off and on, comparing fingerprints bit for bit.
pub fn run_passivity(g: &Graph, cfg: &FuzzConfig) -> PassivityReport {
    let mut runs = vec![run_pair(g, cfg, None)];
    assert!(
        runs[0].profiled_phases > 0,
        "profiler saw no phases — observer wiring is broken, the campaign proves nothing"
    );
    for i in 0..cfg.schedules {
        runs.push(run_pair(
            g,
            cfg,
            Some(derive_seed(cfg.master_seed, i as u64)),
        ));
    }
    PassivityReport { runs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::gen::grid_2d;

    #[test]
    fn observation_is_bit_passive_across_fuzzed_schedules() {
        let g = grid_2d(24, 24);
        let cfg = FuzzConfig {
            ranks: 8,
            schedules: 4,
            ..FuzzConfig::default()
        };
        let report = run_passivity(&g, &cfg);
        assert_eq!(report.runs.len(), 5);
        for r in report.failures() {
            eprintln!(
                "seed {:?}: off {:#018x} != on {:#018x} (elapsed bits {:#x} vs {:#x})",
                r.seed, r.fp_off, r.fp_on, r.elapsed_bits_off, r.elapsed_bits_on
            );
        }
        assert!(report.ok(), "observability must not change any output bit");
        // The on-run really profiled the pipeline (all four phases).
        assert!(report.runs.iter().all(|r| r.profiled_phases >= 4));
    }

    #[test]
    fn passivity_holds_on_an_irregular_graph() {
        // A path-with-chords graph: no coordinates, irregular degrees.
        let mut b = sp_graph::GraphBuilder::new(200);
        for i in 0..199u32 {
            b.add_edge(i, i + 1, 1.0 + (i % 3) as f64);
        }
        for i in (0..190u32).step_by(7) {
            b.add_edge(i, i + 10, 0.5);
        }
        let g = b.build();
        let cfg = FuzzConfig {
            ranks: 4,
            schedules: 2,
            ..FuzzConfig::default()
        };
        assert!(run_passivity(&g, &cfg).ok());
    }
}
