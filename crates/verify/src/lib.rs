//! # sp-verify — deterministic simulation testing for ScalaPart
//!
//! Three components, composed by the `verify` binary and the test suite:
//!
//! - a **schedule fuzzer** ([`fuzz`]) that permutes host execution order
//!   within supersteps and shuffles message-delivery order on the simulated
//!   machine, demanding bit-exact output equality with the canonical
//!   schedule — every failure replays from a single `u64` seed;
//! - a **perturbation injector** ([`perturb`]) that exercises the
//!   nondeterminism the design tolerates (rank compute skew, delayed
//!   collectives, extra staleness in the blocked nearest-neighbour
//!   exchange) and asserts simulated-time accounting stays consistent;
//! - an **invariant checker** ([`invariants`]) threaded through
//!   `core::pipeline` checkpoints: matching validity, contraction
//!   soundness, hierarchy shape, embedding sanity, partition validity,
//!   balance bounds, cut accounting, FM monotonicity, and the sp-trace
//!   event/cost crosscheck;
//! - an **observability passivity fuzz** ([`passive`]) that runs each
//!   fuzzed schedule with sp-obs profiling off and on and demands
//!   bit-identical partitions, coordinates, and simulated times —
//!   instrumentation must never perturb the run it watches;
//! - a **multinode determinism fuzz** ([`multinode`]) that routes a seeded
//!   request stream through 2–4 loopback sp-serve shards behind the
//!   consistent-hash router, kills and rejoins a shard mid-run, and demands
//!   byte-identical responses (and an identical full-stream fingerprint)
//!   against a single-node oracle — shard placement, cache hits, and
//!   mid-stream failover may never leak into response bytes;
//! - an **incremental-repartitioning fuzz** ([`incremental`]) that drives
//!   seeded delta streams through sp-stream's warm-start repartitioner,
//!   checking partition validity, overlay-vs-compacted-CSR fingerprint
//!   equality, batch-framing invisibility, a differential cut bound
//!   against a from-scratch oracle, and bit-identical step fingerprints
//!   across host pool widths.
//!
//! The checker *collects* violations rather than panicking, so a campaign
//! reports every failure together with the seed that reproduces it.

pub mod fuzz;
pub mod incremental;
pub mod invariants;
pub mod multinode;
pub mod parallel;
pub mod passive;
pub mod perturb;
pub mod repr;
pub mod rng;

pub use fuzz::{
    fingerprint_result, run_campaign, run_once, CampaignReport, Failure, FuzzConfig, RunOutcome,
};
pub use incremental::{
    run_incremental_campaign, IncrementalFailure, IncrementalFuzzConfig, IncrementalReport,
};
pub use invariants::{InvariantChecker, Violation};
pub use multinode::{
    run_multinode_campaign, MultinodeFailure, MultinodeFuzzConfig, MultinodeReport,
};
pub use parallel::{run_parallel_campaign, ParallelFailure, ParallelFuzzConfig, ParallelReport};
pub use passive::{run_passivity, PassivityReport, PassivityRun};
pub use perturb::{run_perturbations, PerturbReport, ScenarioOutcome};
pub use repr::{run_repr_campaign, ReprFuzzConfig, ReprReport};
pub use rng::{derive_seed, Fingerprint};
