//! Property tests for the simulated-machine cost model: clocks are
//! monotone, collectives synchronise, data delivery is exact.

use proptest::prelude::*;
use sp_machine::{CostModel, Machine};

fn arb_cost() -> impl Strategy<Value = CostModel> {
    (0.0f64..1e-4, 0.0f64..1e-6, 1e-10f64..1e-7).prop_map(|(t_s, t_w, t_op)| CostModel {
        t_s,
        t_w,
        t_op,
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn clocks_never_go_backwards(
        cost in arb_cost(),
        p in 1usize..16,
        steps in prop::collection::vec((0usize..4, 0.0f64..1e5), 1..12),
    ) {
        let mut m = Machine::new(p, cost);
        let mut last = 0.0;
        for (kind, work) in steps {
            match kind {
                0 => {
                    let mut s = vec![(); p];
                    m.compute(&mut s, |_, _| work);
                }
                1 => m.barrier(),
                2 => {
                    let _ = m.allreduce_sum(&vec![vec![work]; p]);
                }
                _ => {
                    let contrib: Vec<Vec<u64>> = (0..p).map(|r| vec![r as u64]).collect();
                    let _ = m.allgather(contrib);
                }
            }
            let e = m.elapsed();
            prop_assert!(e >= last - 1e-15, "elapsed went backwards: {last} -> {e}");
            last = e;
        }
        prop_assert!(m.comp_time() >= 0.0 && m.comm_time() >= 0.0);
    }

    #[test]
    fn exchange_delivers_every_message_exactly_once(
        p in 2usize..10,
        msgs in prop::collection::vec((0usize..10, 0usize..10, 0u64..100), 0..40),
    ) {
        let mut m = Machine::new(p, CostModel::qdr_infiniband());
        let mut out: Vec<Vec<(usize, Vec<u64>)>> = vec![Vec::new(); p];
        let mut sent = 0usize;
        for (s, d, payload) in msgs {
            let (s, d) = (s % p, d % p);
            if s != d {
                out[s].push((d, vec![payload]));
                sent += 1;
            }
        }
        let inbox = m.exchange(out);
        let received: usize = inbox.iter().map(|v| v.len()).sum();
        prop_assert_eq!(received, sent);
        // Sources are ordered per receiver.
        for msgs in &inbox {
            for w in msgs.windows(2) {
                prop_assert!(w[0].0 <= w[1].0);
            }
        }
    }

    #[test]
    fn allreduce_matches_sequential_sum(
        p in 1usize..12,
        vals in prop::collection::vec(-1e6f64..1e6, 1..6),
    ) {
        let mut m = Machine::new(p, CostModel::qdr_infiniband());
        let contrib: Vec<Vec<f64>> = (0..p)
            .map(|r| vals.iter().map(|v| v * (r + 1) as f64).collect())
            .collect();
        let got = m.allreduce_sum(&contrib);
        let scale: f64 = (1..=p).map(|r| r as f64).sum();
        for (g, v) in got.iter().zip(&vals) {
            prop_assert!((g - v * scale).abs() < 1e-6 * (1.0 + v.abs() * scale));
        }
    }

    #[test]
    fn collectives_leave_all_clocks_equal(cost in arb_cost(), p in 1usize..16) {
        let mut m = Machine::new(p, cost);
        let mut s = vec![(); p];
        m.compute(&mut s, |r, _| r as f64 * 100.0);
        m.barrier();
        let e = m.elapsed();
        // After a barrier a zero-cost compute shows every rank at e.
        let mut probe = vec![0.0f64; p];
        m.compute(&mut probe, |_, _| 0.0);
        prop_assert!((m.elapsed() - e).abs() < 1e-15);
    }
}
