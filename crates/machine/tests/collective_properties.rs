//! Property tests for the machine's collectives against serial oracles:
//! data results equal what a sequential reduction computes, `_costed`
//! variants charge identical simulated time to their data-carrying twins,
//! and a fuzzed schedule never changes results or clocks.

use proptest::prelude::*;
use sp_machine::{CostModel, Machine, Schedule};

fn arb_cost() -> impl Strategy<Value = CostModel> {
    (1e-7f64..1e-4, 1e-9f64..1e-6, 1e-10f64..1e-7).prop_map(|(t_s, t_w, t_op)| CostModel {
        t_s,
        t_w,
        t_op,
    })
}

/// A machine with every rank's clock desynchronised by some prior compute,
/// so collectives start from a non-trivial state.
fn warmed(p: usize, cost: CostModel, work: &[f64]) -> Machine {
    let mut m = Machine::new(p, cost);
    let mut s = vec![(); p];
    m.compute(&mut s, |r, _| work[r % work.len()].abs());
    m
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn allgather_matches_serial_concatenation(
        cost in arb_cost(),
        p in 1usize..12,
        lens in prop::collection::vec(0usize..5, 1..12),
    ) {
        let mut m = Machine::new(p, cost);
        let contrib: Vec<Vec<u64>> = (0..p)
            .map(|r| (0..lens[r % lens.len()]).map(|i| (r * 100 + i) as u64).collect())
            .collect();
        let expect: Vec<u64> = contrib.iter().flatten().copied().collect();
        let got = m.allgather(contrib);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn allreduce_min_index_matches_serial_argmin(
        cost in arb_cost(),
        keys in prop::collection::vec(-1e9f64..1e9, 1..12),
    ) {
        let p = keys.len();
        let mut m = Machine::new(p, cost);
        let got = m.allreduce_min_index(&keys);
        let expect = keys
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn group_collectives_match_serial_oracle_over_active_prefix(
        cost in arb_cost(),
        p in 1usize..12,
        active in 1usize..12,
        len in 0usize..5,
        work in prop::collection::vec(0.0f64..1e4, 1..6),
    ) {
        let active = active.min(p);
        let mut m = warmed(p, cost, &work);

        let contrib: Vec<Vec<f64>> = (0..p)
            .map(|r| {
                if r < active {
                    (0..len).map(|i| (r + 1) as f64 * (i + 1) as f64).collect()
                } else {
                    vec![0.0; len]
                }
            })
            .collect();
        let got = m.group_allreduce_sum(active, &contrib);
        for (i, g) in got.iter().enumerate() {
            let expect: f64 = (0..active).map(|r| (r + 1) as f64 * (i + 1) as f64).sum();
            prop_assert!((g - expect).abs() <= 1e-9 * (1.0 + expect.abs()));
        }

        let gather: Vec<Vec<u64>> = (0..p)
            .map(|r| if r < active { vec![r as u64; 2] } else { Vec::new() })
            .collect();
        let expect: Vec<u64> = gather.iter().flatten().copied().collect();
        let got = m.group_allgather(active, gather);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn costed_variants_charge_identical_time(
        cost in arb_cost(),
        p in 1usize..12,
        active in 1usize..12,
        len in 0usize..6,
        work in prop::collection::vec(0.0f64..1e4, 1..6),
    ) {
        let active = active.min(p);
        // Two machines stepped identically: one through the data-carrying
        // collectives, one through the cost-only twins. Clocks must agree
        // to the bit at every step.
        let mut a = warmed(p, cost, &work);
        let mut b = warmed(p, cost, &work);

        a.allreduce_sum(&vec![vec![1.0; len]; p]);
        b.allreduce_sum_costed(len);
        prop_assert_eq!(a.elapsed().to_bits(), b.elapsed().to_bits());

        let contrib: Vec<Vec<u64>> = (0..p).map(|r| vec![r as u64; len]).collect();
        a.allgather(contrib);
        b.allgather_costed(p * len);
        prop_assert_eq!(a.elapsed().to_bits(), b.elapsed().to_bits());

        let gather: Vec<Vec<u64>> = (0..p)
            .map(|r| if r < active { vec![r as u64; len] } else { Vec::new() })
            .collect();
        a.group_allgather(active, gather);
        b.group_allgather_costed(active, active * len);
        prop_assert_eq!(a.elapsed().to_bits(), b.elapsed().to_bits());

        let contrib: Vec<Vec<f64>> = (0..p)
            .map(|r| if r < active { vec![r as f64; len] } else { vec![0.0; len] })
            .collect();
        a.group_allreduce_sum(active, &contrib);
        b.group_allreduce_sum_costed(active, len);
        prop_assert_eq!(a.elapsed().to_bits(), b.elapsed().to_bits());

        prop_assert_eq!(a.comm_time().to_bits(), b.comm_time().to_bits());
    }

    #[test]
    fn fuzzed_schedule_never_changes_collective_results_or_clocks(
        cost in arb_cost(),
        p in 2usize..10,
        seed in any::<u64>(),
        work in prop::collection::vec(0.0f64..1e4, 1..6),
    ) {
        let run = |sched: Option<Schedule>| {
            let mut m = Machine::new(p, cost);
            if let Some(s) = sched {
                m.set_schedule(s);
            }
            let mut st = vec![(); p];
            m.compute(&mut st, |r, _| work[r % work.len()]);
            let red = m.allreduce_sum(&(0..p).map(|r| vec![r as f64, 1.0]).collect::<Vec<_>>());
            let gat = m.allgather((0..p).map(|r| vec![r as u64]).collect());
            let mut out: Vec<Vec<(usize, Vec<u64>)>> = vec![Vec::new(); p];
            for s in 0..p {
                out[s].push(((s + 1) % p, vec![s as u64]));
                out[s].push(((s + 2) % p, vec![(s * 7) as u64]));
            }
            let inbox = m.exchange(out);
            (red, gat, inbox, m.elapsed().to_bits())
        };
        let base = run(None);
        let fuzz = run(Some(Schedule::seeded(seed)));
        prop_assert_eq!(base, fuzz);
    }
}
