//! Deterministic-simulation-testing hooks: schedule fuzzing and timing
//! perturbation for [`Machine`](crate::Machine).
//!
//! The SPMD algorithms in this workspace must produce bit-identical results
//! under *any* rank schedule: the simulated clocks are charged in rank
//! order regardless of host execution order, and exchange inboxes are
//! canonically sorted by `(source, send sequence)`. A [`Schedule`]
//! installed on a machine permutes the host-side execution order of
//! `compute` closures and shuffles the arrival order of exchanged messages
//! before the canonical sort — everything a legal MPI runtime could
//! reorder — from a single `u64` seed, so any failure replays exactly.
//!
//! A [`Perturbation`] models the paper's tolerated timing nondeterminism:
//! per-rank compute skew (some ranks are slower) and extra latency on
//! every collective. Perturbations change *simulated time* but must never
//! change *data*: the pipeline's outputs are required to stay bit-identical
//! under any perturbation, and sp-verify asserts exactly that.

/// splitmix64 — the same tiny deterministic generator the bench harness
/// uses for seeded graphs. Hand-rolled so this crate stays free of a rand
/// dependency (and of rand's version-dependent streams).
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded source of schedule decisions. Install with
/// [`Machine::set_schedule`](crate::Machine::set_schedule); the machine
/// then draws from it on every superstep and exchange. Two runs with the
/// same seed make identical decisions.
#[derive(Clone, Debug)]
pub struct Schedule {
    state: u64,
    pub seed: u64,
}

impl Schedule {
    pub fn seeded(seed: u64) -> Self {
        Schedule {
            // Avoid the all-zero state producing a low-entropy first draw.
            state: seed ^ 0xD1B5_4A32_D192_ED03,
            seed,
        }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            let j = (self.next() % (i as u64 + 1)) as usize;
            v.swap(i, j);
        }
    }

    /// A random permutation of `0..n`: `perm[i]` is the i-th item to run.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..n).collect();
        self.shuffle(&mut perm);
        perm
    }
}

/// Timing-only perturbation of the simulated machine.
///
/// * `compute_skew` — amplitude `a ≥ 0`: each rank's compute charges are
///   scaled by a seed-derived factor in `[1, 1+a]`, modelling slow ranks /
///   OS jitter. Skew never *discounts* work, so perturbed elapsed time is
///   always ≥ the unperturbed run's.
/// * `collective_delay` — extra simulated seconds added to the completion
///   time of every collective (a congested or late allreduce).
///
/// Neither knob touches data: payloads, reduction results, and delivery
/// order are exactly those of the unperturbed machine.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Perturbation {
    pub compute_skew: f64,
    pub collective_delay: f64,
    pub seed: u64,
}

impl Perturbation {
    /// Per-rank compute-slowdown factors in `[1, 1 + compute_skew]`.
    pub fn skew_factors(&self, p: usize) -> Vec<f64> {
        assert!(
            self.compute_skew >= 0.0,
            "skew must not discount work (got {})",
            self.compute_skew
        );
        (0..p as u64)
            .map(|r| {
                let mut s = self.seed ^ r.wrapping_mul(0xA24B_AED4_963E_E407);
                let unit = (splitmix64(&mut s) >> 11) as f64 / (1u64 << 53) as f64;
                1.0 + self.compute_skew * unit
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_replays_from_seed() {
        let mut a = Schedule::seeded(42);
        let mut b = Schedule::seeded(42);
        for n in [1usize, 2, 7, 64] {
            assert_eq!(a.permutation(n), b.permutation(n));
        }
        let mut c = Schedule::seeded(43);
        let pa: Vec<_> = (0..4).map(|_| a.permutation(16)).collect();
        let pc: Vec<_> = (0..4).map(|_| c.permutation(16)).collect();
        assert_ne!(pa, pc, "different seeds should diverge");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut s = Schedule::seeded(7);
        for n in [0usize, 1, 2, 33] {
            let mut p = s.permutation(n);
            p.sort_unstable();
            assert_eq!(p, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn skew_factors_bounded_and_deterministic() {
        let pert = Perturbation {
            compute_skew: 0.5,
            collective_delay: 0.0,
            seed: 9,
        };
        let f = pert.skew_factors(64);
        assert_eq!(f, pert.skew_factors(64));
        assert!(f.iter().all(|&x| (1.0..=1.5).contains(&x)));
        // Non-degenerate: ranks actually differ.
        assert!(f.iter().any(|&x| (x - f[0]).abs() > 1e-6));
    }

    #[test]
    fn zero_skew_is_identity() {
        let pert = Perturbation::default();
        assert!(pert.skew_factors(8).iter().all(|&x| x == 1.0));
    }
}
