//! The simulated machine: per-rank clocks, parallel superstep execution,
//! point-to-point exchange, and collectives.

use crate::cost::CostModel;
use crate::fuzz::{Perturbation, Schedule};
use crate::words::{CostOnly, Words};
use rayon::prelude::*;
use sp_trace::{CollectiveKind, MachineStats, Phase, Recorder};
use std::collections::HashMap;

/// Per-phase time breakdown (simulated seconds, max over ranks).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseBreakdown {
    pub comp: f64,
    pub comm: f64,
}

impl PhaseBreakdown {
    pub fn total(&self) -> f64 {
        self.comp + self.comm
    }
}

/// One superstep's host-execution report, passed to the
/// [`Machine::set_superstep_hook`] observer after the rank clocks are
/// charged. Everything in here describes the *host* run — wall time, task
/// batching, pool width; simulated results never depend on any of it, so
/// a hook is free to feed metrics without perturbing the simulation.
#[derive(Clone, Copy, Debug)]
pub struct SuperstepInfo {
    /// Simulation phase the superstep ran under.
    pub phase: Phase,
    /// Total ranks in the machine.
    pub ranks: usize,
    /// Ranks that charged nonzero ops (the superstep's active set).
    pub active: usize,
    /// Contiguous ranks per host task this superstep was packed into.
    pub batch: usize,
    /// Host threads in the rayon pool the superstep ran on.
    pub threads: usize,
    /// Host wall-clock seconds spent in the rank closures.
    pub wall_seconds: f64,
}

/// Observer for superstep host execution (see [`SuperstepInfo`]).
pub type SuperstepHook = Box<dyn FnMut(&SuperstepInfo) + Send>;

/// A P-rank simulated message-passing machine.
///
/// Observability: an optional [`Recorder`] (see `sp-trace`) receives
/// structured events — per-rank compute spans, per-message send/receive
/// occupancy, collective participation, phase spans — on the simulated
/// clock. With no recorder installed (the default) every emission site is
/// a single branch on `Option::is_some`, so instrumentation is free when
/// disabled.
pub struct Machine {
    p: usize,
    cost: CostModel,
    /// Per-rank simulated clock.
    clock: Vec<f64>,
    /// Cached `max(clock)` so [`Machine::elapsed`] is O(1): it is read on
    /// every phase switch and every global collective. Clocks only move
    /// forward, so a running max on the mutation paths stays exact.
    clock_max: f64,
    /// Per-rank, per-phase accumulated computation time.
    comp: Vec<f64>,
    /// Per-rank accumulated communication time.
    comm: Vec<f64>,
    /// Current phase.
    phase: Phase,
    /// Optional free-form sub-phase detail, for trace display only —
    /// accounting is keyed by `phase`.
    phase_label: Option<String>,
    /// Accumulated (comp, comm) per phase, tracked as the max-rank share at
    /// phase switch boundaries.
    phases: HashMap<Phase, PhaseBreakdown>,
    /// comp/comm snapshot at the start of the current phase (per rank).
    phase_start: (Vec<f64>, Vec<f64>),
    /// Elapsed time when the current phase span began.
    phase_t0: f64,
    /// Event sink; `None` (the default) records nothing and costs nothing.
    recorder: Option<Box<dyn Recorder>>,
    /// Reusable per-rank buffers for exchange charging (send completion,
    /// receive cost, sender bound) — exchanges run every smoothing
    /// iteration, so their bookkeeping must not allocate.
    xch_send_done: Vec<f64>,
    xch_recv_cost: Vec<f64>,
    xch_sender_bound: Vec<f64>,
    /// Schedule fuzzer (see `fuzz::Schedule`): permutes host execution
    /// order and message arrival order. `None` (the default) runs the
    /// canonical schedule. Simulated clocks are charged in rank order and
    /// inboxes are canonically re-sorted either way, so a schedule must
    /// never change results — that is exactly the property sp-verify fuzzes.
    schedule: Option<Schedule>,
    /// Per-rank compute-slowdown factors; empty = unperturbed. Kept as a
    /// separate emptiness-gated vector so the unperturbed fast path does
    /// not even multiply by 1.0.
    skew: Vec<f64>,
    /// Extra simulated seconds added to every collective's completion time.
    collective_delay: f64,
    /// Contiguous ranks per host task in [`Machine::compute`]; 0 = auto
    /// (spread the ranks evenly over the rayon pool). Purely a host
    /// execution knob: results and clock charges are keyed by rank, never
    /// by task or thread, so any batch size yields identical simulations.
    rank_batch: usize,
    /// Reusable per-rank ops buffer for `compute` (supersteps run every
    /// smoothing iteration; their bookkeeping must not allocate).
    ops_buf: Vec<f64>,
    /// Host-execution observer, called once per superstep. `None` (the
    /// default) costs one branch.
    superstep_hook: Option<SuperstepHook>,
}

impl Machine {
    pub fn new(p: usize, cost: CostModel) -> Self {
        assert!(p >= 1, "machine needs at least one rank");
        Machine {
            p,
            cost,
            clock: vec![0.0; p],
            clock_max: 0.0,
            comp: vec![0.0; p],
            comm: vec![0.0; p],
            phase: Phase::Idle,
            phase_label: None,
            phases: HashMap::new(),
            phase_start: (vec![0.0; p], vec![0.0; p]),
            phase_t0: 0.0,
            recorder: None,
            xch_send_done: vec![0.0; p],
            xch_recv_cost: vec![0.0; p],
            xch_sender_bound: vec![0.0; p],
            schedule: None,
            skew: Vec::new(),
            collective_delay: 0.0,
            rank_batch: 0,
            ops_buf: Vec::new(),
            superstep_hook: None,
        }
    }

    /// Set how many contiguous ranks each host task runs in
    /// [`Machine::compute`]: 0 (the default) spreads the ranks evenly over
    /// the rayon pool; `p` or more runs the whole superstep inline on the
    /// calling thread. A pure host-performance knob — simulated clocks and
    /// delivered data are identical for every value (the sp-verify
    /// `parallel` fuzz proves this bit-for-bit).
    pub fn set_rank_batch(&mut self, batch: usize) {
        self.rank_batch = batch;
    }

    /// The configured rank batch size (0 = auto).
    pub fn rank_batch(&self) -> usize {
        self.rank_batch
    }

    /// Install a host-execution observer called once per superstep with
    /// wall time and batching facts. The hook observes only; it runs after
    /// clocks are charged and nothing it does can reach the simulation.
    pub fn set_superstep_hook(&mut self, hook: SuperstepHook) {
        self.superstep_hook = Some(hook);
    }

    /// Install a schedule fuzzer: subsequent supersteps run their rank
    /// closures in seed-determined host order and exchanges shuffle message
    /// arrival before the canonical `(source, sequence)` sort. Legal
    /// schedules must not change simulated time or delivered data.
    pub fn set_schedule(&mut self, sched: Schedule) {
        self.schedule = Some(sched);
    }

    /// The installed schedule's seed, if any (for failure reports).
    pub fn schedule_seed(&self) -> Option<u64> {
        self.schedule.as_ref().map(|s| s.seed)
    }

    /// Install a timing perturbation (compute skew, collective delay).
    /// Perturbations change simulated time but must never change data.
    pub fn set_perturbation(&mut self, pert: &Perturbation) {
        self.skew = if pert.compute_skew > 0.0 {
            pert.skew_factors(self.p)
        } else {
            Vec::new()
        };
        assert!(
            pert.collective_delay >= 0.0,
            "collectives cannot finish early"
        );
        self.collective_delay = pert.collective_delay;
    }

    #[inline]
    fn skewed(&self, rank: usize, dt: f64) -> f64 {
        if self.skew.is_empty() {
            dt
        } else {
            dt * self.skew[rank]
        }
    }

    /// Number of ranks.
    pub fn p(&self) -> usize {
        self.p
    }

    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Install an event recorder. Subsequent machine operations emit
    /// structured events into it (see `sp-trace::TraceRecorder`).
    pub fn set_recorder(&mut self, rec: Box<dyn Recorder>) {
        self.recorder = Some(rec);
    }

    /// Detach and return the recorder, first closing the current phase so
    /// the final phase span is flushed into it.
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        self.close_phase();
        self.recorder.take()
    }

    pub fn has_recorder(&self) -> bool {
        self.recorder.is_some()
    }

    /// Simulated elapsed time: the maximum rank clock. O(1) — the max is
    /// maintained on every clock mutation rather than folded over ranks
    /// here (this accessor sits inside `close_phase` on every phase
    /// switch, which at P=1024 made phase bookkeeping itself O(P)).
    pub fn elapsed(&self) -> f64 {
        self.clock_max
    }

    /// Begin a phase; closes the previous phase's accounting. Re-entering
    /// a phase accumulates into its existing bucket.
    pub fn phase(&mut self, ph: Phase) {
        self.close_phase();
        self.phase = ph;
        self.phase_label = None;
    }

    /// Begin a phase with a free-form sub-phase label (e.g. `"smooth-3"`
    /// within [`Phase::Embed`]). The label shows up in traces; accounting
    /// aggregates by `ph` alone, so differently-labelled spans of the same
    /// phase always land in the same bucket.
    pub fn phase_labeled(&mut self, ph: Phase, label: &str) {
        self.close_phase();
        self.phase = ph;
        self.phase_label = Some(label.to_string());
    }

    fn close_phase(&mut self) {
        let dcomp = self
            .comp
            .iter()
            .zip(&self.phase_start.0)
            .map(|(a, b)| a - b)
            .fold(0.0, f64::max);
        let dcomm = self
            .comm
            .iter()
            .zip(&self.phase_start.1)
            .map(|(a, b)| a - b)
            .fold(0.0, f64::max);
        let e = self.phases.entry(self.phase).or_default();
        e.comp += dcomp;
        e.comm += dcomm;
        self.phase_start = (self.comp.clone(), self.comm.clone());
        let t = self.elapsed();
        if t > self.phase_t0 {
            if let Some(rec) = self.recorder.as_deref_mut() {
                rec.on_phase(self.phase, self.phase_label.as_deref(), self.phase_t0, t);
            }
        }
        self.phase_t0 = t;
    }

    /// Per-phase breakdown (max-rank comp and comm per phase). Idempotent:
    /// calling it twice without intervening work returns the same map.
    pub fn phase_breakdown(&mut self) -> HashMap<Phase, PhaseBreakdown> {
        self.close_phase();
        self.phases.clone()
    }

    /// Accounting snapshot for the metrics layer (`sp-trace::Metrics`):
    /// per-phase breakdown in canonical order plus per-rank totals.
    pub fn stats(&mut self) -> MachineStats {
        self.close_phase();
        let phases = Phase::ALL
            .iter()
            .filter_map(|&ph| self.phases.get(&ph).map(|b| (ph, b.comp, b.comm)))
            .collect();
        MachineStats {
            p: self.p,
            elapsed: self.elapsed(),
            phases,
            rank_comp: self.comp.clone(),
            rank_comm: self.comm.clone(),
            rank_clock: self.clock.clone(),
        }
    }

    /// Total communication time (max over ranks).
    pub fn comm_time(&self) -> f64 {
        self.comm.iter().copied().fold(0.0, f64::max)
    }

    /// Total computation time (max over ranks).
    pub fn comp_time(&self) -> f64 {
        self.comp.iter().copied().fold(0.0, f64::max)
    }

    /// Run one superstep: `f(rank, state)` executes for every rank on the
    /// rayon pool and returns the number of abstract ops the rank
    /// performed, which is charged to its clock.
    ///
    /// Host execution packs contiguous ranks into batches of
    /// [`Machine::set_rank_batch`] per rayon task (auto by default: the
    /// ranks spread evenly over the pool). Each closure touches only its
    /// own rank's state and writes its ops into its own rank's slot, and
    /// the charging loop below always walks ranks in ascending order on
    /// the simulated clock — so batch size, thread count, and host
    /// completion order are all invisible to simulated time and data, the
    /// same argument that makes the `Schedule` fuzzer's permutations
    /// legal. One batch (or one thread) degenerates to an inline serial
    /// loop with no task dispatch at all.
    pub fn compute<S: Send, F>(&mut self, states: &mut [S], f: F)
    where
        F: Fn(usize, &mut S) -> f64 + Sync,
    {
        assert_eq!(states.len(), self.p, "one state per rank");
        let threads = rayon::current_num_threads().max(1);
        let batch = match self.rank_batch {
            0 => self.p.div_ceil(threads),
            b => b,
        }
        .clamp(1, self.p);
        let host_t0 = std::time::Instant::now();
        self.ops_buf.clear();
        self.ops_buf.resize(self.p, 0.0);
        if let Some(sched) = self.schedule.as_mut() {
            // Fuzzed schedule: run the closures in a seed-determined host
            // order. Results land by rank and the charging loop below stays
            // in rank order, so a correct SPMD superstep (closures touch
            // only their own state) is schedule-invariant by construction.
            let pos = sched.permutation(self.p);
            let mut slots: Vec<(usize, &mut S)> = states.iter_mut().enumerate().collect();
            slots.sort_by_key(|&(r, _)| pos[r]);
            let pairs: Vec<(usize, f64)> =
                slots.into_par_iter().map(|(r, s)| (r, f(r, s))).collect();
            for (r, o) in pairs {
                self.ops_buf[r] = o;
            }
        } else if batch >= self.p || threads == 1 {
            // Whole superstep in one batch (or a one-thread pool): run
            // inline on the calling thread, no dispatch at all.
            for (r, s) in states.iter_mut().enumerate() {
                self.ops_buf[r] = f(r, s);
            }
        } else {
            // Fork-join over contiguous rank batches: each task owns a
            // disjoint slice of states and of the ops buffer, so there is
            // no sharing to synchronise and nothing host-order-dependent
            // to merge — slot `r` is rank `r`'s result wherever it ran.
            let f = &f;
            rayon::scope(|s| {
                for (c, (ss, os)) in states
                    .chunks_mut(batch)
                    .zip(self.ops_buf.chunks_mut(batch))
                    .enumerate()
                {
                    let base = c * batch;
                    s.spawn(move |_| {
                        for (i, (st, o)) in ss.iter_mut().zip(os.iter_mut()).enumerate() {
                            *o = f(base + i, st);
                        }
                    });
                }
            });
        }
        let wall_seconds = host_t0.elapsed().as_secs_f64();
        let phase = self.phase;
        let mut active = 0usize;
        for r in 0..self.p {
            let o = self.ops_buf[r];
            let dt = self.skewed(r, o * self.cost.t_op);
            let start = self.clock[r];
            self.clock[r] += dt;
            self.clock_max = self.clock_max.max(self.clock[r]);
            self.comp[r] += dt;
            if o != 0.0 {
                active += 1;
                if let Some(rec) = self.recorder.as_deref_mut() {
                    rec.on_compute(r, phase, start, dt, o);
                }
            }
        }
        if let Some(hook) = self.superstep_hook.as_mut() {
            hook(&SuperstepInfo {
                phase,
                ranks: self.p,
                active,
                batch,
                threads,
                wall_seconds,
            });
        }
    }

    /// Charge compute ops to a single rank without running anything (for
    /// cost-only modelling of work already done on the data).
    pub fn charge_ops(&mut self, rank: usize, ops: f64) {
        let dt = self.skewed(rank, ops * self.cost.t_op);
        let start = self.clock[rank];
        self.clock[rank] += dt;
        self.clock_max = self.clock_max.max(self.clock[rank]);
        self.comp[rank] += dt;
        if ops != 0.0 {
            let phase = self.phase;
            if let Some(rec) = self.recorder.as_deref_mut() {
                rec.on_compute(rank, phase, start, dt, ops);
            }
        }
    }

    /// Point-to-point exchange with local synchronisation. `out[r]` holds
    /// `(dest, payload)` pairs sent by rank `r`; the return value's entry
    /// `r` holds `(src, payload)` pairs received by rank `r`, ordered by
    /// source rank.
    ///
    /// Cost: each rank pays `t_s + t_w·words` per message sent and per
    /// message received, and cannot finish before any partner's send
    /// completes (receivers wait for senders; senders do not wait).
    pub fn exchange<M: Words + Send>(&mut self, out: Vec<Vec<(usize, M)>>) -> Vec<Vec<(usize, M)>> {
        assert_eq!(out.len(), self.p);
        // Charge through the same code path as `exchange_costed`, so
        // cost-only and data-carrying exchanges are f64-identical by
        // construction.
        let meta: Vec<Vec<(usize, CostOnly)>> = out
            .iter()
            .map(|msgs| {
                msgs.iter()
                    .map(|(d, m)| (*d, CostOnly::new(m.words())))
                    .collect()
            })
            .collect();
        self.charge_exchange(&meta);
        // Deliver (no further charging).
        if self.schedule.is_some() {
            return self.deliver_fuzzed(out);
        }
        let mut inbox: Vec<Vec<(usize, M)>> = (0..self.p).map(|_| Vec::new()).collect();
        for (r, msgs) in out.into_iter().enumerate() {
            for (d, m) in msgs {
                inbox[d].push((r, m));
            }
        }
        for msgs in &mut inbox {
            msgs.sort_by_key(|(s, _)| *s);
        }
        inbox
    }

    /// Fuzzed delivery: tag each message with `(source, send sequence)`,
    /// shuffle the arrival order at every destination, then canonically
    /// re-sort. The sequence tag makes the sort a total order, so the
    /// delivered inbox is provably identical to the unfuzzed path — what
    /// the fuzzer exercises is any *consumer* that would accidentally
    /// depend on arrival order (and the sort's stability assumptions).
    fn deliver_fuzzed<M: Send>(&mut self, out: Vec<Vec<(usize, M)>>) -> Vec<Vec<(usize, M)>> {
        let sched = self
            .schedule
            .as_mut()
            .expect("fuzzed delivery needs a schedule");
        let mut tagged: Vec<Vec<(usize, usize, M)>> = (0..self.p).map(|_| Vec::new()).collect();
        for (r, msgs) in out.into_iter().enumerate() {
            for (seq, (d, m)) in msgs.into_iter().enumerate() {
                tagged[d].push((r, seq, m));
            }
        }
        let mut inbox: Vec<Vec<(usize, M)>> = Vec::with_capacity(self.p);
        for mut msgs in tagged {
            sched.shuffle(&mut msgs);
            msgs.sort_by_key(|&(s, q, _)| (s, q));
            inbox.push(msgs.into_iter().map(|(s, _, m)| (s, m)).collect());
        }
        inbox
    }

    /// Cost-only point-to-point exchange: identical charging and event
    /// emission to [`Machine::exchange`] — latency + bandwidth per message,
    /// receivers wait for senders — but no payload is materialised and
    /// nothing is delivered. `out[r]` holds `(dest, CostOnly)` pairs sent
    /// by rank `r`. Allocation-free outside of tracing.
    pub fn exchange_costed(&mut self, out: &[Vec<(usize, CostOnly)>]) {
        assert_eq!(out.len(), self.p);
        self.charge_exchange(out);
    }

    /// The single exchange charging path (see [`Machine::exchange`] for the
    /// cost semantics). Uses the machine's reusable buffers; only event
    /// emission for an installed recorder allocates.
    fn charge_exchange(&mut self, out: &[Vec<(usize, CostOnly)>]) {
        let phase = self.phase;
        // Send-completion time per rank; sends occupy the rank back to
        // back, so each message's span starts where the previous ended.
        let mut send_done = std::mem::take(&mut self.xch_send_done);
        let mut recv_cost = std::mem::take(&mut self.xch_recv_cost);
        let mut sender_bound = std::mem::take(&mut self.xch_sender_bound);
        send_done.clear();
        send_done.extend_from_slice(&self.clock);
        recv_cost.clear();
        recv_cost.resize(self.p, 0.0);
        sender_bound.clear();
        sender_bound.resize(self.p, 0.0);
        for (r, msgs) in out.iter().enumerate() {
            for &(d, m) in msgs {
                assert!(d < self.p, "bad destination {d}");
                assert!(d != r, "self-message from rank {r}");
                let w = m.words();
                let c = self.cost.msg(w);
                let start = send_done[r];
                send_done[r] += c;
                if let Some(rec) = self.recorder.as_deref_mut() {
                    rec.on_send(phase, r, d, w, start, c);
                }
            }
        }
        for (r, msgs) in out.iter().enumerate() {
            for &(d, m) in msgs {
                recv_cost[d] += self.cost.msg(m.words());
                sender_bound[d] = sender_bound[d].max(send_done[r]);
            }
        }
        // Receive-side message lists are only needed for event emission.
        let inbox_meta: Option<Vec<Vec<(usize, usize)>>> = if self.recorder.is_some() {
            let mut meta: Vec<Vec<(usize, usize)>> = (0..self.p).map(|_| Vec::new()).collect();
            for (r, msgs) in out.iter().enumerate() {
                for &(d, m) in msgs {
                    meta[d].push((r, m.words()));
                }
            }
            for msgs in &mut meta {
                msgs.sort_by_key(|(s, _)| *s);
            }
            Some(meta)
        } else {
            None
        };
        for r in 0..self.p {
            let start = send_done[r].max(sender_bound[r]);
            let new_clock = start + recv_cost[r];
            self.comm[r] += new_clock - self.clock[r];
            self.clock[r] = new_clock;
            self.clock_max = self.clock_max.max(new_clock);
            // Receive occupancy: messages drain back to back from `start`
            // in source order (the order the inbox presents them).
            if let Some(meta) = &inbox_meta {
                let mut t = start;
                for &(s, w) in &meta[r] {
                    let c = self.cost.msg(w);
                    if let Some(rec) = self.recorder.as_deref_mut() {
                        rec.on_recv(phase, s, r, w, t, c);
                    }
                    t += c;
                }
            }
        }
        self.xch_send_done = send_done;
        self.xch_recv_cost = recv_cost;
        self.xch_sender_bound = sender_bound;
    }

    /// Synchronise ranks `0..active` at time `t`, charging the wait to
    /// communication and emitting one collective event.
    fn sync_collective(&mut self, active: usize, t: f64, kind: CollectiveKind, words: usize) {
        // Perturbation: a delayed collective completes late for everyone.
        let t = if self.collective_delay > 0.0 {
            t + self.collective_delay
        } else {
            t
        };
        let starts = if self.recorder.is_some() {
            Some(self.clock[..active].to_vec())
        } else {
            None
        };
        for r in 0..active {
            self.comm[r] += t - self.clock[r];
            self.clock[r] = t;
        }
        self.clock_max = self.clock_max.max(t);
        if let Some(starts) = starts {
            let phase = self.phase;
            if let Some(rec) = self.recorder.as_deref_mut() {
                rec.on_collective(phase, kind, words, &starts, t);
            }
        }
    }

    /// Globally synchronising barrier (cost: one zero-byte collective).
    pub fn barrier(&mut self) {
        let t = self.elapsed() + self.cost.collective(self.p, 0);
        self.sync_collective(self.p, t, CollectiveKind::Barrier, 0);
    }

    /// Element-wise sum allreduce of per-rank `f64` vectors; every rank
    /// receives the same reduced vector.
    pub fn allreduce_sum(&mut self, contrib: &[Vec<f64>]) -> Vec<f64> {
        assert_eq!(contrib.len(), self.p);
        let len = contrib.first().map_or(0, |v| v.len());
        let mut acc = vec![0.0; len];
        for v in contrib {
            assert_eq!(v.len(), len, "allreduce contributions must be same length");
            for (a, x) in acc.iter_mut().zip(v) {
                *a += x;
            }
        }
        self.allreduce_sum_costed(len);
        acc
    }

    /// Cost-only allreduce: charges exactly what [`Machine::allreduce_sum`]
    /// over `len`-element contributions would, without reducing any data.
    /// For sites whose "reduction" is a synchronisation fiction (the result
    /// is already known on the host).
    pub fn allreduce_sum_costed(&mut self, len: usize) {
        let t = self.elapsed() + self.cost.collective(self.p, len);
        self.sync_collective(self.p, t, CollectiveKind::AllreduceSum, len);
    }

    /// Allgather: concatenates every rank's contribution (in rank order)
    /// and hands the full vector to all ranks.
    ///
    /// Payload volume is sized per element through [`Words`], so
    /// heap-carrying elements (e.g. `Vec<u64>`) charge their true payload
    /// rather than `size_of` on the element header.
    pub fn allgather<T: Clone + Words>(&mut self, contrib: Vec<Vec<T>>) -> Vec<T> {
        assert_eq!(contrib.len(), self.p);
        let total: usize = contrib.iter().map(|v| v.len()).sum();
        let words: usize = contrib
            .iter()
            .flat_map(|v| v.iter())
            .map(|x| x.words())
            .sum();
        let mut all = Vec::with_capacity(total);
        for v in contrib {
            all.extend(v);
        }
        self.allgather_costed(words);
        all
    }

    /// Cost-only allgather of `words` total 8-byte words: identical charge
    /// to [`Machine::allgather`] whose contributions sum to `words`.
    pub fn allgather_costed(&mut self, words: usize) {
        // Recursive doubling: log P stages, total data volume dominated by
        // the full gathered vector in the final stages.
        let t0 = self.elapsed();
        let stages = (self.p.max(1) as f64).log2().ceil().max(0.0);
        let t = t0 + stages * self.cost.t_s + self.cost.t_w * words as f64;
        self.sync_collective(self.p, t, CollectiveKind::Allgather, words);
    }

    /// Reduce to the arg-min over per-rank `(key, payload)` pairs; all
    /// ranks receive the winning rank's index. Payload words charged.
    pub fn allreduce_min_index(&mut self, keys: &[f64]) -> usize {
        assert_eq!(keys.len(), self.p);
        let best = keys
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let t = self.elapsed() + self.cost.collective(self.p, 1);
        self.sync_collective(self.p, t, CollectiveKind::AllreduceMinIndex, 1);
        best
    }

    /// Allgather over the sub-communicator of ranks `0..active` only (the
    /// paper's shrinking rank groups `Pⁱ`): synchronises and charges just
    /// those ranks. `contrib` must still have one entry per machine rank;
    /// entries of inactive ranks must be empty. Payload volume is sized
    /// per element through [`Words`] (see [`Machine::allgather`]).
    pub fn group_allgather<T: Clone + Words>(
        &mut self,
        active: usize,
        contrib: Vec<Vec<T>>,
    ) -> Vec<T> {
        assert_eq!(contrib.len(), self.p);
        let active = active.clamp(1, self.p);
        debug_assert!(contrib[active..].iter().all(|v| v.is_empty()));
        let total: usize = contrib.iter().map(|v| v.len()).sum();
        let words: usize = contrib
            .iter()
            .flat_map(|v| v.iter())
            .map(|x| x.words())
            .sum();
        let mut all = Vec::with_capacity(total);
        for v in contrib {
            all.extend(v);
        }
        self.group_allgather_costed(active, words);
        all
    }

    /// Cost-only sub-communicator allgather: identical charge to
    /// [`Machine::group_allgather`] whose contributions sum to `words`.
    pub fn group_allgather_costed(&mut self, active: usize, words: usize) {
        let active = active.clamp(1, self.p);
        let t0 = self.clock[..active].iter().copied().fold(0.0, f64::max);
        let stages = (active as f64).log2().ceil().max(0.0);
        let t = t0 + stages * self.cost.t_s + self.cost.t_w * words as f64;
        self.sync_collective(active, t, CollectiveKind::GroupAllgather, words);
    }

    /// Allreduce over ranks `0..active` only; inactive contributions must
    /// be zero-filled vectors of the same length (they are not summed).
    pub fn group_allreduce_sum(&mut self, active: usize, contrib: &[Vec<f64>]) -> Vec<f64> {
        assert_eq!(contrib.len(), self.p);
        let active = active.clamp(1, self.p);
        let len = contrib.first().map_or(0, |v| v.len());
        let mut acc = vec![0.0; len];
        for v in &contrib[..active] {
            assert_eq!(v.len(), len);
            for (a, x) in acc.iter_mut().zip(v) {
                *a += x;
            }
        }
        self.group_allreduce_sum_costed(active, len);
        acc
    }

    /// Cost-only sub-communicator allreduce: identical charge to
    /// [`Machine::group_allreduce_sum`] over `len`-element contributions.
    pub fn group_allreduce_sum_costed(&mut self, active: usize, len: usize) {
        let active = active.clamp(1, self.p);
        let t0 = self.clock[..active].iter().copied().fold(0.0, f64::max);
        let t = t0 + {
            let stages = (active as f64).log2().ceil().max(0.0);
            stages * self.cost.msg(len)
        };
        self.sync_collective(active, t, CollectiveKind::GroupAllreduceSum, len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_trace::{Event, Metrics, TraceRecorder};

    fn free() -> CostModel {
        CostModel {
            t_s: 0.0,
            t_w: 0.0,
            t_op: 1.0,
        }
    }

    #[test]
    fn compute_charges_max_rank() {
        let mut m = Machine::new(4, free());
        let mut states = vec![0u32; 4];
        m.compute(&mut states, |r, s| {
            *s = r as u32;
            (r + 1) as f64
        });
        assert_eq!(m.elapsed(), 4.0);
        assert_eq!(states, vec![0, 1, 2, 3]);
    }

    /// Batch size is a pure host knob: every choice must leave states and
    /// per-rank clock charges bit-identical.
    #[test]
    fn rank_batch_is_invisible_to_results_and_clocks() {
        let run = |batch: usize| {
            let mut m = Machine::new(7, CostModel::qdr_infiniband());
            m.set_rank_batch(batch);
            let mut states = vec![0.0f64; 7];
            m.compute(&mut states, |r, s| {
                *s = (r as f64 + 1.0).sqrt();
                (r * r) as f64 + 0.25
            });
            (states, m.elapsed().to_bits())
        };
        let baseline = run(0);
        for batch in [1, 2, 3, 7, 100] {
            let got = run(batch);
            assert_eq!(got.1, baseline.1, "clock drift at batch {batch}");
            for (a, b) in got.0.iter().zip(&baseline.0) {
                assert_eq!(a.to_bits(), b.to_bits(), "state drift at batch {batch}");
            }
        }
    }

    /// The superstep hook observes host facts (batching, active set) and
    /// runs after charging; installing one must not change the simulation.
    #[test]
    fn superstep_hook_reports_batching_facts() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let seen = Arc::new(AtomicUsize::new(0));
        let active_seen = Arc::new(AtomicUsize::new(usize::MAX));
        let mut m = Machine::new(4, free());
        {
            let seen = seen.clone();
            let active_seen = active_seen.clone();
            m.set_superstep_hook(Box::new(move |info| {
                seen.fetch_add(1, Ordering::Relaxed);
                active_seen.store(info.active, Ordering::Relaxed);
                assert_eq!(info.ranks, 4);
                assert!(info.batch >= 1 && info.batch <= 4);
                assert!(info.threads >= 1);
                assert!(info.wall_seconds >= 0.0);
            }));
        }
        let mut states = vec![(); 4];
        m.compute(&mut states, |r, _| if r < 3 { 2.0 } else { 0.0 });
        m.compute(&mut states, |_, _| 1.0);
        assert_eq!(seen.load(Ordering::Relaxed), 2, "one call per superstep");
        assert_eq!(active_seen.load(Ordering::Relaxed), 4);
        let mut plain = Machine::new(4, free());
        let mut pstates = vec![(); 4];
        plain.compute(&mut pstates, |r, _| if r < 3 { 2.0 } else { 0.0 });
        plain.compute(&mut pstates, |_, _| 1.0);
        assert_eq!(m.elapsed().to_bits(), plain.elapsed().to_bits());
    }

    #[test]
    fn exchange_delivers_and_orders_by_source() {
        let mut m = Machine::new(3, free());
        let out = vec![
            vec![(1usize, vec![10u64]), (2usize, vec![20u64])],
            vec![(2usize, vec![21u64])],
            vec![],
        ];
        let inbox = m.exchange(out);
        assert!(inbox[0].is_empty());
        assert_eq!(inbox[1], vec![(0, vec![10u64])]);
        assert_eq!(inbox[2], vec![(0, vec![20u64]), (1, vec![21u64])]);
    }

    #[test]
    fn exchange_charges_latency_and_bandwidth() {
        let cost = CostModel {
            t_s: 1.0,
            t_w: 0.5,
            t_op: 0.0,
        };
        let mut m = Machine::new(2, cost);
        let out = vec![vec![(1usize, vec![0u64; 4])], vec![]];
        m.exchange(out);
        // Sender: 1 msg of 4 words = 1 + 2 = 3. Receiver: waits for sender
        // (3) then pays its receive cost (3) = 6.
        assert_eq!(m.clock[0], 3.0);
        assert_eq!(m.clock[1], 6.0);
        assert!(m.comm_time() >= 3.0);
    }

    #[test]
    fn exchange_is_locally_synchronising() {
        // Rank 2 exchanges nothing: its clock must not move.
        let cost = CostModel {
            t_s: 1.0,
            t_w: 0.0,
            t_op: 0.0,
        };
        let mut m = Machine::new(3, cost);
        let out = vec![vec![(1usize, vec![0u64])], vec![], vec![]];
        m.exchange(out);
        assert_eq!(m.clock[2], 0.0);
        assert!(m.clock[1] > 0.0);
    }

    #[test]
    fn allreduce_sums_elementwise() {
        let mut m = Machine::new(3, free());
        let contrib = vec![vec![1.0, 2.0], vec![10.0, 20.0], vec![100.0, 200.0]];
        assert_eq!(m.allreduce_sum(&contrib), vec![111.0, 222.0]);
    }

    #[test]
    fn allreduce_synchronises_globally() {
        let cost = CostModel {
            t_s: 1.0,
            t_w: 0.0,
            t_op: 1.0,
        };
        let mut m = Machine::new(4, cost);
        let mut states = vec![(); 4];
        m.compute(&mut states, |r, _| if r == 0 { 10.0 } else { 0.0 });
        m.allreduce_sum(&vec![vec![0.0]; 4]);
        // All clocks equal: laggard (10) + 2 stages × 1s latency.
        for r in 0..4 {
            assert_eq!(m.clock[r], 12.0);
        }
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        let mut m = Machine::new(3, free());
        let all = m.allgather(vec![vec![0u32], vec![1, 11], vec![2]]);
        assert_eq!(all, vec![0, 1, 11, 2]);
    }

    #[test]
    fn allreduce_min_index_picks_global_best() {
        let mut m = Machine::new(4, free());
        assert_eq!(m.allreduce_min_index(&[3.0, 1.0, 2.0, 5.0]), 1);
    }

    #[test]
    fn phase_breakdown_splits_comp_and_comm() {
        let cost = CostModel {
            t_s: 1.0,
            t_w: 0.0,
            t_op: 1.0,
        };
        let mut m = Machine::new(2, cost);
        m.phase(Phase::Coarsen);
        let mut s = vec![(); 2];
        m.compute(&mut s, |_, _| 5.0);
        m.phase(Phase::Embed);
        m.barrier();
        let bd = m.phase_breakdown();
        assert_eq!(bd[&Phase::Coarsen].comp, 5.0);
        assert_eq!(bd[&Phase::Coarsen].comm, 0.0);
        assert_eq!(bd[&Phase::Embed].comp, 0.0);
        assert_eq!(bd[&Phase::Embed].comm, 1.0);
    }

    #[test]
    fn reentered_phase_accumulates() {
        let mut m = Machine::new(2, free());
        let mut s = vec![(); 2];
        m.phase(Phase::Coarsen);
        m.compute(&mut s, |_, _| 5.0);
        m.phase(Phase::Embed);
        m.compute(&mut s, |_, _| 1.0);
        m.phase(Phase::Coarsen); // re-enter: must accumulate, not overwrite
        m.compute(&mut s, |_, _| 7.0);
        let bd = m.phase_breakdown();
        assert_eq!(bd[&Phase::Coarsen].comp, 12.0);
        assert_eq!(bd[&Phase::Embed].comp, 1.0);
    }

    #[test]
    fn empty_phase_reports_zeros() {
        let mut m = Machine::new(2, free());
        m.phase(Phase::Refine);
        m.phase(Phase::Done);
        let bd = m.phase_breakdown();
        assert_eq!(
            bd[&Phase::Refine],
            PhaseBreakdown {
                comp: 0.0,
                comm: 0.0
            }
        );
    }

    #[test]
    fn phase_breakdown_is_idempotent() {
        let cost = CostModel {
            t_s: 1.0,
            t_w: 0.5,
            t_op: 1.0,
        };
        let mut m = Machine::new(3, cost);
        let mut s = vec![(); 3];
        m.phase(Phase::Coarsen);
        m.compute(&mut s, |r, _| (r + 1) as f64);
        m.barrier();
        let a = m.phase_breakdown();
        let b = m.phase_breakdown();
        assert_eq!(a, b);
        // And stats() agrees with the breakdown.
        let st = m.stats();
        for (ph, comp, comm) in &st.phases {
            assert_eq!(a[ph].comp, *comp);
            assert_eq!(a[ph].comm, *comm);
        }
    }

    #[test]
    fn breakdown_is_bounded_by_elapsed_times_p() {
        let cost = CostModel::qdr_infiniband();
        let mut m = Machine::new(4, cost);
        let mut s = vec![(); 4];
        m.phase(Phase::Coarsen);
        m.compute(&mut s, |r, _| 1000.0 * (r + 1) as f64);
        let _ = m.exchange(vec![
            vec![(1usize, vec![0u64; 64])],
            vec![(2usize, vec![0u64; 8])],
            vec![],
            vec![],
        ]);
        m.phase(Phase::Partition);
        m.barrier();
        let _ = m.allgather(vec![vec![0u64; 4]; 4]);
        let e = m.elapsed();
        let bd = m.phase_breakdown();
        let total: f64 = bd.values().map(|b| b.comp + b.comm).sum();
        assert!(total <= e * m.p() as f64 + 1e-12, "{total} > {e} * p");
        for b in bd.values() {
            assert!(b.comp <= e + 1e-12 && b.comm <= e + 1e-12);
        }
        // comp + comm of any single rank can never exceed its clock.
        assert!(m.comp_time() + m.comm_time() <= e * 2.0 + 1e-12);
    }

    #[test]
    fn elapsed_is_monotone() {
        let mut m = Machine::new(2, CostModel::qdr_infiniband());
        let mut last = 0.0;
        let mut s = vec![(); 2];
        for _ in 0..5 {
            m.compute(&mut s, |_, _| 100.0);
            m.barrier();
            let e = m.elapsed();
            assert!(e >= last);
            last = e;
        }
    }

    #[test]
    #[should_panic(expected = "self-message")]
    fn self_message_rejected() {
        let mut m = Machine::new(2, free());
        let _ = m.exchange(vec![vec![(0usize, vec![0u64])], vec![]]);
    }

    #[test]
    fn group_allgather_only_touches_active_ranks() {
        let cost = CostModel {
            t_s: 1.0,
            t_w: 0.0,
            t_op: 1.0,
        };
        let mut m = Machine::new(8, cost);
        let contrib: Vec<Vec<u32>> = (0..8)
            .map(|r| if r < 4 { vec![r as u32] } else { Vec::new() })
            .collect();
        let all = m.group_allgather(4, contrib);
        assert_eq!(all, vec![0, 1, 2, 3]);
        // Active ranks advanced by log2(4) = 2 stages; inactive untouched.
        assert_eq!(m.clock[0], 2.0);
        assert_eq!(m.clock[3], 2.0);
        assert_eq!(m.clock[4], 0.0);
        assert_eq!(m.clock[7], 0.0);
    }

    #[test]
    fn group_allreduce_sums_active_only() {
        let mut m = Machine::new(4, free());
        let contrib = vec![vec![1.0], vec![2.0], vec![100.0], vec![1000.0]];
        let out = m.group_allreduce_sum(2, &contrib);
        assert_eq!(out, vec![3.0]); // ranks 2,3 excluded
    }

    #[test]
    fn group_collective_synchronises_within_group() {
        let cost = CostModel {
            t_s: 1.0,
            t_w: 0.0,
            t_op: 1.0,
        };
        let mut m = Machine::new(4, cost);
        let mut s = vec![(); 4];
        m.compute(&mut s, |r, _| if r == 1 { 10.0 } else { 0.0 });
        m.group_allreduce_sum(2, &vec![vec![0.0]; 4]);
        // Rank 0 catches up to rank 1's clock + 1 stage.
        assert_eq!(m.clock[0], 11.0);
        assert_eq!(m.clock[1], 11.0);
        assert_eq!(m.clock[2], 0.0);
    }

    #[test]
    fn group_of_one_is_free_of_latency() {
        let cost = CostModel {
            t_s: 1.0,
            t_w: 1.0,
            t_op: 0.0,
        };
        let mut m = Machine::new(4, cost);
        let contrib: Vec<Vec<u64>> = (0..4)
            .map(|r| if r == 0 { vec![7u64] } else { Vec::new() })
            .collect();
        let all = m.group_allgather(1, contrib);
        assert_eq!(all, vec![7]);
        // log2(1) = 0 stages; only the bandwidth term applies.
        assert!(m.clock[0] <= 1.0 + 1e-12);
    }

    #[test]
    fn allgather_charges_heap_payloads_through_words() {
        // Regression: size_of::<Vec<u64>>() is 24 bytes of header — the
        // old accounting charged 3 words per element here instead of 100.
        let cost = CostModel {
            t_s: 0.0,
            t_w: 1.0,
            t_op: 0.0,
        };
        let mut m = Machine::new(2, cost);
        let contrib: Vec<Vec<Vec<u64>>> = vec![vec![vec![0u64; 100]], vec![vec![0u64; 100]]];
        let _ = m.allgather(contrib);
        // 200 words at t_w = 1 → at least 200 simulated seconds.
        assert!(m.elapsed() >= 200.0, "undercharged: {}", m.elapsed());

        let mut m = Machine::new(2, cost);
        let contrib: Vec<Vec<Vec<u64>>> = vec![vec![vec![0u64; 50]], Vec::new()];
        let _ = m.group_allgather(1, contrib);
        assert!(m.elapsed() >= 50.0, "group undercharged: {}", m.elapsed());
    }

    #[test]
    fn trace_recorder_captures_machine_events() {
        let cost = CostModel {
            t_s: 1.0,
            t_w: 0.5,
            t_op: 1.0,
        };
        let mut m = Machine::new(2, cost);
        m.set_recorder(Box::new(TraceRecorder::new(2)));
        m.phase(Phase::Coarsen);
        let mut s = vec![(); 2];
        m.compute(&mut s, |r, _| (r + 1) as f64);
        let _ = m.exchange(vec![vec![(1usize, vec![0u64; 4])], vec![]]);
        m.phase(Phase::Partition);
        let _ = m.allgather(vec![vec![1u64, 2], vec![3u64]]);
        let elapsed = m.elapsed();
        let stats = m.stats();
        let rec = TraceRecorder::downcast(m.take_recorder().unwrap()).unwrap();

        // Every event kind shows up.
        let has = |f: &dyn Fn(&Event) -> bool| rec.events().iter().any(f);
        assert!(has(&|e| matches!(e, Event::Compute { .. })));
        assert!(has(&|e| matches!(
            e,
            Event::Send {
                src: 0,
                dst: 1,
                words: 4,
                ..
            }
        )));
        assert!(has(&|e| matches!(
            e,
            Event::Recv {
                src: 0,
                dst: 1,
                words: 4,
                ..
            }
        )));
        assert!(has(&|e| matches!(
            e,
            Event::Collective {
                kind: CollectiveKind::Allgather,
                words: 3,
                ..
            }
        )));
        assert!(has(&|e| matches!(
            e,
            Event::Phase {
                phase: Phase::Coarsen,
                ..
            }
        )));

        // The trace's horizon equals the machine's elapsed time.
        let horizon = rec
            .events()
            .iter()
            .map(|e| match e {
                Event::Compute { start, dur, .. } => start + dur,
                Event::Send { start, dur, .. } => start + dur,
                Event::Recv { start, dur, .. } => start + dur,
                Event::Collective { end, .. } => *end,
                Event::Phase { end, .. } => *end,
            })
            .fold(0.0, f64::max);
        assert!((horizon - elapsed).abs() < 1e-9, "{horizon} vs {elapsed}");

        // Metrics agree with the machine's own accounting exactly.
        let metrics = Metrics::build(&stats, Some(&rec));
        let bd = m.phase_breakdown();
        for ph in &metrics.phases {
            assert_eq!(ph.comp, bd[&ph.phase].comp, "{}", ph.phase);
            assert_eq!(ph.comm, bd[&ph.phase].comm, "{}", ph.phase);
        }
        assert_eq!(metrics.elapsed, elapsed);
        // Chrome export spans the same horizon (µs), with per-rank tids.
        let json = rec.chrome_trace();
        assert!(json.contains("\"tid\": 0") && json.contains("\"tid\": 1"));
        assert!(json.contains("\"ph\": \"X\""));
    }

    #[test]
    fn costed_exchange_charges_exactly_like_dummy_payloads() {
        let cost = CostModel::qdr_infiniband();
        let script: Vec<Vec<(usize, usize)>> = vec![
            vec![(1, 64), (2, 8), (3, 1)],
            vec![(2, 17)],
            vec![],
            vec![(0, 300)],
        ];
        let mut dummy = Machine::new(4, cost);
        let out: Vec<Vec<(usize, Vec<u64>)>> = script
            .iter()
            .map(|msgs| msgs.iter().map(|&(d, w)| (d, vec![0u64; w])).collect())
            .collect();
        let _ = dummy.exchange(out);

        let mut costed = Machine::new(4, cost);
        let out: Vec<Vec<(usize, CostOnly)>> = script
            .iter()
            .map(|msgs| msgs.iter().map(|&(d, w)| (d, CostOnly::new(w))).collect())
            .collect();
        costed.exchange_costed(&out);

        // Exact f64 equality — both run the same charging code path.
        assert_eq!(dummy.clock, costed.clock);
        assert_eq!(dummy.comm, costed.comm);
        assert_eq!(dummy.elapsed(), costed.elapsed());
    }

    #[test]
    fn costed_collectives_charge_exactly_like_data_variants() {
        let cost = CostModel::qdr_infiniband();
        let stagger = |m: &mut Machine| {
            let mut s = vec![(); 8];
            m.compute(&mut s, |r, _| (r * r) as f64);
        };

        let mut a = Machine::new(8, cost);
        stagger(&mut a);
        let _ = a.allreduce_sum(&vec![vec![0.0; 5]; 8]);
        let _ = a.allgather(vec![vec![0u64; 3]; 8]);
        let contrib: Vec<Vec<u64>> = (0..8)
            .map(|r| if r < 4 { vec![0u64; 6] } else { Vec::new() })
            .collect();
        let _ = a.group_allgather(4, contrib);
        let _ = a.group_allreduce_sum(4, &vec![vec![0.0; 2]; 8]);

        let mut b = Machine::new(8, cost);
        stagger(&mut b);
        b.allreduce_sum_costed(5);
        b.allgather_costed(24);
        b.group_allgather_costed(4, 24);
        b.group_allreduce_sum_costed(4, 2);

        assert_eq!(a.clock, b.clock);
        assert_eq!(a.comm, b.comm);
        assert_eq!(a.elapsed(), b.elapsed());
    }

    #[test]
    fn cached_elapsed_matches_fold_over_rank_clocks() {
        let mut m = Machine::new(5, CostModel::qdr_infiniband());
        let mut s = vec![(); 5];
        let check = |m: &Machine| {
            let fold = m.clock.iter().copied().fold(0.0, f64::max);
            assert_eq!(m.elapsed(), fold);
        };
        check(&m);
        m.compute(&mut s, |r, _| (5 - r) as f64 * 13.0);
        check(&m);
        m.charge_ops(2, 1e6);
        check(&m);
        let _ = m.exchange(vec![
            vec![(1usize, vec![0u64; 100])],
            vec![],
            vec![(4usize, vec![0u64; 7])],
            vec![],
            vec![],
        ]);
        check(&m);
        m.exchange_costed(&[
            vec![(3usize, CostOnly::new(50))],
            vec![],
            vec![],
            vec![],
            vec![],
        ]);
        check(&m);
        m.group_allreduce_sum_costed(2, 3);
        check(&m);
        m.barrier();
        check(&m);
        m.allgather_costed(40);
        check(&m);
    }

    #[test]
    fn costed_exchange_emits_identical_trace_events() {
        let cost = CostModel {
            t_s: 1.0,
            t_w: 0.5,
            t_op: 1.0,
        };
        let events = |costed: bool| {
            let mut m = Machine::new(3, cost);
            m.set_recorder(Box::new(TraceRecorder::new(3)));
            m.phase(Phase::Embed);
            if costed {
                m.exchange_costed(&[
                    vec![(1, CostOnly::new(4)), (2, CostOnly::new(2))],
                    vec![(2, CostOnly::new(8))],
                    vec![],
                ]);
            } else {
                let _ = m.exchange(vec![
                    vec![(1usize, vec![0u64; 4]), (2usize, vec![0u64; 2])],
                    vec![(2usize, vec![0u64; 8])],
                    vec![],
                ]);
            }
            let rec = TraceRecorder::downcast(m.take_recorder().unwrap()).unwrap();
            format!("{:?}", rec.events())
        };
        assert_eq!(events(false), events(true));
    }

    #[test]
    fn fuzzed_schedule_is_invisible_to_results_and_clocks() {
        let cost = CostModel::qdr_infiniband();
        let run = |sched: Option<Schedule>| {
            let mut m = Machine::new(4, cost);
            if let Some(s) = sched {
                m.set_schedule(s);
            }
            let mut states = vec![0u64; 4];
            m.compute(&mut states, |r, s| {
                *s = (r as u64 + 1) * 10;
                (r + 1) as f64 * 100.0
            });
            let out = vec![
                vec![(1usize, vec![10u64, 11]), (2usize, vec![12u64])],
                vec![(2usize, vec![21u64]), (0usize, vec![20u64])],
                vec![(3usize, vec![32u64])],
                vec![(2usize, vec![31u64])],
            ];
            let inbox = m.exchange(out);
            m.allreduce_sum_costed(3);
            (states, inbox, m.clock.clone(), m.comm.clone(), m.elapsed())
        };
        let base = run(None);
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let fuzzed = run(Some(Schedule::seeded(seed)));
            assert_eq!(base, fuzzed, "schedule seed {seed} changed the run");
        }
    }

    #[test]
    fn fuzzed_delivery_preserves_per_source_send_order() {
        // Two messages from the same source to the same destination must
        // arrive in send order under every schedule.
        let mut m = Machine::new(2, free());
        m.set_schedule(Schedule::seeded(99));
        let out = vec![
            vec![
                (1usize, vec![1u64]),
                (1usize, vec![2u64]),
                (1usize, vec![3u64]),
            ],
            vec![],
        ];
        let inbox = m.exchange(out);
        assert_eq!(
            inbox[1],
            vec![(0, vec![1u64]), (0, vec![2u64]), (0, vec![3u64])]
        );
    }

    #[test]
    fn compute_skew_slows_time_but_keeps_accounting_consistent() {
        let cost = CostModel::qdr_infiniband();
        let run = |pert: Option<Perturbation>| {
            let mut m = Machine::new(4, cost);
            if let Some(p) = pert {
                m.set_perturbation(&p);
            }
            let mut states = vec![0u64; 4];
            m.compute(&mut states, |r, s| {
                *s = r as u64;
                1000.0
            });
            m.charge_ops(2, 500.0);
            m.allreduce_sum_costed(1);
            (
                states,
                m.elapsed(),
                m.clock.clone(),
                m.comp.clone(),
                m.comm.clone(),
            )
        };
        let (base_states, base_elapsed, ..) = run(None);
        let pert = Perturbation {
            compute_skew: 0.4,
            collective_delay: 0.0,
            seed: 5,
        };
        let (states, elapsed, clock, comp, comm) = run(Some(pert));
        // Data unchanged; time only ever grows.
        assert_eq!(states, base_states);
        assert!(elapsed >= base_elapsed);
        // Accounting stays consistent: clock = comp + comm per rank.
        for r in 0..4 {
            assert!((clock[r] - (comp[r] + comm[r])).abs() < 1e-12);
        }
    }

    #[test]
    fn collective_delay_charges_comm_only() {
        let cost = free();
        let mut a = Machine::new(2, cost);
        let mut b = Machine::new(2, cost);
        b.set_perturbation(&Perturbation {
            compute_skew: 0.0,
            collective_delay: 2.5,
            seed: 0,
        });
        a.barrier();
        b.barrier();
        assert_eq!(b.elapsed(), a.elapsed() + 2.5);
        assert_eq!(b.comp_time(), a.comp_time());
        assert_eq!(b.comm_time(), a.comm_time() + 2.5);
    }

    #[test]
    fn zero_perturbation_is_bit_exact_identity() {
        let cost = CostModel::qdr_infiniband();
        let run = |pert: bool| {
            let mut m = Machine::new(3, cost);
            if pert {
                m.set_perturbation(&Perturbation::default());
            }
            let mut s = vec![(); 3];
            m.compute(&mut s, |r, _| (r * r + 1) as f64 * 0.1);
            let _ = m.exchange(vec![vec![(1usize, vec![0u64; 3])], vec![], vec![]]);
            m.barrier();
            (m.clock.clone(), m.elapsed())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn no_recorder_means_no_events_and_same_costs() {
        let cost = CostModel {
            t_s: 1.0,
            t_w: 0.5,
            t_op: 1.0,
        };
        let run = |rec: bool| {
            let mut m = Machine::new(2, cost);
            if rec {
                m.set_recorder(Box::new(TraceRecorder::new(2)));
            }
            m.phase(Phase::Coarsen);
            let mut s = vec![(); 2];
            m.compute(&mut s, |r, _| (r + 1) as f64);
            let _ = m.exchange(vec![vec![(1usize, vec![0u64; 4])], vec![]]);
            m.barrier();
            m.elapsed()
        };
        // Tracing must not perturb the simulated clock.
        assert_eq!(run(false), run(true));
        let mut m = Machine::new(2, cost);
        assert!(!m.has_recorder());
        assert!(m.take_recorder().is_none());
    }
}
