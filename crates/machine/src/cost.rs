//! The machine cost model.

/// LogP-style cost parameters. Times are in seconds; a "word" is 8 bytes;
/// an "op" is one abstract unit of graph work (roughly: touching one edge).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Message startup latency (per message).
    pub t_s: f64,
    /// Per-word transfer time.
    pub t_w: f64,
    /// Per-operation compute time.
    pub t_op: f64,
}

impl CostModel {
    /// Calibrated to the paper's testbed class: QDR InfiniBand
    /// (~1.3 µs MPI latency, ~3.2 GB/s effective per link ⇒ ~2.5 ns per
    /// 8-byte word) and a 2.66 GHz Nehalem core sustaining roughly
    /// 10⁸–10⁹ irregular graph ops/s; we charge 5 ns per edge-op, which
    /// reproduces the paper's compute/communication balance.
    pub fn qdr_infiniband() -> Self {
        CostModel {
            t_s: 1.3e-6,
            t_w: 2.5e-9,
            t_op: 5.0e-9,
        }
    }

    /// A latency-heavy interconnect (commodity Ethernet-class); useful in
    /// ablations to show how the crossover points move.
    pub fn ethernet() -> Self {
        CostModel {
            t_s: 3.0e-5,
            t_w: 1.0e-8,
            t_op: 5.0e-9,
        }
    }

    /// Zero-cost communication; isolates pure compute scaling in tests.
    pub fn free_comm() -> Self {
        CostModel {
            t_s: 0.0,
            t_w: 0.0,
            t_op: 5.0e-9,
        }
    }

    /// Time to send one message of `words` 8-byte words.
    #[inline]
    pub fn msg(&self, words: usize) -> f64 {
        self.t_s + self.t_w * words as f64
    }

    /// Time for a recursive-doubling collective over `p` ranks moving
    /// `words` per stage.
    #[inline]
    pub fn collective(&self, p: usize, words: usize) -> f64 {
        let stages = (p.max(1) as f64).log2().ceil().max(0.0);
        stages * self.msg(words)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::qdr_infiniband()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_cost_is_affine() {
        let c = CostModel {
            t_s: 1.0,
            t_w: 0.5,
            t_op: 0.0,
        };
        assert_eq!(c.msg(0), 1.0);
        assert_eq!(c.msg(4), 3.0);
    }

    #[test]
    fn collective_scales_logarithmically() {
        let c = CostModel {
            t_s: 1.0,
            t_w: 0.0,
            t_op: 0.0,
        };
        assert_eq!(c.collective(1, 0), 0.0);
        assert_eq!(c.collective(2, 0), 1.0);
        assert_eq!(c.collective(1024, 0), 10.0);
        assert_eq!(c.collective(1000, 0), 10.0); // ceil(log2 1000) = 10
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        let ib = CostModel::qdr_infiniband();
        let eth = CostModel::ethernet();
        assert!(ib.t_s < eth.t_s);
        assert!(ib.t_w < eth.t_w);
        assert_eq!(CostModel::free_comm().msg(100), 0.0);
    }
}
