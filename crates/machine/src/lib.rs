//! A deterministic simulated message-passing machine.
//!
//! The paper evaluates on 1–1024 MPI ranks of a Nehalem/QDR-InfiniBand
//! cluster. This crate substitutes that testbed: algorithms are written in
//! SPMD style against [`Machine`], which executes per-rank compute closures
//! in parallel on real threads (rayon) while *charging* a LogP-style cost
//! model — latency `t_s`, per-word bandwidth `t_w`, per-operation compute
//! `t_op` — to per-rank simulated clocks. Simulated elapsed time
//! (`Machine::elapsed`) is what the scaling figures report.
//!
//! Accounting matches the model the paper itself uses in §3.1:
//! * point-to-point/neighbour exchange: local synchronisation only — a rank
//!   waits for its communication partners, not the whole machine;
//! * collectives (allgather, allreduce, reduce): global synchronisation with
//!   `t_s log P` latency plus the appropriate bandwidth term.
//!
//! Every charge is attributed to the current *phase* (typed, see
//! [`Phase`]) and split into computation vs communication so Figures 7
//! and 8 (component and communication fractions) can be regenerated.
//!
//! Observability lives in the `sp-trace` crate (re-exported here as
//! [`trace`]): install a [`TraceRecorder`] with
//! [`Machine::set_recorder`] to capture rank-level compute spans,
//! per-message occupancy and collective participation on the simulated
//! clock, then export Chrome trace JSON or aggregate metrics from it.

pub mod cost;
pub mod fuzz;
pub mod machine;
pub mod words;

pub use cost::CostModel;
pub use fuzz::{Perturbation, Schedule};
pub use machine::{Machine, PhaseBreakdown, SuperstepHook, SuperstepInfo};
pub use words::{CostOnly, Words};

pub use sp_trace as trace;
pub use sp_trace::{
    CollectiveKind, MachineStats, Metrics, NoopRecorder, Phase, Recorder, TraceRecorder,
};
