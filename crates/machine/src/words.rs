//! Measuring message payloads in 8-byte words for cost charging.

/// Anything that can report its wire size in 8-byte words.
pub trait Words {
    fn words(&self) -> usize;
}

impl<T> Words for Vec<T> {
    fn words(&self) -> usize {
        (self.len() * std::mem::size_of::<T>()).div_ceil(8)
    }
}

impl<T> Words for &[T] {
    fn words(&self) -> usize {
        (self.len() * std::mem::size_of::<T>()).div_ceil(8)
    }
}

impl Words for f64 {
    fn words(&self) -> usize {
        1
    }
}

impl Words for u64 {
    fn words(&self) -> usize {
        1
    }
}

impl<A: Words, B: Words> Words for (A, B) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_words_round_up() {
        let v: Vec<u32> = vec![0; 3]; // 12 bytes -> 2 words
        assert_eq!(v.words(), 2);
        let v: Vec<f64> = vec![0.0; 5];
        assert_eq!(v.words(), 5);
        let v: Vec<u8> = vec![0; 0];
        assert_eq!(v.words(), 0);
    }

    #[test]
    fn tuple_words_sum() {
        let t = (3.0f64, vec![0u64; 4]);
        assert_eq!(t.words(), 5);
    }
}
