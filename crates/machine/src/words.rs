//! Measuring message payloads in 8-byte words for cost charging.

/// Anything that can report its wire size in 8-byte words.
///
/// Two families of implementations exist:
/// * **Scalars** report their own (rounded-up) size; sub-word scalars
///   round up to one word, matching how an MPI implementation pads tiny
///   elements into word-aligned buffers.
/// * **Containers** (`Vec<T>`, `&[T]`) report the *packed byte size* of
///   their element type — correct for plain-old-data elements, which is
///   what point-to-point payloads are. Heap-carrying element types (e.g.
///   `Vec<Vec<u64>>`) must NOT be sized this way: `size_of::<Vec<u64>>()`
///   is the 24-byte header, not the payload. The machine's collectives
///   therefore size their payloads per element through this trait (a
///   `Vec<u64>` element reports its true length), never through
///   `size_of` on the element type.
pub trait Words {
    fn words(&self) -> usize;
}

/// A zero-allocation cost-only payload: reports a wire size of `words`
/// 8-byte words while carrying no data at all.
///
/// Algorithms that model communication volume without materialising the
/// bytes (most of the SPMD code in this workspace — the data already lives
/// in shared memory) should send `CostOnly` through
/// [`Machine::exchange_costed`](crate::Machine::exchange_costed) and the
/// `*_costed` collectives rather than allocating `vec![0u64; words]`
/// dummies: the simulated charge is identical (it depends only on
/// [`Words::words`]) and the host pays neither allocation nor memset.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostOnly {
    pub words: usize,
}

impl CostOnly {
    #[inline]
    pub fn new(words: usize) -> Self {
        CostOnly { words }
    }
}

impl Words for CostOnly {
    #[inline]
    fn words(&self) -> usize {
        self.words
    }
}

/// Packed byte-size container sizing: valid for plain-old-data `T`.
impl<T> Words for Vec<T> {
    fn words(&self) -> usize {
        (self.len() * std::mem::size_of::<T>()).div_ceil(8)
    }
}

impl<T> Words for &[T] {
    fn words(&self) -> usize {
        std::mem::size_of_val(*self).div_ceil(8)
    }
}

macro_rules! scalar_words {
    ($($t:ty),*) => {$(
        impl Words for $t {
            fn words(&self) -> usize {
                std::mem::size_of::<$t>().div_ceil(8)
            }
        }
    )*};
}

scalar_words!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl Words for () {
    fn words(&self) -> usize {
        0
    }
}

impl<A: Words, B: Words> Words for (A, B) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_words_round_up() {
        let v: Vec<u32> = vec![0; 3]; // 12 bytes -> 2 words
        assert_eq!(v.words(), 2);
        let v: Vec<f64> = vec![0.0; 5];
        assert_eq!(v.words(), 5);
        let v: Vec<u8> = vec![0; 0];
        assert_eq!(v.words(), 0);
    }

    #[test]
    fn tuple_words_sum() {
        let t = (3.0f64, vec![0u64; 4]);
        assert_eq!(t.words(), 5);
    }

    #[test]
    fn scalars_round_up_to_one_word() {
        assert_eq!(1u8.words(), 1);
        assert_eq!(1u32.words(), 1);
        assert_eq!(1u64.words(), 1);
        assert_eq!(1.0f32.words(), 1);
        assert_eq!(true.words(), 1);
        assert_eq!(().words(), 0);
    }

    #[test]
    fn cost_only_reports_declared_words() {
        assert_eq!(CostOnly::new(0).words(), 0);
        assert_eq!(CostOnly::new(17).words(), 17);
        // Equal wire size to the dummy vector it replaces.
        assert_eq!(CostOnly::new(100).words(), vec![0u64; 100].words());
    }

    #[test]
    fn nested_vec_reports_payload_not_header() {
        // The element-wise path: a Vec<u64> element reports its true
        // length, not size_of::<Vec<u64>>() = 3 words of header.
        let inner: Vec<u64> = vec![0; 100];
        assert_eq!(inner.words(), 100);
        let nested: Vec<Vec<u64>> = vec![vec![0; 100], vec![0; 50]];
        let element_wise: usize = nested.iter().map(|v| v.words()).sum();
        assert_eq!(element_wise, 150);
    }
}
