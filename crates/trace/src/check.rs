//! Cross-checking a captured trace against the machine's own accounting.
//!
//! The recorder and the `MachineStats` snapshot are produced by two
//! independent code paths inside the machine (event emission vs clock
//! charging). [`crosscheck`] verifies they tell the same story — every
//! send has a matching receive, per-rank compute durations sum to the
//! rank's charged compute time, and no event extends past the simulated
//! horizon. sp-verify runs this after every fuzzed pipeline execution, so
//! a divergence between what the machine *did* and what it *charged*
//! surfaces as an invariant violation rather than a silently wrong figure.

use crate::metrics::MachineStats;
use crate::recorder::{Event, TraceRecorder};
use std::collections::HashMap;

/// Relative/absolute tolerance for comparing sums of f64 durations that
/// were accumulated in different orders.
const EPS: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS * (1.0 + a.abs().max(b.abs()))
}

/// Verify a trace against the machine's accounting snapshot.
///
/// Checks:
/// * every event lies within `[0, stats.elapsed]`;
/// * point-to-point sends and receives pair up exactly (same
///   `(src, dst, words)` multiset on both sides);
/// * per-rank `Compute` durations sum to `stats.rank_comp[r]`;
/// * collective participant counts never exceed `p`, and collectives end
///   no earlier than any participant entered.
///
/// Returns the first inconsistency found, as a human-readable message.
pub fn crosscheck(stats: &MachineStats, rec: &TraceRecorder) -> Result<(), String> {
    if rec.p() != stats.p {
        return Err(format!(
            "recorder p = {} but stats p = {}",
            rec.p(),
            stats.p
        ));
    }
    let horizon = stats.elapsed;
    let mut sends: HashMap<(usize, usize, usize), i64> = HashMap::new();
    let mut comp_sum = vec![0.0; stats.p];
    for (i, e) in rec.events().iter().enumerate() {
        let (start, end) = match e {
            Event::Compute { start, dur, .. }
            | Event::Send { start, dur, .. }
            | Event::Recv { start, dur, .. } => (*start, start + dur),
            Event::Collective { starts, end, .. } => {
                (starts.iter().copied().fold(*end, f64::min), *end)
            }
            Event::Phase { start, end, .. } => (*start, *end),
        };
        if !(start.is_finite() && end.is_finite()) {
            return Err(format!("event {i} has non-finite times: {e:?}"));
        }
        if start < -EPS || end < start - EPS {
            return Err(format!("event {i} runs backwards: {e:?}"));
        }
        if end > horizon * (1.0 + EPS) + EPS {
            return Err(format!(
                "event {i} ends at {end} past the simulated horizon {horizon}: {e:?}"
            ));
        }
        match e {
            Event::Compute { rank, dur, .. } => {
                if *rank >= stats.p {
                    return Err(format!("compute event on rank {rank} >= p"));
                }
                comp_sum[*rank] += dur;
            }
            Event::Send {
                src, dst, words, ..
            } => {
                *sends.entry((*src, *dst, *words)).or_insert(0) += 1;
            }
            Event::Recv {
                src, dst, words, ..
            } => {
                *sends.entry((*src, *dst, *words)).or_insert(0) -= 1;
            }
            Event::Collective { starts, .. } => {
                if starts.len() > stats.p {
                    return Err(format!(
                        "collective with {} participants on a {}-rank machine",
                        starts.len(),
                        stats.p
                    ));
                }
            }
            Event::Phase { .. } => {}
        }
    }
    if let Some(((src, dst, words), n)) = sends.iter().find(|(_, &n)| n != 0) {
        return Err(format!(
            "unmatched p2p traffic: {src}->{dst} ({words} words) has send-recv imbalance {n}"
        ));
    }
    for (r, (traced, charged)) in comp_sum.iter().zip(&stats.rank_comp).enumerate() {
        if !close(*traced, *charged) {
            return Err(format!(
                "rank {r}: traced compute {traced} != charged compute {charged}"
            ));
        }
    }
    Ok(())
}

/// Internal-consistency check of the accounting snapshot alone (usable
/// with or without a recorder): clocks are finite and non-negative,
/// `elapsed` is the clock maximum, and each rank's clock equals its
/// charged compute + communication time.
pub fn check_accounting(stats: &MachineStats) -> Result<(), String> {
    let fold = stats.rank_clock.iter().copied().fold(0.0_f64, f64::max);
    if !close(fold, stats.elapsed) {
        return Err(format!(
            "elapsed {} != max rank clock {}",
            stats.elapsed, fold
        ));
    }
    for r in 0..stats.p {
        let (clock, comp, comm) = (stats.rank_clock[r], stats.rank_comp[r], stats.rank_comm[r]);
        if !(clock.is_finite() && comp.is_finite() && comm.is_finite()) {
            return Err(format!("rank {r}: non-finite accounting"));
        }
        if clock < 0.0 || comp < 0.0 || comm < 0.0 {
            return Err(format!(
                "rank {r}: negative time (clock {clock}, comp {comp}, comm {comm})"
            ));
        }
        if !close(comp + comm, clock) {
            return Err(format!(
                "rank {r}: comp {comp} + comm {comm} != clock {clock}"
            ));
        }
    }
    // Phase breakdowns accumulate the max-rank comp/comm share per phase
    // span; a re-entered phase sums maxima that may come from different
    // ranks each span. The sound bounds are therefore:
    //   max_r rank_comp[r]  <=  sum_ph comp_ph  <=  sum_r rank_comp[r]
    // (and likewise for comm).
    let (mut ph_comp, mut ph_comm) = (0.0, 0.0);
    for (ph, comp, comm) in &stats.phases {
        if !(comp.is_finite() && comm.is_finite()) {
            return Err(format!("phase {ph}: non-finite breakdown"));
        }
        if *comp < 0.0 || *comm < 0.0 {
            return Err(format!("phase {ph}: negative breakdown"));
        }
        ph_comp += comp;
        ph_comm += comm;
    }
    if !stats.phases.is_empty() {
        let max_comp = stats.rank_comp.iter().copied().fold(0.0_f64, f64::max);
        let max_comm = stats.rank_comm.iter().copied().fold(0.0_f64, f64::max);
        let sum_comp: f64 = stats.rank_comp.iter().sum();
        let sum_comm: f64 = stats.rank_comm.iter().sum();
        let slack = |x: f64| EPS * (1.0 + x.abs());
        if ph_comp < max_comp - slack(max_comp) || ph_comp > sum_comp + slack(sum_comp) {
            return Err(format!(
                "phase compute total {ph_comp} outside sound bounds [{max_comp}, {sum_comp}]"
            ));
        }
        if ph_comm < max_comm - slack(max_comm) || ph_comm > sum_comm + slack(sum_comm) {
            return Err(format!(
                "phase comm total {ph_comm} outside sound bounds [{max_comm}, {sum_comm}]"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;
    use crate::recorder::Recorder;

    fn stats(p: usize, comp: Vec<f64>, comm: Vec<f64>) -> MachineStats {
        let clock: Vec<f64> = comp.iter().zip(&comm).map(|(a, b)| a + b).collect();
        MachineStats {
            p,
            elapsed: clock.iter().copied().fold(0.0, f64::max),
            phases: vec![],
            rank_comp: comp,
            rank_comm: comm,
            rank_clock: clock,
        }
    }

    #[test]
    fn consistent_trace_passes() {
        let mut rec = TraceRecorder::new(2);
        rec.on_compute(0, Phase::Coarsen, 0.0, 1.0, 10.0);
        rec.on_send(Phase::Coarsen, 0, 1, 4, 1.0, 0.5);
        rec.on_recv(Phase::Coarsen, 0, 1, 4, 1.5, 0.5);
        let st = stats(2, vec![1.0, 0.0], vec![0.5, 2.0]);
        crosscheck(&st, &rec).unwrap();
        check_accounting(&st).unwrap();
    }

    #[test]
    fn unmatched_send_is_reported() {
        let mut rec = TraceRecorder::new(2);
        rec.on_send(Phase::Coarsen, 0, 1, 4, 0.0, 0.5);
        let st = stats(2, vec![0.0, 0.0], vec![0.5, 0.5]);
        let err = crosscheck(&st, &rec).unwrap_err();
        assert!(err.contains("unmatched"), "{err}");
    }

    #[test]
    fn compute_mismatch_is_reported() {
        let mut rec = TraceRecorder::new(1);
        rec.on_compute(0, Phase::Embed, 0.0, 1.0, 5.0);
        let st = stats(1, vec![2.0, 0.0][..1].to_vec(), vec![0.0]);
        let err = crosscheck(&st, &rec).unwrap_err();
        assert!(err.contains("charged compute"), "{err}");
    }

    #[test]
    fn event_past_horizon_is_reported() {
        let mut rec = TraceRecorder::new(1);
        rec.on_compute(0, Phase::Embed, 0.0, 99.0, 5.0);
        let st = stats(1, vec![1.0], vec![0.0]);
        let err = crosscheck(&st, &rec).unwrap_err();
        assert!(err.contains("horizon"), "{err}");
    }

    #[test]
    fn broken_accounting_is_reported() {
        let mut st = stats(2, vec![1.0, 2.0], vec![0.5, 0.0]);
        st.rank_clock[1] = 5.0; // clock no longer comp + comm
        st.elapsed = 5.0;
        let err = check_accounting(&st).unwrap_err();
        assert!(err.contains("clock"), "{err}");
    }
}
