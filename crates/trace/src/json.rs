//! Minimal JSON emission helpers (this workspace deliberately avoids
//! serde; see DESIGN.md "Dependencies actually used").

/// Escape a string for inclusion inside a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number. Rust's shortest round-trip `Display`
/// is already valid JSON for finite values; non-finite values (which the
/// machine never produces) degrade to `null` rather than emitting invalid
/// JSON.
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn numbers_round_trip() {
        for x in [0.0, 1.5, 1e-9, 123456.789, -2.5e17, f64::MIN_POSITIVE] {
            let s = num(x);
            assert_eq!(s.parse::<f64>().unwrap(), x, "{s}");
        }
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }
}
