//! Aggregated per-phase and per-rank metrics with a machine-readable JSON
//! snapshot.

use crate::json::{escape, num};
use crate::phase::Phase;
use crate::recorder::{Event, TraceRecorder};

/// Accounting snapshot of a machine run, produced by
/// `Machine::stats()`. Times are simulated seconds.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MachineStats {
    /// Rank count.
    pub p: usize,
    /// Simulated elapsed time (max rank clock).
    pub elapsed: f64,
    /// Per-phase `(phase, comp, comm)` in canonical order; comp and comm
    /// are the max-rank shares exactly as `Machine::phase_breakdown`
    /// reports them.
    pub phases: Vec<(Phase, f64, f64)>,
    /// Per-rank accumulated computation time.
    pub rank_comp: Vec<f64>,
    /// Per-rank accumulated communication time.
    pub rank_comm: Vec<f64>,
    /// Per-rank final clock.
    pub rank_clock: Vec<f64>,
}

/// Per-phase aggregate counters. `comp`/`comm` come straight from the
/// machine's phase accounting; the volume counters come from trace events
/// and are zero when no trace was captured.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseMetrics {
    pub phase: Phase,
    /// Max-rank computation time in this phase (simulated seconds).
    pub comp: f64,
    /// Max-rank communication time in this phase (simulated seconds).
    pub comm: f64,
    /// Abstract compute operations executed in this phase (all ranks).
    pub ops: f64,
    /// Point-to-point messages sent in this phase.
    pub messages: usize,
    /// Point-to-point payload volume in 8-byte words.
    pub p2p_words: usize,
    /// Collective operations initiated in this phase.
    pub collectives: usize,
    /// Total payload volume of those collectives in 8-byte words.
    pub collective_words: usize,
    /// Max/mean per-rank compute time within the phase (1.0 is perfectly
    /// balanced); `None` when no trace was captured or the phase did no
    /// compute.
    pub load_imbalance: Option<f64>,
}

/// Per-rank aggregate counters. Times come from the machine; volume
/// counters from trace events (zero without a trace).
#[derive(Clone, Debug, PartialEq)]
pub struct RankMetrics {
    pub rank: usize,
    /// Accumulated computation time (simulated seconds).
    pub comp: f64,
    /// Accumulated communication time (simulated seconds).
    pub comm: f64,
    /// Final clock (simulated seconds).
    pub total: f64,
    /// Abstract compute operations executed by this rank.
    pub ops: f64,
    pub msgs_sent: usize,
    pub msgs_recv: usize,
    /// Point-to-point words sent.
    pub words_sent: usize,
    /// Point-to-point words received.
    pub words_recv: usize,
    /// Collectives this rank participated in.
    pub collectives: usize,
}

/// The full metrics snapshot for one machine run.
#[derive(Clone, Debug, PartialEq)]
pub struct Metrics {
    pub p: usize,
    /// Simulated elapsed time.
    pub elapsed: f64,
    /// Max-rank computation time.
    pub comp_time: f64,
    /// Max-rank communication time.
    pub comm_time: f64,
    /// Max/mean final rank clock (1.0 is perfectly balanced).
    pub load_imbalance: f64,
    pub phases: Vec<PhaseMetrics>,
    pub ranks: Vec<RankMetrics>,
}

fn max_of(v: &[f64]) -> f64 {
    v.iter().copied().fold(0.0, f64::max)
}

fn imbalance(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 1.0;
    }
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    if mean <= 0.0 {
        1.0
    } else {
        max_of(v) / mean
    }
}

impl Metrics {
    /// Aggregate a run's metrics. `trace` supplies the volume counters;
    /// without it the time-based fields are still exact (they come from
    /// the machine's own accounting) and the volume counters are zero.
    pub fn build(stats: &MachineStats, trace: Option<&TraceRecorder>) -> Metrics {
        let p = stats.p;
        let mut phases: Vec<PhaseMetrics> = stats
            .phases
            .iter()
            .map(|&(phase, comp, comm)| PhaseMetrics {
                phase,
                comp,
                comm,
                ops: 0.0,
                messages: 0,
                p2p_words: 0,
                collectives: 0,
                collective_words: 0,
                load_imbalance: None,
            })
            .collect();
        let mut ranks: Vec<RankMetrics> = (0..p)
            .map(|r| RankMetrics {
                rank: r,
                comp: stats.rank_comp.get(r).copied().unwrap_or(0.0),
                comm: stats.rank_comm.get(r).copied().unwrap_or(0.0),
                total: stats.rank_clock.get(r).copied().unwrap_or(0.0),
                ops: 0.0,
                msgs_sent: 0,
                msgs_recv: 0,
                words_sent: 0,
                words_recv: 0,
                collectives: 0,
            })
            .collect();

        if let Some(trace) = trace {
            // Per-phase per-rank compute time, for phase-level imbalance.
            let mut phase_rank_comp: Vec<Vec<f64>> = phases.iter().map(|_| vec![0.0; p]).collect();
            fn idx_of(phases: &[PhaseMetrics], ph: Phase) -> Option<usize> {
                phases.iter().position(|m| m.phase == ph)
            }
            for ev in trace.events() {
                match ev {
                    Event::Compute {
                        rank,
                        phase,
                        dur,
                        ops,
                        ..
                    } => {
                        if let Some(i) = idx_of(&phases, *phase) {
                            phases[i].ops += ops;
                            phase_rank_comp[i][*rank] += dur;
                        }
                        if let Some(r) = ranks.get_mut(*rank) {
                            r.ops += ops;
                        }
                    }
                    Event::Send {
                        phase, src, words, ..
                    } => {
                        if let Some(i) = idx_of(&phases, *phase) {
                            phases[i].messages += 1;
                            phases[i].p2p_words += words;
                        }
                        if let Some(r) = ranks.get_mut(*src) {
                            r.msgs_sent += 1;
                            r.words_sent += words;
                        }
                    }
                    Event::Recv {
                        phase, dst, words, ..
                    } => {
                        if let Some(r) = ranks.get_mut(*dst) {
                            r.msgs_recv += 1;
                            r.words_recv += words;
                        }
                        let _ = phase; // p2p volume already counted on send
                    }
                    Event::Collective {
                        phase,
                        words,
                        starts,
                        ..
                    } => {
                        if let Some(i) = idx_of(&phases, *phase) {
                            phases[i].collectives += 1;
                            phases[i].collective_words += words;
                        }
                        for rm in ranks.iter_mut().take(starts.len()) {
                            rm.collectives += 1;
                        }
                    }
                    Event::Phase { .. } => {}
                }
            }
            for (i, per_rank) in phase_rank_comp.iter().enumerate() {
                if per_rank.iter().any(|&t| t > 0.0) {
                    phases[i].load_imbalance = Some(imbalance(per_rank));
                }
            }
        }

        Metrics {
            p,
            elapsed: stats.elapsed,
            comp_time: max_of(&stats.rank_comp),
            comm_time: max_of(&stats.rank_comm),
            load_imbalance: imbalance(&stats.rank_clock),
            phases,
            ranks,
        }
    }

    /// Machine-readable JSON snapshot. Schema documented in DESIGN.md
    /// ("Observability"): all times are simulated seconds, all volumes
    /// 8-byte words; floats print with shortest round-trip formatting so
    /// parsed values are bit-identical to the machine's accounting.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"sp-metrics-v1\",\n");
        out.push_str(&format!("  \"p\": {},\n", self.p));
        out.push_str(&format!("  \"elapsed\": {},\n", num(self.elapsed)));
        out.push_str(&format!("  \"comp_time\": {},\n", num(self.comp_time)));
        out.push_str(&format!("  \"comm_time\": {},\n", num(self.comm_time)));
        out.push_str(&format!(
            "  \"load_imbalance\": {},\n",
            num(self.load_imbalance)
        ));
        out.push_str("  \"phases\": [\n");
        for (i, ph) in self.phases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"phase\": \"{}\", \"comp\": {}, \"comm\": {}, \"ops\": {}, \
                 \"messages\": {}, \"p2p_words\": {}, \"collectives\": {}, \
                 \"collective_words\": {}, \"load_imbalance\": {}}}{}\n",
                escape(ph.phase.name()),
                num(ph.comp),
                num(ph.comm),
                num(ph.ops),
                ph.messages,
                ph.p2p_words,
                ph.collectives,
                ph.collective_words,
                ph.load_imbalance.map_or("null".to_string(), num),
                if i + 1 < self.phases.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"ranks\": [\n");
        for (i, r) in self.ranks.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rank\": {}, \"comp\": {}, \"comm\": {}, \"total\": {}, \"ops\": {}, \
                 \"msgs_sent\": {}, \"msgs_recv\": {}, \"words_sent\": {}, \"words_recv\": {}, \
                 \"collectives\": {}}}{}\n",
                r.rank,
                num(r.comp),
                num(r.comm),
                num(r.total),
                num(r.ops),
                r.msgs_sent,
                r.msgs_recv,
                r.words_sent,
                r.words_recv,
                r.collectives,
                if i + 1 < self.ranks.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::CollectiveKind;
    use crate::recorder::Recorder;

    fn stats() -> MachineStats {
        MachineStats {
            p: 2,
            elapsed: 10.0,
            phases: vec![(Phase::Coarsen, 3.0, 1.0), (Phase::Embed, 4.0, 2.0)],
            rank_comp: vec![7.0, 5.0],
            rank_comm: vec![3.0, 1.0],
            rank_clock: vec![10.0, 6.0],
        }
    }

    #[test]
    fn build_without_trace_uses_machine_accounting() {
        let m = Metrics::build(&stats(), None);
        assert_eq!(m.p, 2);
        assert_eq!(m.comp_time, 7.0);
        assert_eq!(m.comm_time, 3.0);
        assert_eq!(m.load_imbalance, 10.0 / 8.0);
        assert_eq!(m.phases.len(), 2);
        assert_eq!(m.phases[0].comp, 3.0);
        assert_eq!(m.phases[0].messages, 0);
        assert_eq!(m.phases[0].load_imbalance, None);
        assert_eq!(m.ranks[1].total, 6.0);
    }

    #[test]
    fn build_with_trace_counts_volumes() {
        let mut t = TraceRecorder::new(2);
        t.on_compute(0, Phase::Coarsen, 0.0, 2.0, 20.0);
        t.on_compute(1, Phase::Coarsen, 0.0, 1.0, 10.0);
        t.on_send(Phase::Coarsen, 0, 1, 5, 2.0, 1.0);
        t.on_recv(Phase::Coarsen, 0, 1, 5, 3.0, 1.0);
        t.on_collective(
            Phase::Embed,
            CollectiveKind::AllreduceSum,
            8,
            &[4.0, 4.0],
            5.0,
        );
        let m = Metrics::build(&stats(), Some(&t));
        let coarsen = &m.phases[0];
        assert_eq!(coarsen.ops, 30.0);
        assert_eq!(coarsen.messages, 1);
        assert_eq!(coarsen.p2p_words, 5);
        assert_eq!(coarsen.collectives, 0);
        assert_eq!(coarsen.load_imbalance, Some(2.0 / 1.5));
        let embed = &m.phases[1];
        assert_eq!(embed.collectives, 1);
        assert_eq!(embed.collective_words, 8);
        assert_eq!(m.ranks[0].msgs_sent, 1);
        assert_eq!(m.ranks[0].words_sent, 5);
        assert_eq!(m.ranks[1].msgs_recv, 1);
        assert_eq!(m.ranks[1].words_recv, 5);
        assert_eq!(m.ranks[0].collectives, 1);
        assert_eq!(m.ranks[0].ops, 20.0);
    }

    #[test]
    fn json_is_exact_and_structured() {
        let st = MachineStats {
            p: 1,
            elapsed: 0.1234567890123,
            phases: vec![(Phase::Partition, 0.1, 0.0234567890123)],
            rank_comp: vec![0.1],
            rank_comm: vec![0.0234567890123],
            rank_clock: vec![0.1234567890123],
        };
        let j = Metrics::build(&st, None).to_json();
        // Shortest round-trip formatting: the exact accounting values
        // appear verbatim.
        assert!(j.contains("\"comm\": 0.0234567890123"), "{j}");
        assert!(j.contains("\"schema\": \"sp-metrics-v1\""));
        assert!(j.contains("\"load_imbalance\": null"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn imbalance_edge_cases() {
        assert_eq!(imbalance(&[]), 1.0);
        assert_eq!(imbalance(&[0.0, 0.0]), 1.0);
        assert_eq!(imbalance(&[2.0, 2.0]), 1.0);
        assert_eq!(imbalance(&[3.0, 1.0]), 1.5);
    }
}
