//! Typed pipeline phases and collective kinds.

/// A pipeline phase. The machine attributes every charge to the current
/// phase; keying the breakdown by this enum (instead of by free-form
/// strings matched with `starts_with`) guarantees that sub-steps of a
/// phase — however they are labelled for trace display — aggregate into
/// the same bucket.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Before the first explicit phase switch.
    #[default]
    Idle,
    /// Parallel heavy-edge-matching coarsening.
    Coarsen,
    /// Multilevel fixed-lattice embedding (all sub-steps: coarsest layout,
    /// per-level smoothing, projection migration).
    Embed,
    /// Parallel geometric partitioning + strip refinement.
    Partition,
    /// Initial partition of the coarsest graph (multilevel baselines).
    Initial,
    /// Uncoarsening refinement (multilevel baselines).
    Refine,
    /// After the pipeline finished (teardown collectives, final metrics).
    Done,
}

impl Phase {
    /// Every phase, in canonical reporting order.
    pub const ALL: [Phase; 7] = [
        Phase::Idle,
        Phase::Coarsen,
        Phase::Embed,
        Phase::Partition,
        Phase::Initial,
        Phase::Refine,
        Phase::Done,
    ];

    /// Stable lower-case name used in metrics JSON and trace lanes.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Idle => "idle",
            Phase::Coarsen => "coarsen",
            Phase::Embed => "embed",
            Phase::Partition => "partition",
            Phase::Initial => "initial",
            Phase::Refine => "refine",
            Phase::Done => "done",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which collective primitive a collective event came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    Barrier,
    AllreduceSum,
    AllreduceMinIndex,
    Allgather,
    GroupAllgather,
    GroupAllreduceSum,
}

impl CollectiveKind {
    /// Stable name used in metrics JSON and trace event names.
    pub fn name(self) -> &'static str {
        match self {
            CollectiveKind::Barrier => "barrier",
            CollectiveKind::AllreduceSum => "allreduce_sum",
            CollectiveKind::AllreduceMinIndex => "allreduce_min_index",
            CollectiveKind::Allgather => "allgather",
            CollectiveKind::GroupAllgather => "group_allgather",
            CollectiveKind::GroupAllreduceSum => "group_allreduce_sum",
        }
    }
}

impl std::fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_stable() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert_eq!(Phase::Coarsen.to_string(), "coarsen");
        assert_eq!(
            CollectiveKind::GroupAllgather.to_string(),
            "group_allgather"
        );
    }

    #[test]
    fn default_phase_is_idle() {
        assert_eq!(Phase::default(), Phase::Idle);
    }
}
