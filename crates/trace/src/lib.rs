//! Observability for the simulated machine: typed pipeline phases, a
//! pluggable event [`Recorder`], structured trace capture, per-phase and
//! per-rank communication-volume metrics, and a Chrome trace-event
//! (`chrome://tracing` / Perfetto) exporter.
//!
//! The paper's core evidence (Figs 7–8, Table 4) is a per-phase
//! computation/communication breakdown. `sp-machine` charges those costs
//! to per-rank simulated clocks; this crate captures the *events* behind
//! the charges so a run can be inspected rank by rank:
//!
//! * [`Phase`] — typed phase identifiers replacing stringly phase labels,
//!   so attribution cannot drift with naming (`"embed"` vs `"embed_init"`).
//! * [`Recorder`] — the hook trait the machine emits events into. The
//!   default is *no recorder at all* (the machine holds an `Option`, and
//!   every emission site is gated on it), so instrumentation is opt-in and
//!   free when disabled. [`NoopRecorder`] is the explicit do-nothing
//!   implementation for APIs that want a value.
//! * [`TraceRecorder`] — captures compute spans, point-to-point
//!   sends/receives with `{src, dst, words}`, collectives with
//!   `{kind, active_ranks, words}`, and phase spans, all on the simulated
//!   clock.
//! * [`Metrics`] — aggregated per-phase and per-rank counters (ops,
//!   messages, words sent/received, comp/comm time, load-imbalance factor)
//!   with a machine-readable JSON snapshot ([`Metrics::to_json`]).
//! * [`TraceRecorder::chrome_trace`] — a Chrome trace-event JSON array,
//!   one lane per simulated rank, loadable in Perfetto (<https://ui.perfetto.dev>)
//!   or `chrome://tracing`.
//!
//! This crate is dependency-free; `sp-machine` depends on it and re-exports
//! the commonly used items.

pub mod check;
pub mod chrome;
pub mod fnv;
pub mod json;
pub mod metrics;
pub mod phase;
pub mod recorder;

pub use check::{check_accounting, crosscheck};
pub use metrics::{MachineStats, Metrics, PhaseMetrics, RankMetrics};
pub use phase::{CollectiveKind, Phase};
pub use recorder::{Event, NoopRecorder, Recorder, TraceRecorder};
