//! Chrome trace-event JSON export.
//!
//! The output is a JSON array of trace events in the Trace Event Format
//! (the format `chrome://tracing` and Perfetto's <https://ui.perfetto.dev>
//! load directly): complete spans (`"ph": "X"`) for compute, message and
//! collective occupancy — one lane (`tid`) per simulated rank — plus
//! begin/end pairs (`"ph": "B"`/`"E"`) for pipeline phases on an extra
//! lane with `tid = p`. Timestamps are simulated microseconds.
//!
//! The array opens with metadata events (`"ph": "M"`): a `process_name`
//! for the simulated machine and a `thread_name` per lane, so viewers
//! label the rank lanes "rank 0", "rank 1", … and the phase lane
//! "pipeline phases" instead of bare tids.

use crate::json::{escape, num};
use crate::recorder::{Event, TraceRecorder};

/// Simulated seconds → trace microseconds.
const US: f64 = 1e6;

impl TraceRecorder {
    /// Render the captured events as a Chrome trace-event JSON array.
    ///
    /// Open it at <https://ui.perfetto.dev> (drag & drop) or via
    /// `chrome://tracing`. The timeline's total span equals the machine's
    /// simulated elapsed time.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::with_capacity(64 * self.events().len() + 16);
        out.push_str("[\n");
        let mut first = true;
        {
            let mut push = |line: String| {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                out.push_str(&line);
            };
            // Metadata first: name the process and every lane.
            push(format!(
                "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \
                 \"args\": {{\"name\": \"sp-machine ({} simulated ranks)\"}}}}",
                self.p(),
            ));
            for r in 0..self.p() {
                push(format!(
                    "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \
                     \"tid\": {r}, \"args\": {{\"name\": \"rank {r}\"}}}}"
                ));
            }
            push(format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \
                 \"tid\": {}, \"args\": {{\"name\": \"pipeline phases\"}}}}",
                self.p(),
            ));
            for ev in self.events() {
                match ev {
                    Event::Compute {
                        rank,
                        phase,
                        start,
                        dur,
                        ops,
                    } => {
                        push(format!(
                            "{{\"name\": \"{}\", \"cat\": \"compute\", \"ph\": \"X\", \
                             \"pid\": 0, \"tid\": {}, \"ts\": {}, \"dur\": {}, \
                             \"args\": {{\"ops\": {}}}}}",
                            escape(phase.name()),
                            rank,
                            num(start * US),
                            num(dur * US),
                            num(*ops),
                        ));
                    }
                    Event::Send {
                        phase,
                        src,
                        dst,
                        words,
                        start,
                        dur,
                    } => {
                        push(format!(
                            "{{\"name\": \"send->{dst}\", \"cat\": \"comm\", \"ph\": \"X\", \
                             \"pid\": 0, \"tid\": {src}, \"ts\": {}, \"dur\": {}, \
                             \"args\": {{\"phase\": \"{}\", \"src\": {src}, \"dst\": {dst}, \
                             \"words\": {words}}}}}",
                            num(start * US),
                            num(dur * US),
                            escape(phase.name()),
                        ));
                    }
                    Event::Recv {
                        phase,
                        src,
                        dst,
                        words,
                        start,
                        dur,
                    } => {
                        push(format!(
                            "{{\"name\": \"recv<-{src}\", \"cat\": \"comm\", \"ph\": \"X\", \
                             \"pid\": 0, \"tid\": {dst}, \"ts\": {}, \"dur\": {}, \
                             \"args\": {{\"phase\": \"{}\", \"src\": {src}, \"dst\": {dst}, \
                             \"words\": {words}}}}}",
                            num(start * US),
                            num(dur * US),
                            escape(phase.name()),
                        ));
                    }
                    Event::Collective {
                        phase,
                        kind,
                        words,
                        starts,
                        end,
                    } => {
                        for (r, &t0) in starts.iter().enumerate() {
                            push(format!(
                                "{{\"name\": \"{}\", \"cat\": \"collective\", \"ph\": \"X\", \
                                 \"pid\": 0, \"tid\": {r}, \"ts\": {}, \"dur\": {}, \
                                 \"args\": {{\"phase\": \"{}\", \"active_ranks\": {}, \
                                 \"words\": {words}}}}}",
                                escape(kind.name()),
                                num(t0 * US),
                                num((end - t0).max(0.0) * US),
                                escape(phase.name()),
                                starts.len(),
                            ));
                        }
                    }
                    Event::Phase {
                        phase,
                        label,
                        start,
                        end,
                    } => {
                        let name = match label {
                            Some(l) => format!("{}:{}", phase.name(), l),
                            None => phase.name().to_string(),
                        };
                        let lane = self.p();
                        push(format!(
                            "{{\"name\": \"{}\", \"cat\": \"phase\", \"ph\": \"B\", \
                             \"pid\": 0, \"tid\": {lane}, \"ts\": {}}}",
                            escape(&name),
                            num(start * US),
                        ));
                        push(format!(
                            "{{\"name\": \"{}\", \"cat\": \"phase\", \"ph\": \"E\", \
                             \"pid\": 0, \"tid\": {lane}, \"ts\": {}}}",
                            escape(&name),
                            num(end * US),
                        ));
                    }
                }
            }
        }
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::{CollectiveKind, Phase};
    use crate::recorder::Recorder;

    fn sample() -> TraceRecorder {
        let mut t = TraceRecorder::new(2);
        t.on_phase(Phase::Coarsen, None, 0.0, 3.0);
        t.on_compute(0, Phase::Coarsen, 0.0, 2.0, 100.0);
        t.on_compute(1, Phase::Coarsen, 0.0, 1.0, 50.0);
        t.on_send(Phase::Coarsen, 0, 1, 4, 2.0, 0.5);
        t.on_recv(Phase::Coarsen, 0, 1, 4, 2.5, 0.5);
        t.on_collective(Phase::Done, CollectiveKind::Barrier, 0, &[3.0, 3.0], 3.5);
        t
    }

    #[test]
    fn exports_only_x_b_e_m_events() {
        let json = sample().chrome_trace();
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        for line in json.lines().filter(|l| l.contains("\"ph\"")) {
            assert!(
                line.contains("\"ph\": \"X\"")
                    || line.contains("\"ph\": \"B\"")
                    || line.contains("\"ph\": \"E\"")
                    || line.contains("\"ph\": \"M\""),
                "{line}"
            );
        }
        // One lane per rank plus the phase lane.
        assert!(json.contains("\"tid\": 0"));
        assert!(json.contains("\"tid\": 1"));
        assert!(json.contains("\"tid\": 2")); // phase lane (p = 2)
    }

    #[test]
    fn metadata_names_process_and_every_lane() {
        let json = sample().chrome_trace();
        assert!(json.contains("\"name\": \"process_name\""));
        assert!(json.contains("sp-machine (2 simulated ranks)"));
        // thread_name for rank 0, rank 1, and the phase lane.
        assert_eq!(json.matches("\"name\": \"thread_name\"").count(), 3);
        assert!(json.contains("\"name\": \"rank 0\""));
        assert!(json.contains("\"name\": \"rank 1\""));
        assert!(json.contains("\"name\": \"pipeline phases\""));
        // Metadata precedes the first span.
        let meta = json.find("process_name").unwrap();
        let span = json.find("\"ph\": \"X\"").unwrap();
        assert!(meta < span);
    }

    #[test]
    fn timestamps_are_microseconds() {
        let json = sample().chrome_trace();
        // 2 simulated seconds of compute on rank 0 → dur 2 000 000 µs.
        assert!(json.contains("\"dur\": 2000000"), "{json}");
        // Collective on rank 0 from 3.0 to 3.5 s → 500 000 µs.
        assert!(json.contains("\"dur\": 500000"), "{json}");
    }

    #[test]
    fn phase_lane_has_matched_begin_end() {
        let json = sample().chrome_trace();
        assert_eq!(
            json.matches("\"ph\": \"B\"").count(),
            json.matches("\"ph\": \"E\"").count()
        );
    }

    #[test]
    fn empty_trace_is_metadata_only() {
        let t = TraceRecorder::new(1);
        let json = t.chrome_trace();
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        // No spans — only the naming metadata survives.
        for line in json.lines().filter(|l| l.contains("\"ph\"")) {
            assert!(line.contains("\"ph\": \"M\""), "{line}");
        }
        assert!(json.contains("\"name\": \"rank 0\""));
    }
}
