//! The machine-side event hook ([`Recorder`]) and the structured trace
//! capture implementation ([`TraceRecorder`]).

use crate::phase::{CollectiveKind, Phase};

/// Hooks the simulated machine emits events into. All times are on the
/// *simulated* clock, in seconds.
///
/// Every method has a no-op default, so implementors override only what
/// they need. The machine holds an `Option<Box<dyn Recorder>>` and skips
/// event assembly entirely when none is installed — instrumentation costs
/// nothing unless a recorder is attached.
pub trait Recorder: Send {
    /// A per-rank compute span: `rank` did `ops` abstract operations over
    /// `[start, start + dur]`.
    fn on_compute(&mut self, _rank: usize, _phase: Phase, _start: f64, _dur: f64, _ops: f64) {}

    /// A point-to-point send: `src` occupied `[start, start + dur]`
    /// injecting `words` 8-byte words towards `dst`.
    fn on_send(
        &mut self,
        _phase: Phase,
        _src: usize,
        _dst: usize,
        _words: usize,
        _start: f64,
        _dur: f64,
    ) {
    }

    /// A point-to-point receive: `dst` occupied `[start, start + dur]`
    /// draining `words` 8-byte words from `src`.
    fn on_recv(
        &mut self,
        _phase: Phase,
        _src: usize,
        _dst: usize,
        _words: usize,
        _start: f64,
        _dur: f64,
    ) {
    }

    /// A collective over ranks `0..starts.len()`: rank `r` entered at
    /// `starts[r]` (its clock at the call) and every participant left
    /// together at `end`. `words` is the total payload volume charged.
    fn on_collective(
        &mut self,
        _phase: Phase,
        _kind: CollectiveKind,
        _words: usize,
        _starts: &[f64],
        _end: f64,
    ) {
    }

    /// A completed phase span `[start, end]`. `label` is an optional
    /// free-form sub-phase detail (e.g. `"smooth-3"` within
    /// [`Phase::Embed`]) used for display only — accounting is keyed by
    /// `phase`.
    fn on_phase(&mut self, _phase: Phase, _label: Option<&str>, _start: f64, _end: f64) {}

    /// Type-recovery escape hatch so callers can get their concrete
    /// recorder back out of `Machine::take_recorder`. Implement as
    /// `fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> { self }`.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

/// The explicit do-nothing recorder, for APIs that want a value rather
/// than "no recorder installed".
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// One captured machine event. All times are simulated seconds.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// Rank-local computation.
    Compute {
        rank: usize,
        phase: Phase,
        start: f64,
        dur: f64,
        ops: f64,
    },
    /// Point-to-point send occupancy on the source rank.
    Send {
        phase: Phase,
        src: usize,
        dst: usize,
        words: usize,
        start: f64,
        dur: f64,
    },
    /// Point-to-point receive occupancy on the destination rank.
    Recv {
        phase: Phase,
        src: usize,
        dst: usize,
        words: usize,
        start: f64,
        dur: f64,
    },
    /// A collective: ranks `0..starts.len()` participate, entering at
    /// their own clocks and leaving together at `end`.
    Collective {
        phase: Phase,
        kind: CollectiveKind,
        words: usize,
        starts: Vec<f64>,
        end: f64,
    },
    /// A completed phase span.
    Phase {
        phase: Phase,
        label: Option<String>,
        start: f64,
        end: f64,
    },
}

/// Captures every machine event into a structured, inspectable log.
///
/// Derive aggregates with [`crate::Metrics::build`], or export a timeline
/// with [`TraceRecorder::chrome_trace`].
#[derive(Debug, Default)]
pub struct TraceRecorder {
    p: usize,
    events: Vec<Event>,
}

impl TraceRecorder {
    pub fn new(p: usize) -> Self {
        TraceRecorder {
            p,
            events: Vec::new(),
        }
    }

    /// Rank count of the machine this recorder was attached to.
    pub fn p(&self) -> usize {
        self.p
    }

    pub fn events(&self) -> &[Event] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Recover a `TraceRecorder` from the boxed trait object handed back
    /// by `Machine::take_recorder`. Returns `None` if the box holds some
    /// other recorder type.
    pub fn downcast(rec: Box<dyn Recorder>) -> Option<Box<TraceRecorder>> {
        rec.into_any().downcast().ok()
    }
}

impl Recorder for TraceRecorder {
    fn on_compute(&mut self, rank: usize, phase: Phase, start: f64, dur: f64, ops: f64) {
        self.events.push(Event::Compute {
            rank,
            phase,
            start,
            dur,
            ops,
        });
    }

    fn on_send(
        &mut self,
        phase: Phase,
        src: usize,
        dst: usize,
        words: usize,
        start: f64,
        dur: f64,
    ) {
        self.events.push(Event::Send {
            phase,
            src,
            dst,
            words,
            start,
            dur,
        });
    }

    fn on_recv(
        &mut self,
        phase: Phase,
        src: usize,
        dst: usize,
        words: usize,
        start: f64,
        dur: f64,
    ) {
        self.events.push(Event::Recv {
            phase,
            src,
            dst,
            words,
            start,
            dur,
        });
    }

    fn on_collective(
        &mut self,
        phase: Phase,
        kind: CollectiveKind,
        words: usize,
        starts: &[f64],
        end: f64,
    ) {
        self.events.push(Event::Collective {
            phase,
            kind,
            words,
            starts: starts.to_vec(),
            end,
        });
    }

    fn on_phase(&mut self, phase: Phase, label: Option<&str>, start: f64, end: f64) {
        self.events.push(Event::Phase {
            phase,
            label: label.map(|s| s.to_string()),
            start,
            end,
        });
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_recorder_captures_all_event_kinds() {
        let mut t = TraceRecorder::new(2);
        t.on_compute(0, Phase::Coarsen, 0.0, 1.0, 10.0);
        t.on_send(Phase::Coarsen, 0, 1, 4, 1.0, 0.5);
        t.on_recv(Phase::Coarsen, 0, 1, 4, 1.5, 0.5);
        t.on_collective(Phase::Embed, CollectiveKind::Barrier, 0, &[2.0, 2.0], 3.0);
        t.on_phase(Phase::Coarsen, None, 0.0, 2.0);
        assert_eq!(t.len(), 5);
        assert!(matches!(t.events()[0], Event::Compute { rank: 0, ops, .. } if ops == 10.0));
        assert!(matches!(
            &t.events()[3],
            Event::Collective { kind: CollectiveKind::Barrier, starts, .. } if starts.len() == 2
        ));
    }

    #[test]
    fn downcast_recovers_concrete_type() {
        let mut t = TraceRecorder::new(4);
        t.on_compute(1, Phase::Idle, 0.0, 1.0, 1.0);
        let boxed: Box<dyn Recorder> = Box::new(t);
        let back = TraceRecorder::downcast(boxed).expect("downcast");
        assert_eq!(back.p(), 4);
        assert_eq!(back.len(), 1);
        let noop: Box<dyn Recorder> = Box::new(NoopRecorder);
        assert!(TraceRecorder::downcast(noop).is_none());
    }

    #[test]
    fn noop_recorder_ignores_everything() {
        let mut n = NoopRecorder;
        n.on_compute(0, Phase::Done, 0.0, 1.0, 1.0);
        n.on_phase(Phase::Done, Some("x"), 0.0, 1.0);
    }
}
