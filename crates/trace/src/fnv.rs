//! Incremental FNV-1a (64-bit) fingerprinting.
//!
//! Hand-rolled and dependency-free so fingerprints are stable across
//! platforms, `rand` versions, and compiler releases: cache keys, verify
//! replay reports, and the `fingerprint` field echoed in sp-serve
//! responses must mean the same bits everywhere. Lives in sp-trace (the
//! workspace's dependency-free leaf) so both the serving layer and the
//! verification harness can share one definition without a dependency
//! cycle; sp-verify re-exports it as `sp_verify::Fingerprint`.

/// Incremental FNV-1a (64-bit) over explicit words/bytes.
pub struct Fingerprint {
    h: u64,
}

impl Fingerprint {
    pub fn new() -> Self {
        Fingerprint {
            h: 0xCBF2_9CE4_8422_2325,
        }
    }

    #[inline]
    pub fn byte(&mut self, b: u8) {
        self.h ^= b as u64;
        self.h = self.h.wrapping_mul(0x100_0000_01B3);
    }

    #[inline]
    pub fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    #[inline]
    pub fn u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.byte(b);
        }
    }

    #[inline]
    pub fn f64_bits(&mut self, x: f64) {
        self.u64(x.to_bits());
    }

    pub fn finish(&self) -> u64 {
        self.h
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_order_sensitive() {
        let mut a = Fingerprint::new();
        a.u64(1);
        a.u64(2);
        let mut b = Fingerprint::new();
        b.u64(2);
        b.u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn matches_reference_fnv1a() {
        // Independent straight-line FNV-1a over the same bytes, so the
        // incremental accumulator cannot drift from the standard constants.
        let data = b"scalapart";
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in data {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        let mut f = Fingerprint::new();
        f.bytes(data);
        assert_eq!(f.finish(), h);
    }
}
