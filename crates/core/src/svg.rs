//! Minimal SVG output for embeddings and partitions (used by the examples
//! and the Fig 1 / Fig 2 reproductions; no external dependency needed).

use sp_geometry::{Aabb2, Point2};
use sp_graph::{Bisection, Graph};
use std::fmt::Write as _;

/// Render an embedded graph as an SVG string. Vertices are coloured by
/// bisection side when one is given; edges crossing the cut are highlighted.
pub fn render_svg(
    g: &Graph,
    coords: &[Point2],
    bisection: Option<&Bisection>,
    width_px: f64,
) -> String {
    let bb = Aabb2::from_points(coords)
        .unwrap_or_else(Aabb2::unit)
        .inflated(0.05 + 1e-9);
    let scale = width_px / bb.width().max(1e-12);
    let h_px = bb.height() * scale;
    let tx =
        |p: Point2| -> (f64, f64) { ((p.x - bb.min.x) * scale, h_px - (p.y - bb.min.y) * scale) };
    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width_px:.0}" height="{h_px:.0}" viewBox="0 0 {width_px:.0} {h_px:.0}">"#
    );
    let _ = writeln!(s, r#"<rect width="100%" height="100%" fill="white"/>"#);
    // Edges.
    for v in 0..g.n() as u32 {
        for &u in g.neighbors(v) {
            if u <= v {
                continue;
            }
            let (x1, y1) = tx(coords[v as usize]);
            let (x2, y2) = tx(coords[u as usize]);
            let crossing = bisection.is_some_and(|b| b.side(v) != b.side(u));
            let (stroke, sw) = if crossing {
                ("#d62728", 1.2)
            } else {
                ("#bbbbbb", 0.5)
            };
            let _ = writeln!(
                s,
                r#"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="{stroke}" stroke-width="{sw}"/>"#
            );
        }
    }
    // Vertices.
    let r = (width_px / (g.n() as f64).sqrt() / 6.0).clamp(0.6, 4.0);
    for v in 0..g.n() as u32 {
        let (x, y) = tx(coords[v as usize]);
        let fill = match bisection.map(|b| b.side(v)) {
            Some(0) => "#1f77b4",
            Some(_) => "#ff7f0e",
            None => "#333333",
        };
        let _ = writeln!(
            s,
            r#"<circle cx="{x:.1}" cy="{y:.1}" r="{r:.1}" fill="{fill}"/>"#
        );
    }
    s.push_str("</svg>\n");
    s
}

/// Overlay a `q × q` lattice and per-cell centre-of-mass markers (the β
/// special vertices of Fig 1) on an embedding.
pub fn render_lattice_svg(g: &Graph, coords: &[Point2], q: usize, width_px: f64) -> String {
    let base = render_svg(g, coords, None, width_px);
    let bb = Aabb2::from_points(coords)
        .unwrap_or_else(Aabb2::unit)
        .inflated(0.05 + 1e-9);
    let scale = width_px / bb.width().max(1e-12);
    let h_px = bb.height() * scale;
    let mut overlay = String::new();
    for i in 0..=q {
        let x = i as f64 / q as f64 * width_px;
        let y = i as f64 / q as f64 * h_px;
        let _ = writeln!(
            overlay,
            r##"<line x1="{x:.1}" y1="0" x2="{x:.1}" y2="{h_px:.1}" stroke="#444" stroke-width="1" stroke-dasharray="6,4"/>"##
        );
        let _ = writeln!(
            overlay,
            r##"<line x1="0" y1="{y:.1}" x2="{width_px:.1}" y2="{y:.1}" stroke="#444" stroke-width="1" stroke-dasharray="6,4"/>"##
        );
    }
    // β markers.
    for cj in 0..q {
        for ci in 0..q {
            let cell = bb.lattice_cell(q, ci, cj);
            let mut mu = 0.0;
            let mut com = Point2::ZERO;
            for (v, &c) in coords.iter().enumerate() {
                if cell.contains(c) {
                    let m = g.vwgt(v as u32);
                    mu += m;
                    com += c * m;
                }
            }
            if mu > 0.0 {
                com = com / mu;
                let x = (com.x - bb.min.x) * scale;
                let y = h_px - (com.y - bb.min.y) * scale;
                let r = 4.0 + 6.0 * (mu / g.total_vwgt() * q as f64 * q as f64).min(2.0);
                let _ = writeln!(
                    overlay,
                    r##"<circle cx="{x:.1}" cy="{y:.1}" r="{r:.1}" fill="#2ca02c" fill-opacity="0.8"/>"##
                );
            }
        }
    }
    base.replace("</svg>", &format!("{overlay}</svg>"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::gen::{grid_2d, grid_2d_coords};

    #[test]
    fn svg_is_well_formed() {
        let g = grid_2d(5, 5);
        let coords = grid_2d_coords(5, 5);
        let svg = render_svg(&g, &coords, None, 300.0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<circle").count(), 25);
        assert_eq!(svg.matches("<line").count(), g.m());
    }

    #[test]
    fn cut_edges_are_highlighted() {
        let g = grid_2d(4, 4);
        let coords = grid_2d_coords(4, 4);
        let bi = Bisection::from_fn(g.n(), |v| (v as usize % 4) >= 2);
        let svg = render_svg(&g, &coords, Some(&bi), 200.0);
        assert_eq!(svg.matches("#d62728").count(), bi.cut_edges(&g));
        assert!(svg.contains("#1f77b4") && svg.contains("#ff7f0e"));
    }

    #[test]
    fn lattice_overlay_has_beta_markers() {
        let g = grid_2d(6, 6);
        let coords = grid_2d_coords(6, 6);
        let svg = render_lattice_svg(&g, &coords, 3, 300.0);
        assert!(svg.matches("#2ca02c").count() >= 9);
        assert!(svg.contains("stroke-dasharray"));
    }
}
