//! Pipeline checkpoint instrumentation.
//!
//! [`PipelineObserver`] is a hook trait the pipeline calls at every
//! algorithmic checkpoint — each coarsening matching/contraction, the
//! finished hierarchy, the embedding, the geometric partition, and the
//! refined result. Every method defaults to a no-op, so observation is
//! opt-in and free for normal runs ([`scalapart_bisect`] passes
//! [`NoopObserver`]). Observers see *references into the running
//! pipeline*, never copies: sp-verify's invariant checker validates each
//! intermediate in place without perturbing the run (the machine's clocks
//! are not visible to observers, so a checker cannot change simulated
//! time even by accident).
//!
//! [`scalapart_bisect`]: crate::pipeline::scalapart_bisect

use sp_coarsen::{Contraction, Hierarchy, Matching};
use sp_geometry::Point2;
use sp_geopart::GeoPartResult;
use sp_graph::{Bisection, Graph};
use sp_refine::FmStats;

/// Returned by the `*_checked` pipeline entry points when the observer
/// requested cancellation at a checkpoint. The partial work is discarded;
/// the machine the job ran on is left in whatever simulated state it had
/// reached (callers that care use a fresh machine per job, as sp-serve
/// does).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pipeline cancelled at an observer checkpoint")
    }
}

impl std::error::Error for Cancelled {}

/// Per-retained-level coarsening record: sizes on both sides of the
/// contraction step plus the coarsening arena's scratch high-water mark.
/// Emitted through [`PipelineObserver::on_level_stats`] and surfaced in
/// `--obs-log` `phase_profile` records.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LevelStats {
    /// Retained-level index (0 = the input graph's contraction step).
    pub level: usize,
    /// Vertex/edge counts of the finer retained graph.
    pub fine_n: usize,
    pub fine_m: usize,
    /// Vertex/edge counts of the coarser retained graph.
    pub coarse_n: usize,
    pub coarse_m: usize,
    /// [`sp_coarsen::CoarsenArena`] scratch high-water in bytes so far.
    pub arena_bytes: usize,
}

/// Checkpoint hooks through the ScalaPart pipeline. All methods are
/// called on the host (outside any simulated-rank closure), in pipeline
/// order.
pub trait PipelineObserver {
    /// A matching was computed on `g` (the current coarsening level).
    fn on_matching(&mut self, _g: &Graph, _m: &Matching) {}

    /// `fine` was contracted along `m` into `c`.
    fn on_contraction(&mut self, _fine: &Graph, _m: &Matching, _c: &Contraction) {}

    /// A retained hierarchy level was completed (possibly composing two
    /// contractions); carries sizes and arena scratch usage.
    fn on_level_stats(&mut self, _stats: &LevelStats) {}

    /// Coarsening finished with this hierarchy.
    fn on_hierarchy(&mut self, _h: &Hierarchy) {}

    /// The finest graph was embedded.
    fn on_embedding(&mut self, _g: &Graph, _coords: &[Point2]) {}

    /// Geometric partitioning produced `geo` (before strip refinement).
    fn on_geo_partition(&mut self, _g: &Graph, _geo: &GeoPartResult) {}

    /// Strip FM finished; `bi` is the refined bisection.
    fn on_refined(&mut self, _g: &Graph, _bi: &Bisection, _st: &FmStats) {}

    /// Cooperative cancellation poll. The `*_checked` pipeline entry
    /// points call this at every checkpoint (after each matching and
    /// contraction, after the hierarchy, embedding, and geometric
    /// partition, and between recursive-bisection splits); returning
    /// `true` makes them abandon the run and return
    /// [`Err(Cancelled)`](Cancelled). The default never cancels, so the
    /// plain (non-`_checked`) entry points are unaffected. Cancellation is
    /// *only* observed at checkpoints — a long-running stage finishes its
    /// current step first — which is what keeps cancelled runs safe: no
    /// simulated-rank closure is ever interrupted midway.
    fn poll_cancel(&mut self) -> bool {
        false
    }
}

/// The explicit do-nothing observer.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl PipelineObserver for NoopObserver {}

/// An observer adapter that attributes host wall time and RSS to pipeline
/// phases using an [`sp_obs::PhaseProfiler`], while forwarding every hook
/// (including `poll_cancel`) to an optional inner observer.
///
/// Phase boundaries fall at the pipeline's own checkpoints: everything up
/// to `on_hierarchy` is **coarsen**, up to `on_embedding` is **embed**, up
/// to `on_geo_partition` is **partition**, and up to `on_refined` is
/// **refine**. Recursive bisections revisit these checkpoints, so samples
/// accumulate per phase across the whole k-way run (the graph-extraction
/// overhead between one bisection's refine and the next one's coarsening
/// lands in the next coarsen span — it is coarsening-side work).
///
/// Profiling is strictly passive: the profiler reads `Instant::now()` and
/// `/proc/self/status` at checkpoints and never touches the graph,
/// machine, or observer-visible state. The sp-verify passivity fuzz
/// asserts this end to end.
pub struct ProfilingObserver<'a> {
    profiler: sp_obs::PhaseProfiler,
    level_stats: Vec<LevelStats>,
    inner: Option<&'a mut dyn PipelineObserver>,
}

impl Default for ProfilingObserver<'static> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> ProfilingObserver<'a> {
    pub fn new() -> ProfilingObserver<'static> {
        ProfilingObserver {
            profiler: sp_obs::PhaseProfiler::new(),
            level_stats: Vec::new(),
            inner: None,
        }
    }

    /// Profile while also forwarding every checkpoint to `inner` (e.g. an
    /// invariant checker or a deadline canceller).
    pub fn wrapping(inner: &'a mut dyn PipelineObserver) -> ProfilingObserver<'a> {
        ProfilingObserver {
            profiler: sp_obs::PhaseProfiler::new(),
            level_stats: Vec::new(),
            inner: Some(inner),
        }
    }

    pub fn profiler(&self) -> &sp_obs::PhaseProfiler {
        &self.profiler
    }

    pub fn into_profiler(self) -> sp_obs::PhaseProfiler {
        self.profiler
    }

    /// Per-retained-level coarsening records collected so far (across all
    /// recursive bisections, in call order).
    pub fn level_stats(&self) -> &[LevelStats] {
        &self.level_stats
    }

    /// Render the collected level stats as a JSON array for a
    /// `phase_profile` record.
    pub fn level_stats_json(&self) -> String {
        let items: Vec<String> = self
            .level_stats
            .iter()
            .map(|s| {
                format!(
                    "{{\"level\":{},\"fine_n\":{},\"fine_m\":{},\"coarse_n\":{},\"coarse_m\":{},\"arena_bytes\":{}}}",
                    s.level, s.fine_n, s.fine_m, s.coarse_n, s.coarse_m, s.arena_bytes
                )
            })
            .collect();
        format!("[{}]", items.join(","))
    }
}

impl PipelineObserver for ProfilingObserver<'_> {
    fn on_matching(&mut self, g: &Graph, m: &Matching) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.on_matching(g, m);
        }
    }

    fn on_contraction(&mut self, fine: &Graph, m: &Matching, c: &Contraction) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.on_contraction(fine, m, c);
        }
    }

    fn on_level_stats(&mut self, stats: &LevelStats) {
        self.level_stats.push(*stats);
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.on_level_stats(stats);
        }
    }

    fn on_hierarchy(&mut self, h: &Hierarchy) {
        self.profiler.mark("coarsen");
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.on_hierarchy(h);
        }
    }

    fn on_embedding(&mut self, g: &Graph, coords: &[Point2]) {
        self.profiler.mark("embed");
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.on_embedding(g, coords);
        }
    }

    fn on_geo_partition(&mut self, g: &Graph, geo: &GeoPartResult) {
        self.profiler.mark("partition");
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.on_geo_partition(g, geo);
        }
    }

    fn on_refined(&mut self, g: &Graph, bi: &Bisection, st: &FmStats) {
        self.profiler.mark("refine");
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.on_refined(g, bi, st);
        }
    }

    fn poll_cancel(&mut self) -> bool {
        match self.inner.as_deref_mut() {
            Some(inner) => inner.poll_cancel(),
            None => false,
        }
    }
}
