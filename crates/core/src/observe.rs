//! Pipeline checkpoint instrumentation.
//!
//! [`PipelineObserver`] is a hook trait the pipeline calls at every
//! algorithmic checkpoint — each coarsening matching/contraction, the
//! finished hierarchy, the embedding, the geometric partition, and the
//! refined result. Every method defaults to a no-op, so observation is
//! opt-in and free for normal runs ([`scalapart_bisect`] passes
//! [`NoopObserver`]). Observers see *references into the running
//! pipeline*, never copies: sp-verify's invariant checker validates each
//! intermediate in place without perturbing the run (the machine's clocks
//! are not visible to observers, so a checker cannot change simulated
//! time even by accident).
//!
//! [`scalapart_bisect`]: crate::pipeline::scalapart_bisect

use sp_coarsen::{Contraction, Hierarchy, Matching};
use sp_geometry::Point2;
use sp_geopart::GeoPartResult;
use sp_graph::{Bisection, Graph};
use sp_refine::FmStats;

/// Checkpoint hooks through the ScalaPart pipeline. All methods are
/// called on the host (outside any simulated-rank closure), in pipeline
/// order.
pub trait PipelineObserver {
    /// A matching was computed on `g` (the current coarsening level).
    fn on_matching(&mut self, _g: &Graph, _m: &Matching) {}

    /// `fine` was contracted along `m` into `c`.
    fn on_contraction(&mut self, _fine: &Graph, _m: &Matching, _c: &Contraction) {}

    /// Coarsening finished with this hierarchy.
    fn on_hierarchy(&mut self, _h: &Hierarchy) {}

    /// The finest graph was embedded.
    fn on_embedding(&mut self, _g: &Graph, _coords: &[Point2]) {}

    /// Geometric partitioning produced `geo` (before strip refinement).
    fn on_geo_partition(&mut self, _g: &Graph, _geo: &GeoPartResult) {}

    /// Strip FM finished; `bi` is the refined bisection.
    fn on_refined(&mut self, _g: &Graph, _bi: &Bisection, _st: &FmStats) {}
}

/// The explicit do-nothing observer.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl PipelineObserver for NoopObserver {}
