//! Unified dispatch over every partitioner in the paper's evaluation.

use crate::config::SpConfig;
use crate::observe::{Cancelled, NoopObserver, PipelineObserver};
use crate::pipeline::{scalapart_bisect_checked, sp_pg7nl_bisect, PhaseTimes};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_baselines::{multilevel_bisect, rcb_bisect, MultilevelConfig};
use sp_embed::{embed_multilevel_seq, SeqEmbedConfig};
use sp_geometry::Point2;
use sp_geopart::{geometric_partition, GeoConfig};
use sp_graph::distr::Distribution;
use sp_graph::{Bisection, Graph};
use sp_machine::{CostModel, Machine};

/// Every method in the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// ScalaPart — the full pipeline.
    ScalaPart,
    /// SP-PG7-NL — ScalaPart's partitioning component only (requires or
    /// receives coordinates).
    SpPg7Nl,
    /// The ParMetis-like multilevel comparator.
    ParMetisLike,
    /// The Pt-Scotch-like multilevel comparator.
    PtScotchLike,
    /// Recursive coordinate bisection (Zoltan).
    Rcb,
    /// Sequential geometric mesh partitioning, 30 tries.
    G30,
    /// Sequential geometric, 7 tries.
    G7,
    /// Sequential geometric, 7 tries, no line separators.
    G7Nl,
}

impl Method {
    pub fn name(self) -> &'static str {
        match self {
            Method::ScalaPart => "ScalaPart",
            Method::SpPg7Nl => "SP-PG7-NL",
            Method::ParMetisLike => "ParMetis",
            Method::PtScotchLike => "Pt-Scotch",
            Method::Rcb => "RCB",
            Method::G30 => "G30",
            Method::G7 => "G7",
            Method::G7Nl => "G7-NL",
        }
    }

    /// The canonical protocol token: `Method::parse(m.proto_name())`
    /// always round-trips. This is the name that goes on the wire (cache
    /// warming entries, routed requests), unlike [`Method::name`], whose
    /// display forms (`"SP-PG7-NL"`) are not parseable.
    pub fn proto_name(self) -> &'static str {
        match self {
            Method::ScalaPart => "sp",
            Method::SpPg7Nl => "sp-pg7nl",
            Method::ParMetisLike => "parmetis",
            Method::PtScotchLike => "ptscotch",
            Method::Rcb => "rcb",
            Method::G30 => "g30",
            Method::G7 => "g7",
            Method::G7Nl => "g7nl",
        }
    }

    /// Parse a CLI/protocol method name (the `--method` values of the
    /// `scalapart` CLI, shared by the sp-serve request decoder).
    pub fn parse(s: &str) -> Option<Method> {
        Some(match s {
            "sp" | "scalapart" => Method::ScalaPart,
            "sp-pg7nl" => Method::SpPg7Nl,
            "rcb" => Method::Rcb,
            "parmetis" => Method::ParMetisLike,
            "ptscotch" => Method::PtScotchLike,
            "g30" => Method::G30,
            "g7" => Method::G7,
            "g7nl" => Method::G7Nl,
            _ => return None,
        })
    }

    /// Does the method need vertex coordinates?
    pub fn needs_coords(self) -> bool {
        matches!(
            self,
            Method::SpPg7Nl | Method::Rcb | Method::G30 | Method::G7 | Method::G7Nl
        )
    }
}

/// Outcome of one method run.
#[derive(Clone, Debug)]
pub struct MethodResult {
    pub method: Method,
    /// Unweighted separator size |S|.
    pub cut: usize,
    /// Simulated elapsed time (seconds) on the given rank count.
    pub time: f64,
    /// Weighted imbalance.
    pub imbalance: f64,
    /// Phase breakdown (ScalaPart variants only).
    pub phases: Option<PhaseTimes>,
    pub bisection: Bisection,
}

/// Run `method` on `g` with `p` simulated ranks. `coords` supplies vertex
/// coordinates for the geometric methods; when absent they are produced by
/// the sequential Hu-style embedder, matching the paper's protocol (and,
/// as in the paper, that embedding time is *not* included in the method's
/// reported time).
pub fn run_method(
    method: Method,
    g: &Graph,
    coords: Option<&[Point2]>,
    p: usize,
    seed: u64,
) -> MethodResult {
    let mut machine = Machine::new(p, CostModel::qdr_infiniband());
    run_method_on(method, g, coords, &mut machine, seed)
}

/// Like [`run_method`], but on a caller-supplied machine. This is the
/// observability entry point: install a recorder on `machine` first
/// (see `sp_machine::Machine::set_recorder`) and the whole run is traced.
pub fn run_method_on(
    method: Method,
    g: &Graph,
    coords: Option<&[Point2]>,
    machine: &mut Machine,
    seed: u64,
) -> MethodResult {
    run_method_checked(method, g, coords, machine, seed, &mut NoopObserver)
        .expect("NoopObserver never cancels")
}

/// Like [`run_method_on`], but cancellable: the observer's
/// [`poll_cancel`](PipelineObserver::poll_cancel) is honoured at the
/// pipeline checkpoints (for [`Method::ScalaPart`]) and at the method
/// entry/exit boundary for the single-shot comparator methods, whose runs
/// are one indivisible step. sp-serve threads per-job deadlines through
/// this.
pub fn run_method_checked(
    method: Method,
    g: &Graph,
    coords: Option<&[Point2]>,
    machine: &mut Machine,
    seed: u64,
    obs: &mut dyn PipelineObserver,
) -> Result<MethodResult, Cancelled> {
    if obs.poll_cancel() {
        return Err(Cancelled);
    }
    let p = machine.p();
    let owned_coords: Option<Vec<Point2>> = if method.needs_coords() && coords.is_none() {
        Some(embed_multilevel_seq(
            g,
            &SeqEmbedConfig {
                seed,
                ..Default::default()
            },
        ))
    } else {
        None
    };
    let coords = owned_coords.as_deref().or(coords);
    if obs.poll_cancel() {
        return Err(Cancelled);
    }
    let result = match method {
        Method::ScalaPart => {
            let r = scalapart_bisect_checked(
                g,
                machine,
                &SpConfig::default().with_seed(seed),
                obs,
                &mut sp_embed::lattice_smooth_with,
            )?;
            MethodResult {
                method,
                cut: r.cut,
                time: r.total_time,
                imbalance: r.imbalance,
                phases: Some(r.times),
                bisection: r.bisection,
            }
        }
        Method::SpPg7Nl => {
            let coords = coords.expect("SP-PG7-NL needs coordinates");
            let r = sp_pg7nl_bisect(g, coords, machine, &SpConfig::default().with_seed(seed));
            MethodResult {
                method,
                cut: r.cut,
                time: r.total_time,
                imbalance: r.imbalance,
                phases: Some(r.times),
                bisection: r.bisection,
            }
        }
        Method::ParMetisLike | Method::PtScotchLike => {
            let cfg = if method == Method::ParMetisLike {
                MultilevelConfig::parmetis_like(seed)
            } else {
                MultilevelConfig::ptscotch_like(seed)
            };
            let (bi, _st) = multilevel_bisect(g, machine, &cfg);
            MethodResult {
                method,
                cut: bi.cut_edges(g),
                time: machine.elapsed(),
                imbalance: bi.imbalance(g),
                phases: None,
                bisection: bi,
            }
        }
        Method::Rcb => {
            let coords = coords.expect("RCB needs coordinates");
            let dist = Distribution::block(g.n(), p);
            let r = rcb_bisect(g, coords, &dist, machine);
            MethodResult {
                method,
                cut: r.cut,
                time: machine.elapsed(),
                imbalance: r.bisection.imbalance(g),
                phases: None,
                bisection: r.bisection,
            }
        }
        Method::G30 | Method::G7 | Method::G7Nl => {
            let coords = coords.expect("geometric methods need coordinates");
            let cfg = match method {
                Method::G30 => GeoConfig::g30(),
                Method::G7 => GeoConfig::g7(),
                _ => GeoConfig::g7_nl(),
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let r = geometric_partition(g, coords, &cfg, &mut rng);
            // Sequential method: charge its work to a single rank.
            machine.charge_ops(0, (g.m() * cfg.total_tries()) as f64);
            MethodResult {
                method,
                cut: r.cut,
                time: machine.elapsed(),
                imbalance: r.bisection.imbalance(g),
                phases: None,
                bisection: r.bisection,
            }
        }
    };
    if obs.poll_cancel() {
        return Err(Cancelled);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::gen::{grid_2d, grid_2d_coords};

    #[test]
    fn every_method_runs_and_validates() {
        let g = grid_2d(20, 20);
        let coords = grid_2d_coords(20, 20);
        for method in [
            Method::ScalaPart,
            Method::SpPg7Nl,
            Method::ParMetisLike,
            Method::PtScotchLike,
            Method::Rcb,
            Method::G30,
            Method::G7,
            Method::G7Nl,
        ] {
            let r = run_method(method, &g, Some(&coords), 4, 7);
            r.bisection
                .validate(&g)
                .unwrap_or_else(|e| panic!("{}: {e}", method.name()));
            assert!(r.cut > 0, "{}", method.name());
            assert_eq!(r.cut, r.bisection.cut_edges(&g), "{}", method.name());
        }
    }

    #[test]
    fn coordinate_free_graphs_get_embedded_automatically() {
        let g = grid_2d(12, 12);
        let r = run_method(Method::Rcb, &g, None, 2, 3);
        r.bisection.validate(&g).unwrap();
    }

    #[test]
    fn run_method_on_supports_tracing_without_perturbing_results() {
        use sp_machine::TraceRecorder;
        let g = grid_2d(16, 16);
        let mut m = Machine::new(4, CostModel::qdr_infiniband());
        m.set_recorder(Box::new(TraceRecorder::new(4)));
        let r = run_method_on(Method::ScalaPart, &g, None, &mut m, 7);
        r.bisection.validate(&g).unwrap();
        let rec = TraceRecorder::downcast(m.take_recorder().unwrap()).unwrap();
        assert!(!rec.is_empty());
        // Tracing is observation only: identical cut and simulated time.
        let base = run_method(Method::ScalaPart, &g, None, 4, 7);
        assert_eq!(r.cut, base.cut);
        assert_eq!(r.time, base.time);
    }

    #[test]
    fn needs_coords_classification() {
        assert!(Method::Rcb.needs_coords());
        assert!(Method::G30.needs_coords());
        assert!(!Method::ScalaPart.needs_coords());
        assert!(!Method::PtScotchLike.needs_coords());
    }

    #[test]
    fn proto_names_round_trip_through_parse() {
        for m in [
            Method::ScalaPart,
            Method::SpPg7Nl,
            Method::ParMetisLike,
            Method::PtScotchLike,
            Method::Rcb,
            Method::G30,
            Method::G7,
            Method::G7Nl,
        ] {
            assert_eq!(Method::parse(m.proto_name()), Some(m), "{:?}", m);
        }
    }
}
