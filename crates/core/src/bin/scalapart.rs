//! `scalapart` — command-line partitioner.
//!
//! Partition a graph file (Chaco/Metis or MatrixMarket) into k parts with
//! any of the methods from the paper's evaluation, on a simulated P-rank
//! machine; writes one part id per line (vertex order) to `--out`.
//!
//! Examples:
//!   scalapart mesh.graph --parts 8 --ranks 64 --out mesh.part
//!   scalapart power.mtx --format mm --method ptscotch --parts 2
//!   scalapart mesh.graph --coords mesh.xy --method rcb --parts 16

use scalapart::{recursive_kway, Method};
use sp_graph::io::{read_chaco, read_coords, read_matrix_market};
use std::io::BufReader;
use std::path::PathBuf;

struct Args {
    input: PathBuf,
    format: String,
    method: Method,
    parts: usize,
    ranks: usize,
    coords: Option<PathBuf>,
    out: Option<PathBuf>,
    seed: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: scalapart <graph-file> [options]\n\
         \n\
         options:\n\
           --format chaco|mm       input format (default: by extension, .mtx = mm)\n\
           --method sp|sp-pg7nl|rcb|parmetis|ptscotch|g30|g7|g7nl   (default sp)\n\
           --parts K               number of parts (default 2)\n\
           --ranks P               simulated ranks (default 64)\n\
           --coords FILE           x-y coordinate file (one pair per line)\n\
           --out FILE              write part ids here (default: stdout summary only)\n\
           --seed N                RNG seed (default 42)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        input: PathBuf::new(),
        format: String::new(),
        method: Method::ScalaPart,
        parts: 2,
        ranks: 64,
        coords: None,
        out: None,
        seed: 42,
    };
    let mut it = std::env::args().skip(1);
    let mut have_input = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => args.format = it.next().unwrap_or_else(|| usage()),
            "--method" => {
                args.method = match it.next().as_deref() {
                    Some("sp") => Method::ScalaPart,
                    Some("sp-pg7nl") => Method::SpPg7Nl,
                    Some("rcb") => Method::Rcb,
                    Some("parmetis") => Method::ParMetisLike,
                    Some("ptscotch") => Method::PtScotchLike,
                    Some("g30") => Method::G30,
                    Some("g7") => Method::G7,
                    Some("g7nl") => Method::G7Nl,
                    other => {
                        eprintln!("unknown method {other:?}");
                        usage()
                    }
                }
            }
            "--parts" => {
                args.parts = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--ranks" => {
                args.ranks = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--coords" => args.coords = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--out" => args.out = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--seed" => {
                args.seed = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other if !have_input => {
                args.input = PathBuf::from(other);
                have_input = true;
            }
            other => {
                eprintln!("unexpected argument '{other}'");
                usage()
            }
        }
    }
    if !have_input {
        usage();
    }
    if args.format.is_empty() {
        args.format = if args.input.extension().is_some_and(|e| e == "mtx") {
            "mm".into()
        } else {
            "chaco".into()
        };
    }
    args
}

fn main() {
    let args = parse_args();
    let file = std::fs::File::open(&args.input).unwrap_or_else(|e| {
        eprintln!("cannot open {}: {e}", args.input.display());
        std::process::exit(1);
    });
    let reader = BufReader::new(file);
    let graph = match args.format.as_str() {
        "chaco" => read_chaco(reader),
        "mm" => read_matrix_market(reader),
        other => {
            eprintln!("unknown format '{other}'");
            usage()
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("parse error: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "loaded {}: N = {}, M = {}",
        args.input.display(),
        graph.n(),
        graph.m()
    );
    let coords = args.coords.as_ref().map(|p| {
        let f = std::fs::File::open(p).unwrap_or_else(|e| {
            eprintln!("cannot open {}: {e}", p.display());
            std::process::exit(1);
        });
        let c = read_coords(BufReader::new(f)).unwrap_or_else(|e| {
            eprintln!("coords parse error: {e}");
            std::process::exit(1);
        });
        if c.len() != graph.n() {
            eprintln!("coords cover {} of {} vertices", c.len(), graph.n());
            std::process::exit(1);
        }
        c
    });

    let t0 = std::time::Instant::now();
    let kp = recursive_kway(
        args.method,
        &graph,
        coords.as_deref(),
        args.parts,
        args.ranks,
        args.seed,
    );
    let wall = t0.elapsed();
    kp.validate(&graph).unwrap_or_else(|e| {
        eprintln!("internal error: invalid partition: {e}");
        std::process::exit(1);
    });
    println!("method     : {}", args.method.name());
    println!("parts      : {}", args.parts);
    println!("ranks      : {}", args.ranks);
    println!("edge cut   : {}", kp.cut_edges(&graph));
    println!("comm volume: {}", kp.comm_volume(&graph));
    println!("imbalance  : {:.4}", kp.imbalance(&graph));
    println!("wall time  : {:.2?}", wall);
    if let Some(out) = args.out {
        let body: String =
            kp.part.iter().map(|p| format!("{p}\n")).collect();
        std::fs::write(&out, body).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", out.display());
            std::process::exit(1);
        });
        eprintln!("wrote {}", out.display());
    }
}
