//! `scalapart` — command-line partitioner.
//!
//! Partition a graph file (Chaco/Metis or MatrixMarket) into k parts with
//! any of the methods from the paper's evaluation, on a simulated P-rank
//! machine; writes one part id per line (vertex order) to `--out`.
//!
//! The simulated machine is observable: `--trace` dumps a Chrome
//! trace-event JSON (one lane per simulated rank; open it at
//! <https://ui.perfetto.dev>) and `--metrics` dumps per-phase and per-rank
//! counters as JSON. Instead of a file, `gen:grid:WxH` generates a W×H
//! grid mesh (with coordinates) in-process.
//!
//! Examples:
//!   scalapart mesh.graph --parts 8 --ranks 64 --out mesh.part
//!   scalapart power.mtx --format mm --method ptscotch --parts 2
//!   scalapart mesh.graph --coords mesh.xy --method rcb --parts 16
//!   scalapart gen:grid:64x64 --ranks 16 --trace run.trace.json --metrics run.metrics.json

use scalapart::machine::{CostModel, Machine, Metrics, TraceRecorder};
use scalapart::obs::{JsonlLog, Record};
use scalapart::{recursive_kway_checked_on, recursive_kway_on, Method, ProfilingObserver};
use sp_geometry::Point2;
use sp_graph::gen::{grid_2d, grid_2d_coords};
use sp_graph::io::{read_chaco, read_coords, read_matrix_market};
use sp_graph::Graph;
use std::io::BufReader;
use std::path::PathBuf;

struct Args {
    input: String,
    format: String,
    method: Method,
    parts: usize,
    ranks: usize,
    coords: Option<PathBuf>,
    out: Option<PathBuf>,
    json: Option<PathBuf>,
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    obs_log: Option<PathBuf>,
    seed: u64,
    rank_batch: usize,
}

const USAGE_HINT: &str =
    "usage: scalapart <graph-file | gen:grid:WxH> [--method M] [--parts K] [options]; try --help";

/// Usage/input errors: one line of diagnosis, one line of hint, exit 2 —
/// never a panic or a wall of text.
fn fail(msg: &str) -> ! {
    eprintln!("scalapart: {msg}");
    eprintln!("{USAGE_HINT}");
    std::process::exit(2);
}

fn usage() -> ! {
    println!(
        "usage: scalapart <graph-file | gen:grid:WxH> [options]\n\
         \n\
         options:\n\
           --format chaco|mm       input format (default: by extension, .mtx = mm)\n\
           --method sp|sp-pg7nl|rcb|parmetis|ptscotch|g30|g7|g7nl   (default sp)\n\
           --parts K               number of parts (default 2)\n\
           --ranks P               simulated ranks (default 64)\n\
           --coords FILE           x-y coordinate file (one pair per line)\n\
           --out FILE              write part ids here (default: stdout summary only)\n\
           --json FILE             write labels + quality summary as JSON\n\
                                   (schema sp-partition-v1, shared with sp-serve)\n\
           --trace FILE            write Chrome trace-event JSON of the simulated run\n\
                                   (load in chrome://tracing or ui.perfetto.dev)\n\
           --metrics FILE          write per-phase / per-rank metrics JSON\n\
           --obs-log FILE          append host-runtime JSONL records (run_start,\n\
                                   phase_profile with per-phase wall ms + RSS, run_done)\n\
           --seed N                RNG seed (default 42)\n\
           --rank-batch N          simulated ranks per host task in parallel\n\
                                   supersteps (default 0 = auto; results are\n\
                                   bit-identical for every value)"
    );
    std::process::exit(0);
}

fn parse_args() -> Args {
    let mut args = Args {
        input: String::new(),
        format: String::new(),
        method: Method::ScalaPart,
        parts: 2,
        ranks: 64,
        coords: None,
        out: None,
        json: None,
        trace: None,
        metrics: None,
        obs_log: None,
        seed: 42,
        rank_batch: 0,
    };
    let mut it = std::env::args().skip(1);
    let mut have_input = false;
    let value = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next()
            .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => args.format = value(&mut it, "--format"),
            "--method" => {
                let name = value(&mut it, "--method");
                args.method = Method::parse(&name)
                    .unwrap_or_else(|| fail(&format!("unknown method '{name}'")));
            }
            "--parts" => {
                let v = value(&mut it, "--parts");
                args.parts = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad value for --parts: '{v}'")));
            }
            "--ranks" => {
                let v = value(&mut it, "--ranks");
                args.ranks = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad value for --ranks: '{v}'")));
            }
            "--coords" => args.coords = Some(PathBuf::from(value(&mut it, "--coords"))),
            "--out" => args.out = Some(PathBuf::from(value(&mut it, "--out"))),
            "--json" => args.json = Some(PathBuf::from(value(&mut it, "--json"))),
            "--trace" => args.trace = Some(PathBuf::from(value(&mut it, "--trace"))),
            "--metrics" => args.metrics = Some(PathBuf::from(value(&mut it, "--metrics"))),
            "--obs-log" => args.obs_log = Some(PathBuf::from(value(&mut it, "--obs-log"))),
            "--seed" => {
                let v = value(&mut it, "--seed");
                args.seed = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad value for --seed: '{v}'")));
            }
            "--rank-batch" => {
                let v = value(&mut it, "--rank-batch");
                args.rank_batch = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad value for --rank-batch: '{v}'")));
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => fail(&format!("unknown flag '{other}'")),
            other if !have_input => {
                args.input = other.to_string();
                have_input = true;
            }
            other => fail(&format!("unexpected argument '{other}'")),
        }
    }
    if !have_input {
        fail("no input graph given");
    }
    if args.format.is_empty() {
        args.format = if args.input.ends_with(".mtx") {
            "mm".into()
        } else {
            "chaco".into()
        };
    }
    args
}

/// `gen:grid:WxH` → a W×H grid mesh with its natural coordinates.
fn parse_generated(input: &str) -> Option<(Graph, Vec<Point2>)> {
    let spec = input.strip_prefix("gen:grid:")?;
    let (w, h) = spec.split_once('x')?;
    let w: usize = w.parse().ok()?;
    let h: usize = h.parse().ok()?;
    if w == 0 || h == 0 {
        fail("grid dimensions must be positive");
    }
    Some((grid_2d(w, h), grid_2d_coords(w, h)))
}

fn load_graph(args: &Args) -> (Graph, Option<Vec<Point2>>) {
    if args.input.starts_with("gen:") {
        match parse_generated(&args.input) {
            Some((g, c)) => return (g, Some(c)),
            None => fail(&format!(
                "bad generator spec '{}' (expected gen:grid:WxH)",
                args.input
            )),
        }
    }
    let file = std::fs::File::open(&args.input)
        .unwrap_or_else(|e| fail(&format!("cannot open {}: {e}", args.input)));
    let reader = BufReader::new(file);
    let graph = match args.format.as_str() {
        "chaco" => read_chaco(reader),
        "mm" => read_matrix_market(reader),
        other => fail(&format!("unknown format '{other}'")),
    }
    .unwrap_or_else(|e| fail(&format!("cannot parse {}: {e}", args.input)));
    let coords = args.coords.as_ref().map(|p| {
        let f = std::fs::File::open(p)
            .unwrap_or_else(|e| fail(&format!("cannot open {}: {e}", p.display())));
        let c = read_coords(BufReader::new(f))
            .unwrap_or_else(|e| fail(&format!("cannot parse {}: {e}", p.display())));
        if c.len() != graph.n() {
            fail(&format!(
                "coords cover {} of {} vertices",
                c.len(),
                graph.n()
            ));
        }
        c
    });
    (graph, coords)
}

fn write_file(path: &PathBuf, body: &str, what: &str) {
    std::fs::write(path, body).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    });
    eprintln!("wrote {} ({})", path.display(), what);
}

fn main() {
    let args = parse_args();
    let (graph, coords) = load_graph(&args);
    eprintln!(
        "loaded {}: N = {}, M = {}",
        args.input,
        graph.n(),
        graph.m()
    );

    let mut machine = Machine::new(args.ranks.max(1), CostModel::qdr_infiniband());
    machine.set_rank_batch(args.rank_batch);
    let observing = args.trace.is_some() || args.metrics.is_some();
    if observing {
        machine.set_recorder(Box::new(TraceRecorder::new(machine.p())));
    }

    let obs_log = args.obs_log.as_ref().map(|p| {
        let path = p.to_string_lossy();
        let log = JsonlLog::open(&path)
            .unwrap_or_else(|e| fail(&format!("cannot open obs log {path}: {e}")));
        log.emit(
            Record::new("run_start")
                .str("input", &args.input)
                .str("method", args.method.name())
                .u64("parts", args.parts as u64)
                .u64("ranks", args.ranks as u64)
                .u64("seed", args.seed)
                .u64("n", graph.n() as u64)
                .u64("m", graph.m() as u64),
        );
        log
    });

    let t0 = std::time::Instant::now();
    let (kp, profiler, levels_json) = if obs_log.is_some() {
        // Same algorithm, checked entry point: the profiling observer only
        // samples clocks/RSS at checkpoints and never cancels, so results
        // are bit-identical to the plain path (sp-verify fuzzes this).
        let mut prof = ProfilingObserver::new();
        let kp = recursive_kway_checked_on(
            args.method,
            &graph,
            coords.as_deref(),
            args.parts,
            args.seed,
            &mut machine,
            &mut prof,
        )
        .expect("profiling observer never cancels");
        let levels = prof.level_stats_json();
        (kp, Some(prof.into_profiler()), Some(levels))
    } else {
        let kp = recursive_kway_on(
            args.method,
            &graph,
            coords.as_deref(),
            args.parts,
            args.seed,
            &mut machine,
        );
        (kp, None, None)
    };
    let wall = t0.elapsed();
    kp.validate(&graph).unwrap_or_else(|e| {
        eprintln!("internal error: invalid partition: {e}");
        std::process::exit(1);
    });

    let sim = machine.elapsed();
    let stats = machine.stats();
    let recorder = machine.take_recorder().and_then(TraceRecorder::downcast);
    if args.parts > 2 && observing {
        eprintln!(
            "note: trace/metrics cover the root bisection (k = {} recurses on fresh machines)",
            args.parts
        );
    }
    if let Some(path) = &args.trace {
        let rec = recorder.as_deref().expect("recorder was installed");
        write_file(
            path,
            &rec.chrome_trace(),
            "Chrome trace JSON — open in ui.perfetto.dev",
        );
    }
    if let Some(path) = &args.metrics {
        let metrics = Metrics::build(&stats, recorder.as_deref());
        write_file(path, &metrics.to_json(), "metrics JSON");
    }

    if let Some(log) = &obs_log {
        let prof = profiler.as_ref().expect("profiler exists with obs log");
        let mut rec = Record::new("phase_profile");
        rec.str("input", &args.input)
            .str("method", args.method.name())
            .json("phases", &prof.to_json())
            .json(
                "coarsen_levels",
                levels_json.as_deref().expect("levels exist with obs log"),
            )
            .f64("total_wall_ms", wall.as_secs_f64() * 1e3);
        if let Some(peak) = scalapart::obs::rss::peak_rss_bytes() {
            rec.f64("peak_rss_mb", scalapart::obs::rss::bytes_to_mib(peak));
        }
        log.emit(&rec);
        log.emit(
            Record::new("run_done")
                .str("input", &args.input)
                .u64("cut", kp.cut_edges(&graph) as u64)
                .f64("sim_time", sim)
                .f64("wall_ms", wall.as_secs_f64() * 1e3),
        );
    }

    println!("method     : {}", args.method.name());
    println!("parts      : {}", args.parts);
    println!("ranks      : {}", args.ranks);
    println!("edge cut   : {}", kp.cut_edges(&graph));
    println!("comm volume: {}", kp.comm_volume(&graph));
    println!("imbalance  : {:.4}", kp.imbalance(&graph));
    println!("sim time   : {sim:.6}s");
    println!("wall time  : {wall:.2?}");
    if let Some(out) = args.out {
        let body: String = kp.part.iter().map(|p| format!("{p}\n")).collect();
        write_file(&out, &body, "part ids");
    }
    if let Some(path) = args.json {
        // Same serialization path as the sp-serve response body.
        write_file(
            &path,
            &kp.to_json(&graph),
            "partition JSON (sp-partition-v1)",
        );
    }
}
