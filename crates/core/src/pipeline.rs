//! The ScalaPart pipeline: coarsen → embed → partition → strip-refine.

use crate::config::SpConfig;
use crate::observe::{Cancelled, LevelStats, NoopObserver, PipelineObserver};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sp_coarsen::{contract_with, parallel_hem_in, CoarsenArena, Hierarchy, Level};
use sp_embed::{lattice_smooth_with, multilevel_lattice_embed_with, Smoother};
use sp_geometry::Point2;
use sp_geopart::parallel_geometric_partition;
use sp_graph::distr::Distribution;
use sp_graph::{Bisection, Graph};
use sp_machine::{CostOnly, Machine, Phase, PhaseBreakdown};
use sp_refine::{fm_refine, strip_around_separator};

/// Per-phase simulated time (computation/communication split), the data
/// behind the paper's Figures 7 and 8.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    pub coarsen: PhaseBreakdown,
    pub embed: PhaseBreakdown,
    pub partition: PhaseBreakdown,
}

impl PhaseTimes {
    pub fn total(&self) -> f64 {
        self.coarsen.total() + self.embed.total() + self.partition.total()
    }
}

/// Result of a ScalaPart run.
pub struct SpResult {
    pub bisection: Bisection,
    /// Unweighted separator size |S| after refinement.
    pub cut: usize,
    /// Separator size before strip refinement.
    pub cut_before_refine: usize,
    /// Weighted imbalance of the final bisection.
    pub imbalance: f64,
    /// Simulated elapsed time of the whole run.
    pub total_time: f64,
    /// Per-phase breakdown.
    pub times: PhaseTimes,
    /// The embedding that was partitioned (for plotting / reuse).
    pub coords: Vec<Point2>,
    /// Strip size used by the refinement (0 when disabled).
    pub strip_size: usize,
}

/// Run the full ScalaPart pipeline on `machine`.
pub fn scalapart_bisect(g: &Graph, machine: &mut Machine, cfg: &SpConfig) -> SpResult {
    scalapart_bisect_with(g, machine, cfg, &mut NoopObserver, &mut lattice_smooth_with)
}

/// [`scalapart_bisect`] with a checkpoint observer (see
/// [`PipelineObserver`]).
pub fn scalapart_bisect_observed(
    g: &Graph,
    machine: &mut Machine,
    cfg: &SpConfig,
    obs: &mut dyn PipelineObserver,
) -> SpResult {
    scalapart_bisect_with(g, machine, cfg, obs, &mut lattice_smooth_with)
}

/// [`scalapart_bisect`] with a checkpoint observer *and* a pluggable
/// lattice smoother. The differential tests pass the pre-optimization
/// reference smoother here: every other stage is the same code, so any
/// output divergence indicts the optimized smoothing kernel alone.
///
/// The observer's [`poll_cancel`](PipelineObserver::poll_cancel) must stay
/// `false` on this entry point; pass a cancelling observer to
/// [`scalapart_bisect_checked`] instead.
pub fn scalapart_bisect_with(
    g: &Graph,
    machine: &mut Machine,
    cfg: &SpConfig,
    obs: &mut dyn PipelineObserver,
    smoother: Smoother<'_>,
) -> SpResult {
    scalapart_bisect_checked(g, machine, cfg, obs, smoother)
        .expect("observer cancelled the pipeline; use scalapart_bisect_checked")
}

/// The cancellable pipeline: identical to [`scalapart_bisect_with`], but
/// the observer's [`poll_cancel`](PipelineObserver::poll_cancel) is
/// honoured at every checkpoint and aborts the run with
/// [`Err(Cancelled)`](Cancelled). This is the hook sp-serve threads
/// per-job deadlines through.
pub fn scalapart_bisect_checked(
    g: &Graph,
    machine: &mut Machine,
    cfg: &SpConfig,
    obs: &mut dyn PipelineObserver,
    smoother: Smoother<'_>,
) -> Result<SpResult, Cancelled> {
    let p = machine.p();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // ---- Phase 1: coarsening (parallel HEM at full P, retaining every
    // other contraction so retained levels shrink ≈ 4×).
    machine.phase(Phase::Coarsen);
    let t0 = machine.elapsed();
    let hierarchy = coarsen_parallel(g, machine, cfg, &mut rng, obs)?;
    obs.on_hierarchy(&hierarchy);
    if obs.poll_cancel() {
        return Err(Cancelled);
    }
    machine.barrier();
    let t1 = machine.elapsed();

    // ---- Phase 2: multilevel fixed-lattice embedding.
    machine.phase(Phase::Embed);
    let mut embed_cfg = cfg.embed;
    embed_cfg.seed = cfg.embed.seed ^ cfg.seed;
    let coords = multilevel_lattice_embed_with(&hierarchy, machine, &embed_cfg, smoother);
    obs.on_embedding(g, &coords);
    if obs.poll_cancel() {
        return Err(Cancelled);
    }
    machine.barrier();
    let t2 = machine.elapsed();

    // ---- Phase 3: parallel geometric partitioning + strip refinement.
    machine.phase(Phase::Partition);
    let dist = Distribution::block(g.n(), p);
    let geo = parallel_geometric_partition(g, &coords, &dist, machine, &cfg.geo, cfg.seed ^ 0x9E0);
    obs.on_geo_partition(g, &geo);
    if obs.poll_cancel() {
        return Err(Cancelled);
    }
    let mut bisection = geo.bisection;
    let cut_before_refine = geo.cut;
    let mut strip_size = 0;
    if cfg.strip_factor > 0.0 && geo.cut > 0 {
        let target = ((geo.cut as f64 * cfg.strip_factor) as usize).clamp(4, g.n());
        let movable = strip_around_separator(&geo.separator.signed, target);
        strip_size = movable.iter().filter(|&&b| b).count();
        let st = fm_refine(g, &mut bisection, Some(&movable), &cfg.fm);
        obs.on_refined(g, &bisection, &st);
        // Strip FM cost: the strip is distributed over ranks; charge its
        // ops split across P plus one consensus collective per pass —
        // "negligible" per the paper, and it is.
        let mut states: Vec<()> = vec![(); p];
        let ops = st.ops / p as f64;
        machine.compute(&mut states, |_, _| ops);
        for _ in 0..st.passes {
            machine.allreduce_sum_costed(2);
        }
    }
    let t3 = machine.elapsed();
    machine.phase(Phase::Done);

    // Phase walls are barrier-delimited; the communication share of a
    // phase is wall time minus the critical-path computation within it
    // (idle waiting counts as communication, as it would in an MPI trace).
    // Phases are typed: sub-phase labels (e.g. the embedder's per-level
    // smoothing spans) aggregate into their parent phase by construction,
    // so no string matching is needed here.
    let breakdown = machine.phase_breakdown();
    let comp_of = |ph: Phase| breakdown.get(&ph).map_or(0.0, |b| b.comp);
    let comp = [
        comp_of(Phase::Coarsen),
        comp_of(Phase::Embed),
        comp_of(Phase::Partition),
    ];
    let walls = [t1 - t0, t2 - t1, t3 - t2];
    let mk = |i: usize| PhaseBreakdown {
        comp: comp[i].min(walls[i]),
        comm: (walls[i] - comp[i]).max(0.0),
    };
    let times = PhaseTimes {
        coarsen: mk(0),
        embed: mk(1),
        partition: mk(2),
    };
    let cut = bisection.cut_edges(g);
    let imbalance = bisection.imbalance(g);
    Ok(SpResult {
        bisection,
        cut,
        cut_before_refine,
        imbalance,
        total_time: machine.elapsed(),
        times,
        coords,
        strip_size,
    })
}

/// SP-PG7-NL alone: parallel geometric partitioning plus strip refinement
/// of a graph that *already has coordinates* — the paper's Fig 4 / Table 4
/// use case (re-partitioning meshes, competing directly with RCB).
pub fn sp_pg7nl_bisect(
    g: &Graph,
    coords: &[Point2],
    machine: &mut Machine,
    cfg: &SpConfig,
) -> SpResult {
    let p = machine.p();
    machine.phase(Phase::Partition);
    let dist = Distribution::block(g.n(), p);
    let geo = parallel_geometric_partition(g, coords, &dist, machine, &cfg.geo, cfg.seed ^ 0x9E0);
    let mut bisection = geo.bisection;
    let cut_before_refine = geo.cut;
    let mut strip_size = 0;
    if cfg.strip_factor > 0.0 && geo.cut > 0 {
        let target = ((geo.cut as f64 * cfg.strip_factor) as usize).clamp(4, g.n());
        let movable = strip_around_separator(&geo.separator.signed, target);
        strip_size = movable.iter().filter(|&&b| b).count();
        let st = fm_refine(g, &mut bisection, Some(&movable), &cfg.fm);
        let mut states: Vec<()> = vec![(); p];
        let ops = st.ops / p as f64;
        machine.compute(&mut states, |_, _| ops);
        for _ in 0..st.passes {
            machine.allreduce_sum_costed(2);
        }
    }
    machine.phase(Phase::Done);
    let mut breakdown = machine.phase_breakdown();
    let times = PhaseTimes {
        partition: breakdown.remove(&Phase::Partition).unwrap_or_default(),
        ..Default::default()
    };
    let cut = bisection.cut_edges(g);
    let imbalance = bisection.imbalance(g);
    SpResult {
        bisection,
        cut,
        cut_before_refine,
        imbalance,
        total_time: machine.elapsed(),
        times,
        coords: coords.to_vec(),
        strip_size,
    }
}

/// Parallel coarsening retaining every other contraction, charged to the
/// machine (the paper: "the graph is coarsened using the heavy-edge
/// matching as in ParMetis … we only retain every other graph").
fn coarsen_parallel(
    g: &Graph,
    machine: &mut Machine,
    cfg: &SpConfig,
    rng: &mut StdRng,
    obs: &mut dyn PipelineObserver,
) -> Result<Hierarchy, Cancelled> {
    let p = machine.p();
    // One arena per coarsening run: matching flags and contraction
    // scratch are sized by level 0 and reused down the hierarchy.
    let mut arena = CoarsenArena::new();
    let mut levels = vec![Level {
        graph: g.clone(),
        map_to_coarser: None,
    }];
    loop {
        let cur = &levels.last().unwrap().graph;
        if cur.n() <= cfg.coarsen.target_coarsest || levels.len() > cfg.coarsen.max_levels {
            break;
        }
        let step = |graph: &Graph,
                    machine: &mut Machine,
                    rng: &mut StdRng,
                    obs: &mut dyn PipelineObserver,
                    arena: &mut CoarsenArena| {
            let dist = Distribution::block(graph.n(), p);
            let matching = parallel_hem_in(
                graph,
                &dist,
                machine,
                cfg.matching_rounds,
                rng.random::<u64>(),
                arena,
            );
            obs.on_matching(graph, &matching);
            if obs.poll_cancel() {
                return Err(Cancelled);
            }
            let c = contract_with(graph, &matching, arena);
            obs.on_contraction(graph, &matching, &c);
            if obs.poll_cancel() {
                return Err(Cancelled);
            }
            // Contraction cost: local edges plus ghost-id exchange.
            let mut states: Vec<()> = vec![(); p];
            let edges_per_rank = (graph.m() / p).max(1) as f64;
            machine.compute(&mut states, |_, _| edges_per_rank);
            if p > 1 {
                let cross = dist.cross_edges(graph);
                let words = (2 * cross / p).max(1);
                let outbox: Vec<Vec<(usize, CostOnly)>> = (0..p)
                    .map(|r| vec![((r + 1) % p, CostOnly::new(words))])
                    .collect();
                machine.exchange_costed(&outbox);
            }
            Ok(c)
        };
        let (fine_n, fine_m) = (cur.n(), cur.m());
        let c1 = step(cur, machine, rng, obs, &mut arena)?;
        let (coarse, map) =
            if cfg.coarsen.keep_every_other && c1.coarse.n() > cfg.coarsen.target_coarsest {
                let c2 = step(&c1.coarse, machine, rng, obs, &mut arena)?;
                let composed: Vec<u32> = c1.map.iter().map(|&mid| c2.map[mid as usize]).collect();
                (c2.coarse, composed)
            } else {
                (c1.coarse, c1.map)
            };
        // Stop when matching stalls: grinding out barely-shrinking levels
        // costs smoothing iterations without improving the coarsest embed.
        if coarse.n() as f64 > 0.7 * levels.last().unwrap().graph.n() as f64 {
            break;
        }
        obs.on_level_stats(&LevelStats {
            level: levels.len() - 1,
            fine_n,
            fine_m,
            coarse_n: coarse.n(),
            coarse_m: coarse.m(),
            arena_bytes: arena.high_water_bytes(),
        });
        levels.last_mut().unwrap().map_to_coarser = Some(map);
        levels.push(Level {
            graph: coarse,
            map_to_coarser: None,
        });
    }
    Ok(Hierarchy { levels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::gen::grid_2d;
    use sp_machine::CostModel;

    #[test]
    fn pipeline_produces_valid_balanced_bisection() {
        let g = grid_2d(32, 32);
        let mut m = Machine::new(16, CostModel::qdr_infiniband());
        let r = scalapart_bisect(&g, &mut m, &SpConfig::default());
        r.bisection.validate(&g).unwrap();
        assert!(r.imbalance < 0.12, "imbalance {}", r.imbalance);
        assert!(r.cut > 0);
        assert!(r.cut < g.m() / 4, "cut {} of m {}", r.cut, g.m());
        assert_eq!(r.coords.len(), g.n());
        assert!(r.total_time > 0.0);
    }

    #[test]
    fn refinement_does_not_worsen_cut() {
        let g = grid_2d(24, 24);
        let mut m = Machine::new(4, CostModel::qdr_infiniband());
        let r = scalapart_bisect(&g, &mut m, &SpConfig::default());
        assert!(
            r.cut <= r.cut_before_refine,
            "{} > {}",
            r.cut,
            r.cut_before_refine
        );
        assert!(r.strip_size > 0);
    }

    #[test]
    fn phase_times_cover_total() {
        // Big enough that coarsening actually happens (default target 1000).
        let g = grid_2d(48, 48);
        let mut m = Machine::new(16, CostModel::qdr_infiniband());
        let r = scalapart_bisect(&g, &mut m, &SpConfig::default());
        assert!(r.times.coarsen.total() > 0.0);
        assert!(r.times.embed.total() > 0.0);
        assert!(r.times.partition.total() > 0.0);
        // Embedding dominates (the paper's Fig 7 observation).
        assert!(r.times.embed.total() > r.times.partition.total());
    }

    #[test]
    fn labeled_subphases_aggregate_into_parent_phase() {
        // The embedder switches through labeled sub-phases ("coarsest",
        // "smooth-N") of Phase::Embed; all of them must land in the one
        // Embed bucket, and no stray phase keys may appear.
        let g = grid_2d(48, 48);
        let mut m = Machine::new(16, CostModel::qdr_infiniband());
        let r = scalapart_bisect(&g, &mut m, &SpConfig::default());
        assert!(r.times.embed.total() > 0.0);
        let bd = m.phase_breakdown();
        assert!(bd[&Phase::Embed].comp > 0.0);
        for ph in bd.keys() {
            assert!(
                matches!(
                    ph,
                    Phase::Idle | Phase::Coarsen | Phase::Embed | Phase::Partition | Phase::Done
                ),
                "unexpected phase {ph}"
            );
        }
    }

    #[test]
    fn sp_pg7nl_reuses_coordinates() {
        let g = grid_2d(20, 20);
        let coords = sp_graph::gen::grid_2d_coords(20, 20);
        let mut m = Machine::new(4, CostModel::qdr_infiniband());
        let r = sp_pg7nl_bisect(&g, &coords, &mut m, &SpConfig::default());
        r.bisection.validate(&g).unwrap();
        // With perfect mesh coordinates the cut is near-optimal (20).
        assert!(r.cut <= 40, "cut {}", r.cut);
        assert_eq!(r.times.coarsen.total(), 0.0);
        assert_eq!(r.times.embed.total(), 0.0);
    }

    #[test]
    fn deterministic_given_seed_and_p() {
        let g = grid_2d(16, 16);
        let run = || {
            let mut m = Machine::new(4, CostModel::qdr_infiniband());
            let r = scalapart_bisect(&g, &mut m, &SpConfig::default());
            (r.cut, m.elapsed())
        };
        assert_eq!(run(), run());
    }
}
