//! # ScalaPart — parallel multilevel embedded graph partitioning
//!
//! A from-scratch Rust reproduction of *"Scalable Parallel Graph
//! Partitioning"* (Kirmani & Raghavan, SC'13). ScalaPart computes a
//! two-way partition of an arbitrary sparse graph in three phases:
//!
//! 1. **Coarsening** — parallel heavy-edge matching as in ParMetis,
//!    retaining every other level so retained graphs shrink ≈ 4×;
//! 2. **Multilevel fixed-lattice embedding** — the coarsest graph gets
//!    coordinates from a force-directed layout, then each finer level
//!    inherits (scaled ×2, jittered) coordinates and is smoothed by the
//!    paper's fixed-lattice Barnes–Hut-style scheme on a √P×√P processor
//!    grid whose active rank count quadruples per level;
//! 3. **Parallel geometric partitioning** — a parallel form of
//!    Gilbert–Miller–Teng sphere separators (SP-PG7-NL) followed by
//!    Fiduccia–Mattheyses refinement on a coordinate strip around the
//!    separating circle.
//!
//! Parallel execution and timing run on [`sp_machine::Machine`], a
//! deterministic simulated message-passing machine (see DESIGN.md for the
//! substitution rationale). Everything is reproducible under a seed.
//!
//! ## Quickstart
//!
//! ```
//! use scalapart::{scalapart_bisect, SpConfig};
//! use sp_graph::gen::grid_2d;
//! use sp_machine::{CostModel, Machine};
//!
//! let g = grid_2d(32, 32);
//! let mut machine = Machine::new(16, CostModel::qdr_infiniband());
//! let result = scalapart_bisect(&g, &mut machine, &SpConfig::default());
//! assert!(result.cut > 0);
//! result.bisection.validate(&g).unwrap();
//! ```

pub mod config;
pub mod kway;
pub mod methods;
pub mod observe;
pub mod pipeline;
pub mod svg;

pub use config::SpConfig;
pub use kway::{
    recursive_kway, recursive_kway_checked_on, recursive_kway_on, KWayPartition, PartitionSummary,
};
pub use methods::{run_method, run_method_checked, run_method_on, Method, MethodResult};
pub use observe::{Cancelled, LevelStats, NoopObserver, PipelineObserver, ProfilingObserver};
pub use pipeline::{
    scalapart_bisect, scalapart_bisect_checked, scalapart_bisect_observed, scalapart_bisect_with,
    sp_pg7nl_bisect, PhaseTimes, SpResult,
};

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use sp_baselines as baselines;
pub use sp_coarsen as coarsen;
pub use sp_embed as embed;
pub use sp_geometry as geometry;
pub use sp_geopart as geopart;
pub use sp_graph as graph;
pub use sp_machine as machine;
pub use sp_obs as obs;
pub use sp_refine as refine;
pub use sp_stream as stream;
