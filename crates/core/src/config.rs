//! End-to-end configuration for the ScalaPart pipeline.

use sp_coarsen::CoarsenConfig;
use sp_embed::MultilevelEmbedConfig;
use sp_geopart::GeoConfig;
use sp_refine::FmConfig;

/// All knobs of a ScalaPart run. `Default` reproduces the paper's setup:
/// quartering retained levels, fixed-lattice smoothing with a communication
/// block of 4, the G7-NL try policy, and strip refinement sized at ~6× the
/// separator (Fig 2 shows 5.6×).
#[derive(Clone, Copy, Debug)]
pub struct SpConfig {
    /// Coarsening controls (retain-every-other-level on by default).
    pub coarsen: CoarsenConfig,
    /// Multilevel fixed-lattice embedding controls.
    pub embed: MultilevelEmbedConfig,
    /// Geometric try policy (G7-NL by default — the paper's SP-PG7-NL).
    pub geo: GeoConfig,
    /// Strip size as a multiple of the separator size; 0 disables strip
    /// refinement (the ablation baseline).
    pub strip_factor: f64,
    /// FM settings for the strip refinement.
    pub fm: FmConfig,
    /// Parallel matching rounds per contraction during coarsening.
    pub matching_rounds: u32,
    /// Master seed.
    pub seed: u64,
}

impl Default for SpConfig {
    fn default() -> Self {
        SpConfig {
            coarsen: CoarsenConfig {
                target_coarsest: 160,
                ..CoarsenConfig::default()
            },
            embed: MultilevelEmbedConfig::default(),
            geo: GeoConfig::g7_nl(),
            strip_factor: 6.0,
            fm: FmConfig {
                max_passes: 4,
                balance_tol: 0.08,
                move_fraction: 1.0,
            },
            matching_rounds: 12,
            seed: 0x5CA_1A9_A87,
        }
    }
}

impl SpConfig {
    /// Derive a run with a different seed (the paper reports cut ranges
    /// across runs/processor counts; seeds provide the ensemble).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.embed.seed = seed ^ 0xE3BED;
        self.coarsen.seed = seed ^ 0xC0A45;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_choices() {
        let c = SpConfig::default();
        assert!(c.coarsen.keep_every_other);
        assert_eq!(c.geo.n_lines, 0); // NL: no line separators
        assert_eq!(c.geo.total_tries(), 5);
        assert!(c.strip_factor > 1.0);
        assert!((2..=8).contains(&c.embed.lattice.block));
    }

    #[test]
    fn with_seed_changes_subsystem_seeds() {
        let a = SpConfig::default().with_seed(1);
        let b = SpConfig::default().with_seed(2);
        assert_ne!(a.seed, b.seed);
        assert_ne!(a.embed.seed, b.embed.seed);
        assert_ne!(a.coarsen.seed, b.coarsen.seed);
    }
}
