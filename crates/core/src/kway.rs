//! K-way partitioning by recursive bisection.
//!
//! The paper evaluates single edge separators; a deployable partitioner
//! also needs k parts. This module applies any of the bisection methods
//! recursively, with rank groups split proportionally at each level — the
//! standard recursive-bisection construction used by Chaco and the
//! geometric partitioners the paper builds on.
//!
//! Limitation: every bisection here splits at the weight median (50/50),
//! so for k that is not a power of two the deeper side of the recursion
//! over-weights its parts (k = 3 yields ≈ 25/25/50). Power-of-two k is
//! balanced to the underlying bisector's tolerance.

use crate::methods::{run_method_checked, Method};
use crate::observe::{Cancelled, NoopObserver, PipelineObserver};
use sp_geometry::Point2;
use sp_graph::Graph;
use sp_machine::{CostModel, Machine};

/// A k-way partition: `part[v] ∈ 0..k`.
#[derive(Clone, Debug)]
pub struct KWayPartition {
    pub part: Vec<u32>,
    pub k: usize,
}

/// Quality statistics of a [`KWayPartition`] on a particular graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartitionSummary {
    pub n: usize,
    pub k: usize,
    pub edge_cut: f64,
    pub cut_edges: usize,
    pub imbalance: f64,
    pub comm_volume: usize,
}

impl KWayPartition {
    /// Total weight of edges crossing parts.
    pub fn edge_cut(&self, g: &Graph) -> f64 {
        let mut cut = 0.0;
        for v in 0..g.n() as u32 {
            for (u, w) in g.neighbors_w(v) {
                if u > v && self.part[u as usize] != self.part[v as usize] {
                    cut += w;
                }
            }
        }
        cut
    }

    /// Number of cut edges.
    pub fn cut_edges(&self, g: &Graph) -> usize {
        let mut cut = 0;
        for v in 0..g.n() as u32 {
            for &u in g.neighbors(v) {
                if u > v && self.part[u as usize] != self.part[v as usize] {
                    cut += 1;
                }
            }
        }
        cut
    }

    /// Per-part vertex weights.
    pub fn part_weights(&self, g: &Graph) -> Vec<f64> {
        let mut w = vec![0.0; self.k];
        for v in 0..g.n() as u32 {
            w[self.part[v as usize] as usize] += g.vwgt(v);
        }
        w
    }

    /// `max part weight / (total/k)` − 1; 0 is perfect balance.
    pub fn imbalance(&self, g: &Graph) -> f64 {
        let w = self.part_weights(g);
        let total: f64 = w.iter().sum();
        if total <= 0.0 || self.k == 0 {
            return 0.0;
        }
        let max = w.iter().copied().fold(0.0, f64::max);
        max / (total / self.k as f64) - 1.0
    }

    /// Total communication volume: for each vertex, the number of distinct
    /// foreign parts among its neighbours (the standard model for halo
    /// exchange volume in a simulation).
    pub fn comm_volume(&self, g: &Graph) -> usize {
        let mut vol = 0;
        let mut seen: Vec<u32> = Vec::new();
        for v in 0..g.n() as u32 {
            seen.clear();
            let pv = self.part[v as usize];
            for &u in g.neighbors(v) {
                let pu = self.part[u as usize];
                if pu != pv && !seen.contains(&pu) {
                    seen.push(pu);
                }
            }
            vol += seen.len();
        }
        vol
    }

    /// Quality summary of this partition on `g` — the figures the
    /// `scalapart` CLI prints and the sp-serve response reports.
    pub fn summary(&self, g: &Graph) -> PartitionSummary {
        PartitionSummary {
            n: g.n(),
            k: self.k,
            edge_cut: self.edge_cut(g),
            cut_edges: self.cut_edges(g),
            imbalance: self.imbalance(g),
            comm_volume: self.comm_volume(g),
        }
    }

    /// Serialize the partition as JSON: the label vector plus the
    /// [`summary`](Self::summary) statistics. This is the one
    /// serialization path shared by the `scalapart` CLI (`--json`) and the
    /// sp-serve submit response, so clients of either see the same schema.
    /// Floats use Rust's shortest round-trip `Display`, which is valid
    /// JSON and parses back bit-identically.
    pub fn to_json(&self, g: &Graph) -> String {
        let s = self.summary(g);
        let mut out = String::with_capacity(32 + 4 * self.part.len());
        out.push_str("{\"schema\": \"sp-partition-v1\"");
        out.push_str(&format!(", \"n\": {}", s.n));
        out.push_str(&format!(", \"k\": {}", s.k));
        out.push_str(&format!(", \"edge_cut\": {}", s.edge_cut));
        out.push_str(&format!(", \"cut_edges\": {}", s.cut_edges));
        out.push_str(&format!(", \"imbalance\": {}", s.imbalance));
        out.push_str(&format!(", \"comm_volume\": {}", s.comm_volume));
        out.push_str(", \"part\": [");
        for (i, p) in self.part.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&p.to_string());
        }
        out.push_str("]}");
        out
    }

    /// Sanity: covers the graph, parts in range, no empty part when
    /// `k ≤ n`.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        if self.part.len() != g.n() {
            return Err("partition length mismatch".into());
        }
        let mut seen = vec![false; self.k];
        for &p in &self.part {
            if p as usize >= self.k {
                return Err(format!("part {p} out of range"));
            }
            seen[p as usize] = true;
        }
        if self.k <= g.n() && !seen.iter().all(|&b| b) {
            return Err("empty part".into());
        }
        Ok(())
    }
}

/// Recursively bisect `g` into `k` parts using `method` on `p` simulated
/// ranks (rank groups are split proportionally to the part sizes at each
/// level, as the paper's multilevel competitors do).
pub fn recursive_kway(
    method: Method,
    g: &Graph,
    coords: Option<&[Point2]>,
    k: usize,
    p: usize,
    seed: u64,
) -> KWayPartition {
    recursive_kway_impl(method, g, coords, k, p, seed, None, &mut NoopObserver)
        .expect("NoopObserver never cancels")
}

/// Like [`recursive_kway`], but the *root* bisection runs on the supplied
/// machine, so a recorder installed there traces it (the recursion's
/// sub-bisections run on fresh machines for their shrunken rank groups).
/// For `k = 2` this traces the entire run.
pub fn recursive_kway_on(
    method: Method,
    g: &Graph,
    coords: Option<&[Point2]>,
    k: usize,
    seed: u64,
    machine: &mut Machine,
) -> KWayPartition {
    let p = machine.p();
    recursive_kway_impl(
        method,
        g,
        coords,
        k,
        p,
        seed,
        Some(machine),
        &mut NoopObserver,
    )
    .expect("NoopObserver never cancels")
}

/// Cancellable [`recursive_kway_on`]: the observer's
/// [`poll_cancel`](PipelineObserver::poll_cancel) is checked before every
/// recursive split and, for the ScalaPart method, at every pipeline
/// checkpoint inside each bisection. On `Err(Cancelled)` the partial
/// labelling is discarded. This is sp-serve's per-job entry point: each
/// job runs on a fresh machine with a deadline-polling observer.
pub fn recursive_kway_checked_on(
    method: Method,
    g: &Graph,
    coords: Option<&[Point2]>,
    k: usize,
    seed: u64,
    machine: &mut Machine,
    obs: &mut dyn PipelineObserver,
) -> Result<KWayPartition, Cancelled> {
    let p = machine.p();
    recursive_kway_impl(method, g, coords, k, p, seed, Some(machine), obs)
}

#[allow(clippy::too_many_arguments)]
fn recursive_kway_impl(
    method: Method,
    g: &Graph,
    coords: Option<&[Point2]>,
    k: usize,
    p: usize,
    seed: u64,
    machine: Option<&mut Machine>,
    obs: &mut dyn PipelineObserver,
) -> Result<KWayPartition, Cancelled> {
    assert!(k >= 1);
    let mut part = vec![0u32; g.n()];
    if k > 1 && g.n() >= 2 {
        let verts: Vec<u32> = (0..g.n() as u32).collect();
        split(
            method, g, coords, &verts, 0, k, p, seed, &mut part, machine, obs,
        )?;
    }
    Ok(KWayPartition { part, k })
}

#[allow(clippy::too_many_arguments)]
fn split(
    method: Method,
    g: &Graph,
    coords: Option<&[Point2]>,
    verts: &[u32],
    first_part: u32,
    k: usize,
    p: usize,
    seed: u64,
    out: &mut [u32],
    machine: Option<&mut Machine>,
    obs: &mut dyn PipelineObserver,
) -> Result<(), Cancelled> {
    if k <= 1 || verts.len() < 2 {
        for &v in verts {
            out[v as usize] = first_part;
        }
        return Ok(());
    }
    if obs.poll_cancel() {
        return Err(Cancelled);
    }
    // Split k into proportional halves (handles non-powers of two).
    let k0 = k / 2;
    let k1 = k - k0;
    let (sub, map) = g.induced_subgraph(verts);
    let sub_coords: Option<Vec<Point2>> =
        coords.map(|c| map.iter().map(|&v| c[v as usize]).collect());
    let r = match machine {
        Some(m) => run_method_checked(
            method,
            &sub,
            sub_coords.as_deref(),
            m,
            seed ^ first_part as u64,
            obs,
        )?,
        None => {
            let mut m = Machine::new(p.max(1), CostModel::qdr_infiniband());
            run_method_checked(
                method,
                &sub,
                sub_coords.as_deref(),
                &mut m,
                seed ^ first_part as u64,
                obs,
            )?
        }
    };
    // Assign the lighter side to the smaller k when k is odd so part
    // weights track k0 : k1.
    let (w0, w1) = r.bisection.weights(&sub);
    let zero_gets_k0 = (w0 <= w1) == (k0 <= k1);
    let mut side0 = Vec::new();
    let mut side1 = Vec::new();
    for (i, &v) in map.iter().enumerate() {
        if (r.bisection.side(i as u32) == 0) == zero_gets_k0 {
            side0.push(v);
        } else {
            side1.push(v);
        }
    }
    let p0 = ((p * k0) / k).max(1);
    let p1 = (p - p0).max(1);
    split(
        method, g, coords, &side0, first_part, k0, p0, seed, out, None, obs,
    )?;
    split(
        method,
        g,
        coords,
        &side1,
        first_part + k0 as u32,
        k1,
        p1,
        seed,
        out,
        None,
        obs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::gen::{grid_2d, grid_2d_coords};

    #[test]
    fn four_way_grid_partition_is_balanced() {
        let g = grid_2d(24, 24);
        let coords = grid_2d_coords(24, 24);
        let kp = recursive_kway(Method::Rcb, &g, Some(&coords), 4, 8, 1);
        kp.validate(&g).unwrap();
        assert!(kp.imbalance(&g) < 0.05, "imbalance {}", kp.imbalance(&g));
        // Four quadrants of a grid: cut ≈ 2 × 24 = 48.
        assert!(kp.cut_edges(&g) <= 96, "cut {}", kp.cut_edges(&g));
    }

    #[test]
    fn odd_k_is_valid_with_documented_imbalance() {
        // Median bisections give k = 3 parts of ≈ 25/25/50: the imbalance
        // is bounded by 0.5 (see module docs), not unbounded.
        let g = grid_2d(21, 21);
        let coords = grid_2d_coords(21, 21);
        let kp = recursive_kway(Method::Rcb, &g, Some(&coords), 3, 4, 2);
        kp.validate(&g).unwrap();
        assert!(kp.imbalance(&g) < 0.55, "imbalance {}", kp.imbalance(&g));
        let w = kp.part_weights(&g);
        assert!(w.iter().all(|&wi| wi > 0.0));
    }

    #[test]
    fn eight_way_partition_is_balanced() {
        let g = grid_2d(32, 32);
        let coords = grid_2d_coords(32, 32);
        let kp = recursive_kway(Method::Rcb, &g, Some(&coords), 8, 8, 5);
        kp.validate(&g).unwrap();
        assert!(kp.imbalance(&g) < 0.05, "imbalance {}", kp.imbalance(&g));
        assert!(kp.comm_volume(&g) >= kp.cut_edges(&g) / 2);
    }

    #[test]
    fn scalapart_kway_works_without_coords() {
        let g = grid_2d(20, 20);
        let kp = recursive_kway(Method::ScalaPart, &g, None, 4, 16, 3);
        kp.validate(&g).unwrap();
        assert!(kp.imbalance(&g) < 0.25, "imbalance {}", kp.imbalance(&g));
        assert!(kp.cut_edges(&g) < g.m() / 3);
    }

    #[test]
    fn kway_on_machine_matches_plain_and_traces_root() {
        use sp_machine::{CostModel, TraceRecorder};
        let g = grid_2d(24, 24);
        let coords = grid_2d_coords(24, 24);
        let mut m = Machine::new(8, CostModel::qdr_infiniband());
        m.set_recorder(Box::new(TraceRecorder::new(8)));
        let kp = recursive_kway_on(Method::Rcb, &g, Some(&coords), 4, 1, &mut m);
        kp.validate(&g).unwrap();
        let plain = recursive_kway(Method::Rcb, &g, Some(&coords), 4, 8, 1);
        assert_eq!(kp.part, plain.part);
        let rec = TraceRecorder::downcast(m.take_recorder().unwrap()).unwrap();
        assert!(!rec.is_empty());
    }

    #[test]
    fn k_equals_one_is_trivial() {
        let g = grid_2d(5, 5);
        let kp = recursive_kway(Method::Rcb, &g, None, 1, 1, 4);
        kp.validate(&g).unwrap();
        assert_eq!(kp.cut_edges(&g), 0);
        assert_eq!(kp.imbalance(&g), 0.0);
    }

    #[test]
    fn to_json_shares_the_cli_service_schema() {
        let g = grid_2d(4, 4);
        let kp = recursive_kway(Method::Rcb, &g, Some(&grid_2d_coords(4, 4)), 2, 2, 1);
        let j = kp.to_json(&g);
        assert!(j.starts_with("{\"schema\": \"sp-partition-v1\""), "{j}");
        assert!(j.contains("\"n\": 16"));
        assert!(j.contains("\"k\": 2"));
        assert!(j.contains("\"part\": ["));
        assert!(j.matches(',').count() >= 16, "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        let s = kp.summary(&g);
        assert!(j.contains(&format!("\"cut_edges\": {}", s.cut_edges)));
        assert!(j.contains(&format!("\"comm_volume\": {}", s.comm_volume)));
    }

    /// Observer that cancels after a fixed number of checkpoint polls.
    struct CancelAfter(usize);
    impl crate::observe::PipelineObserver for CancelAfter {
        fn poll_cancel(&mut self) -> bool {
            if self.0 == 0 {
                return true;
            }
            self.0 -= 1;
            false
        }
    }

    #[test]
    fn checked_kway_cancels_cooperatively_and_cleanly() {
        use sp_machine::CostModel;
        let g = grid_2d(24, 24);
        let coords = grid_2d_coords(24, 24);
        // Immediate cancellation: caught at the very first checkpoint.
        let mut m = Machine::new(4, CostModel::qdr_infiniband());
        let r = recursive_kway_checked_on(
            Method::ScalaPart,
            &g,
            None,
            4,
            1,
            &mut m,
            &mut CancelAfter(0),
        );
        assert!(matches!(r, Err(Cancelled)));
        // Mid-pipeline cancellation: a few checkpoints in, still Err.
        let mut m = Machine::new(4, CostModel::qdr_infiniband());
        let r = recursive_kway_checked_on(
            Method::ScalaPart,
            &g,
            None,
            4,
            1,
            &mut m,
            &mut CancelAfter(3),
        );
        assert!(r.is_err());
        // A never-cancelling observer matches the plain entry point
        // bit-exactly — the checkpoints themselves perturb nothing.
        let mut m = Machine::new(4, CostModel::qdr_infiniband());
        let kp = recursive_kway_checked_on(
            Method::ScalaPart,
            &g,
            Some(&coords),
            4,
            1,
            &mut m,
            &mut CancelAfter(usize::MAX),
        )
        .unwrap();
        let plain = recursive_kway(Method::ScalaPart, &g, Some(&coords), 4, 4, 1);
        assert_eq!(kp.part, plain.part);
    }

    #[test]
    fn comm_volume_counts_distinct_foreign_parts() {
        // Path 0-1-2 split into 3 parts: middle vertex touches 2 foreign
        // parts, ends touch 1 each → volume 4.
        let mut b = sp_graph::GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        let g = b.build();
        let kp = KWayPartition {
            part: vec![0, 1, 2],
            k: 3,
        };
        assert_eq!(kp.comm_volume(&g), 4);
        assert_eq!(kp.cut_edges(&g), 2);
    }
}
