//! The spring-electrical force model (Hu 2006, §2 of the paper).
//!
//! On a vertex `i`, neighbours exert an attractive force of magnitude
//! `‖cᵢ − cⱼ‖² / K` along the edge, and every other vertex exerts a
//! repulsive force of magnitude `C·K² / ‖cᵢ − cⱼ‖` (scaled by the product
//! of the masses on weighted/coarse graphs). `C` and `K` are the paper's
//! "twiddle factors".

use sp_geometry::Point2;

/// Model constants.
#[derive(Clone, Copy, Debug)]
pub struct ForceParams {
    /// Repulsion strength (Hu recommends ≈ 0.2).
    pub c: f64,
    /// Natural spring length.
    pub k: f64,
}

impl ForceParams {
    /// `K` chosen so that n vertices at natural spacing tile an `area`-sized
    /// domain: `K = √(area / n)`.
    pub fn for_domain(c: f64, area: f64, n: usize) -> Self {
        ForceParams {
            c,
            k: (area / n.max(1) as f64).sqrt(),
        }
    }

    /// Attractive force vector on a vertex at `from` due to a neighbour at
    /// `to` (pulls toward the neighbour).
    #[inline]
    pub fn attractive(&self, from: Point2, to: Point2) -> Point2 {
        let d = to - from;
        let dist = d.norm();
        if dist < 1e-12 {
            return Point2::ZERO;
        }
        // magnitude dist²/K in direction d̂  ⇒  d · dist / K.
        d * (dist / self.k)
    }

    /// Repulsive force vector on a vertex of mass `m_from` at `from` due to
    /// a body of mass `m_to` at `to` (pushes away).
    #[inline]
    pub fn repulsive(&self, from: Point2, m_from: f64, to: Point2, m_to: f64) -> Point2 {
        let d = from - to;
        // magnitude C·K²·m₁·m₂ / dist in direction away from `to` — i.e.
        // d · C·K²·m₁·m₂ / dist². The divisor is `norm_sq()` directly: no
        // sqrt needed, and this is the innermost call of every embedding
        // superstep. The floor is the old `max(1e-9)` distance floor,
        // squared as the literal `1e-9 * 1e-9` so near-coincident points
        // keep the exact same f64 result as the sqrt formulation.
        let dist_sq = d.norm_sq().max(1e-9 * 1e-9);
        d * (self.c * self.k * self.k * m_from * m_to / dist_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attraction_pulls_toward_neighbor() {
        let p = ForceParams { c: 0.2, k: 1.0 };
        let f = p.attractive(Point2::ZERO, Point2::new(2.0, 0.0));
        assert!(f.x > 0.0 && f.y == 0.0);
        // magnitude = dist²/K = 4.
        assert!((f.norm() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn repulsion_pushes_away_with_inverse_distance() {
        let p = ForceParams { c: 0.5, k: 2.0 };
        let f = p.repulsive(Point2::ZERO, 1.0, Point2::new(4.0, 0.0), 1.0);
        assert!(f.x < 0.0);
        // magnitude = C·K²/dist = 0.5·4/4 = 0.5.
        assert!((f.norm() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn masses_scale_repulsion() {
        let p = ForceParams { c: 0.2, k: 1.0 };
        let f1 = p.repulsive(Point2::ZERO, 1.0, Point2::new(1.0, 0.0), 1.0);
        let f6 = p.repulsive(Point2::ZERO, 2.0, Point2::new(1.0, 0.0), 3.0);
        assert!((f6.norm() - 6.0 * f1.norm()).abs() < 1e-12);
    }

    #[test]
    fn equilibrium_distance_is_order_k() {
        // Two unit-mass vertices joined by an edge balance where
        // d²/K = C·K²/d ⇒ d = K·C^(1/3).
        let p = ForceParams { c: 0.2, k: 1.0 };
        let d_eq = p.k * p.c.powf(1.0 / 3.0);
        let a = Point2::ZERO;
        let b = Point2::new(d_eq, 0.0);
        let net = p.attractive(a, b) + p.repulsive(a, 1.0, b, 1.0);
        assert!(net.norm() < 1e-9, "net force {net:?}");
    }

    #[test]
    fn coincident_points_do_not_blow_up() {
        let p = ForceParams { c: 0.2, k: 1.0 };
        assert_eq!(p.attractive(Point2::ZERO, Point2::ZERO), Point2::ZERO);
        let f = p.repulsive(Point2::ZERO, 1.0, Point2::ZERO, 1.0);
        assert!(f.is_finite());
    }

    #[test]
    fn sqrt_free_repulsion_bit_matches_old_formula() {
        // The old formulation computed dist = ‖d‖.max(1e-9) and divided by
        // dist·dist. On inputs whose norm is exactly representable
        // (Pythagorean displacements, where sqrt introduces no rounding),
        // sqrt(x)² == x bit-for-bit and the two formulas must agree
        // exactly — including at the floor, which is why the new code
        // floors at the literal 1e-9 · 1e-9.
        let old = |p: &ForceParams, from: Point2, m1: f64, to: Point2, m2: f64| -> Point2 {
            let d = from - to;
            let dist = d.norm().max(1e-9);
            d * (p.c * p.k * p.k * m1 * m2 / (dist * dist))
        };
        let p = ForceParams { c: 0.2, k: 1.7 };
        let cases = [
            (Point2::new(3.0, 4.0), Point2::ZERO),           // ‖d‖ = 5
            (Point2::new(-6.0, 8.0), Point2::ZERO),          // ‖d‖ = 10
            (Point2::new(5.0, 12.0), Point2::new(0.0, 0.0)), // ‖d‖ = 13
            (Point2::new(1.5, 2.0), Point2::ZERO),           // ‖d‖ = 2.5
            (Point2::ZERO, Point2::ZERO),                    // floor engaged
        ];
        for (from, to) in cases {
            let new = p.repulsive(from, 1.3, to, 2.5);
            let reference = old(&p, from, 1.3, to, 2.5);
            assert_eq!(new.x.to_bits(), reference.x.to_bits(), "{from:?}->{to:?}");
            assert_eq!(new.y.to_bits(), reference.y.to_bits(), "{from:?}->{to:?}");
        }
    }

    #[test]
    fn for_domain_sets_natural_spacing() {
        let p = ForceParams::for_domain(0.2, 100.0, 400);
        assert!((p.k - 0.5).abs() < 1e-12);
    }
}
