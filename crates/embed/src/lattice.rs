//! The fixed-lattice parallel embedding scheme — the paper's main
//! contribution (§3, "Fixed Lattice Parallel Graph Embedding").
//!
//! The domain bounding box `B` is viewed as a `q × q` lattice matching a
//! `q × q` processor grid; rank `(i,j)` owns the vertices whose coordinates
//! lie in sub-box `B_{i,j}`. Long-range repulsion is approximated through
//! one *special vertex* `β_{i,j}` per box — total mass `μ_{i,j}` at the
//! centre of mass `φ_{i,j}` — Eq. (1)/(2) of the paper. Attractive forces
//! use true neighbour coordinates when the neighbour lives in the same or
//! an adjacent box (refreshed every iteration by nearest-neighbour halo
//! exchange) and *stale, clamped* coordinates otherwise: far ghosts are
//! pinned into the adjacent box at shortest L1 distance, and their data is
//! refreshed only once per block of `block` iterations by a global
//! allgather (the paper found block sizes of 2–8 to cost less communication
//! at no observable quality loss).

use crate::force::ForceParams;
use sp_geometry::{Aabb2, Point2};
use sp_graph::Graph;
use sp_machine::Machine;

/// Controls for lattice smoothing.
#[derive(Clone, Copy, Debug)]
pub struct LatticeConfig {
    /// Repulsion constant `C`.
    pub c: f64,
    /// Maximum smoothing iterations (the run stops earlier once the
    /// adaptive step has cooled below 0.5% of K).
    pub iters: usize,
    /// Iterations per global refresh (the paper's 2–8; 1 disables
    /// staleness and is the ablation baseline).
    pub block: usize,
    /// Initial step as a fraction of `K`.
    pub step0: f64,
    /// Hu's adaptive step ratio `t`: the step shrinks ×t on an energy
    /// increase and grows ÷t after five consecutive decreases.
    pub cooling: f64,
}

impl Default for LatticeConfig {
    fn default() -> Self {
        LatticeConfig {
            c: 0.2,
            iters: 60,
            block: 4,
            step0: 0.5,
            cooling: 0.9,
        }
    }
}

/// Statistics returned by a smoothing run.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatticeStats {
    /// Mean per-vertex displacement in the final iteration (in units of K).
    pub final_move: f64,
    /// Vertices that migrated between boxes over the whole run.
    pub migrations: usize,
}

/// One cell's special vertex β: total mass and centre of mass.
#[derive(Clone, Copy, Debug, Default)]
struct Beta {
    mu: f64,
    phi: Point2,
}

/// The paper's neighbourhood: the *four* boxes at L1 distance 1
/// (diagonal boxes count as far and see only block-stale data).
#[inline]
fn cell_adjacent(q: usize, a: usize, b: usize) -> bool {
    let (ai, aj) = (a % q, a / q);
    let (bi, bj) = (b % q, b / q);
    ai.abs_diff(bi) + aj.abs_diff(bj) <= 1
}

/// The domain lattice with RCB-balanced cells.
///
/// The paper maps the embedded graph to the processor grid with Zoltan-style
/// recursive coordinate bisection, so every lattice cell holds (nearly) the
/// same number of vertices. We realise that as a rectilinear quantile
/// partition: `q` columns at x-quantiles, then `q` rows per column at that
/// column's y-quantiles. Cells are fixed for the whole smoothing run (the
/// "fixed lattice"); vertices that drift across a boundary migrate owners.
pub struct QuantileLattice {
    q: usize,
    /// Column boundaries (len q−1, ascending).
    xcuts: Vec<f64>,
    /// Per-column row boundaries (q × (q−1)).
    ycuts: Vec<Vec<f64>>,
    bbox: Aabb2,
}

impl QuantileLattice {
    /// Build from the current coordinates.
    pub fn build(coords: &[Point2], q: usize) -> Self {
        let bbox = Aabb2::from_points(coords)
            .unwrap_or_else(Aabb2::unit)
            .inflated(0.02 + 1e-9);
        let n = coords.len().max(1);
        let mut xs: Vec<f64> = coords.iter().map(|c| c.x).collect();
        if xs.is_empty() {
            xs.push(0.0);
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let xcuts: Vec<f64> = (1..q).map(|k| xs[(k * n / q).min(xs.len() - 1)]).collect();
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); q];
        for c in coords {
            let i = xcuts.partition_point(|&cut| c.x >= cut);
            cols[i].push(c.y);
        }
        let ycuts = cols
            .into_iter()
            .map(|mut ys| {
                if ys.is_empty() {
                    // Empty column (duplicate-heavy input): uniform rows.
                    let h = bbox.height() / q as f64;
                    return (1..q).map(|k| bbox.min.y + h * k as f64).collect();
                }
                ys.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let m = ys.len();
                (1..q).map(|k| ys[(k * m / q).min(m - 1)]).collect()
            })
            .collect();
        QuantileLattice {
            q,
            xcuts,
            ycuts,
            bbox,
        }
    }

    pub fn q(&self) -> usize {
        self.q
    }

    pub fn bbox(&self) -> &Aabb2 {
        &self.bbox
    }

    /// Cell of a point: `(column i, row j)`.
    #[inline]
    pub fn cell_of(&self, p: Point2) -> (usize, usize) {
        let i = self.xcuts.partition_point(|&cut| p.x >= cut);
        let j = self.ycuts[i].partition_point(|&cut| p.y >= cut);
        (i, j)
    }

    /// Bounding box of cell `(i, j)`.
    pub fn cell_box(&self, i: usize, j: usize) -> Aabb2 {
        let x0 = if i == 0 {
            self.bbox.min.x
        } else {
            self.xcuts[i - 1]
        };
        let x1 = if i + 1 == self.q {
            self.bbox.max.x
        } else {
            self.xcuts[i]
        };
        let y0 = if j == 0 {
            self.bbox.min.y
        } else {
            self.ycuts[i][j - 1]
        };
        let y1 = if j + 1 == self.q {
            self.bbox.max.y
        } else {
            self.ycuts[i][j]
        };
        Aabb2::new(
            Point2::new(x0.min(x1), y0.min(y1)),
            Point2::new(x0.max(x1), y0.max(y1)),
        )
    }

    /// Per-cell vertex counts (diagnostics/tests).
    pub fn occupancy(&self, coords: &[Point2]) -> Vec<usize> {
        let mut occ = vec![0usize; self.q * self.q];
        for &c in coords {
            let (i, j) = self.cell_of(c);
            occ[j * self.q + i] += 1;
        }
        occ
    }
}

/// Clamp a far ghost's (stale) position into the cell adjacent to `my_cell`
/// in the direction of the ghost's cell — the paper's shortest-L1 rule.
fn clamp_far(lattice: &QuantileLattice, my_cell: usize, ghost_cell: usize, pos: Point2) -> Point2 {
    let q = lattice.q();
    let (mi, mj) = (my_cell % q, my_cell / q);
    let (gi, gj) = (ghost_cell % q, ghost_cell / q);
    let ai = (mi as i64 + (gi as i64 - mi as i64).signum()).clamp(0, q as i64 - 1) as usize;
    let aj = (mj as i64 + (gj as i64 - mj as i64).signum()).clamp(0, q as i64 - 1) as usize;
    let cell = lattice.cell_box(ai, aj);
    // Nudge strictly inside the target box so the clamped ghost still maps
    // to that cell under the half-open cell assignment.
    let p = cell.clamp(pos);
    let ex = cell.width() * 1e-9;
    let ey = cell.height() * 1e-9;
    Point2::new(
        p.x.clamp(cell.min.x + ex, (cell.max.x - ex).max(cell.min.x)),
        p.y.clamp(cell.min.y + ey, (cell.max.y - ey).max(cell.min.y)),
    )
}

/// Run fixed-lattice smoothing over `coords` in place on a `q × q` lattice
/// using ranks `0..q²` of `machine` (extra ranks idle, matching the paper's
/// shrinking active set `Pⁱ ≈ P/4ⁱ`). Charges computation, halo exchange,
/// per-block global refresh, and box migrations to the machine.
pub fn lattice_smooth(
    g: &Graph,
    coords: &mut [Point2],
    q: usize,
    machine: &mut Machine,
    cfg: &LatticeConfig,
) -> LatticeStats {
    assert_eq!(coords.len(), g.n());
    assert!(
        q * q <= machine.p(),
        "lattice {q}×{q} needs ≥ {} ranks",
        q * q
    );
    let n = g.n();
    if n == 0 || cfg.iters == 0 {
        return LatticeStats::default();
    }
    let p = machine.p();
    let ncells = q * q;
    let bbox = Aabb2::from_points(coords).unwrap().inflated(0.02 + 1e-9);
    let params = ForceParams::for_domain(cfg.c, bbox.width() * bbox.height(), n);
    let mut step = cfg.step0 * params.k;
    let max_step = 3.0 * params.k;
    let t_ratio = cfg.cooling.clamp(0.5, 0.99);
    let mut energy = f64::INFINITY;
    let mut progress = 0u32;

    // RCB-balanced fixed lattice (the paper computes this mapping with
    // Zoltan RCB after each projection; we refresh it at block boundaries
    // because the layout breathes under the adaptive step). Construction is
    // a distributed quantile computation: charge n/P ops per rank and one
    // small collective.
    let mut lattice = QuantileLattice::build(coords, q);
    {
        let share = (n / ncells.max(1)) as f64;
        let mut states: Vec<()> = vec![(); p];
        machine.compute(&mut states, |r, _| if r < ncells { share } else { 0.0 });
        let _ = machine.group_allreduce_sum(ncells, &vec![vec![0.0; q]; p]);
    }
    let cell_of = |p: Point2, lattice: &QuantileLattice| -> u32 {
        let (i, j) = lattice.cell_of(p);
        (j * q + i) as u32
    };
    let mut owner: Vec<u32> = coords.iter().map(|&c| cell_of(c, &lattice)).collect();
    let mut snapshot: Vec<Point2> = coords.to_vec();
    let mut beta_snapshot: Vec<Beta> = vec![Beta::default(); ncells];
    let mut stats = LatticeStats::default();

    for it in 0..cfg.iters {
        // --- Owned vertex lists per cell.
        let mut owned: Vec<Vec<u32>> = vec![Vec::new(); ncells];
        for (v, &c) in owner.iter().enumerate() {
            owned[c as usize].push(v as u32);
        }

        // --- β computation (each active rank scans its owned vertices).
        let mut betas: Vec<Beta> = vec![Beta::default(); ncells];
        {
            let owned_ref = &owned;
            let coords_ref = &*coords;
            let mut states: Vec<Beta> = vec![Beta::default(); p];
            machine.compute(&mut states, |r, b| {
                if r >= ncells {
                    return 0.0;
                }
                let mut mu = 0.0;
                let mut wsum = Point2::ZERO;
                for &v in &owned_ref[r] {
                    let m = g.vwgt(v);
                    mu += m;
                    wsum += coords_ref[v as usize] * m;
                }
                if mu > 0.0 {
                    *b = Beta { mu, phi: wsum / mu };
                }
                owned_ref[r].len() as f64
            });
            betas[..ncells].copy_from_slice(&states[..ncells]);
        }

        // --- Communication. The nearest-neighbour halo — β of adjacent
        // cells plus fresh coordinates of boundary vertices with edges into
        // each adjacent cell — runs every iteration; the global allgather
        // (far β table + far-cross-edge coordinates, the paper's ñ) and
        // the reduction run only once per block.
        {
            let mut nbr_words: Vec<Vec<(usize, usize)>> = vec![Vec::new(); ncells];
            let mut pairs: std::collections::HashMap<(usize, usize), usize> =
                std::collections::HashMap::new();
            for v in 0..n as u32 {
                let cv = owner[v as usize] as usize;
                for &u in g.neighbors(v) {
                    let cu = owner[u as usize] as usize;
                    if cu != cv && cell_adjacent(q, cv, cu) {
                        *pairs.entry((cv, cu)).or_default() += 1;
                    }
                }
            }
            for ((from, to), cnt) in pairs {
                nbr_words[from].push((to, 3 + 2 * cnt));
            }
            let outbox: Vec<Vec<(usize, Vec<u64>)>> = (0..p)
                .map(|r| {
                    if r < ncells {
                        nbr_words[r]
                            .iter()
                            .map(|&(to, words)| (to, vec![0u64; words]))
                            .collect()
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            let _ = machine.exchange(outbox);
        }
        if it % cfg.block.max(1) == 0 {
            if it > 0 {
                // Re-derive the balanced lattice from the current layout and
                // charge the quantile computation (n/P ops + one collective).
                lattice = QuantileLattice::build(coords, q);
                let share = (n / ncells.max(1)) as f64;
                let mut states: Vec<()> = vec![(); p];
                machine.compute(&mut states, |r, _| if r < ncells { share } else { 0.0 });
                let _ = machine.group_allreduce_sum(ncells, &vec![vec![0.0; q]; p]);
                for (v, c) in coords.iter().enumerate() {
                    owner[v] = cell_of(*c, &lattice);
                }
            }
            let mut far_counts = vec![0usize; ncells];
            for v in 0..n as u32 {
                let cv = owner[v as usize] as usize;
                for &u in g.neighbors(v) {
                    let cu = owner[u as usize] as usize;
                    if cu != cv && !cell_adjacent(q, cv, cu) {
                        far_counts[cv] += 1;
                    }
                }
            }
            let beta_payload: Vec<Vec<u64>> = (0..p)
                .map(|r| {
                    if r < ncells {
                        vec![0u64; 3 + 2 * far_counts[r]]
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            let _ = machine.group_allgather(ncells, beta_payload);
            let _ = machine.group_allreduce_sum(ncells, &vec![vec![0.0f64]; p]);
            snapshot.copy_from_slice(coords);
            beta_snapshot.copy_from_slice(&betas);
        }

        // --- Force computation and displacement per rank.
        let displacements: Vec<(Vec<(u32, Point2)>, f64)> = {
            let owned_ref = &owned;
            let coords_ref = &*coords;
            let owner_ref = &owner;
            let snapshot_ref = &snapshot;
            let betas_ref = &betas;
            let beta_snap_ref = &beta_snapshot;
            let lattice_ref = &lattice;
            let mut states: Vec<(Vec<(u32, Point2)>, f64)> = vec![(Vec::new(), 0.0); p];
            machine.compute(&mut states, |r, state| {
                let (out, local_energy) = state;
                if r >= ncells {
                    return 0.0;
                }
                let my = r;
                let mut ops = 0.0;
                // Inherited lattice repulsion (Eq. 1, per unit mass): sum
                // over all other cells of C·K²·μ_s / dist(φ_my, φ_s),
                // using fresh β for adjacent cells and block-stale β
                // otherwise.
                let my_beta = betas_ref[my];
                let mut inherited = Point2::ZERO;
                if my_beta.mu > 0.0 {
                    for s in 0..ncells {
                        if s == my {
                            continue;
                        }
                        let b = if cell_adjacent(q, my, s) {
                            betas_ref[s]
                        } else {
                            beta_snap_ref[s]
                        };
                        if b.mu > 0.0 {
                            inherited += params.repulsive(my_beta.phi, 1.0, b.phi, b.mu);
                        }
                        ops += 1.0;
                    }
                }
                // Near field: the own cell's repulsion is resolved one
                // lattice level deeper — a fixed 4×4 sub-lattice of β
                // vertices over the cell's own (fresh) points. Eq. (2)'s
                // single own-β term is the 1×1 limit and collapses local
                // structure; a sub-lattice keeps the per-vertex cost an
                // exact 16 ops regardless of how the layout clumps.
                const SUB: usize = 4;
                let my_box = lattice_ref.cell_box(my % q, my / q);
                let mut sub = [Beta::default(); SUB * SUB];
                let sub_of = |c: Point2| -> usize {
                    let (si, sj) = my_box.cell_of(SUB, c);
                    sj * SUB + si
                };
                for &v in &owned_ref[my] {
                    let c = coords_ref[v as usize];
                    let m = g.vwgt(v);
                    let b = &mut sub[sub_of(c)];
                    b.mu += m;
                    b.phi += c * m;
                    ops += 1.0;
                }
                for b in sub.iter_mut() {
                    if b.mu > 0.0 {
                        b.phi = b.phi / b.mu;
                    }
                }
                for &v in &owned_ref[my] {
                    let cv = coords_ref[v as usize];
                    let mv = g.vwgt(v);
                    let mut f = inherited * mv;
                    let own_sub = sub_of(cv);
                    for (si, b) in sub.iter().enumerate() {
                        ops += 1.0;
                        let mass = if si == own_sub { b.mu - mv } else { b.mu };
                        if mass > 1e-12 {
                            f += params.repulsive(cv, mv, b.phi, mass);
                        }
                    }
                    // Attraction over edges with the freshness rules.
                    for (u, w) in g.neighbors_w(v) {
                        let cu = owner_ref[u as usize] as usize;
                        let pu = if cu == my || cell_adjacent(q, my, cu) {
                            coords_ref[u as usize]
                        } else {
                            clamp_far(lattice_ref, my, cu, snapshot_ref[u as usize])
                        };
                        f += params.attractive(cv, pu) * w;
                        ops += 1.0;
                    }
                    let norm = f.norm();
                    *local_energy += norm * norm;
                    if norm > 1e-12 {
                        out.push((v, f * (step / norm)));
                    }
                    ops += 2.0;
                }
                ops
            });
            states
        };

        // --- Apply moves (owned vertices only — ghosts are by construction
        // other ranks' owned vertices and move on their own ranks).
        let mut total_move = 0.0;
        let mut moved = 0usize;
        let mut new_energy = 0.0;
        for (rank_moves, e) in &displacements {
            new_energy += e;
            for &(v, d) in rank_moves {
                let np = coords[v as usize] + d;
                total_move += d.norm();
                coords[v as usize] = np;
                moved += 1;
            }
        }
        stats.final_move = if moved > 0 {
            total_move / moved as f64 / params.k
        } else {
            0.0
        };

        // --- Migration: vertices whose box changed move to the new owner.
        // Adjacent-cell migrations ride the next halo exchange (their data
        // is a few extra words on messages that are sent anyway); only
        // migrations to non-adjacent cells — rare between refreshes — cost
        // a message of their own.
        let mut migration_out: Vec<Vec<(usize, Vec<u64>)>> = vec![Vec::new(); p];
        let mut mig_counts: std::collections::HashMap<(usize, usize), usize> =
            std::collections::HashMap::new();
        for v in 0..n {
            let nc = cell_of(coords[v], &lattice);
            if nc != owner[v] {
                if !cell_adjacent(q, owner[v] as usize, nc as usize) {
                    *mig_counts
                        .entry((owner[v] as usize, nc as usize))
                        .or_default() += 1;
                }
                owner[v] = nc;
                stats.migrations += 1;
            }
        }
        for ((from, to), cnt) in mig_counts {
            migration_out[from].push((to, vec![0u64; 3 * cnt]));
        }
        let _ = machine.exchange(migration_out);

        // Hu's adaptive step control on the global energy (the global
        // reduction this needs is the per-block reduction already charged).
        if new_energy < energy {
            progress += 1;
            if progress >= 5 {
                progress = 0;
                step = (step / t_ratio).min(max_step);
            }
        } else {
            progress = 0;
            step *= t_ratio;
        }
        energy = new_energy;
        if step < 0.005 * params.k {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::edge_length_stats;
    use crate::seq::random_init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sp_graph::gen::grid_2d;
    use sp_machine::CostModel;

    fn setup(n_side: usize, q: usize) -> (Graph, Vec<Point2>, Machine) {
        let g = grid_2d(n_side, n_side);
        let mut rng = StdRng::seed_from_u64(3);
        let coords = random_init(g.n(), &mut rng);
        let m = Machine::new(q * q, CostModel::qdr_infiniband());
        (g, coords, m)
    }

    #[test]
    fn smoothing_improves_edge_uniformity() {
        let (g, mut coords, mut m) = setup(16, 2);
        let before = edge_length_stats(&g, &coords);
        lattice_smooth(
            &g,
            &mut coords,
            2,
            &mut m,
            &LatticeConfig {
                iters: 60,
                step0: 0.8,
                cooling: 0.97,
                ..Default::default()
            },
        );
        let after = edge_length_stats(&g, &coords);
        assert!(
            after.mean < before.mean,
            "mean {} -> {}",
            before.mean,
            after.mean
        );
        assert!(coords.iter().all(|c| c.is_finite()));
    }

    #[test]
    fn charges_compute_and_communication() {
        let (g, mut coords, mut m) = setup(12, 2);
        lattice_smooth(&g, &mut coords, 2, &mut m, &LatticeConfig::default());
        assert!(m.comp_time() > 0.0);
        assert!(m.comm_time() > 0.0);
    }

    #[test]
    fn block_size_reduces_communication() {
        let (g, coords0, _) = setup(16, 3);
        let mut comm = Vec::new();
        for block in [1usize, 8] {
            let mut coords = coords0.clone();
            let mut m = Machine::new(9, CostModel::qdr_infiniband());
            lattice_smooth(
                &g,
                &mut coords,
                3,
                &mut m,
                &LatticeConfig {
                    iters: 16,
                    block,
                    ..Default::default()
                },
            );
            comm.push(m.comm_time());
        }
        assert!(
            comm[1] < comm[0],
            "blocked comm {} should beat per-iteration {}",
            comm[1],
            comm[0]
        );
    }

    #[test]
    fn single_cell_lattice_works() {
        let (g, mut coords, mut m) = setup(8, 1);
        let s = lattice_smooth(&g, &mut coords, 1, &mut m, &LatticeConfig::default());
        assert!(coords.iter().all(|c| c.is_finite()));
        assert_eq!(s.migrations, 0); // one cell: nothing to migrate to
    }

    #[test]
    fn deterministic() {
        let (g, coords0, _) = setup(10, 2);
        let mut a = coords0.clone();
        let mut b = coords0.clone();
        let mut ma = Machine::new(4, CostModel::qdr_infiniband());
        let mut mb = Machine::new(4, CostModel::qdr_infiniband());
        lattice_smooth(&g, &mut a, 2, &mut ma, &LatticeConfig::default());
        lattice_smooth(&g, &mut b, 2, &mut mb, &LatticeConfig::default());
        assert_eq!(a, b);
        assert_eq!(ma.elapsed(), mb.elapsed());
    }

    #[test]
    fn clamp_far_lands_in_adjacent_cell() {
        // Uniform point cloud → quantile lattice ≈ uniform grid.
        let mut rng = StdRng::seed_from_u64(4);
        let pts = random_init(4000, &mut rng);
        let lat = QuantileLattice::build(&pts, 4);
        // my cell (0,0) = 0; ghost cell (3,3) = 15; clamped into (1,1).
        let far = Point2::new(lat.bbox().max.x - 1e-6, lat.bbox().max.y - 1e-6);
        let p = clamp_far(&lat, 0, 15, far);
        assert_eq!(lat.cell_of(p), (1, 1));
    }

    #[test]
    fn quantile_lattice_balances_occupancy() {
        let mut rng = StdRng::seed_from_u64(9);
        // A very skewed cloud: dense blob plus sparse halo.
        let mut pts = random_init(3000, &mut rng);
        for p in pts.iter_mut().take(2500) {
            *p = *p * 0.05; // dense corner blob
        }
        let lat = QuantileLattice::build(&pts, 4);
        let occ = lat.occupancy(&pts);
        let max = *occ.iter().max().unwrap();
        let min = *occ.iter().min().unwrap();
        assert!(max <= 2 * (3000 / 16), "max occupancy {max}");
        assert!(min >= (3000 / 16) / 2, "min occupancy {min}");
    }

    #[test]
    fn cell_box_contains_its_points() {
        let mut rng = StdRng::seed_from_u64(11);
        let pts = random_init(1000, &mut rng);
        let lat = QuantileLattice::build(&pts, 3);
        for &p in &pts {
            let (i, j) = lat.cell_of(p);
            assert!(lat.cell_box(i, j).contains(p), "{p:?} not in its cell box");
        }
    }

    #[test]
    fn adjacency_predicate() {
        // The paper's rule: the *four* L1-distance-1 boxes are neighbours;
        // diagonals are far (block-stale data only).
        let q = 3;
        assert!(cell_adjacent(q, 0, 1));
        assert!(cell_adjacent(q, 0, 3));
        assert!(!cell_adjacent(q, 0, 4)); // diagonal is far
        assert!(!cell_adjacent(q, 0, 2));
        assert!(!cell_adjacent(q, 0, 8));
        assert!(cell_adjacent(q, 4, 4));
    }
}
