//! The fixed-lattice parallel embedding scheme — the paper's main
//! contribution (§3, "Fixed Lattice Parallel Graph Embedding").
//!
//! The domain bounding box `B` is viewed as a `q × q` lattice matching a
//! `q × q` processor grid; rank `(i,j)` owns the vertices whose coordinates
//! lie in sub-box `B_{i,j}`. Long-range repulsion is approximated through
//! one *special vertex* `β_{i,j}` per box — total mass `μ_{i,j}` at the
//! centre of mass `φ_{i,j}` — Eq. (1)/(2) of the paper. Attractive forces
//! use true neighbour coordinates when the neighbour lives in the same or
//! an adjacent box (refreshed every iteration by nearest-neighbour halo
//! exchange) and *stale, clamped* coordinates otherwise: far ghosts are
//! pinned into the adjacent box at shortest L1 distance, and their data is
//! refreshed only once per block of `block` iterations by a global
//! allgather (the paper found block sizes of 2–8 to cost less communication
//! at no observable quality loss).

use crate::force::ForceParams;
use sp_geometry::{Aabb2, Point2};
use sp_graph::Graph;
use sp_machine::{CostOnly, Machine};

/// Controls for lattice smoothing.
#[derive(Clone, Copy, Debug)]
pub struct LatticeConfig {
    /// Repulsion constant `C`.
    pub c: f64,
    /// Maximum smoothing iterations (the run stops earlier once the
    /// adaptive step has cooled below 0.5% of K).
    pub iters: usize,
    /// Iterations per global refresh (the paper's 2–8; 1 disables
    /// staleness and is the ablation baseline).
    pub block: usize,
    /// Initial step as a fraction of `K`.
    pub step0: f64,
    /// Hu's adaptive step ratio `t`: the step shrinks ×t on an energy
    /// increase and grows ÷t after five consecutive decreases.
    pub cooling: f64,
}

impl Default for LatticeConfig {
    fn default() -> Self {
        LatticeConfig {
            c: 0.2,
            iters: 60,
            block: 4,
            step0: 0.5,
            cooling: 0.9,
        }
    }
}

/// Statistics returned by a smoothing run.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatticeStats {
    /// Mean per-vertex displacement in the final iteration (in units of K).
    pub final_move: f64,
    /// Vertices that migrated between boxes over the whole run.
    pub migrations: usize,
}

/// One cell's special vertex β: total mass and centre of mass.
#[derive(Clone, Copy, Debug, Default)]
struct Beta {
    mu: f64,
    phi: Point2,
}

/// The paper's neighbourhood: the *four* boxes at L1 distance 1
/// (diagonal boxes count as far and see only block-stale data).
#[inline]
fn cell_adjacent(q: usize, a: usize, b: usize) -> bool {
    let (ai, aj) = (a % q, a / q);
    let (bi, bj) = (b % q, b / q);
    ai.abs_diff(bi) + aj.abs_diff(bj) <= 1
}

/// The domain lattice with RCB-balanced cells.
///
/// The paper maps the embedded graph to the processor grid with Zoltan-style
/// recursive coordinate bisection, so every lattice cell holds (nearly) the
/// same number of vertices. We realise that as a rectilinear quantile
/// partition: `q` columns at x-quantiles, then `q` rows per column at that
/// column's y-quantiles. Cells are fixed for the whole smoothing run (the
/// "fixed lattice"); vertices that drift across a boundary migrate owners.
pub struct QuantileLattice {
    q: usize,
    /// Column boundaries (len q−1, ascending).
    xcuts: Vec<f64>,
    /// Per-column row boundaries (q × (q−1)).
    ycuts: Vec<Vec<f64>>,
    bbox: Aabb2,
}

impl QuantileLattice {
    /// Build from the current coordinates.
    pub fn build(coords: &[Point2], q: usize) -> Self {
        let bbox = Aabb2::from_points(coords)
            .unwrap_or_else(Aabb2::unit)
            .inflated(0.02 + 1e-9);
        let n = coords.len().max(1);
        let mut xs: Vec<f64> = coords.iter().map(|c| c.x).collect();
        if xs.is_empty() {
            xs.push(0.0);
        }
        let xcuts = quantile_cuts(&mut xs, n, q);
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); q];
        for c in coords {
            let i = xcuts.partition_point(|&cut| c.x >= cut);
            cols[i].push(c.y);
        }
        let ycuts = cols
            .into_iter()
            .map(|mut ys| {
                if ys.is_empty() {
                    // Empty column (duplicate-heavy input): uniform rows.
                    let h = bbox.height() / q as f64;
                    return (1..q).map(|k| bbox.min.y + h * k as f64).collect();
                }
                let m = ys.len();
                quantile_cuts(&mut ys, m, q)
            })
            .collect();
        QuantileLattice {
            q,
            xcuts,
            ycuts,
            bbox,
        }
    }

    pub fn q(&self) -> usize {
        self.q
    }

    pub fn bbox(&self) -> &Aabb2 {
        &self.bbox
    }

    /// Cell of a point: `(column i, row j)`.
    #[inline]
    pub fn cell_of(&self, p: Point2) -> (usize, usize) {
        let i = self.xcuts.partition_point(|&cut| p.x >= cut);
        let j = self.ycuts[i].partition_point(|&cut| p.y >= cut);
        (i, j)
    }

    /// `cell_of` by branchless cut counting. The cut arrays are ascending,
    /// so `p.x >= cut` is monotone over them and the count of satisfied
    /// cuts equals the binary search's partition point — same result,
    /// no data-dependent branches. This is the per-vertex hot call of the
    /// owner-refresh and migration scans.
    #[inline]
    fn cell_of_fast(&self, p: Point2) -> (usize, usize) {
        let mut i = 0usize;
        for &cut in &self.xcuts {
            i += (p.x >= cut) as usize;
        }
        let mut j = 0usize;
        for &cut in &self.ycuts[i] {
            j += (p.y >= cut) as usize;
        }
        (i, j)
    }

    /// Exact membership test for cell `(i, j)`: cuts are ascending, so
    /// `cell_of` returns column `i` iff `p.x` clears cut `i-1` (when
    /// present) and not cut `i` — the same comparisons `cell_of` counts,
    /// so this agrees with it on every input bit pattern. Lets the
    /// migration scan skip the full cut count for the common case of a
    /// move that stays inside its cell.
    #[inline]
    fn in_cell(&self, i: usize, j: usize, p: Point2) -> bool {
        if (i > 0 && p.x < self.xcuts[i - 1]) || (i + 1 < self.q && p.x >= self.xcuts[i]) {
            return false;
        }
        let yc = &self.ycuts[i];
        (j == 0 || p.y >= yc[j - 1]) && (j + 1 >= self.q || p.y < yc[j])
    }

    /// Bounding box of cell `(i, j)`.
    pub fn cell_box(&self, i: usize, j: usize) -> Aabb2 {
        let x0 = if i == 0 {
            self.bbox.min.x
        } else {
            self.xcuts[i - 1]
        };
        let x1 = if i + 1 == self.q {
            self.bbox.max.x
        } else {
            self.xcuts[i]
        };
        let y0 = if j == 0 {
            self.bbox.min.y
        } else {
            self.ycuts[i][j - 1]
        };
        let y1 = if j + 1 == self.q {
            self.bbox.max.y
        } else {
            self.ycuts[i][j]
        };
        Aabb2::new(
            Point2::new(x0.min(x1), y0.min(y1)),
            Point2::new(x0.max(x1), y0.max(y1)),
        )
    }

    /// Per-cell vertex counts (diagnostics/tests).
    pub fn occupancy(&self, coords: &[Point2]) -> Vec<usize> {
        let mut occ = vec![0usize; self.q * self.q];
        for &c in coords {
            let (i, j) = self.cell_of(c);
            occ[j * self.q + i] += 1;
        }
        occ
    }
}

/// Cut values at the order-statistic indices `k·count/q` (k = 1..q),
/// found with successive `select_nth_unstable_by` on tail slices instead
/// of a full sort — expected O(n) for the first cut and O(n/q) per
/// further cut, versus O(n log n) for sorting — and bit-identical to
/// indexing the fully sorted array (the value at a sorted position does
/// not depend on how the rest of the array is ordered).
fn quantile_cuts(vals: &mut [f64], count: usize, q: usize) -> Vec<f64> {
    let last = vals.len() - 1;
    let mut cuts = Vec::with_capacity(q.saturating_sub(1));
    let mut base = 0usize;
    let mut prev: Option<(usize, f64)> = None;
    for k in 1..q {
        let idx = (k * count / q).min(last);
        if let Some((pi, pv)) = prev {
            // Cut indices are nondecreasing; a repeat reuses the value.
            if idx == pi {
                cuts.push(pv);
                continue;
            }
        }
        let (_, v, _) =
            vals[base..].select_nth_unstable_by(idx - base, |a, b| a.partial_cmp(b).unwrap());
        let v = *v;
        cuts.push(v);
        base = idx + 1;
        prev = Some((idx, v));
    }
    cuts
}

/// Clamp a far ghost's (stale) position into the cell adjacent to `my_cell`
/// in the direction of the ghost's cell — the paper's shortest-L1 rule.
fn clamp_far(lattice: &QuantileLattice, my_cell: usize, ghost_cell: usize, pos: Point2) -> Point2 {
    let q = lattice.q();
    let (mi, mj) = (my_cell % q, my_cell / q);
    let (gi, gj) = (ghost_cell % q, ghost_cell / q);
    let ai = (mi as i64 + (gi as i64 - mi as i64).signum()).clamp(0, q as i64 - 1) as usize;
    let aj = (mj as i64 + (gj as i64 - mj as i64).signum()).clamp(0, q as i64 - 1) as usize;
    let cell = lattice.cell_box(ai, aj);
    // Nudge strictly inside the target box so the clamped ghost still maps
    // to that cell under the half-open cell assignment.
    let p = cell.clamp(pos);
    let ex = cell.width() * 1e-9;
    let ey = cell.height() * 1e-9;
    Point2::new(
        p.x.clamp(cell.min.x + ex, (cell.max.x - ex).max(cell.min.x)),
        p.y.clamp(cell.min.y + ey, (cell.max.y - ey).max(cell.min.y)),
    )
}

/// Near field: the own cell's repulsion is resolved one lattice level
/// deeper — a fixed `SUB × SUB` sub-lattice of β vertices over the cell's
/// own (fresh) points. Eq. (2)'s single own-β term is the 1×1 limit and
/// collapses local structure; a sub-lattice keeps the per-vertex cost an
/// exact `NSUB` ops regardless of how the layout clumps.
const SUB: usize = 4;
const NSUB: usize = SUB * SUB;

/// Vertices per cache block of the transposed near-field kernel: all seven
/// per-vertex streams of a block (coordinates, mass, sub index, force
/// accumulators) stay L1-resident across the 16 lane passes.
const NF_BLOCK: usize = 512;

/// The near-field repulsion kernel, transposed: the outer loop walks the
/// `NSUB` sub-lattice lanes and the inner loop streams a block of
/// vertices, so every inner iteration is the same straight-line arithmetic
/// with lane constants broadcast — the form the compiler turns into packed
/// vector subtract/multiply/divide/select. The scalar original iterated
/// lanes *inside* each vertex, which left the 16 dependent accumulator
/// additions as a serial latency chain and the division throughput unused.
///
/// Bit-exactness relies on three facts. First, each lane term reproduces
/// `ForceParams::repulsive`'s expression tree (left-associated products,
/// the squared 1e-9 distance floor), with the own-lane mass `μ − m_v`
/// selected per vertex exactly where the original overwrote its own-lane
/// term. Second, a vertex's accumulator takes lane additions in pass order
/// 0..NSUB — the same order as the original's per-vertex lane loop (f64
/// addition is order-sensitive; this order is load-bearing). Third,
/// nearly-empty lanes that the original *skipped* instead add `-0.0`,
/// the IEEE-754 round-to-nearest additive identity (`x + -0.0 == x` for
/// every `x`, including both zeros), so the skip becomes a branchless
/// operand select without changing a single bit — and a fully *empty*
/// lane (zero mass, so every vertex selects `-0.0`) is elided wholesale
/// by the same identity.
#[allow(clippy::too_many_arguments)]
#[inline]
fn near_field_passes(
    cvx: &[f64],
    cvy: &[f64],
    cm: &[f64],
    cmk: &[f64],
    subidx: &[u8],
    sx: &[f64; NSUB],
    sy: &[f64; NSUB],
    sm: &[f64; NSUB],
    fx: &mut [f64],
    fy: &mut [f64],
) {
    let len = cvx.len();
    let mut start = 0;
    while start < len {
        let end = (start + NF_BLOCK).min(len);
        for si in 0..NSUB {
            let sxs = sx[si];
            let sys = sy[si];
            let sms = sm[si];
            // An empty lane contributes `-0.0` to every vertex (own-lane
            // masses are nonnegative, so `keep` is false throughout) —
            // the additive identity. Skipping the pass changes no bits.
            if sms == 0.0 {
                continue;
            }
            let siu = si as u8;
            let cx = &cvx[start..end];
            let cy = &cvy[start..end][..cx.len()];
            let m = &cm[start..end][..cx.len()];
            let mk = &cmk[start..end][..cx.len()];
            let sb = &subidx[start..end][..cx.len()];
            let gx = &mut fx[start..end][..cx.len()];
            let gy = &mut fy[start..end][..cx.len()];
            for i in 0..cx.len() {
                let dx = cx[i] - sxs;
                let dy = cy[i] - sys;
                let ds = (dx * dx + dy * dy).max(1e-9 * 1e-9);
                let mass = if sb[i] == siu { sms - m[i] } else { sms };
                let fac = mk[i] * mass / ds;
                let keep = mass > 1e-12;
                gx[i] += if keep { dx * fac } else { -0.0 };
                gy[i] += if keep { dy * fac } else { -0.0 };
            }
        }
        start = end;
    }
}

/// Per-rank state of the fused β/cross-edge superstep: the cell's special
/// vertex plus counts of edges leaving the cell, bucketed adjacent vs far.
#[derive(Clone, Copy, Debug, Default)]
struct BetaScan {
    beta: Beta,
    /// Cross-edge counts into each (≤4) adjacent cell, slot-aligned with
    /// `SmoothScratch::nbrs`.
    halo: [usize; 4],
    /// Cross-edge count into non-adjacent cells.
    far: usize,
}

/// Per-rank state of the force superstep: the displacement buffer, the
/// rank's energy contribution, and the cached sub-lattice index of each
/// owned vertex (computed once in the β-build pass and reused in the
/// near-field pass, saving one `cell_of` per vertex).
#[derive(Clone, Debug, Default)]
struct DispState {
    /// Emitted moves `(v, new position, ‖displacement‖, crossed)`: the
    /// norm, the moved position and the did-it-leave-its-cell test are
    /// all computed here, inside the parallel superstep and from packed
    /// passes, so the serial apply loop is a store, an add, and an
    /// almost-never-taken branch per move.
    moves: Vec<(u32, Point2, f64, u8)>,
    energy: f64,
    subidx: Vec<u8>,
    /// Owned-vertex coordinates and masses, gathered contiguous (struct of
    /// arrays) so the near-field passes stream them with vector loads.
    cvx: Vec<f64>,
    cvy: Vec<f64>,
    cm: Vec<f64>,
    /// Hoisted near-field products `C·K²·m_v` per owned vertex (lane
    /// passes reread the product instead of redoing the multiply ×16).
    cmk: Vec<f64>,
    /// Per-owned-vertex force accumulators (x and y lanes).
    fx: Vec<f64>,
    fy: Vec<f64>,
    /// Displacement-tail scratch: per-vertex force norms, step scales,
    /// displacement norms, moved positions, and cell-crossing flags.
    nrm: Vec<f64>,
    scl: Vec<f64>,
    dn: Vec<f64>,
    npx: Vec<f64>,
    npy: Vec<f64>,
    crx: Vec<u8>,
}

/// Reusable working state for [`lattice_smooth_with`]: per-cell owned
/// vertex lists (maintained incrementally from owner-change deltas rather
/// than rebuilt each iteration), the cell-adjacency lookup table, per-rank
/// β/cross-edge scan states, displacement buffers, and cost-only outboxes.
/// One scratch serves any number of smoothing runs (the multilevel driver
/// reuses one across levels); buffers are sized on entry and reused, so
/// the steady-state smoothing loop performs no per-iteration allocation.
#[derive(Default)]
pub struct SmoothScratch {
    /// Current owner cell of each vertex.
    owner: Vec<u32>,
    /// Per-cell owned vertices, ascending. Invariant at the top of every
    /// iteration: `owned[c]` holds exactly the `v` with `owner[v] == c`,
    /// sorted — indistinguishable from a group-by rebuild (β accumulates
    /// vertex masses in list order, so the order is load-bearing for
    /// f64-exact reproducibility).
    owned: Vec<Vec<u32>>,
    /// ncells × ncells adjacency lookup (row-major), replacing div/mod
    /// coordinate arithmetic in the per-edge hot paths.
    adj: Vec<bool>,
    /// Per-cell adjacent cells, ascending, with the live slot count.
    nbrs: Vec<([usize; 4], usize)>,
    /// ncells × ncells directed cross-count matrix (row-major):
    /// `cross[a·ncells + b]` is the number of directed edges `(v, u)` with
    /// `owner[v] == a` and `owner[u] == b` (the diagonal holds intra-cell
    /// counts and is simply never read). Maintained incrementally from
    /// owner flips — counts are integers, so any correct maintenance is
    /// bit-identical to a recount — and consulted by the β scan (halo
    /// batch sizes) and the block refresh (far totals) in O(ncells) per
    /// rank instead of an O(m) edge walk per iteration.
    cross: Vec<u32>,
    /// Per-rank β + cross-edge scan states.
    scan: Vec<BetaScan>,
    /// Fresh β per cell (copied out of `scan` after the β superstep).
    betas: Vec<Beta>,
    /// Block-stale β table (the paper's per-block global refresh).
    beta_snapshot: Vec<Beta>,
    /// Block-stale coordinates for far ghosts.
    snapshot: Vec<Point2>,
    /// Per-rank far-edge recounts for block-boundary refreshes.
    far: Vec<usize>,
    /// Per-rank force-superstep states (displacements, energy, cached
    /// sub-lattice indices), reused across iterations.
    disp: Vec<DispState>,
    /// Cost-only outbox, shared by the halo and migration exchanges.
    outbox: Vec<Vec<(usize, CostOnly)>>,
    /// Owner-change log `(v, from, to)` applied to `owned` at iteration
    /// end (mid-iteration the lists must stay stale, exactly like the
    /// per-iteration rebuild they replace).
    deltas: Vec<(u32, u32, u32)>,
    /// Far-migration `(from, to)` pairs of the current iteration.
    mig_pairs: Vec<(u32, u32)>,
}

impl SmoothScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Size every buffer for an `(n, q, p)` run and build the adjacency
    /// table. Cheap when dimensions are unchanged.
    fn reset(&mut self, n: usize, q: usize, p: usize) {
        let ncells = q * q;
        self.owner.clear();
        self.owner.reserve(n);
        self.owned.resize_with(ncells, Vec::new);
        for l in &mut self.owned {
            l.clear();
        }
        self.adj.clear();
        self.adj.resize(ncells * ncells, false);
        self.nbrs.clear();
        self.nbrs.resize(ncells, ([0; 4], 0));
        self.cross.clear();
        self.cross.resize(ncells * ncells, 0);
        for a in 0..ncells {
            for b in 0..ncells {
                if cell_adjacent(q, a, b) {
                    self.adj[a * ncells + b] = true;
                    if a != b {
                        let (cells, cnt) = &mut self.nbrs[a];
                        cells[*cnt] = b; // b ascends → slots ascend
                        *cnt += 1;
                    }
                }
            }
        }
        self.scan.clear();
        self.scan.resize(p, BetaScan::default());
        self.betas.clear();
        self.betas.resize(ncells, Beta::default());
        self.beta_snapshot.clear();
        self.beta_snapshot.resize(ncells, Beta::default());
        self.snapshot.clear();
        self.snapshot.reserve(n);
        self.far.clear();
        self.far.resize(p, 0);
        self.disp.resize_with(p, Default::default);
        for d in &mut self.disp {
            d.moves.clear();
            d.energy = 0.0;
            d.subidx.clear();
        }
        self.outbox.resize_with(p, Vec::new);
        for o in &mut self.outbox {
            o.clear();
        }
        self.deltas.clear();
        self.mig_pairs.clear();
    }

    /// Recount `cross` from scratch: one pass over every directed edge.
    fn rebuild_cross(&mut self, g: &Graph) {
        let ncells = self.betas.len();
        self.cross.clear();
        self.cross.resize(ncells * ncells, 0);
        for (v, &c) in self.owner.iter().enumerate() {
            let row = c as usize * ncells;
            for &u in g.neighbors(v as u32) {
                self.cross[row + self.owner[u as usize] as usize] += 1;
            }
        }
    }

    /// Rebuild `owned` as a group-by of `owner` (ascending within cells).
    fn rebuild_owned(&mut self) {
        for l in &mut self.owned {
            l.clear();
        }
        for (v, &c) in self.owner.iter().enumerate() {
            self.owned[c as usize].push(v as u32);
        }
    }

    /// Apply the iteration's owner-change log to `owned`, keeping each
    /// list sorted. Changes are grouped per cell — one compaction sweep
    /// per source cell and one backward merge per destination cell — so
    /// the cost is O(affected lists + k·log k) rather than one O(list)
    /// splice per delta. Falls back to a full rebuild when the log is
    /// large (post-refresh churn), which is O(n) — the same as one
    /// rebuild of the old per-iteration kind.
    fn apply_deltas(&mut self) {
        if self.deltas.is_empty() {
            return;
        }
        if self.deltas.len() * 8 > self.owner.len() {
            self.deltas.clear();
            self.rebuild_owned();
            return;
        }
        let mut deltas = std::mem::take(&mut self.deltas);
        // A vertex can move twice in one iteration (block refresh, then
        // migration); collapse each chain to its net move. The stable
        // sort keeps a vertex's events in log order.
        deltas.sort_by_key(|d| d.0);
        let mut w = 0;
        let mut i = 0;
        while i < deltas.len() {
            let (v, from, mut to) = deltas[i];
            i += 1;
            while i < deltas.len() && deltas[i].0 == v {
                to = deltas[i].2;
                i += 1;
            }
            if from != to {
                deltas[w] = (v, from, to);
                w += 1;
            }
        }
        deltas.truncate(w);
        // Removals: one compaction sweep per source cell.
        deltas.sort_unstable_by_key(|d| (d.1, d.0));
        let mut i = 0;
        while i < deltas.len() {
            let from = deltas[i].1;
            let start = i;
            while i < deltas.len() && deltas[i].1 == from {
                i += 1;
            }
            let rem = &deltas[start..i]; // ascending v
            let list = &mut self.owned[from as usize];
            let mut k = 0;
            let mut w = 0;
            for r in 0..list.len() {
                let v = list[r];
                if k < rem.len() && rem[k].0 == v {
                    k += 1;
                } else {
                    list[w] = v;
                    w += 1;
                }
            }
            debug_assert_eq!(k, rem.len(), "vertex missing from owner list");
            list.truncate(w);
        }
        // Insertions: one backward in-place merge per destination cell.
        deltas.sort_unstable_by_key(|d| (d.2, d.0));
        let mut i = 0;
        while i < deltas.len() {
            let to = deltas[i].2;
            let start = i;
            while i < deltas.len() && deltas[i].2 == to {
                i += 1;
            }
            let ins = &deltas[start..i]; // ascending v, distinct
            let list = &mut self.owned[to as usize];
            let old_len = list.len();
            list.resize(old_len + ins.len(), 0);
            let mut a = old_len as isize - 1;
            let mut b = ins.len() as isize - 1;
            let mut w = list.len() as isize - 1;
            while b >= 0 {
                if a >= 0 && list[a as usize] > ins[b as usize].0 {
                    list[w as usize] = list[a as usize];
                    a -= 1;
                } else {
                    list[w as usize] = ins[b as usize].0;
                    b -= 1;
                }
                w -= 1;
            }
        }
        self.deltas = deltas;
        self.deltas.clear();
    }
}

/// Run fixed-lattice smoothing over `coords` in place on a `q × q` lattice
/// using ranks `0..q²` of `machine` (extra ranks idle, matching the paper's
/// shrinking active set `Pⁱ ≈ P/4ⁱ`). Charges computation, halo exchange,
/// per-block global refresh, and box migrations to the machine.
pub fn lattice_smooth(
    g: &Graph,
    coords: &mut [Point2],
    q: usize,
    machine: &mut Machine,
    cfg: &LatticeConfig,
) -> LatticeStats {
    lattice_smooth_with(g, coords, q, machine, cfg, &mut SmoothScratch::new())
}

/// [`lattice_smooth`] with caller-provided scratch, so repeated runs (the
/// multilevel driver smooths every level) reuse one set of buffers.
pub fn lattice_smooth_with(
    g: &Graph,
    coords: &mut [Point2],
    q: usize,
    machine: &mut Machine,
    cfg: &LatticeConfig,
    scratch: &mut SmoothScratch,
) -> LatticeStats {
    assert_eq!(coords.len(), g.n());
    assert!(
        q * q <= machine.p(),
        "lattice {q}×{q} needs ≥ {} ranks",
        q * q
    );
    let n = g.n();
    if n == 0 || cfg.iters == 0 {
        return LatticeStats::default();
    }
    let p = machine.p();
    let ncells = q * q;
    let bbox = Aabb2::from_points(coords).unwrap().inflated(0.02 + 1e-9);
    let params = ForceParams::for_domain(cfg.c, bbox.width() * bbox.height(), n);
    let mut step = cfg.step0 * params.k;
    let max_step = 3.0 * params.k;
    let t_ratio = cfg.cooling.clamp(0.5, 0.99);
    let mut energy = f64::INFINITY;
    let mut progress = 0u32;

    // RCB-balanced fixed lattice (the paper computes this mapping with
    // Zoltan RCB after each projection; we refresh it at block boundaries
    // because the layout breathes under the adaptive step). Construction is
    // a distributed quantile computation: charge n/P ops per rank and one
    // small collective.
    let mut lattice = QuantileLattice::build(coords, q);
    {
        let share = (n / ncells.max(1)) as f64;
        let mut states: Vec<()> = vec![(); p];
        machine.compute(&mut states, |r, _| if r < ncells { share } else { 0.0 });
        machine.group_allreduce_sum_costed(ncells, q);
    }
    let cell_of = |p: Point2, lattice: &QuantileLattice| -> u32 {
        let (i, j) = lattice.cell_of_fast(p);
        (j * q + i) as u32
    };
    scratch.reset(n, q, p);
    {
        let lat = &lattice;
        scratch
            .owner
            .extend(coords.iter().map(|&c| cell_of(c, lat)));
    }
    scratch.rebuild_owned();
    scratch.rebuild_cross(g);
    scratch.snapshot.extend_from_slice(coords);
    let mut stats = LatticeStats::default();

    for it in 0..cfg.iters {
        // --- β computation with cross-edge counting: each active rank
        // scans its owned vertices once, accumulating the special vertex
        // (mass + centre of mass); the outgoing-edge counts — halo batch
        // sizes per adjacent cell, far total — are read out of the
        // incrementally-maintained `cross` matrix in O(ncells) instead of
        // walking every edge. The counts are integers, so the matrix read
        // is bit-identical to the recount it replaces; the charged ops are
        // unchanged (one per owned vertex).
        {
            let owned = &scratch.owned;
            let adj = &scratch.adj;
            let nbrs = &scratch.nbrs;
            let cross = &scratch.cross;
            let coords_ref = &*coords;
            machine.compute(&mut scratch.scan, |r, s| {
                *s = BetaScan::default();
                if r >= ncells {
                    return 0.0;
                }
                let mut mu = 0.0;
                let mut wsum = Point2::ZERO;
                for &v in &owned[r] {
                    let m = g.vwgt(v);
                    mu += m;
                    wsum += coords_ref[v as usize] * m;
                }
                let row = r * ncells;
                let (cells, ncnt) = nbrs[r];
                for k in 0..ncnt {
                    s.halo[k] = cross[row + cells[k]] as usize;
                }
                for c in 0..ncells {
                    if c != r && !adj[row + c] {
                        s.far += cross[row + c] as usize;
                    }
                }
                if mu > 0.0 {
                    s.beta = Beta { mu, phi: wsum / mu };
                }
                owned[r].len() as f64
            });
            for r in 0..ncells {
                scratch.betas[r] = scratch.scan[r].beta;
            }
        }

        // --- Communication. The nearest-neighbour halo — β of adjacent
        // cells plus fresh coordinates of boundary vertices with edges into
        // each adjacent cell — runs every iteration; the global allgather
        // (far β table + far-cross-edge coordinates, the paper's ñ) and
        // the reduction run only once per block. All of it is cost-only:
        // the data already lives in shared memory, so only word counts are
        // charged. Halo batches go out in ascending destination order
        // (slots ascend), keeping traces byte-reproducible.
        for r in 0..p {
            scratch.outbox[r].clear();
            if r < ncells {
                let (cells, ncnt) = scratch.nbrs[r];
                for (k, &cell) in cells[..ncnt].iter().enumerate() {
                    let cnt = scratch.scan[r].halo[k];
                    if cnt > 0 {
                        scratch.outbox[r].push((cell, CostOnly::new(3 + 2 * cnt)));
                    }
                }
            }
        }
        machine.exchange_costed(&scratch.outbox);
        if it % cfg.block.max(1) == 0 {
            let far_total: usize = if it > 0 {
                // Re-derive the balanced lattice from the current layout,
                // refresh owners (maintaining `cross` per flip), and charge
                // the quantile computation (n/P ops + one collective). The
                // far total is then a row sum over `cross` — the grouping
                // of the old per-vertex recount differed (pre-refresh owned
                // lists), but only the total ever entered the payload, and
                // integer totals agree regardless of grouping.
                lattice = QuantileLattice::build(coords, q);
                for (v, c) in coords.iter().enumerate() {
                    let oc = scratch.owner[v];
                    if lattice.in_cell(oc as usize % q, oc as usize / q, *c) {
                        continue;
                    }
                    let nc = cell_of(*c, &lattice);
                    if nc != oc {
                        scratch.deltas.push((v as u32, oc, nc));
                        let (ro, rn) = (oc as usize * ncells, nc as usize * ncells);
                        for &u in g.neighbors(v as u32) {
                            let cu = scratch.owner[u as usize] as usize;
                            scratch.cross[ro + cu] -= 1;
                            scratch.cross[rn + cu] += 1;
                            scratch.cross[cu * ncells + oc as usize] -= 1;
                            scratch.cross[cu * ncells + nc as usize] += 1;
                        }
                        scratch.owner[v] = nc;
                    }
                }
                let share = (n / ncells.max(1)) as f64;
                {
                    let adj = &scratch.adj;
                    let cross = &scratch.cross;
                    machine.compute(&mut scratch.far, |r, far| {
                        *far = 0;
                        if r >= ncells {
                            return 0.0;
                        }
                        let row = r * ncells;
                        for c in 0..ncells {
                            if c != r && !adj[row + c] {
                                *far += cross[row + c] as usize;
                            }
                        }
                        share
                    });
                }
                machine.group_allreduce_sum_costed(ncells, q);
                scratch.far[..ncells].iter().sum()
            } else {
                scratch.scan[..ncells].iter().map(|s| s.far).sum()
            };
            // Global refresh payload: per cell, β (3 words) plus 2 words
            // per far cross-edge coordinate (the paper's ñ).
            machine.group_allgather_costed(ncells, 3 * ncells + 2 * far_total);
            machine.group_allreduce_sum_costed(ncells, 1);
            scratch.snapshot.copy_from_slice(coords);
            let betas = &scratch.betas;
            scratch.beta_snapshot.copy_from_slice(betas);
        }

        // --- Force computation and displacement per rank (buffers reused
        // across iterations).
        {
            let owned_ref = &scratch.owned;
            let coords_ref = &*coords;
            let owner_ref = &scratch.owner;
            let adj = &scratch.adj;
            let snapshot_ref = &scratch.snapshot;
            let betas_ref = &scratch.betas;
            let beta_snap_ref = &scratch.beta_snapshot;
            let lattice_ref = &lattice;
            let refreshed = it > 0 && it % cfg.block.max(1) == 0;
            machine.compute(&mut scratch.disp, |r, state| {
                let DispState {
                    moves,
                    energy,
                    subidx,
                    cvx,
                    cvy,
                    cm,
                    cmk,
                    fx,
                    fy,
                    nrm,
                    scl,
                    dn,
                    npx,
                    npy,
                    crx,
                } = state;
                moves.clear();
                *energy = 0.0;
                if r >= ncells {
                    return 0.0;
                }
                let my = r;
                let mut ops = 0.0;
                // Inherited lattice repulsion (Eq. 1, per unit mass): sum
                // over all other cells of C·K²·μ_s / dist(φ_my, φ_s),
                // using fresh β for adjacent cells and block-stale β
                // otherwise.
                let my_beta = betas_ref[my];
                let mut inherited = Point2::ZERO;
                if my_beta.mu > 0.0 {
                    for s in 0..ncells {
                        if s == my {
                            continue;
                        }
                        let b = if adj[my * ncells + s] {
                            betas_ref[s]
                        } else {
                            beta_snap_ref[s]
                        };
                        if b.mu > 0.0 {
                            inherited += params.repulsive(my_beta.phi, 1.0, b.phi, b.mu);
                        }
                    }
                    ops += (ncells - 1) as f64;
                }
                // Near field: the own cell's repulsion is resolved one
                // lattice level deeper — a fixed 4×4 sub-lattice of β
                // vertices over the cell's own (fresh) points. Eq. (2)'s
                // single own-β term is the 1×1 limit and collapses local
                // structure; a sub-lattice keeps the per-vertex cost an
                // exact 16 ops regardless of how the layout clumps.
                let my_box = lattice_ref.cell_box(my % q, my / q);
                let mine = &owned_ref[my];
                let nmine = mine.len();
                // Gather the owned vertices' coordinates and masses into
                // contiguous arrays: every pass below streams them with
                // vector loads instead of chasing `mine` indirections. One
                // fused sweep fills all five streams — the split extends it
                // replaces chased the same indirections three times over,
                // and the force accumulators seed from the inherited
                // repulsion scaled by vertex mass exactly like the
                // original's `f = inherited * mv`.
                cvx.resize(nmine, 0.0);
                cvy.resize(nmine, 0.0);
                cm.resize(nmine, 0.0);
                fx.resize(nmine, 0.0);
                fy.resize(nmine, 0.0);
                {
                    let cvx = &mut cvx[..nmine];
                    let cvy = &mut cvy[..nmine];
                    let cm = &mut cm[..nmine];
                    let fx = &mut fx[..nmine];
                    let fy = &mut fy[..nmine];
                    for (i, &v) in mine.iter().enumerate() {
                        let c = coords_ref[v as usize];
                        let m = g.vwgt(v);
                        cvx[i] = c.x;
                        cvy[i] = c.y;
                        cm[i] = m;
                        fx[i] = inherited.x * m;
                        fy[i] = inherited.y * m;
                    }
                }
                // Sub-lattice index per vertex, replicating
                // `my_box.cell_of(SUB, c)` arithmetic exactly (same
                // width/height guards, same divide-multiply-truncate-clamp
                // sequence) in a form the compiler vectorizes.
                subidx.clear();
                let (bw, bh) = (my_box.width(), my_box.height());
                let (bx, by) = (my_box.min.x, my_box.min.y);
                {
                    let cvx = &cvx[..nmine];
                    let cvy = &cvy[..nmine];
                    subidx.extend((0..nmine).map(|i| {
                        let fxn = if bw > 0.0 { (cvx[i] - bx) / bw } else { 0.0 };
                        let fyn = if bh > 0.0 { (cvy[i] - by) / bh } else { 0.0 };
                        let si = ((fxn * SUB as f64) as isize).clamp(0, SUB as isize - 1) as usize;
                        let sj = ((fyn * SUB as f64) as isize).clamp(0, SUB as isize - 1) as usize;
                        (sj * SUB + si) as u8
                    }));
                }
                let mut sub = [Beta::default(); NSUB];
                for i in 0..nmine {
                    let b = &mut sub[subidx[i] as usize];
                    let m = cm[i];
                    b.mu += m;
                    b.phi += Point2::new(cvx[i], cvy[i]) * m;
                }
                ops += nmine as f64;
                for b in sub.iter_mut() {
                    if b.mu > 0.0 {
                        b.phi = b.phi / b.mu;
                    }
                }
                let mut sx = [0.0f64; NSUB];
                let mut sy = [0.0f64; NSUB];
                let mut sm = [0.0f64; NSUB];
                for (i, b) in sub.iter().enumerate() {
                    sx[i] = b.phi.x;
                    sy[i] = b.phi.y;
                    sm[i] = b.mu;
                }
                let ckk = params.c * params.k * params.k;
                // Hoist the per-vertex near-field product `C·K²·m_v`: each
                // of the 16 lane passes rereads it instead of redoing the
                // multiply (the multiply is identical, so so are the bits).
                cmk.clear();
                cmk.extend(cm.iter().map(|&mv| ckk * mv));
                near_field_passes(cvx, cvy, cm, cmk, subidx, &sx, &sy, &sm, fx, fy);
                ops += (NSUB * nmine) as f64;
                ops += (2 * nmine) as f64;
                // Attraction over edges with the freshness rules, folded
                // onto the accumulated near-field forces in vertex order.
                // This loop stays fused and scalar by measurement: the
                // per-edge owner/coordinate gathers bound it, not the
                // sqrt/div (out-of-order execution overlaps the next
                // edge's loads with the current edge's root), and both
                // split variants tried — whole-edge-list passes and
                // L1-blocked chunks — lost more to per-edge buffer
                // traffic and bookkeeping than packed arithmetic saved.
                // Edge charges are counted in an integer and added to
                // `ops` once — the same exact sum as `+= 1.0` per edge,
                // without threading a serial f64 dependency chain through
                // the hot loop.
                let mut nedges = 0usize;
                for (vi, &v) in mine.iter().enumerate() {
                    let cv = Point2::new(cvx[vi], cvy[vi]);
                    let mut f = Point2::new(fx[vi], fy[vi]);
                    for (u, w) in g.neighbors_w(v) {
                        let cu = owner_ref[u as usize] as usize;
                        let pu = if cu == my || adj[my * ncells + cu] {
                            coords_ref[u as usize]
                        } else {
                            clamp_far(lattice_ref, my, cu, snapshot_ref[u as usize])
                        };
                        f += params.attractive(cv, pu) * w;
                        nedges += 1;
                    }
                    fx[vi] = f.x;
                    fy[vi] = f.y;
                }
                ops += nedges as f64;
                // Displacement tail, split so the norms (`(x² + y²).sqrt()`,
                // exactly `Point2::norm`) and step scales run as long
                // vectorizable passes with packed sqrt/div; the scalar pass
                // keeps the energy accumulation and move emission in vertex
                // order, bit-identical to the fused original. A zero norm
                // makes `step / norm` infinite, but such entries fail the
                // `norm > 1e-12` gate and are never read.
                nrm.clear();
                {
                    let fx = &fx[..nmine];
                    let fy = &fy[..nmine];
                    nrm.extend((0..nmine).map(|i| (fx[i] * fx[i] + fy[i] * fy[i]).sqrt()));
                }
                scl.clear();
                scl.extend(nrm.iter().map(|&n| step / n));
                // Displacement norms, moved positions and cell-crossing
                // flags as one more packed pass. The products are the
                // same expressions the fused apply loop computed — `d.x`
                // as `f.x · scale`, `np` as `coords[v] + d` (`cvx` *is*
                // `coords[v].x`: nothing writes coordinates between the
                // gather and the apply of the same iteration) — so every
                // value the serial apply loop folds in is bit-identical
                // to what it used to compute per move. The crossing test
                // replays `QuantileLattice::in_cell`'s exact comparisons
                // against the own cell's cuts (lane constants here).
                // Gated-out entries (zero force norm → infinite scale)
                // are computed but never read.
                dn.resize(nmine, 0.0);
                npx.resize(nmine, 0.0);
                npy.resize(nmine, 0.0);
                crx.resize(nmine, 0);
                let (ci, cj) = (my % q, my / q);
                let xlo = if ci > 0 {
                    lattice_ref.xcuts[ci - 1]
                } else {
                    0.0
                };
                let xhi = if ci + 1 < q {
                    lattice_ref.xcuts[ci]
                } else {
                    0.0
                };
                let yc = &lattice_ref.ycuts[ci];
                let ylo = if cj > 0 { yc[cj - 1] } else { 0.0 };
                let yhi = if cj + 1 < q { yc[cj] } else { 0.0 };
                {
                    let fx = &fx[..nmine];
                    let fy = &fy[..nmine];
                    let scl = &scl[..nmine];
                    let cvx = &cvx[..nmine];
                    let cvy = &cvy[..nmine];
                    let dn = &mut dn[..nmine];
                    let npx = &mut npx[..nmine];
                    let npy = &mut npy[..nmine];
                    let crx = &mut crx[..nmine];
                    for i in 0..nmine {
                        let dx = fx[i] * scl[i];
                        let dy = fy[i] * scl[i];
                        dn[i] = (dx * dx + dy * dy).sqrt();
                        let nx = cvx[i] + dx;
                        let ny = cvy[i] + dy;
                        npx[i] = nx;
                        npy[i] = ny;
                        // Non-short-circuit `&`/`|` on the bools: the
                        // comparisons are side-effect-free, so the truth
                        // table is identical to `in_cell`'s `&&`/`||`
                        // version but compiles to branchless masks.
                        let out_x = ((ci > 0) & (nx < xlo)) | ((ci + 1 < q) & (nx >= xhi));
                        let in_y = ((cj == 0) | (ny >= ylo)) & ((cj + 1 >= q) | (ny < yhi));
                        crx[i] = (out_x | !in_y) as u8;
                    }
                }
                if refreshed {
                    // A block refresh rewrites `owner` mid-iteration while
                    // this rank's owned list stays stale until the
                    // end-of-iteration `apply_deltas`, so a just-flipped
                    // vertex is still in `mine` with `owner[v] != my`. Its
                    // crossing test above used the wrong cell's bounds:
                    // force the flag on so the apply loop runs the full
                    // `cell_of` path against the true owner. On every
                    // other iteration `owner[v] == my` for all of `mine`
                    // and the packed flags are exact as computed.
                    let myu = my as u32;
                    let crx = &mut crx[..nmine];
                    for (i, &v) in mine.iter().enumerate() {
                        crx[i] |= (owner_ref[v as usize] != myu) as u8;
                    }
                }
                for (vi, &v) in mine.iter().enumerate() {
                    let norm = nrm[vi];
                    *energy += norm * norm;
                    if norm > 1e-12 {
                        moves.push((v, Point2::new(npx[vi], npy[vi]), dn[vi], crx[vi]));
                    }
                }
                ops
            });
        }

        // --- Apply moves (owned vertices only — ghosts are by construction
        // other ranks' owned vertices and move on their own ranks), fused
        // with migration detection: a vertex's cell can only change if its
        // coordinates did, and at the top of the iteration `owner[v]`
        // matches `cell_of(coords[v])` for every vertex (initial
        // assignment, block refreshes and prior migrations all enforce
        // it), so scanning the movers covers every possible migration
        // without re-walking all n vertices. Migration batches are keyed
        // by sorted (from, to) pairs — not discovery order, which now
        // follows rank-major move lists — so emission stays deterministic,
        // and `apply_deltas` sorts the owner log, so it never depended on
        // scan order either.
        let mut total_move = 0.0;
        let mut moved = 0usize;
        let mut new_energy = 0.0;
        scratch.mig_pairs.clear();
        for st in &scratch.disp {
            new_energy += st.energy;
            for &(v, np, dnorm, crossed) in &st.moves {
                total_move += dnorm;
                coords[v as usize] = np;
                moved += 1;
                if crossed == 0 {
                    continue;
                }
                let oc = scratch.owner[v as usize];
                let nc = cell_of(np, &lattice);
                if nc != oc {
                    if !scratch.adj[oc as usize * ncells + nc as usize] {
                        scratch.mig_pairs.push((oc, nc));
                    }
                    scratch.deltas.push((v, oc, nc));
                    let (ro, rn) = (oc as usize * ncells, nc as usize * ncells);
                    for &u in g.neighbors(v) {
                        let cu = scratch.owner[u as usize] as usize;
                        scratch.cross[ro + cu] -= 1;
                        scratch.cross[rn + cu] += 1;
                        scratch.cross[cu * ncells + oc as usize] -= 1;
                        scratch.cross[cu * ncells + nc as usize] += 1;
                    }
                    scratch.owner[v as usize] = nc;
                    stats.migrations += 1;
                }
            }
        }
        stats.final_move = if moved > 0 {
            total_move / moved as f64 / params.k
        } else {
            0.0
        };
        scratch.mig_pairs.sort_unstable();
        for o in &mut scratch.outbox {
            o.clear();
        }
        let mut i = 0;
        while i < scratch.mig_pairs.len() {
            let (from, to) = scratch.mig_pairs[i];
            let mut cnt = 0usize;
            while i < scratch.mig_pairs.len() && scratch.mig_pairs[i] == (from, to) {
                cnt += 1;
                i += 1;
            }
            scratch.outbox[from as usize].push((to as usize, CostOnly::new(3 * cnt)));
        }
        machine.exchange_costed(&scratch.outbox);
        // Owned lists pick up this iteration's owner changes (block
        // refresh + migrations) only now: mid-iteration they must stay
        // stale, exactly like the per-iteration rebuild they replace.
        scratch.apply_deltas();

        // Hu's adaptive step control on the global energy (the global
        // reduction this needs is the per-block reduction already charged).
        if new_energy < energy {
            progress += 1;
            if progress >= 5 {
                progress = 0;
                step = (step / t_ratio).min(max_step);
            }
        } else {
            progress = 0;
            step *= t_ratio;
        }
        energy = new_energy;
        if step < 0.005 * params.k {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::edge_length_stats;
    use crate::seq::random_init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sp_graph::gen::grid_2d;
    use sp_machine::CostModel;

    fn setup(n_side: usize, q: usize) -> (Graph, Vec<Point2>, Machine) {
        let g = grid_2d(n_side, n_side);
        let mut rng = StdRng::seed_from_u64(3);
        let coords = random_init(g.n(), &mut rng);
        let m = Machine::new(q * q, CostModel::qdr_infiniband());
        (g, coords, m)
    }

    #[test]
    fn smoothing_improves_edge_uniformity() {
        let (g, mut coords, mut m) = setup(16, 2);
        let before = edge_length_stats(&g, &coords);
        lattice_smooth(
            &g,
            &mut coords,
            2,
            &mut m,
            &LatticeConfig {
                iters: 60,
                step0: 0.8,
                cooling: 0.97,
                ..Default::default()
            },
        );
        let after = edge_length_stats(&g, &coords);
        assert!(
            after.mean < before.mean,
            "mean {} -> {}",
            before.mean,
            after.mean
        );
        assert!(coords.iter().all(|c| c.is_finite()));
    }

    #[test]
    fn charges_compute_and_communication() {
        let (g, mut coords, mut m) = setup(12, 2);
        lattice_smooth(&g, &mut coords, 2, &mut m, &LatticeConfig::default());
        assert!(m.comp_time() > 0.0);
        assert!(m.comm_time() > 0.0);
    }

    #[test]
    fn block_size_reduces_communication() {
        let (g, coords0, _) = setup(16, 3);
        let mut comm = Vec::new();
        for block in [1usize, 8] {
            let mut coords = coords0.clone();
            let mut m = Machine::new(9, CostModel::qdr_infiniband());
            lattice_smooth(
                &g,
                &mut coords,
                3,
                &mut m,
                &LatticeConfig {
                    iters: 16,
                    block,
                    ..Default::default()
                },
            );
            comm.push(m.comm_time());
        }
        assert!(
            comm[1] < comm[0],
            "blocked comm {} should beat per-iteration {}",
            comm[1],
            comm[0]
        );
    }

    #[test]
    fn single_cell_lattice_works() {
        let (g, mut coords, mut m) = setup(8, 1);
        let s = lattice_smooth(&g, &mut coords, 1, &mut m, &LatticeConfig::default());
        assert!(coords.iter().all(|c| c.is_finite()));
        assert_eq!(s.migrations, 0); // one cell: nothing to migrate to
    }

    #[test]
    fn deterministic() {
        let (g, coords0, _) = setup(10, 2);
        let mut a = coords0.clone();
        let mut b = coords0.clone();
        let mut ma = Machine::new(4, CostModel::qdr_infiniband());
        let mut mb = Machine::new(4, CostModel::qdr_infiniband());
        lattice_smooth(&g, &mut a, 2, &mut ma, &LatticeConfig::default());
        lattice_smooth(&g, &mut b, 2, &mut mb, &LatticeConfig::default());
        assert_eq!(a, b);
        assert_eq!(ma.elapsed(), mb.elapsed());
    }

    #[test]
    fn trace_output_is_byte_identical_across_runs() {
        // Regression: halo and migration batches used to be emitted in
        // HashMap iteration order, which differs between executions (std
        // HashMaps are randomly seeded), so two --trace runs of the same
        // input produced different traces. Batches are now keyed by sorted
        // destination, making the full event stream reproducible.
        use sp_machine::TraceRecorder;
        let run = || {
            let (g, mut coords, mut m) = setup(12, 2);
            m.set_recorder(Box::new(TraceRecorder::new(4)));
            lattice_smooth(&g, &mut coords, 2, &mut m, &LatticeConfig::default());
            let rec = TraceRecorder::downcast(m.take_recorder().unwrap()).unwrap();
            rec.chrome_trace()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        // lattice_smooth_with must behave identically on a scratch that
        // just served a different-sized run.
        let (g, coords0, _) = setup(14, 2);
        let mut scratch = SmoothScratch::new();
        {
            // Warm the scratch on another graph and lattice size.
            let (g2, mut c2, mut m2) = setup(9, 3);
            lattice_smooth_with(
                &g2,
                &mut c2,
                3,
                &mut m2,
                &LatticeConfig::default(),
                &mut scratch,
            );
        }
        let mut a = coords0.clone();
        let mut b = coords0.clone();
        let mut ma = Machine::new(4, CostModel::qdr_infiniband());
        let mut mb = Machine::new(4, CostModel::qdr_infiniband());
        lattice_smooth_with(
            &g,
            &mut a,
            2,
            &mut ma,
            &LatticeConfig::default(),
            &mut scratch,
        );
        lattice_smooth(&g, &mut b, 2, &mut mb, &LatticeConfig::default());
        assert_eq!(a, b);
        assert_eq!(ma.elapsed(), mb.elapsed());
    }

    #[test]
    fn quantile_build_matches_full_sort_reference() {
        // Selection must give bit-identical cuts to the sort it replaced.
        let mut rng = StdRng::seed_from_u64(21);
        let pts = random_init(2500, &mut rng);
        for q in [1usize, 2, 3, 5, 8] {
            let lat = QuantileLattice::build(&pts, q);
            let n = pts.len();
            let mut xs: Vec<f64> = pts.iter().map(|c| c.x).collect();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let want: Vec<f64> = (1..q).map(|k| xs[(k * n / q).min(n - 1)]).collect();
            assert_eq!(lat.xcuts, want, "q={q}");
            let mut cols: Vec<Vec<f64>> = vec![Vec::new(); q];
            for c in &pts {
                let i = lat.xcuts.partition_point(|&cut| c.x >= cut);
                cols[i].push(c.y);
            }
            for (i, mut ys) in cols.into_iter().enumerate() {
                if ys.is_empty() {
                    continue;
                }
                ys.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let m = ys.len();
                let want: Vec<f64> = (1..q).map(|k| ys[(k * m / q).min(m - 1)]).collect();
                assert_eq!(lat.ycuts[i], want, "q={q} col={i}");
            }
        }
        // Duplicate-heavy input exercises the repeated-index path.
        let dup: Vec<Point2> = (0..64).map(|i| Point2::new((i % 4) as f64, 1.0)).collect();
        let lat = QuantileLattice::build(&dup, 8);
        let mut xs: Vec<f64> = dup.iter().map(|c| c.x).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let want: Vec<f64> = (1..8).map(|k| xs[(k * 64 / 8).min(63)]).collect();
        assert_eq!(lat.xcuts, want);
    }

    #[test]
    fn clamp_far_lands_in_adjacent_cell() {
        // Uniform point cloud → quantile lattice ≈ uniform grid.
        let mut rng = StdRng::seed_from_u64(4);
        let pts = random_init(4000, &mut rng);
        let lat = QuantileLattice::build(&pts, 4);
        // my cell (0,0) = 0; ghost cell (3,3) = 15; clamped into (1,1).
        let far = Point2::new(lat.bbox().max.x - 1e-6, lat.bbox().max.y - 1e-6);
        let p = clamp_far(&lat, 0, 15, far);
        assert_eq!(lat.cell_of(p), (1, 1));
    }

    #[test]
    fn quantile_lattice_balances_occupancy() {
        let mut rng = StdRng::seed_from_u64(9);
        // A very skewed cloud: dense blob plus sparse halo.
        let mut pts = random_init(3000, &mut rng);
        for p in pts.iter_mut().take(2500) {
            *p = *p * 0.05; // dense corner blob
        }
        let lat = QuantileLattice::build(&pts, 4);
        let occ = lat.occupancy(&pts);
        let max = *occ.iter().max().unwrap();
        let min = *occ.iter().min().unwrap();
        assert!(max <= 2 * (3000 / 16), "max occupancy {max}");
        assert!(min >= (3000 / 16) / 2, "min occupancy {min}");
    }

    #[test]
    fn cell_box_contains_its_points() {
        let mut rng = StdRng::seed_from_u64(11);
        let pts = random_init(1000, &mut rng);
        let lat = QuantileLattice::build(&pts, 3);
        for &p in &pts {
            let (i, j) = lat.cell_of(p);
            assert!(lat.cell_box(i, j).contains(p), "{p:?} not in its cell box");
        }
    }

    #[test]
    fn adjacency_predicate() {
        // The paper's rule: the *four* L1-distance-1 boxes are neighbours;
        // diagonals are far (block-stale data only).
        let q = 3;
        assert!(cell_adjacent(q, 0, 1));
        assert!(cell_adjacent(q, 0, 3));
        assert!(!cell_adjacent(q, 0, 4)); // diagonal is far
        assert!(!cell_adjacent(q, 0, 2));
        assert!(!cell_adjacent(q, 0, 8));
        assert!(cell_adjacent(q, 4, 4));
    }
}
