//! Sequential multilevel Barnes–Hut force-directed embedding (Hu 2006).
//!
//! This plays two roles from the paper: it is the coordinate source for
//! RCB/G30 on coordinate-free graphs (the paper uses Hu's Mathematica
//! implementation there), and it embeds the *coarsest* hierarchy graph
//! inside ScalaPart before the fixed-lattice scheme takes over.

use crate::force::ForceParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sp_coarsen::{CoarsenConfig, Hierarchy};
use sp_geometry::{Point2, QuadTree};
use sp_graph::Graph;

/// Controls for the sequential embedder.
#[derive(Clone, Copy, Debug)]
pub struct SeqEmbedConfig {
    /// Repulsion constant `C` (the paper's twiddle factor; Hu's 0.2).
    pub c: f64,
    /// Barnes–Hut opening threshold.
    pub theta: f64,
    /// Iterations at the coarsest level.
    pub iters_coarsest: usize,
    /// Smoothing iterations per finer level.
    pub iters_smooth: usize,
    /// Initial step as a fraction of `K`.
    pub step0: f64,
    /// Hu's adaptive step ratio `t` (step ×t on energy increase, ÷t after
    /// five consecutive decreases).
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
    /// Coarsening target for the internal hierarchy.
    pub coarsest_size: usize,
}

impl Default for SeqEmbedConfig {
    fn default() -> Self {
        SeqEmbedConfig {
            c: 0.2,
            theta: 0.85,
            iters_coarsest: 300,
            iters_smooth: 100,
            step0: 0.9,
            cooling: 0.9,
            seed: 0xE3BED,
            coarsest_size: 600,
        }
    }
}

/// Uniform random coordinates in a box sized so natural spacing ≈ `K = 1`.
pub fn random_init(n: usize, rng: &mut StdRng) -> Vec<Point2> {
    let side = (n.max(1) as f64).sqrt();
    (0..n)
        .map(|_| Point2::new(rng.random_range(0.0..side), rng.random_range(0.0..side)))
        .collect()
}

/// Run up to `max_iters` force iterations on `coords` in place with Hu's
/// adaptive step-length scheme: every vertex moves `step` in the direction
/// of its net force; the step grows (÷`t`) after five consecutive energy
/// decreases and shrinks (×`t`) on an energy increase, and the layout stops
/// when the step has cooled below 0.5% of `K`. Returns the number of
/// abstract ops performed (edge scans + Barnes–Hut interactions), which the
/// SPMD cost accounting uses.
pub fn force_layout(
    g: &Graph,
    coords: &mut [Point2],
    params: &ForceParams,
    theta: f64,
    max_iters: usize,
    step0: f64,
    t: f64,
) -> f64 {
    use rayon::prelude::*;
    assert_eq!(coords.len(), g.n());
    if g.n() == 0 {
        return 0.0;
    }
    let t = t.clamp(0.5, 0.99);
    let mut step = step0 * params.k;
    let max_step = 3.0 * params.k;
    let mut energy = f64::INFINITY;
    let mut progress = 0u32;
    let mut total_ops = 0.0;
    for _ in 0..max_iters {
        let tree = QuadTree::build(coords, Some(g.vwgts()));
        total_ops += g.n() as f64;
        let coords_ref = &*coords;
        let results: Vec<(Point2, f64, f64)> = (0..g.n() as u32)
            .into_par_iter()
            .map(|v| {
                let cv = coords_ref[v as usize];
                let mv = g.vwgt(v);
                let mut f = Point2::ZERO;
                let mut ops = 0.0;
                for (u, w) in g.neighbors_w(v) {
                    f += params.attractive(cv, coords_ref[u as usize]) * w;
                    ops += 1.0;
                }
                ops += tree.for_each_approx(cv, Some(v), theta, |p, m| {
                    f += params.repulsive(cv, mv, p, m);
                }) as f64;
                let norm = f.norm();
                let d = if norm > 1e-12 {
                    f * (step / norm)
                } else {
                    Point2::ZERO
                };
                (d, norm * norm, ops + 2.0)
            })
            .collect();
        let mut new_energy = 0.0;
        for (v, (d, e, ops)) in results.into_iter().enumerate() {
            coords[v] += d;
            new_energy += e;
            total_ops += ops;
        }
        // Hu's adaptive cooling.
        if new_energy < energy {
            progress += 1;
            if progress >= 5 {
                progress = 0;
                step = (step / t).min(max_step);
            }
        } else {
            progress = 0;
            step *= t;
        }
        energy = new_energy;
        if step < 0.005 * params.k {
            break;
        }
    }
    total_ops
}

/// Full multilevel embedding of `g`: coarsen, random-init and embed the
/// coarsest graph, then repeatedly project down (with small jitter) and
/// smooth. Returns final coordinates.
pub fn embed_multilevel_seq(g: &Graph, cfg: &SeqEmbedConfig) -> Vec<Point2> {
    let h = Hierarchy::build(
        g,
        &CoarsenConfig {
            target_coarsest: cfg.coarsest_size,
            seed: cfg.seed,
            ..Default::default()
        },
    );
    embed_hierarchy_seq(&h, cfg)
        .into_iter()
        .next()
        .expect("hierarchy has at least one level")
}

/// As [`embed_multilevel_seq`] but over a pre-built hierarchy; returns the
/// coordinates of every level, indexed like the hierarchy (finest first).
pub fn embed_hierarchy_seq(h: &Hierarchy, cfg: &SeqEmbedConfig) -> Vec<Vec<Point2>> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let k = h.depth() - 1;
    let coarsest = h.coarsest();
    let mut coords = random_init(coarsest.n(), &mut rng);
    let params = ForceParams::for_domain(cfg.c, area_for(coarsest.n()), coarsest.n());
    force_layout(
        coarsest,
        &mut coords,
        &params,
        cfg.theta,
        cfg.iters_coarsest,
        cfg.step0,
        cfg.cooling,
    );
    let mut per_level = vec![Vec::new(); h.depth()];
    per_level[k] = coords;
    for lvl in (0..k).rev() {
        let fine = &h.levels[lvl].graph;
        // Project: scale the coarse embedding by 2 per the paper, then
        // place fine vertices with small random translations about their
        // coarse vertex.
        // After the ×2 scaling a coarse box of side √n_c becomes ≈ √(4n_c)
        // ≈ √n_f, so the natural spacing K stays 1 at every level.
        let coarse_coords = &per_level[lvl + 1];
        let scaled: Vec<Point2> = coarse_coords.iter().map(|&p| p * 2.0).collect();
        let fine_params = ForceParams::for_domain(cfg.c, area_for(fine.n()), fine.n());
        let jitter = fine_params.k * 0.25;
        let map = h.levels[lvl].map_to_coarser.as_ref().unwrap();
        let mut fc: Vec<Point2> = map
            .iter()
            .map(|&cv| {
                scaled[cv as usize]
                    + Point2::new(
                        rng.random_range(-jitter..jitter),
                        rng.random_range(-jitter..jitter),
                    )
            })
            .collect();
        force_layout(
            fine,
            &mut fc,
            &fine_params,
            cfg.theta,
            cfg.iters_smooth,
            cfg.step0 * 0.4,
            cfg.cooling,
        );
        per_level[lvl] = fc;
    }
    per_level
}

fn area_for(n: usize) -> f64 {
    n.max(1) as f64 // unit natural spacing: K = 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{edge_length_stats, embedding_spread};
    use sp_graph::gen::{delaunay_graph, grid_2d};

    #[test]
    fn layout_reduces_edge_length_variance() {
        // Rand-free deterministic init (splitmix64): the assertion margin
        // must not depend on which rand version (or offline stub) provides
        // StdRng's stream.
        let g = grid_2d(12, 12);
        let side = (g.n() as f64).sqrt();
        let mut state = 1u64;
        let mut next_unit = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut coords: Vec<Point2> = (0..g.n())
            .map(|_| Point2::new(next_unit() * side, next_unit() * side))
            .collect();
        let before = edge_length_stats(&g, &coords);
        let params = ForceParams::for_domain(0.2, g.n() as f64, g.n());
        force_layout(&g, &mut coords, &params, 0.85, 150, 0.9, 0.96);
        let after = edge_length_stats(&g, &coords);
        // A good grid embedding has much tighter edge lengths than random.
        assert!(
            after.cv() < before.cv() * 0.5,
            "cv before {} after {}",
            before.cv(),
            after.cv()
        );
    }

    #[test]
    fn layout_returns_positive_ops() {
        let g = grid_2d(8, 8);
        let mut rng = StdRng::seed_from_u64(2);
        let mut coords = random_init(g.n(), &mut rng);
        let params = ForceParams::for_domain(0.2, 64.0, 64);
        let ops = force_layout(&g, &mut coords, &params, 0.8, 3, 0.9, 0.95);
        assert!(ops > 3.0 * g.n() as f64);
        assert!(coords.iter().all(|c| c.is_finite()));
    }

    #[test]
    fn multilevel_embedding_is_usable_for_partitioning() {
        // The functional requirement: a coordinate bisection of the embedded
        // grid should cut far fewer edges than a random bisection.
        let g = grid_2d(20, 20);
        let coords = embed_multilevel_seq(
            &g,
            &SeqEmbedConfig {
                iters_coarsest: 100,
                iters_smooth: 25,
                ..Default::default()
            },
        );
        assert_eq!(coords.len(), g.n());
        let mut xs: Vec<f64> = coords.iter().map(|p| p.x).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        let bi = sp_graph::Bisection::from_fn(g.n(), |v| coords[v as usize].x >= med);
        let cut = bi.cut_edges(&g);
        // Random bisection of a 20×20 grid cuts ≈ m/2 = 380; a decent
        // embedding-based cut should be several times better.
        assert!(cut < 150, "embedding-based cut too large: {cut}");
    }

    #[test]
    fn embedding_spreads_the_graph() {
        let mut rng = StdRng::seed_from_u64(5);
        let (g, _) = delaunay_graph(400, &mut rng);
        let coords = embed_multilevel_seq(&g, &SeqEmbedConfig::default());
        // The spread metric compares the bbox diagonal to the distance of
        // index-consecutive samples (an over-estimate of the local scale),
        // so well-spread embeddings land around 3–10 and collapsed ones ≈ 1.
        let spread = embedding_spread(&coords);
        assert!(spread > 2.0, "degenerate embedding, spread {spread}");
    }

    #[test]
    fn deterministic_under_seed() {
        let g = grid_2d(10, 10);
        let a = embed_multilevel_seq(&g, &SeqEmbedConfig::default());
        let b = embed_multilevel_seq(&g, &SeqEmbedConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn multilevel_returns_finest_level_coordinates() {
        // Regression: with a deep hierarchy the returned coordinates must
        // cover the *input* graph, not the coarsest level.
        let g = grid_2d(50, 50); // 2500 > default coarsest_size, so depth ≥ 2
        let cfg = SeqEmbedConfig {
            coarsest_size: 300,
            ..Default::default()
        };
        let coords = embed_multilevel_seq(&g, &cfg);
        assert_eq!(coords.len(), g.n());
    }
}
