//! Embedding-quality metrics.

use sp_geometry::{Aabb2, Point2};
use sp_graph::Graph;

/// Summary statistics of embedded edge lengths.
#[derive(Clone, Copy, Debug)]
pub struct EdgeLengthStats {
    pub mean: f64,
    pub std: f64,
    pub max: f64,
}

impl EdgeLengthStats {
    /// Coefficient of variation (std/mean); lower = more uniform mesh.
    pub fn cv(&self) -> f64 {
        if self.mean > 0.0 {
            self.std / self.mean
        } else {
            0.0
        }
    }
}

/// Compute edge-length statistics for an embedding.
pub fn edge_length_stats(g: &Graph, coords: &[Point2]) -> EdgeLengthStats {
    let mut lens = Vec::with_capacity(g.m());
    for v in 0..g.n() as u32 {
        for &u in g.neighbors(v) {
            if u > v {
                lens.push(coords[v as usize].dist(coords[u as usize]));
            }
        }
    }
    if lens.is_empty() {
        return EdgeLengthStats {
            mean: 0.0,
            std: 0.0,
            max: 0.0,
        };
    }
    let mean = lens.iter().sum::<f64>() / lens.len() as f64;
    let var = lens.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / lens.len() as f64;
    let max = lens.iter().copied().fold(0.0, f64::max);
    EdgeLengthStats {
        mean,
        std: var.sqrt(),
        max,
    }
}

/// Structural validity of an embedding: one finite coordinate per vertex,
/// and (for graphs with edges) a non-degenerate spread — a collapsed
/// embedding where every vertex sits on one point cannot support
/// geometric partitioning. Used by sp-verify's embed checkpoint.
pub fn check_embedding(g: &Graph, coords: &[Point2]) -> Result<(), String> {
    if coords.len() != g.n() {
        return Err(format!(
            "embedding has {} coordinates for {} vertices",
            coords.len(),
            g.n()
        ));
    }
    for (v, c) in coords.iter().enumerate() {
        if !c.is_finite() {
            return Err(format!("vertex {v} has non-finite coordinates {c:?}"));
        }
    }
    if g.m() > 0 {
        let first = coords[0];
        if coords.iter().all(|c| (*c - first).norm() < 1e-12) {
            return Err("embedding collapsed to a single point".to_string());
        }
    }
    Ok(())
}

/// Bounding-box diagonal over mean edge length: how far the embedding
/// spreads relative to local structure. Degenerate (collapsed) embeddings
/// have spread ≈ 1.
pub fn embedding_spread(coords: &[Point2]) -> f64 {
    let Some(bb) = Aabb2::from_points(coords) else {
        return 0.0;
    };
    let diag = (bb.width().powi(2) + bb.height().powi(2)).sqrt();
    // Mean nearest-sample distance as the local scale (sampled).
    let n = coords.len();
    if n < 2 {
        return 0.0;
    }
    let step = (n / 256).max(1);
    let mut acc = 0.0;
    let mut cnt = 0;
    let mut i = 0;
    while i + step < n {
        acc += coords[i].dist(coords[i + step]);
        cnt += 1;
        i += step;
    }
    if cnt == 0 || acc == 0.0 {
        return 0.0;
    }
    diag / (acc / cnt as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_graph::gen::{grid_2d, grid_2d_coords};

    #[test]
    fn grid_natural_coords_have_uniform_edges() {
        let g = grid_2d(10, 10);
        let coords = grid_2d_coords(10, 10);
        let s = edge_length_stats(&g, &coords);
        assert!(s.cv() < 1e-9);
        assert!((s.mean - 1.0 / 9.0).abs() < 1e-12);
        assert!((s.max - s.mean).abs() < 1e-9);
    }

    #[test]
    fn collapsed_embedding_has_zero_stats() {
        let g = grid_2d(5, 5);
        let coords = vec![Point2::ZERO; 25];
        let s = edge_length_stats(&g, &coords);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn spread_detects_degenerate_clouds() {
        let spread_line: f64 = embedding_spread(
            &(0..100)
                .map(|i| Point2::new(i as f64, 0.0))
                .collect::<Vec<_>>(),
        );
        assert!(spread_line > 1.0);
        assert_eq!(embedding_spread(&[]), 0.0);
        assert_eq!(embedding_spread(&[Point2::ZERO]), 0.0);
    }
}
