//! Multilevel projection and smoothing (§3, "Multilevel Projection and
//! Smoothing"): embed the coarsest graph, then repeatedly project the
//! embedding to the next finer level — scaling the bounding box and
//! coordinates by 2 per dimension, placing fine vertices with small
//! translations about their coarse vertex, and splitting each lattice cell
//! 2×2 while quadrupling the active rank count — and smooth with a few
//! fixed-lattice iterations.

use crate::force::ForceParams;
use crate::lattice::{lattice_smooth_with, LatticeConfig, LatticeStats, SmoothScratch};
use crate::seq::{force_layout, random_init};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sp_coarsen::Hierarchy;
use sp_geometry::Point2;
use sp_machine::{Machine, Phase};

/// Configuration for the multilevel lattice embedding.
#[derive(Clone, Copy, Debug)]
pub struct MultilevelEmbedConfig {
    /// Lattice smoothing knobs (C, block size, step, cooling).
    pub lattice: LatticeConfig,
    /// Iterations at the coarsest level.
    pub iters_coarsest: usize,
    /// Smoothing iterations per finer level.
    pub iters_smooth: usize,
    /// Barnes–Hut theta for levels that fall back to exact repulsion
    /// (active rank count 1, where the lattice approximation degenerates).
    pub theta: f64,
    /// RNG seed for initial placement and projection jitter.
    pub seed: u64,
    /// Contiguous simulated ranks per host task in each superstep.
    /// Non-zero values are forwarded to [`Machine::set_rank_batch`] at
    /// embed entry; 0 (the default) leaves the machine's own setting —
    /// normally auto: spread evenly over the rayon pool. Purely a host
    /// performance knob — results are bit-identical for every value.
    pub rank_batch: usize,
}

impl Default for MultilevelEmbedConfig {
    fn default() -> Self {
        MultilevelEmbedConfig {
            lattice: LatticeConfig::default(),
            iters_coarsest: 600,
            iters_smooth: 20,
            theta: 1.1,
            seed: 0x1A771CE,
            rank_batch: 0,
        }
    }
}

/// Levels at or below this many vertices smooth with replicated
/// coordinates instead of the distributed lattice (a few thousand vertices
/// fit in one cheap collective).
const REPLICATION_THRESHOLD: usize = 3000;

/// Active rank count at hierarchy level `lvl` (0 = finest): `P/4^lvl`,
/// floored at min(P, 8) — the paper expects the coarsest level to run on
/// "a small number such as 4 or 8" processors, never degenerating to one
/// when more are available.
pub fn ranks_at_level(p: usize, lvl: usize) -> usize {
    (p >> (2 * lvl)).max(p.min(8)).max(1)
}

/// Lattice dimension for a rank count: the largest `q` with `q² ≤ p`.
pub fn lattice_dim(p: usize) -> usize {
    (p as f64).sqrt().floor() as usize
}

/// Smooth a small level with replicated coordinates: every active rank
/// computes forces for its share of vertices against the full point set
/// (Barnes–Hut), and one group allgather per iteration refreshes the
/// replica. For levels of a few thousand vertices this costs one small
/// collective per iteration instead of halo + migration traffic, which is
/// what any implementation does below the distribution-pays-off threshold.
#[allow(clippy::too_many_arguments)]
fn replicated_smooth(
    g: &sp_graph::Graph,
    coords: &mut [Point2],
    active: usize,
    max_iters: usize,
    step0: f64,
    theta: f64,
    cooling: f64,
    c: f64,
    machine: &mut Machine,
) {
    let params = ForceParams::for_domain(c, g.n() as f64, g.n());
    let ops = force_layout(g, coords, &params, theta, max_iters, step0, cooling);
    let iters_est = max_iters.min((ops / (g.n().max(1) as f64 * 20.0)).ceil() as usize + 1);
    let share = ops / active.max(1) as f64;
    let mut states: Vec<()> = vec![(); machine.p()];
    machine.compute(&mut states, |r, _| if r < active { share } else { 0.0 });
    if active > 1 {
        let words = 2 * g.n() / active;
        for _ in 0..iters_est {
            machine.group_allgather_costed(active, active * words);
        }
    }
}

/// A pluggable lattice smoother with the signature of
/// [`lattice_smooth_with`]. The differential tests swap in the
/// pre-optimization reference smoother here while keeping every other
/// pipeline stage identical, so any divergence is attributable to the
/// optimized smoothing kernel alone.
pub type Smoother<'a> = &'a mut dyn FnMut(
    &sp_graph::Graph,
    &mut [Point2],
    usize,
    &mut Machine,
    &LatticeConfig,
    &mut SmoothScratch,
) -> LatticeStats;

/// Embed the hierarchy's finest graph by multilevel lattice embedding on
/// `machine`, charging all computation and communication. Returns finest
/// coordinates.
pub fn multilevel_lattice_embed(
    h: &Hierarchy,
    machine: &mut Machine,
    cfg: &MultilevelEmbedConfig,
) -> Vec<Point2> {
    multilevel_lattice_embed_with(h, machine, cfg, &mut lattice_smooth_with)
}

/// [`multilevel_lattice_embed`] with a caller-supplied lattice smoother
/// for the distributed (large-level) smoothing stages.
pub fn multilevel_lattice_embed_with(
    h: &Hierarchy,
    machine: &mut Machine,
    cfg: &MultilevelEmbedConfig,
    smoother: Smoother<'_>,
) -> Vec<Point2> {
    let p = machine.p();
    let k = h.depth() - 1;
    if cfg.rank_batch != 0 {
        machine.set_rank_batch(cfg.rank_batch);
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // --- Coarsest level: random init + force embedding on the P^k active
    // ranks. The coarsest graph is tiny ("hundreds or few thousands"), so
    // its coordinates are replicated: every active rank computes forces for
    // its share of vertices against the full (Barnes–Hut-approximated)
    // point set and an allgather refreshes the replica each iteration.
    // The numerical layout is computed once here; the machine is charged
    // work/P^k per rank plus the per-iteration allgather.
    let coarsest = h.coarsest();
    let mut coords = random_init(coarsest.n(), &mut rng);
    let pk = ranks_at_level(p, k);
    machine.phase_labeled(Phase::Embed, "coarsest");
    {
        let params = ForceParams::for_domain(cfg.lattice.c, coarsest.n() as f64, coarsest.n());
        let ops = force_layout(
            coarsest,
            &mut coords,
            &params,
            cfg.theta,
            cfg.iters_coarsest,
            cfg.lattice.step0.max(0.8),
            cfg.lattice.cooling,
        );
        let iters_est = cfg
            .iters_coarsest
            .min((ops / (coarsest.n().max(1) as f64 * 20.0)).ceil() as usize + 1);
        let share = ops / pk as f64;
        let mut states: Vec<()> = vec![(); machine.p()];
        machine.compute(&mut states, |r, _| if r < pk { share } else { 0.0 });
        if pk > 1 {
            let words = 2 * coarsest.n() / pk.max(1);
            for _ in 0..iters_est {
                machine.group_allgather_costed(pk, pk * words);
            }
        }
    }
    let mut scratch = SmoothScratch::new();

    // --- Project and smooth, coarse → fine. Coarse levels get more
    // iterations (cheap, and they set the global shape); the two finest
    // levels get half (expensive, and only local smoothing remains) —
    // the paper's "relatively fewer iterations are required ... for
    // smoothing" at scale.
    for lvl in (0..k).rev() {
        machine.phase_labeled(Phase::Embed, &format!("smooth-{lvl}"));
        let n_level = h.levels[lvl].graph.n();
        let level_iters = if n_level <= REPLICATION_THRESHOLD {
            cfg.iters_smooth * 2 // tiny replicated levels: thorough is free
        } else if lvl <= 1 {
            (cfg.iters_smooth / 2).max(6) // finest: local touch-up only
        } else {
            cfg.iters_smooth
        };
        let fine = &h.levels[lvl].graph;
        let map = h.levels[lvl].map_to_coarser.as_ref().unwrap();
        let p_lvl = ranks_at_level(p, lvl);
        let q_lvl = lattice_dim(p_lvl);

        // Projection: scale by 2 per dimension, jitter children around the
        // coarse position (a fraction of the new natural spacing).
        let params = ForceParams::for_domain(cfg.lattice.c, fine.n() as f64, fine.n());
        let jitter = params.k * 0.3;
        let mut fc: Vec<Point2> = map
            .iter()
            .map(|&cv| {
                coords[cv as usize] * 2.0
                    + Point2::new(
                        rng.random_range(-jitter..jitter),
                        rng.random_range(-jitter..jitter),
                    )
            })
            .collect();

        // Projection communication: the 2×2 cell split redistributes each
        // parent's vertices to its three new sibling ranks by nearest-
        // neighbour messages (cost-only: 2 words per redistributed vertex).
        if q_lvl >= 2 {
            let parents = ranks_at_level(p, lvl + 1).max(1);
            let per_parent = fine.n() / parents.max(1);
            let outbox: Vec<Vec<(usize, sp_machine::CostOnly)>> = (0..machine.p())
                .map(|r| {
                    if r < parents && q_lvl * q_lvl > r {
                        // Three quarters of the parent's vertices leave.
                        let chunk = (per_parent / 4).max(1);
                        (1..4usize)
                            .filter_map(|s| {
                                let dest = r + s * parents;
                                (dest < q_lvl * q_lvl)
                                    .then(|| (dest, sp_machine::CostOnly::new(2 * chunk)))
                            })
                            .collect()
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            machine.exchange_costed(&outbox);
        }

        // Smooth: distributed fixed-lattice scheme for big levels,
        // replicated force layout below the pays-off threshold.
        if q_lvl >= 2 && fine.n() > REPLICATION_THRESHOLD {
            smoother(
                fine,
                &mut fc,
                q_lvl,
                machine,
                &LatticeConfig {
                    iters: level_iters,
                    step0: cfg.lattice.step0 * 0.3,
                    ..cfg.lattice
                },
                &mut scratch,
            );
        } else {
            replicated_smooth(
                fine,
                &mut fc,
                p_lvl.min(machine.p()),
                level_iters,
                cfg.lattice.step0 * 0.3,
                cfg.theta,
                cfg.lattice.cooling,
                cfg.lattice.c,
                machine,
            );
        }
        coords = fc;
    }
    coords
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_coarsen::CoarsenConfig;
    use sp_graph::gen::grid_2d;
    use sp_graph::Bisection;
    use sp_machine::CostModel;

    fn hierarchy(side: usize) -> (sp_graph::Graph, Hierarchy) {
        let g = grid_2d(side, side);
        let h = Hierarchy::build(
            &g,
            &CoarsenConfig {
                target_coarsest: 120,
                ..Default::default()
            },
        );
        (g, h)
    }

    #[test]
    fn ranks_shrink_by_four_per_level() {
        assert_eq!(ranks_at_level(1024, 0), 1024);
        assert_eq!(ranks_at_level(1024, 1), 256);
        assert_eq!(ranks_at_level(1024, 2), 64);
        // Floored at min(P, 8): the paper's "small number such as 4 or 8".
        assert_eq!(ranks_at_level(1024, 5), 8);
        assert_eq!(ranks_at_level(4, 3), 4);
        assert_eq!(ranks_at_level(1, 0), 1);
    }

    #[test]
    fn lattice_dim_is_floor_sqrt() {
        assert_eq!(lattice_dim(1), 1);
        assert_eq!(lattice_dim(4), 2);
        assert_eq!(lattice_dim(8), 2);
        assert_eq!(lattice_dim(9), 3);
        assert_eq!(lattice_dim(1024), 32);
    }

    #[test]
    fn multilevel_embedding_supports_good_bisections() {
        let (g, h) = hierarchy(24);
        let mut m = Machine::new(16, CostModel::qdr_infiniband());
        let coords = multilevel_lattice_embed(&h, &mut m, &MultilevelEmbedConfig::default());
        assert_eq!(coords.len(), g.n());
        assert!(coords.iter().all(|c| c.is_finite()));
        // A median x-cut on the embedding should beat a random cut by a lot.
        let mut xs: Vec<f64> = coords.iter().map(|p| p.x).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        let bi = Bisection::from_fn(g.n(), |v| coords[v as usize].x >= med);
        let cut = bi.cut_edges(&g);
        assert!(cut < g.m() / 4, "cut {} vs m {}", cut, g.m());
    }

    #[test]
    fn embedding_time_decreases_with_ranks() {
        let (_, h) = hierarchy(32);
        let mut times = Vec::new();
        for p in [1usize, 16] {
            let mut m = Machine::new(p, CostModel::qdr_infiniband());
            let _ = multilevel_lattice_embed(&h, &mut m, &MultilevelEmbedConfig::default());
            times.push(m.elapsed());
        }
        assert!(
            times[1] < times[0],
            "P=16 ({}) should beat P=1 ({})",
            times[1],
            times[0]
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let (_, h) = hierarchy(20);
        let mut m1 = Machine::new(4, CostModel::qdr_infiniband());
        let mut m2 = Machine::new(4, CostModel::qdr_infiniband());
        let a = multilevel_lattice_embed(&h, &mut m1, &MultilevelEmbedConfig::default());
        let b = multilevel_lattice_embed(&h, &mut m2, &MultilevelEmbedConfig::default());
        assert_eq!(a, b);
    }
}
