//! Force-directed graph embedding: the sequential multilevel Barnes–Hut
//! embedder (Hu 2006, used by the paper to give coordinates to RCB/G30
//! inputs) and ScalaPart's **fixed-lattice parallel embedding** — the
//! paper's main contribution — together with the multilevel projection and
//! smoothing driver that runs it across the coarsening hierarchy on the
//! simulated machine.

pub mod force;
pub mod lattice;
pub mod metrics;
pub mod multilevel;
pub mod seq;

pub use force::ForceParams;
pub use lattice::{
    lattice_smooth, lattice_smooth_with, LatticeConfig, LatticeStats, SmoothScratch,
};
pub use metrics::check_embedding;
pub use multilevel::{
    multilevel_lattice_embed, multilevel_lattice_embed_with, MultilevelEmbedConfig, Smoother,
};
pub use seq::{embed_multilevel_seq, force_layout, random_init, SeqEmbedConfig};
