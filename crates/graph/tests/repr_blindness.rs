//! Representation blindness (satellite of the compact-CSR work): a
//! [`CompactGraph`] and the reference [`Graph`] built from the same edges
//! must agree on the structural fingerprint, metrics computed through
//! [`GraphAccess`], and induced subgraphs — on arbitrary (proptest-driven)
//! edge sets, weighted and unweighted. The full-pipeline leg of this
//! property lives in sp-verify's `repr` stage, which also sweeps the
//! thread matrix.

use sp_graph::{graph_fingerprint, CompactGraph, Graph, GraphAccess, GraphBuilder};

fn assert_bytes_eq(a: &Graph, b: &Graph) {
    assert_eq!(a.xadj(), b.xadj());
    assert_eq!(a.adjncy(), b.adjncy());
    assert_eq!(a.ewgts(), b.ewgts());
    assert_eq!(a.vwgts(), b.vwgts());
}

fn check_agreement(g: &Graph) {
    let c = CompactGraph::from_graph(g);
    // Round-trip is bit-identical, fingerprints agree across reprs.
    assert_bytes_eq(&c.to_graph(), g);
    assert_eq!(graph_fingerprint(&c), graph_fingerprint(g));
    // Trait-level accessors agree row by row.
    assert_eq!(GraphAccess::total_vwgt(&c), g.total_vwgt());
    for v in 0..g.n() as u32 {
        let cv: Vec<_> = GraphAccess::neighbors_w(&c, v).collect();
        let gv: Vec<_> = g.neighbors_w(v).collect();
        assert_eq!(cv, gv, "row {v} drifted");
    }
    // Induced subgraph of the even vertices agrees after materialization.
    let verts: Vec<u32> = (0..g.n() as u32).step_by(2).collect();
    if !verts.is_empty() {
        let (sg, map_g) = g.induced_subgraph(&verts);
        let (sc, map_c) = c.induced_subgraph(&verts);
        assert_eq!(map_g, map_c);
        assert_bytes_eq(&sc.to_graph(), &sg);
        assert_eq!(graph_fingerprint(&sc), graph_fingerprint(&sg));
    }
}

// (Under the offline proptest stub this block is skipped; the
// deterministic checks below still run.)
proptest::proptest! {
    #[test]
    fn compact_and_reference_agree(
        nv in 2usize..32,
        edges in proptest::collection::vec((0usize..32, 0usize..32, 1u32..64u32), 1..90),
        weighted in proptest::bool::ANY,
    ) {
        let mut b = GraphBuilder::new(nv);
        let mut any = false;
        for (u, v, w) in edges {
            let (u, v) = (u % nv, v % nv);
            if u != v {
                b.add_edge(u as u32, v as u32, if weighted { w as f64 / 4.0 } else { 1.0 });
                any = true;
            }
        }
        if any {
            check_agreement(&b.build());
        }
    }
}

#[test]
fn compact_agrees_on_suite_style_graphs() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    check_agreement(&sp_graph::gen::grid_2d(23, 17));
    check_agreement(&sp_graph::gen::delaunay_graph(900, &mut StdRng::seed_from_u64(3)).0);
    check_agreement(&sp_graph::gen::kkt_graph(
        400,
        200,
        5,
        &mut StdRng::seed_from_u64(4),
    ));
}

#[test]
fn fingerprint_distinguishes_weight_changes() {
    let g = sp_graph::gen::grid_2d(5, 5);
    let mut b = GraphBuilder::new(g.n());
    for v in 0..g.n() as u32 {
        for (u, w) in g.neighbors_w(v) {
            if u > v {
                b.add_edge(v, u, w);
            }
        }
    }
    b.set_vwgt(3, 2.0);
    let h = b.build();
    assert_ne!(graph_fingerprint(&g), graph_fingerprint(&h));
}
