//! Acceptance: the parallel builder-free generators must produce
//! byte-identical graphs no matter the rayon pool width. Each family is
//! generated under 1-, 4-, and 8-thread pools and compared array-by-array
//! (offsets, adjacency, edge weights, vertex weights).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_graph::gen::{delaunay_graph, grid_2d, kkt_graph, trace_mesh};
use sp_graph::Graph;

fn assert_bytes_eq(a: &Graph, b: &Graph, what: &str) {
    assert_eq!(a.xadj(), b.xadj(), "{what}: xadj drifted");
    assert_eq!(a.adjncy(), b.adjncy(), "{what}: adjncy drifted");
    assert_eq!(a.ewgts(), b.ewgts(), "{what}: ewgt drifted");
    assert_eq!(a.vwgts(), b.vwgts(), "{what}: vwgt drifted");
}

fn across_pools(build: impl Fn() -> Graph, what: &str) {
    let mut outputs = Vec::new();
    for threads in [1usize, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        outputs.push(pool.install(&build));
    }
    for g in &outputs[1..] {
        assert_bytes_eq(&outputs[0], g, what);
    }
}

#[test]
fn grid_bytes_are_thread_invariant() {
    across_pools(|| grid_2d(37, 53), "grid_2d");
}

#[test]
fn delaunay_bytes_are_thread_invariant() {
    across_pools(
        || delaunay_graph(3000, &mut StdRng::seed_from_u64(11)).0,
        "delaunay_graph",
    );
}

#[test]
fn trace_mesh_bytes_are_thread_invariant() {
    across_pools(
        || trace_mesh(2000, &mut StdRng::seed_from_u64(5)).0,
        "trace_mesh",
    );
}

#[test]
fn kkt_bytes_are_thread_invariant() {
    across_pools(
        || kkt_graph(1200, 600, 5, &mut StdRng::seed_from_u64(9)),
        "kkt_graph",
    );
}
