//! BFS and connectivity utilities.

use crate::csr::Graph;

/// BFS distances (in hops) from `src`; unreachable vertices get `u32::MAX`.
pub fn bfs_distances(g: &Graph, src: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n()];
    if g.n() == 0 {
        return dist;
    }
    let mut queue = std::collections::VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &u in g.neighbors(v) {
            if dist[u as usize] == u32::MAX {
                dist[u as usize] = d + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Connected-component labels (0-based, in order of first discovery) and the
/// number of components.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let mut comp = vec![u32::MAX; g.n()];
    let mut next = 0u32;
    let mut stack = Vec::new();
    for s in 0..g.n() as u32 {
        if comp[s as usize] != u32::MAX {
            continue;
        }
        comp[s as usize] = next;
        stack.push(s);
        while let Some(v) = stack.pop() {
            for &u in g.neighbors(v) {
                if comp[u as usize] == u32::MAX {
                    comp[u as usize] = next;
                    stack.push(u);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

/// `true` if the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    g.n() == 0 || connected_components(g).1 == 1
}

/// Keep only the largest connected component, relabelling vertices.
/// Returns the component graph and the map new-index → old-index.
pub fn largest_component(g: &Graph) -> (Graph, Vec<u32>) {
    let (comp, k) = connected_components(g);
    if k <= 1 {
        return (g.clone(), (0..g.n() as u32).collect());
    }
    let mut sizes = vec![0usize; k];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    let big = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(i, _)| i as u32)
        .unwrap();
    let verts: Vec<u32> = (0..g.n() as u32)
        .filter(|&v| comp[v as usize] == big)
        .collect();
    g.induced_subgraph(&verts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;

    fn two_paths() -> Graph {
        // 0-1-2 and 3-4.
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(3, 4, 1.0);
        b.build()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = two_paths();
        let d = bfs_distances(&g, 0);
        assert_eq!(&d[..3], &[0, 1, 2]);
        assert_eq!(d[3], u32::MAX);
        assert_eq!(d[4], u32::MAX);
    }

    #[test]
    fn component_count_and_labels() {
        let g = two_paths();
        let (comp, k) = connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn largest_component_extraction() {
        let g = two_paths();
        let (big, map) = largest_component(&g);
        assert_eq!(big.n(), 3);
        assert_eq!(big.m(), 2);
        assert_eq!(map, vec![0, 1, 2]);
        assert!(is_connected(&big));
    }

    #[test]
    fn connected_graph_passthrough() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        let g = b.build();
        assert!(is_connected(&g));
        let (same, map) = largest_component(&g);
        assert_eq!(same.n(), 3);
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = GraphBuilder::new(0).build();
        assert!(is_connected(&g));
        let (comp, k) = connected_components(&g);
        assert!(comp.is_empty());
        assert_eq!(k, 0);
    }
}
