//! Builder-free, parallel two-pass CSR assembly.
//!
//! The [`crate::GraphBuilder`] path accumulates a `Vec<(u32, u32, f64)>`
//! tuple buffer — 16 B per undirected edge of transient peak on top of the
//! final CSR. The assemblers here skip that buffer entirely: a first pass
//! computes per-row degrees, a serial prefix sum fixes every row's offset,
//! and a second pass fills each row directly into the final arrays. Both
//! passes are parallelized over contiguous row chunks with `rayon::scope`
//! (coarse fork-join, which the offline rayon stub also executes in real
//! threads), and every chunk writes a disjoint slice of the output.
//!
//! Determinism: a row's content is a pure function of its vertex id, so
//! the output bytes are identical no matter how many threads execute the
//! chunks or how chunks are sized. Rows are canonicalized by sorting on
//! neighbour id, matching the ascending-neighbour convention the builder
//! path emits; rows must be duplicate-free (debug-asserted).

use crate::csr::Graph;

/// Rows per parallel chunk: enough chunks to occupy the pool several times
/// over (for stealing balance under real rayon), but never so small that
/// spawn overhead dominates.
fn chunk_len(n: usize) -> usize {
    let t = rayon::current_num_threads().max(1);
    n.div_ceil(4 * t).max(1024)
}

/// Assemble a weighted CSR graph from a per-row closure. `row` must push
/// `(neighbour, weight)` pairs for vertex `v` — in any order, but with no
/// duplicate neighbours and no self-loops. The closure is called twice per
/// row (count pass, fill pass) and must be deterministic in `v`.
pub fn csr_from_rows<F>(n: usize, vwgt: Vec<f64>, row: F) -> Graph
where
    F: Fn(u32, &mut Vec<(u32, f64)>) + Sync,
{
    assert_eq!(vwgt.len(), n);
    let chunk = chunk_len(n);
    // Pass 1: per-row degree count.
    let mut deg = vec![0usize; n];
    rayon::scope(|s| {
        for (c, dslice) in deg.chunks_mut(chunk).enumerate() {
            let row = &row;
            let start = c * chunk;
            s.spawn(move |_| {
                let mut scratch: Vec<(u32, f64)> = Vec::new();
                for (i, d) in dslice.iter_mut().enumerate() {
                    scratch.clear();
                    row((start + i) as u32, &mut scratch);
                    *d = scratch.len();
                }
            });
        }
    });
    // Serial prefix sum → row offsets.
    let mut xadj = Vec::with_capacity(n + 1);
    let mut acc = 0usize;
    xadj.push(0);
    for d in &deg {
        acc += *d;
        xadj.push(acc);
    }
    drop(deg);
    // Pass 2: direct fill into disjoint per-chunk slices.
    let mut adjncy = vec![0u32; acc];
    let mut ewgt = vec![0f64; acc];
    rayon::scope(|s| {
        let mut arest = adjncy.as_mut_slice();
        let mut erest = ewgt.as_mut_slice();
        let mut start = 0usize;
        while start < n {
            let end = (start + chunk).min(n);
            let len = xadj[end] - xadj[start];
            let (a, ar) = std::mem::take(&mut arest).split_at_mut(len);
            let (e, er) = std::mem::take(&mut erest).split_at_mut(len);
            arest = ar;
            erest = er;
            let row = &row;
            s.spawn(move |_| {
                let mut scratch: Vec<(u32, f64)> = Vec::new();
                let mut off = 0usize;
                for v in start..end {
                    scratch.clear();
                    row(v as u32, &mut scratch);
                    scratch.sort_unstable_by_key(|p| p.0);
                    debug_assert!(
                        scratch.windows(2).all(|w| w[0].0 != w[1].0),
                        "duplicate neighbour in row {v}"
                    );
                    for &(u, w) in &scratch {
                        debug_assert_ne!(u as usize, v, "self-loop in row {v}");
                        a[off] = u;
                        e[off] = w;
                        off += 1;
                    }
                }
                debug_assert_eq!(off, a.len());
            });
            start = end;
        }
    });
    Graph::from_csr(xadj, adjncy, ewgt, vwgt)
}

/// Unit-weight variant of [`csr_from_rows`]: the closure pushes neighbour
/// ids only, every edge weight is `1.0` (one memset, no per-edge work) and
/// every vertex weight is `1.0`.
pub fn csr_unit_from_rows<F>(n: usize, row: F) -> Graph
where
    F: Fn(u32, &mut Vec<u32>) + Sync,
{
    let chunk = chunk_len(n);
    let mut deg = vec![0usize; n];
    rayon::scope(|s| {
        for (c, dslice) in deg.chunks_mut(chunk).enumerate() {
            let row = &row;
            let start = c * chunk;
            s.spawn(move |_| {
                let mut scratch: Vec<u32> = Vec::new();
                for (i, d) in dslice.iter_mut().enumerate() {
                    scratch.clear();
                    row((start + i) as u32, &mut scratch);
                    *d = scratch.len();
                }
            });
        }
    });
    let mut xadj = Vec::with_capacity(n + 1);
    let mut acc = 0usize;
    xadj.push(0);
    for d in &deg {
        acc += *d;
        xadj.push(acc);
    }
    drop(deg);
    let mut adjncy = vec![0u32; acc];
    rayon::scope(|s| {
        let mut arest = adjncy.as_mut_slice();
        let mut start = 0usize;
        while start < n {
            let end = (start + chunk).min(n);
            let len = xadj[end] - xadj[start];
            let (a, ar) = std::mem::take(&mut arest).split_at_mut(len);
            arest = ar;
            let row = &row;
            s.spawn(move |_| {
                let mut scratch: Vec<u32> = Vec::new();
                let mut off = 0usize;
                for v in start..end {
                    scratch.clear();
                    row(v as u32, &mut scratch);
                    scratch.sort_unstable();
                    debug_assert!(
                        scratch.windows(2).all(|w| w[0] != w[1]),
                        "duplicate neighbour in row {v}"
                    );
                    for &u in &scratch {
                        debug_assert_ne!(u as usize, v, "self-loop in row {v}");
                        a[off] = u;
                        off += 1;
                    }
                }
                debug_assert_eq!(off, a.len());
            });
            start = end;
        }
    });
    Graph::from_csr(xadj, adjncy, vec![1.0; acc], vec![1.0; n])
}

/// Sort every CSR row ascending, in parallel over row chunks. Used by
/// assemblers whose scatter fill leaves rows in schedule-dependent order
/// (e.g. the triangle-soup path in the Delaunay generator): after the
/// sort, output bytes are independent of thread count.
pub fn sort_rows(xadj: &[usize], adjncy: &mut [u32]) {
    let n = xadj.len().saturating_sub(1);
    let chunk = chunk_len(n);
    rayon::scope(|s| {
        let mut arest = &mut *adjncy;
        let mut start = 0usize;
        while start < n {
            let end = (start + chunk).min(n);
            let len = xadj[end] - xadj[start];
            let (a, ar) = std::mem::take(&mut arest).split_at_mut(len);
            arest = ar;
            let xs = &xadj[start..=end];
            s.spawn(move |_| {
                let base = xs[0];
                for w in xs.windows(2) {
                    a[w[0] - base..w[1] - base].sort_unstable();
                }
            });
            start = end;
        }
    });
}

/// Assemble a unit-weight CSR graph from an undirected edge list, merging
/// parallel edges by multiplicity (weight = number of copies, matching
/// what `GraphBuilder` computes when every copy carries weight `1.0`).
/// Self-loops are dropped. The pair buffer is 8 B/edge — half the
/// builder's 16 B tuple — and is sorted and consumed in place.
pub fn csr_from_pairs(n: usize, mut pairs: Vec<(u32, u32)>, vwgt: Vec<f64>) -> Graph {
    assert_eq!(vwgt.len(), n);
    pairs.retain(|&(u, v)| u != v);
    for p in pairs.iter_mut() {
        if p.0 > p.1 {
            *p = (p.1, p.0);
        }
        assert!((p.1 as usize) < n, "edge ({},{}) out of range", p.0, p.1);
    }
    pairs.sort_unstable();
    // Counting pass over unique pairs.
    let mut deg = vec![0usize; n];
    let mut i = 0usize;
    while i < pairs.len() {
        let (u, v) = pairs[i];
        while i < pairs.len() && pairs[i] == (u, v) {
            i += 1;
        }
        deg[u as usize] += 1;
        deg[v as usize] += 1;
    }
    let mut xadj = Vec::with_capacity(n + 1);
    let mut acc = 0usize;
    xadj.push(0);
    for d in &deg {
        acc += *d;
        xadj.push(acc);
    }
    let mut adjncy = vec![0u32; acc];
    let mut ewgt = vec![0f64; acc];
    let mut cursor = std::mem::take(&mut deg);
    cursor.copy_from_slice(&xadj[..n]);
    let mut i = 0usize;
    while i < pairs.len() {
        let (u, v) = pairs[i];
        let mut mult = 0usize;
        while i < pairs.len() && pairs[i] == (u, v) {
            mult += 1;
            i += 1;
        }
        let w = mult as f64;
        adjncy[cursor[u as usize]] = v;
        ewgt[cursor[u as usize]] = w;
        cursor[u as usize] += 1;
        adjncy[cursor[v as usize]] = u;
        ewgt[cursor[v as usize]] = w;
        cursor[v as usize] += 1;
    }
    Graph::from_csr(xadj, adjncy, ewgt, vwgt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;

    fn assert_bytes_eq(a: &Graph, b: &Graph) {
        assert_eq!(a.xadj(), b.xadj());
        assert_eq!(a.adjncy(), b.adjncy());
        assert_eq!(a.ewgts(), b.ewgts());
        assert_eq!(a.vwgts(), b.vwgts());
    }

    #[test]
    fn rows_path_matches_builder() {
        // A ring with chords, weighted, emitted both ways.
        let n = 97usize;
        let mut b = GraphBuilder::new(n);
        for v in 0..n as u32 {
            let nx = (v + 1) % n as u32;
            b.add_edge(v, nx, 1.0 + f64::from(v % 3));
            let chord = (v + 7) % n as u32;
            b.add_edge(v, chord, 2.0);
        }
        let reference = b.build();
        let direct = csr_from_rows(n, vec![1.0; n], |v, row| {
            for (u, w) in reference.neighbors_w(v) {
                row.push((u, w));
            }
        });
        assert_bytes_eq(&reference, &direct);
    }

    #[test]
    fn unit_rows_path_matches_builder() {
        let n = 64usize;
        let mut b = GraphBuilder::new(n);
        for v in 0..n as u32 - 1 {
            b.add_edge(v, v + 1, 1.0);
        }
        let reference = b.build();
        let direct = csr_unit_from_rows(n, |v, row| {
            if v > 0 {
                row.push(v - 1);
            }
            if (v as usize) < n - 1 {
                row.push(v + 1);
            }
        });
        assert_bytes_eq(&reference, &direct);
    }

    #[test]
    fn pairs_path_merges_multiplicity_like_builder() {
        let n = 8usize;
        let pairs = vec![(0u32, 1u32), (1, 0), (2, 3), (3, 3), (5, 4), (2, 3)];
        let mut b = GraphBuilder::new(n);
        for &(u, v) in &pairs {
            b.add_edge(u, v, 1.0);
        }
        let reference = b.build();
        let direct = csr_from_pairs(n, pairs, vec![1.0; n]);
        assert_bytes_eq(&reference, &direct);
    }

    #[test]
    fn output_is_thread_count_invariant() {
        // Same topology assembled under pool widths 1, 4, 8 must be
        // byte-identical — the acceptance bar for the parallel path.
        let n = 5000usize;
        let build = || {
            csr_unit_from_rows(n, |v, row| {
                if v > 0 {
                    row.push(v - 1);
                }
                if (v as usize) < n - 1 {
                    row.push(v + 1);
                }
                row.push((v as usize * 37 % n) as u32);
                row.retain(|&u| u != v);
                row.sort_unstable();
                row.dedup();
            })
        };
        let mut outputs = Vec::new();
        for threads in [1usize, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            outputs.push(pool.install(build));
        }
        for g in &outputs[1..] {
            assert_bytes_eq(&outputs[0], g);
        }
    }
}
