//! The nine-graph evaluation suite (Table 1 of the paper), backed by the
//! synthetic generators in [`crate::gen`].
//!
//! Each entry reproduces the *family* of the corresponding UFL graph; sizes
//! scale with [`TestScale`] so the full harness runs in minutes at
//! `Bench` scale while `Paper` scale matches the published vertex counts.

use crate::csr::Graph;
use crate::gen;
use crate::traversal::bfs_distances;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_geometry::Point2;

/// The nine graphs of the paper's Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SuiteGraph {
    Ecology1,
    Ecology2,
    DelaunayN20,
    G3Circuit,
    KktPower,
    HugeTrace,
    DelaunayN23,
    DelaunayN24,
    HugeBubbles,
}

/// How large to instantiate the suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TestScale {
    /// ~1/2000 of the paper sizes; for unit/integration tests.
    Tiny,
    /// ~1/100 of the paper sizes; the default for the benchmark harness.
    Bench,
    /// The paper's published sizes (1–21 M vertices). Slow.
    Paper,
}

impl TestScale {
    /// Divisor applied to the paper's vertex counts.
    pub fn divisor(self) -> usize {
        match self {
            TestScale::Tiny => 2000,
            TestScale::Bench => 100,
            TestScale::Paper => 1,
        }
    }
}

/// An instantiated suite graph.
pub struct TestGraph {
    pub name: &'static str,
    pub graph: Graph,
    /// Natural coordinates where the family has them (meshes/grids);
    /// `None` for kkt_power, which is the paper's coordinate-free case.
    pub coords: Option<Vec<Point2>>,
    /// Which suite entry this is.
    pub which: SuiteGraph,
}

impl SuiteGraph {
    /// All nine graphs in the paper's table order.
    pub fn all() -> [SuiteGraph; 9] {
        [
            SuiteGraph::Ecology1,
            SuiteGraph::Ecology2,
            SuiteGraph::DelaunayN20,
            SuiteGraph::G3Circuit,
            SuiteGraph::KktPower,
            SuiteGraph::HugeTrace,
            SuiteGraph::DelaunayN23,
            SuiteGraph::DelaunayN24,
            SuiteGraph::HugeBubbles,
        ]
    }

    /// The four largest graphs (Fig 9's subjects).
    pub fn largest4() -> [SuiteGraph; 4] {
        [
            SuiteGraph::HugeTrace,
            SuiteGraph::DelaunayN23,
            SuiteGraph::DelaunayN24,
            SuiteGraph::HugeBubbles,
        ]
    }

    pub fn name(self) -> &'static str {
        match self {
            SuiteGraph::Ecology1 => "ecology1",
            SuiteGraph::Ecology2 => "ecology2",
            SuiteGraph::DelaunayN20 => "delaunay_n20",
            SuiteGraph::G3Circuit => "G3_circuit",
            SuiteGraph::KktPower => "kkt_power",
            SuiteGraph::HugeTrace => "hugetrace-00000",
            SuiteGraph::DelaunayN23 => "delaunay_n23",
            SuiteGraph::DelaunayN24 => "delaunay_n24",
            SuiteGraph::HugeBubbles => "hugebubbles-00020",
        }
    }

    /// Paper vertex count (×10⁶ in Table 1).
    pub fn paper_n(self) -> usize {
        match self {
            SuiteGraph::Ecology1 => 1_000_000,
            SuiteGraph::Ecology2 => 990_000,
            SuiteGraph::DelaunayN20 => 1_048_576,
            SuiteGraph::G3Circuit => 1_585_478,
            SuiteGraph::KktPower => 2_063_494,
            SuiteGraph::HugeTrace => 4_588_484,
            SuiteGraph::DelaunayN23 => 8_388_608,
            SuiteGraph::DelaunayN24 => 16_777_216,
            SuiteGraph::HugeBubbles => 21_198_119,
        }
    }

    /// Paper edge count (Table 1, ×10⁶).
    pub fn paper_m(self) -> f64 {
        match self {
            SuiteGraph::Ecology1 => 4.99e6,
            SuiteGraph::Ecology2 => 4.99e6,
            SuiteGraph::DelaunayN20 => 6.29e6,
            SuiteGraph::G3Circuit => 7.66e6,
            SuiteGraph::KktPower => 12.77e6,
            SuiteGraph::HugeTrace => 13.76e6,
            SuiteGraph::DelaunayN23 => 50.33e6,
            SuiteGraph::DelaunayN24 => 100.66e6,
            SuiteGraph::HugeBubbles => 63.58e6,
        }
    }

    /// Instantiate at the given scale with a deterministic seed.
    pub fn instantiate(self, scale: TestScale, seed: u64) -> TestGraph {
        let n = (self.paper_n() / scale.divisor()).max(256);
        let mut rng = StdRng::seed_from_u64(seed ^ (self as u64) << 32);
        let (graph, coords) = match self {
            SuiteGraph::Ecology1 | SuiteGraph::Ecology2 => {
                let side = (n as f64).sqrt().round() as usize;
                (
                    gen::grid_2d(side, side),
                    Some(gen::grid_2d_coords(side, side)),
                )
            }
            SuiteGraph::DelaunayN20 | SuiteGraph::DelaunayN23 | SuiteGraph::DelaunayN24 => {
                let (g, c) = gen::delaunay_graph(n, &mut rng);
                (g, Some(c))
            }
            SuiteGraph::G3Circuit => {
                // G3_circuit has M/N ≈ 4.8: grid (≈4) + ~0.8 jumpers/vertex.
                let side = (n as f64).sqrt().round() as usize;
                let (g, c) = gen::circuit_graph(side, side, 0.85, 8, &mut rng);
                (g, Some(c))
            }
            SuiteGraph::KktPower => {
                let primal = n * 2 / 3;
                (gen::kkt_graph(primal, n - primal, 6, &mut rng), None)
            }
            SuiteGraph::HugeTrace => {
                let (g, c) = gen::trace_mesh(n, &mut rng);
                (g, Some(c))
            }
            SuiteGraph::HugeBubbles => {
                let (g, c) = gen::bubbles_mesh(n, 14, &mut rng);
                (g, Some(c))
            }
        };
        // Relabel by BFS order: UFL matrices circulate in locality-
        // preserving orderings (RCM and friends), which is what makes the
        // paper's block distribution reasonable. Our generators emit
        // random orders, so we restore locality explicitly.
        let (graph, coords) = bfs_relabel(graph, coords);
        TestGraph {
            name: self.name(),
            graph,
            coords,
            which: self,
        }
    }
}

/// Relabel vertices in BFS order from vertex 0 (unreached vertices keep
/// their relative order at the end), permuting coordinates alongside.
fn bfs_relabel(g: Graph, coords: Option<Vec<Point2>>) -> (Graph, Option<Vec<Point2>>) {
    let n = g.n();
    if n == 0 {
        return (g, coords);
    }
    let dist = bfs_distances(&g, 0);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| (dist[v as usize], v));
    // order[new] = old; invert.
    let mut new_id = vec![0u32; n];
    for (new, &old) in order.iter().enumerate() {
        new_id[old as usize] = new as u32;
    }
    // Builder-free permutation: new row i is old row order[i] with ids
    // remapped (two-pass direct fill; rows re-sorted by the assembler).
    let vwgt: Vec<f64> = order.iter().map(|&old| g.vwgt(old)).collect();
    let relabeled = crate::build::csr_from_rows(n, vwgt, |i, row| {
        for (u, w) in g.neighbors_w(order[i as usize]) {
            row.push((new_id[u as usize], w));
        }
    });
    let new_coords = coords.map(|c| order.iter().map(|&old| c[old as usize]).collect());
    (relabeled, new_coords)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    #[test]
    fn all_tiny_graphs_are_valid_and_connected() {
        for sg in SuiteGraph::all() {
            let t = sg.instantiate(TestScale::Tiny, 1);
            t.graph
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", t.name));
            assert!(is_connected(&t.graph), "{} disconnected", t.name);
            if let Some(c) = &t.coords {
                assert_eq!(c.len(), t.graph.n(), "{} coords mismatch", t.name);
            }
            assert!(t.graph.n() >= 256, "{} too small: {}", t.name, t.graph.n());
        }
    }

    #[test]
    fn kkt_is_the_coordinate_free_case() {
        let t = SuiteGraph::KktPower.instantiate(TestScale::Tiny, 1);
        assert!(t.coords.is_none());
    }

    #[test]
    fn density_tracks_paper_families() {
        // Sparse, M a small multiple of N, for every family (paper §1).
        for sg in SuiteGraph::all() {
            let t = sg.instantiate(TestScale::Tiny, 2);
            let ratio = t.graph.m() as f64 / t.graph.n() as f64;
            assert!((0.9..7.0).contains(&ratio), "{}: M/N = {ratio}", t.name);
        }
    }

    #[test]
    fn scales_order_sizes() {
        let tiny = SuiteGraph::DelaunayN20.instantiate(TestScale::Tiny, 3);
        let bench = SuiteGraph::DelaunayN20.instantiate(TestScale::Bench, 3);
        assert!(bench.graph.n() > 10 * tiny.graph.n());
    }

    #[test]
    fn largest4_matches_paper() {
        let names: Vec<_> = SuiteGraph::largest4().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "hugetrace-00000",
                "delaunay_n23",
                "delaunay_n24",
                "hugebubbles-00020"
            ]
        );
    }
}
