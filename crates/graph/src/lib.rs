//! Graph substrate for the ScalaPart reproduction.
//!
//! Provides the CSR graph representation shared by every stage (coarsening,
//! embedding, partitioning, refinement), bisection bookkeeping and quality
//! metrics, BFS/connectivity utilities, Chaco/Metis-format I/O, the synthetic
//! generators standing in for the paper's UFL test suite, and block/geometric
//! distribution of vertices over simulated ranks.

pub mod access;
pub mod build;
pub mod compact;
pub mod csr;
pub mod distr;
pub mod gen;
pub mod io;
pub mod partition;
pub mod suite;
pub mod traversal;

pub use access::{graph_fingerprint, GraphAccess};
pub use build::{csr_from_pairs, csr_from_rows, csr_unit_from_rows};
pub use compact::CompactGraph;
pub use csr::{Graph, GraphBuilder};
pub use partition::{Bisection, PartitionQuality};
pub use suite::{SuiteGraph, TestGraph, TestScale};
