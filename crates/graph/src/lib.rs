//! Graph substrate for the ScalaPart reproduction.
//!
//! Provides the CSR graph representation shared by every stage (coarsening,
//! embedding, partitioning, refinement), bisection bookkeeping and quality
//! metrics, BFS/connectivity utilities, Chaco/Metis-format I/O, the synthetic
//! generators standing in for the paper's UFL test suite, and block/geometric
//! distribution of vertices over simulated ranks.

pub mod access;
pub mod csr;
pub mod distr;
pub mod gen;
pub mod io;
pub mod partition;
pub mod suite;
pub mod traversal;

pub use access::GraphAccess;
pub use csr::{Graph, GraphBuilder};
pub use partition::{Bisection, PartitionQuality};
pub use suite::{SuiteGraph, TestGraph, TestScale};
