//! Text I/O: Chaco/Metis graph format and coordinate files.
//!
//! The UFL graphs in the paper circulate in Chaco/Metis format; supporting
//! it lets users run this library on the real collection. The format:
//! first line `N M [fmt]`, then one line per vertex listing its 1-based
//! neighbours (optionally with weights, which we support for fmt=1/11).

use crate::csr::{Graph, GraphBuilder};
use sp_geometry::Point2;
use std::io::{BufRead, BufWriter, Write};

/// Parse a Chaco/Metis-format graph from a reader.
///
/// Hardened against adversarial input — every malformed file yields an
/// `Err`, never a panic or an unbounded allocation:
/// - header `N` is capped at `u32::MAX` (vertex ids are `u32`; a huge `N`
///   would otherwise attempt a multi-terabyte allocation);
/// - neighbour indices must be in `1..=N` (the format is 1-based; `0` is
///   always corrupt);
/// - self-loops and duplicate neighbours within a vertex line are
///   rejected (the builder would silently drop/merge them, masking
///   corruption);
/// - every edge must be mentioned by *both* endpoints and the resulting
///   edge count must match the header `M`, so truncated or asymmetric
///   files are caught;
/// - edge weights must be finite and positive, vertex weights finite and
///   non-negative (NaN/∞ would poison every downstream quality metric).
pub fn read_chaco<R: BufRead>(r: R) -> Result<Graph, String> {
    let mut lines = r.lines().enumerate();
    // Header (skipping comments).
    let (n, m, has_ewgt, has_vwgt) = loop {
        let (_, line) = lines.next().ok_or("empty file")?;
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let n: u64 = it
            .next()
            .ok_or("missing N")?
            .parse()
            .map_err(|_| "bad N".to_string())?;
        let m: u64 = it
            .next()
            .ok_or("missing M")?
            .parse()
            .map_err(|_| "bad M".to_string())?;
        if n > u32::MAX as u64 {
            return Err(format!("N = {n} exceeds the u32 vertex-id limit"));
        }
        if m > n.saturating_mul(n.saturating_add(1)) / 2 {
            return Err(format!("M = {m} impossible for N = {n}"));
        }
        let fmt = it.next().unwrap_or("0");
        let fmt_digits: Vec<char> = fmt.chars().collect();
        let has_ewgt = fmt_digits.last() == Some(&'1');
        let has_vwgt = fmt_digits.len() >= 2 && fmt_digits[fmt_digits.len() - 2] == '1';
        break (n as usize, m as usize, has_ewgt, has_vwgt);
    };
    // Stream each vertex line straight into the final CSR arrays: a
    // Chaco file *is* an adjacency list, so no builder tuple buffer is
    // needed — the transient peak is the output graph itself plus one
    // line's worth of scratch. Rows are canonicalized ascending and the
    // symmetric pass below both verifies every edge is mentioned by both
    // endpoints and copies the lower endpoint's listed weight onto the
    // upper direction (the builder path's exact semantics).
    let mut xadj: Vec<usize> = Vec::with_capacity(n + 1);
    xadj.push(0);
    // Adversarial headers can declare absurd M; only pre-reserve when the
    // claim is plausibly materializable, otherwise let the vecs grow.
    let (mut adjncy, mut ewgt): (Vec<u32>, Vec<f64>) = if m <= 1 << 28 {
        (Vec::with_capacity(2 * m), Vec::with_capacity(2 * m))
    } else {
        (Vec::new(), Vec::new())
    };
    let mut vwgt = vec![1.0f64; n];
    let mut v = 0u32;
    // Directed mentions: a well-formed file lists every undirected edge
    // once from each endpoint, so the total must be exactly 2M.
    let mut mentions = 0usize;
    let mut row: Vec<(u32, f64)> = Vec::new();
    for (lineno, line) in lines {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.starts_with('%') || line.starts_with('#') {
            continue;
        }
        if v as usize >= n {
            if !line.is_empty() {
                return Err(format!("line {}: more vertex lines than N", lineno + 1));
            }
            continue;
        }
        let mut it = line.split_whitespace().peekable();
        if has_vwgt {
            let w: f64 = it
                .next()
                .ok_or(format!("line {}: missing vertex weight", lineno + 1))?
                .parse()
                .map_err(|_| format!("line {}: bad vertex weight", lineno + 1))?;
            if !w.is_finite() || w < 0.0 {
                return Err(format!("line {}: vertex weight {w} invalid", lineno + 1));
            }
            vwgt[v as usize] = w;
        }
        row.clear();
        while let Some(tok) = it.next() {
            let u: usize = tok
                .parse()
                .map_err(|_| format!("line {}: bad neighbour '{tok}'", lineno + 1))?;
            if u == 0 || u > n {
                return Err(format!("line {}: neighbour {u} out of range", lineno + 1));
            }
            let w = if has_ewgt {
                let w: f64 = it
                    .next()
                    .ok_or(format!("line {}: missing edge weight", lineno + 1))?
                    .parse()
                    .map_err(|_| format!("line {}: bad edge weight", lineno + 1))?;
                if !w.is_finite() || w <= 0.0 {
                    return Err(format!("line {}: edge weight {w} invalid", lineno + 1));
                }
                w
            } else {
                1.0
            };
            let u = (u - 1) as u32;
            if u == v {
                return Err(format!(
                    "line {}: self-loop on vertex {}",
                    lineno + 1,
                    v + 1
                ));
            }
            row.push((u, w));
            mentions += 1;
        }
        row.sort_unstable_by_key(|p| p.0);
        if row.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err(format!("line {}: duplicate neighbour", lineno + 1));
        }
        for &(u, w) in &row {
            adjncy.push(u);
            ewgt.push(w);
        }
        xadj.push(adjncy.len());
        v += 1;
    }
    if (v as usize) != n {
        return Err(format!("expected {n} vertex lines, found {v}"));
    }
    if mentions != 2 * m {
        return Err(format!(
            "header declares {m} edges but vertex lines mention {mentions} endpoints \
             (expected {})",
            2 * m
        ));
    }
    // Symmetry pass: every directed mention needs its reverse (rows are
    // sorted, so the reverse is a binary search away); the lower
    // endpoint's listed weight is canonical for both directions.
    for a in 0..n {
        for k in xadj[a]..xadj[a + 1] {
            let bvtx = adjncy[k] as usize;
            let brow = &adjncy[xadj[bvtx]..xadj[bvtx + 1]];
            match brow.binary_search(&(a as u32)) {
                Ok(pos) => {
                    if a < bvtx {
                        ewgt[xadj[bvtx] + pos] = ewgt[k];
                    }
                }
                Err(_) => {
                    return Err(format!(
                        "asymmetric adjacency: header declares {m} edges, but edge \
                         ({},{}) is mentioned only once",
                        a + 1,
                        bvtx + 1
                    ));
                }
            }
        }
    }
    Ok(Graph::from_csr(xadj, adjncy, ewgt, vwgt))
}

/// Write a graph in Chaco/Metis format (unweighted form).
pub fn write_chaco<W: Write>(g: &Graph, w: W) -> std::io::Result<()> {
    write_chaco_fmt(g, w, false, false)
}

/// Write a graph in Chaco/Metis format with vertex weights (fmt `10`),
/// edge weights (fmt `1`), or both (fmt `11`). Weights print with Rust's
/// shortest round-trip `Display`, so [`read_chaco`] reconstructs them
/// bit-exactly.
pub fn write_chaco_weighted<W: Write>(g: &Graph, w: W) -> std::io::Result<()> {
    write_chaco_fmt(g, w, true, true)
}

fn write_chaco_fmt<W: Write>(g: &Graph, w: W, vwgt: bool, ewgt: bool) -> std::io::Result<()> {
    let mut out = BufWriter::new(w);
    match (vwgt, ewgt) {
        (false, false) => writeln!(out, "{} {}", g.n(), g.m())?,
        (false, true) => writeln!(out, "{} {} 1", g.n(), g.m())?,
        (true, false) => writeln!(out, "{} {} 10", g.n(), g.m())?,
        (true, true) => writeln!(out, "{} {} 11", g.n(), g.m())?,
    }
    for v in 0..g.n() as u32 {
        let mut first = true;
        if vwgt {
            write!(out, "{}", g.vwgt(v))?;
            first = false;
        }
        for (u, wt) in g.neighbors_w(v) {
            if first {
                write!(out, "{}", u + 1)?;
                first = false;
            } else {
                write!(out, " {}", u + 1)?;
            }
            if ewgt {
                write!(out, " {wt}")?;
            }
        }
        writeln!(out)?;
    }
    out.flush()
}

/// Parse a MatrixMarket `coordinate` file as an undirected graph — the
/// native format of the UFL/SuiteSparse collection the paper's suite comes
/// from. The matrix must be square; diagonal entries are dropped; values
/// (if present) become edge weights by absolute value; `pattern` files get
/// unit weights. Both `symmetric` and `general` symmetry are accepted
/// (for `general`, each direction contributes and duplicates merge).
pub fn read_matrix_market<R: BufRead>(r: R) -> Result<Graph, String> {
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or("empty file")?
        .map_err(|e| e.to_string())?;
    let h: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_lowercase())
        .collect();
    if h.len() < 4 || h[0] != "%%matrixmarket" || h[1] != "matrix" {
        return Err("not a MatrixMarket matrix file".into());
    }
    if h[2] != "coordinate" {
        return Err(format!("unsupported storage '{}'", h[2]));
    }
    let pattern = h[3] == "pattern";
    // Dimensions (skipping comments).
    let (n, nnz) = loop {
        let line = lines
            .next()
            .ok_or("missing dimensions")?
            .map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let rows: usize = it
            .next()
            .ok_or("missing rows")?
            .parse()
            .map_err(|_| "bad rows")?;
        let cols: usize = it
            .next()
            .ok_or("missing cols")?
            .parse()
            .map_err(|_| "bad cols")?;
        let nnz: usize = it
            .next()
            .ok_or("missing nnz")?
            .parse()
            .map_err(|_| "bad nnz")?;
        if rows != cols {
            return Err(format!("matrix must be square, got {rows}×{cols}"));
        }
        break (rows, nnz);
    };
    let mut b = GraphBuilder::with_edge_capacity(n, nnz);
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let i: usize = it
            .next()
            .ok_or("missing row index")?
            .parse()
            .map_err(|_| "bad row")?;
        let j: usize = it
            .next()
            .ok_or("missing col index")?
            .parse()
            .map_err(|_| "bad col")?;
        if i == 0 || j == 0 || i > n || j > n {
            return Err(format!("entry ({i},{j}) out of range"));
        }
        let w = if pattern {
            1.0
        } else {
            it.next()
                .ok_or("missing value")?
                .parse::<f64>()
                .map_err(|_| "bad value")?
                .abs()
                .max(1e-12)
        };
        if i != j {
            b.add_edge((i - 1) as u32, (j - 1) as u32, w);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(format!("expected {nnz} entries, found {seen}"));
    }
    Ok(b.build())
}

/// Read whitespace-separated `x y` coordinate lines.
pub fn read_coords<R: BufRead>(r: R) -> Result<Vec<Point2>, String> {
    let mut pts = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let x: f64 = it
            .next()
            .ok_or(format!("line {}: missing x", i + 1))?
            .parse()
            .map_err(|_| format!("line {}: bad x", i + 1))?;
        let y: f64 = it
            .next()
            .ok_or(format!("line {}: missing y", i + 1))?
            .parse()
            .map_err(|_| format!("line {}: bad y", i + 1))?;
        pts.push(Point2::new(x, y));
    }
    Ok(pts)
}

/// Write coordinates, one `x y` pair per line.
pub fn write_coords<W: Write>(pts: &[Point2], w: W) -> std::io::Result<()> {
    let mut out = BufWriter::new(w);
    for p in pts {
        writeln!(out, "{} {}", p.x, p.y)?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid::grid_2d;

    #[test]
    fn chaco_roundtrip() {
        let g = grid_2d(6, 7);
        let mut buf = Vec::new();
        write_chaco(&g, &mut buf).unwrap();
        let g2 = read_chaco(buf.as_slice()).unwrap();
        assert_eq!(g.n(), g2.n());
        assert_eq!(g.m(), g2.m());
        assert_eq!(g.adjncy(), g2.adjncy());
        g2.validate().unwrap();
    }

    #[test]
    fn chaco_reads_weighted_format() {
        let text = "3 2 11\n5 2 10\n3 1 10 3 7\n2 2 7\n";
        let g = read_chaco(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert_eq!(g.vwgt(0), 5.0);
        assert_eq!(g.vwgt(1), 3.0);
        let w01 = g.neighbors_w(0).find(|&(u, _)| u == 1).unwrap().1;
        assert_eq!(w01, 10.0);
        g.validate().unwrap();
    }

    #[test]
    fn chaco_rejects_out_of_range() {
        let text = "2 1\n3\n1\n";
        assert!(read_chaco(text.as_bytes()).is_err());
    }

    #[test]
    fn chaco_skips_comments() {
        let text = "% a comment\n2 1\n2\n1\n";
        let g = read_chaco(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 2);
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn chaco_weighted_roundtrip_is_bit_exact() {
        let mut b = GraphBuilder::new(4);
        b.set_vwgt(0, 2.5);
        b.set_vwgt(3, 0.125);
        b.add_edge(0, 1, 1.75);
        b.add_edge(1, 2, 1e-3);
        b.add_edge(2, 3, 123456.789);
        b.add_edge(0, 3, 7.0);
        let g = b.build();
        let mut buf = Vec::new();
        write_chaco_weighted(&g, &mut buf).unwrap();
        let g2 = read_chaco(buf.as_slice()).unwrap();
        assert_eq!(g.xadj(), g2.xadj());
        assert_eq!(g.adjncy(), g2.adjncy());
        assert_eq!(g.ewgts(), g2.ewgts());
        assert_eq!(g.vwgts(), g2.vwgts());
    }

    #[test]
    fn chaco_rejects_adversarial_input() {
        // Neighbour index 0 (the format is 1-based).
        assert!(read_chaco("2 1\n0\n1\n".as_bytes()).is_err());
        // Self-loop.
        assert!(read_chaco("2 1\n1 2\n1\n".as_bytes())
            .unwrap_err()
            .contains("self-loop"));
        // Duplicate neighbour in one line.
        assert!(read_chaco("3 2\n2 2\n1 1\n\n".as_bytes())
            .unwrap_err()
            .contains("duplicate"));
        // u32 overflow / absurd header: must Err, not allocate terabytes.
        assert!(read_chaco("5000000000 1\n".as_bytes())
            .unwrap_err()
            .contains("u32"));
        // M impossible for N.
        assert!(read_chaco("3 99\n2\n1\n\n".as_bytes()).is_err());
        // Asymmetric adjacency: edge mentioned from one side only.
        assert!(read_chaco("2 1\n2\n\n".as_bytes()).is_err());
        // Header/mention count mismatch (truncated file).
        assert!(read_chaco("3 2\n2\n1\n\n".as_bytes()).is_err());
        // Non-finite / non-positive weights.
        assert!(read_chaco("2 1 1\n2 NaN\n1 NaN\n".as_bytes()).is_err());
        assert!(read_chaco("2 1 1\n2 -1\n1 -1\n".as_bytes()).is_err());
        assert!(read_chaco("2 1 11\n-3 2 1\n1 1 1\n".as_bytes()).is_err());
    }

    // Property: write → read is the identity on CSR bits, weighted and
    // unweighted. (Under the offline proptest stub this block is skipped;
    // the deterministic roundtrip tests above still run.)
    proptest::proptest! {
        #[test]
        fn chaco_roundtrip_property(nv in 2usize..24, edges in proptest::collection::vec((0usize..24, 0usize..24, 1u32..1000u32), 1..60)) {
            let mut b = GraphBuilder::new(nv);
            let mut any = false;
            for (u, v, w) in edges {
                let (u, v) = (u % nv, v % nv);
                if u != v {
                    b.add_edge(u as u32, v as u32, w as f64 / 8.0);
                    any = true;
                }
            }
            if any {
                let g = b.build();
                for weighted in [false, true] {
                    let mut buf = Vec::new();
                    if weighted {
                        write_chaco_weighted(&g, &mut buf).unwrap();
                    } else {
                        write_chaco(&g, &mut buf).unwrap();
                    }
                    let g2 = read_chaco(buf.as_slice()).unwrap();
                    assert_eq!(g.xadj(), g2.xadj());
                    assert_eq!(g.adjncy(), g2.adjncy());
                    if weighted {
                        assert_eq!(g.ewgts(), g2.ewgts());
                        assert_eq!(g.vwgts(), g2.vwgts());
                    }
                }
            }
        }
    }

    #[test]
    fn matrix_market_symmetric_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    % a comment\n\
                    3 3 4\n1 1\n2 1\n3 1\n3 2\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3); // diagonal dropped; edges 1-2, 1-3, 2-3
        g.validate().unwrap();
    }

    #[test]
    fn matrix_market_real_values_become_weights() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n2 1 -4.5\n1 1 3.0\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.m(), 1);
        let w = g.neighbors_w(0).next().unwrap().1;
        assert_eq!(w, 4.5); // absolute value
    }

    #[test]
    fn matrix_market_rejects_bad_input() {
        assert!(
            read_matrix_market("%%MatrixMarket matrix array real general\n".as_bytes()).is_err()
        );
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 1\n".as_bytes()
        )
        .is_err()); // non-square
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n".as_bytes()
        )
        .is_err()); // nnz mismatch
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n".as_bytes()
        )
        .is_err()); // out of range
    }

    #[test]
    fn coords_roundtrip() {
        let pts = vec![Point2::new(0.5, -1.25), Point2::new(3.0, 4.0)];
        let mut buf = Vec::new();
        write_coords(&pts, &mut buf).unwrap();
        let back = read_coords(buf.as_slice()).unwrap();
        assert_eq!(back, pts);
    }

    #[test]
    fn coords_reject_garbage() {
        assert!(read_coords("1.0 nope\n".as_bytes()).is_err());
        assert!(read_coords("1.0\n".as_bytes()).is_err());
    }
}
