//! Read-only graph access as a trait, so algorithms can run over stores
//! other than the concrete CSR [`Graph`] — notably sp-stream's
//! `DeltaOverlay`, which layers a mutation chain over an immutable base.
//!
//! The contract mirrors the CSR accessors exactly, including **iteration
//! order**: `neighbors_w(v)` must yield a fixed, implementation-defined
//! order that is stable across calls, because refinement accumulates
//! floating-point gains in that order and the determinism story (bit-exact
//! results across runs, threads, and overlay-vs-compacted stores) depends
//! on the order agreeing between equivalent stores.

use crate::csr::Graph;
use crate::partition::Bisection;

/// Read-only access to an undirected weighted graph.
pub trait GraphAccess {
    /// Number of vertices.
    fn n(&self) -> usize;
    /// Number of undirected edges.
    fn m(&self) -> usize;
    /// Degree of vertex `v`.
    fn degree(&self, v: u32) -> usize;
    /// Vertex weight (mass) of `v`.
    fn vwgt(&self, v: u32) -> f64;
    /// Neighbours of `v` with edge weights, in the store's canonical order.
    fn neighbors_w(&self, v: u32) -> impl Iterator<Item = (u32, f64)> + '_;
    /// Sum of all vertex weights, accumulated in ascending vertex order
    /// (implementations must preserve this order for bit-exactness).
    fn total_vwgt(&self) -> f64 {
        (0..self.n() as u32).map(|v| self.vwgt(v)).sum()
    }
}

impl GraphAccess for Graph {
    #[inline]
    fn n(&self) -> usize {
        Graph::n(self)
    }
    #[inline]
    fn m(&self) -> usize {
        Graph::m(self)
    }
    #[inline]
    fn degree(&self, v: u32) -> usize {
        Graph::degree(self, v)
    }
    #[inline]
    fn vwgt(&self, v: u32) -> f64 {
        Graph::vwgt(self, v)
    }
    #[inline]
    fn neighbors_w(&self, v: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        Graph::neighbors_w(self, v)
    }
    fn total_vwgt(&self) -> f64 {
        Graph::total_vwgt(self)
    }
}

/// Structural fingerprint of a graph over any store: FNV-1a across vertex
/// count, per-row degrees, neighbour ids, and the raw bits of edge and
/// vertex weights, in canonical iteration order. Two stores representing
/// the same graph (e.g. [`crate::CompactGraph`] and the reference CSR it
/// was built from) hash identically; any structural or weight difference
/// — including elided-versus-materialized unit weights — does not.
pub fn graph_fingerprint<G: GraphAccess>(g: &G) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut feed = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    feed(g.n() as u64);
    feed(g.m() as u64);
    for v in 0..g.n() as u32 {
        feed(g.degree(v) as u64);
        feed(g.vwgt(v).to_bits());
        for (u, w) in g.neighbors_w(v) {
            feed(u as u64);
            feed(w.to_bits());
        }
    }
    h
}

/// Weighted cut of a bisection over any graph store (each edge counted
/// once via `u > v`), matching [`Bisection::cut`] bit-for-bit on CSR.
pub fn cut_of<G: GraphAccess>(g: &G, bi: &Bisection) -> f64 {
    let mut c = 0.0;
    for v in 0..g.n() as u32 {
        let sv = bi.side(v);
        for (u, w) in g.neighbors_w(v) {
            if u > v && bi.side(u) != sv {
                c += w;
            }
        }
    }
    c
}

/// Unweighted cut-edge count over any graph store.
pub fn cut_edges_of<G: GraphAccess>(g: &G, bi: &Bisection) -> usize {
    let mut c = 0;
    for v in 0..g.n() as u32 {
        let sv = bi.side(v);
        for (u, _) in g.neighbors_w(v) {
            if u > v && bi.side(u) != sv {
                c += 1;
            }
        }
    }
    c
}

/// Per-side vertex weights, accumulated in ascending vertex order
/// (bit-identical to [`Bisection::weights`] on CSR).
pub fn weights_of<G: GraphAccess>(g: &G, bi: &Bisection) -> (f64, f64) {
    let mut w = [0.0f64; 2];
    for v in 0..g.n() as u32 {
        w[bi.side(v) as usize] += g.vwgt(v);
    }
    (w[0], w[1])
}

/// Weighted imbalance `max(w0, w1) / (total / 2) − 1` over any store.
pub fn imbalance_of<G: GraphAccess>(g: &G, bi: &Bisection) -> f64 {
    let (w0, w1) = weights_of(g, bi);
    let total = w0 + w1;
    if total <= 0.0 {
        return 0.0;
    }
    w0.max(w1) / (total / 2.0) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 2.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 3, 4.0);
        b.add_edge(3, 0, 1.0);
        b.set_vwgt(2, 3.0);
        b.build()
    }

    #[test]
    fn trait_metrics_agree_with_inherent() {
        let g = diamond();
        let bi = Bisection::new(vec![0, 0, 1, 1]);
        assert_eq!(cut_of(&g, &bi), bi.cut(&g));
        assert_eq!(cut_edges_of(&g, &bi), bi.cut_edges(&g));
        assert_eq!(weights_of(&g, &bi), bi.weights(&g));
        assert_eq!(imbalance_of(&g, &bi), bi.imbalance(&g));
        assert_eq!(GraphAccess::total_vwgt(&g), g.total_vwgt());
        assert_eq!(GraphAccess::m(&g), 4);
    }

    #[test]
    fn neighbor_order_matches_csr() {
        let g = diamond();
        for v in 0..4u32 {
            let via_trait: Vec<_> = GraphAccess::neighbors_w(&g, v).collect();
            let via_csr: Vec<_> = g.neighbors_w(v).collect();
            assert_eq!(via_trait, via_csr);
        }
    }
}
