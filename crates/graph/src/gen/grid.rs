//! Regular 2-D grid graphs (5-point stencil), the "ecology" analog.
//!
//! The ecology1/ecology2 matrices are 5-point-stencil discretisations of a
//! rectangular landscape (circuitscape models); a `k × k` grid graph has the
//! same structure exactly.

use crate::build::csr_unit_from_rows;
use crate::csr::Graph;
use sp_geometry::Point2;

/// `rows × cols` grid with 4-neighbour connectivity.
///
/// Assembled builder-free: each vertex's stencil is computed directly into
/// the final CSR (parallel two-pass fill, no transient edge list), which
/// keeps the generator's peak at the size of the output graph.
pub fn grid_2d(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    csr_unit_from_rows(n, |v, row| {
        let r = v as usize / cols;
        let c = v as usize % cols;
        // Ascending neighbour order: up, left, right, down.
        if r > 0 {
            row.push(v - cols as u32);
        }
        if c > 0 {
            row.push(v - 1);
        }
        if c + 1 < cols {
            row.push(v + 1);
        }
        if r + 1 < rows {
            row.push(v + cols as u32);
        }
    })
}

/// Natural coordinates of the grid vertices in the unit square.
pub fn grid_2d_coords(rows: usize, cols: usize) -> Vec<Point2> {
    let mut pts = Vec::with_capacity(rows * cols);
    let dr = if rows > 1 {
        1.0 / (rows - 1) as f64
    } else {
        0.0
    };
    let dc = if cols > 1 {
        1.0 / (cols - 1) as f64
    } else {
        0.0
    };
    for r in 0..rows {
        for c in 0..cols {
            pts.push(Point2::new(c as f64 * dc, r as f64 * dr));
        }
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    #[test]
    fn grid_counts() {
        let g = grid_2d(10, 7);
        assert_eq!(g.n(), 70);
        // Edges: 10*6 horizontal + 9*7 vertical.
        assert_eq!(g.m(), 60 + 63);
        g.validate().unwrap();
        assert!(is_connected(&g));
    }

    #[test]
    fn grid_degrees() {
        let g = grid_2d(3, 3);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(1), 3); // edge
        assert_eq!(g.degree(4), 4); // centre
    }

    #[test]
    fn coords_cover_unit_square() {
        let pts = grid_2d_coords(3, 5);
        assert_eq!(pts.len(), 15);
        assert_eq!(pts[0], Point2::new(0.0, 0.0));
        assert_eq!(pts[14], Point2::new(1.0, 1.0));
    }

    #[test]
    fn degenerate_single_row() {
        let g = grid_2d(1, 5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 4);
        let pts = grid_2d_coords(1, 5);
        assert!(pts.iter().all(|p| p.y == 0.0));
    }
}
