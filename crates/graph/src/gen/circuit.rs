//! Circuit-style graphs: a grid backbone with sparse longer-range links.
//!
//! `G3_circuit` is a circuit-simulation matrix — mostly local (mesh-like)
//! connectivity plus a modest number of nets that span farther than the
//! immediate neighbourhood. We reproduce that as a 2-D grid (local wiring)
//! with an extra fraction of random "jumper" edges whose span is drawn from
//! a short-tailed distribution in grid space.

use crate::csr::{Graph, GraphBuilder};
use rand::Rng;
use sp_geometry::Point2;

/// Grid of `rows × cols` plus `extra_frac · n` jumper edges. Jumpers connect
/// a vertex to another within a `span × span` window, modelling short nets;
/// a small share (10%) are long-range (anywhere), modelling global nets like
/// power rails.
pub fn circuit_graph<R: Rng>(
    rows: usize,
    cols: usize,
    extra_frac: f64,
    span: usize,
    rng: &mut R,
) -> (Graph, Vec<Point2>) {
    let n = rows * cols;
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut b = GraphBuilder::with_edge_capacity(n, 2 * n + (extra_frac * n as f64) as usize);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1), 1.0);
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c), 1.0);
            }
        }
    }
    let jumpers = (extra_frac * n as f64) as usize;
    for _ in 0..jumpers {
        let r = rng.random_range(0..rows);
        let c = rng.random_range(0..cols);
        let (r2, c2) = if rng.random_range(0.0..1.0) < 0.1 {
            // Global net.
            (rng.random_range(0..rows), rng.random_range(0..cols))
        } else {
            // Short net within the window.
            let dr = rng.random_range(0..=span) as i64 - (span / 2) as i64;
            let dc = rng.random_range(0..=span) as i64 - (span / 2) as i64;
            (
                (r as i64 + dr).clamp(0, rows as i64 - 1) as usize,
                (c as i64 + dc).clamp(0, cols as i64 - 1) as usize,
            )
        };
        if (r, c) != (r2, c2) {
            b.add_edge(idx(r, c), idx(r2, c2), 1.0);
        }
    }
    let coords = super::grid::grid_2d_coords(rows, cols);
    (b.build(), coords)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn circuit_has_grid_plus_jumpers() {
        let mut rng = StdRng::seed_from_u64(5);
        let (g, coords) = circuit_graph(40, 40, 0.4, 6, &mut rng);
        assert_eq!(g.n(), 1600);
        assert_eq!(coords.len(), 1600);
        let grid_edges = 2 * 40 * 39;
        assert!(g.m() > grid_edges, "no jumpers added");
        assert!(g.m() < grid_edges + 700);
        g.validate().unwrap();
        assert!(is_connected(&g));
    }

    #[test]
    fn zero_extra_is_pure_grid() {
        let mut rng = StdRng::seed_from_u64(6);
        let (g, _) = circuit_graph(10, 10, 0.0, 4, &mut rng);
        assert_eq!(g.m(), 2 * 10 * 9);
    }

    #[test]
    fn deterministic_under_seed() {
        let (a, _) = circuit_graph(20, 20, 0.3, 5, &mut StdRng::seed_from_u64(1));
        let (b, _) = circuit_graph(20, 20, 0.3, 5, &mut StdRng::seed_from_u64(1));
        assert_eq!(a.m(), b.m());
        assert_eq!(a.adjncy(), b.adjncy());
    }
}
