//! Random geometric graphs: points in the unit square, edges within radius.
//!
//! Used for small illustrative examples (Fig 1's lattice picture) and as a
//! well-shaped mesh-like family for tests; neighbour search uses uniform
//! cell binning so construction is O(n) in expectation.

use crate::csr::{Graph, GraphBuilder};
use rand::Rng;
use sp_geometry::Point2;

/// `n` uniform points in the unit square, edges between pairs at distance
/// `< radius`. Isolated vertices are possible at small radii; callers that
/// need connectivity should take the largest component.
pub fn random_geometric_graph<R: Rng>(n: usize, radius: f64, rng: &mut R) -> (Graph, Vec<Point2>) {
    let pts: Vec<Point2> = (0..n)
        .map(|_| Point2::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
        .collect();
    let cells = ((1.0 / radius).floor() as usize).clamp(1, 4096);
    let cell_of = |p: Point2| -> (usize, usize) {
        (
            ((p.x * cells as f64) as usize).min(cells - 1),
            ((p.y * cells as f64) as usize).min(cells - 1),
        )
    };
    let mut bins: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
    for (i, &p) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        bins[cy * cells + cx].push(i as u32);
    }
    let mut b = GraphBuilder::new(n);
    let r2 = radius * radius;
    for (i, &p) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells as i64 || ny >= cells as i64 {
                    continue;
                }
                for &j in &bins[ny as usize * cells + nx as usize] {
                    if j as usize > i && (pts[j as usize] - p).norm_sq() < r2 {
                        b.add_edge(i as u32, j, 1.0);
                    }
                }
            }
        }
    }
    (b.build(), pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn edges_respect_radius() {
        let mut rng = StdRng::seed_from_u64(9);
        let (g, pts) = random_geometric_graph(400, 0.08, &mut rng);
        g.validate().unwrap();
        for v in 0..g.n() as u32 {
            for &u in g.neighbors(v) {
                assert!(pts[v as usize].dist(pts[u as usize]) < 0.08);
            }
        }
    }

    #[test]
    fn no_close_pair_missed() {
        let mut rng = StdRng::seed_from_u64(10);
        let (g, pts) = random_geometric_graph(200, 0.1, &mut rng);
        for i in 0..200u32 {
            for j in i + 1..200u32 {
                if pts[i as usize].dist(pts[j as usize]) < 0.1 {
                    assert!(g.neighbors(i).contains(&j), "missing edge ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn density_grows_with_radius() {
        let mut rng = StdRng::seed_from_u64(11);
        let (small, _) = random_geometric_graph(500, 0.05, &mut rng);
        let mut rng = StdRng::seed_from_u64(11);
        let (large, _) = random_geometric_graph(500, 0.15, &mut rng);
        assert!(large.m() > small.m() * 3);
    }
}
