//! Shaped Delaunay meshes: the hugetrace / hugebubbles analogs.
//!
//! The `hugetrace-*` and `hugebubbles-*` graphs in the paper come from the
//! "frames" family of 2-D dynamic simulations: enormous triangulated
//! regions with non-convex, hole-riddled geometry. We reproduce the family
//! by scattering points inside a shaped region and Delaunay-triangulating,
//! then deleting triangles whose centroid falls outside the region, which
//! leaves the same kind of thin, hole-riddled planar mesh.

use crate::csr::Graph;
use crate::gen::delaunay::delaunay_of_points;
use crate::traversal::largest_component;
use rand::Rng;
use sp_geometry::Point2;

/// A long serpentine band ("trace"): points along a sinusoidal ribbon.
/// Produces a planar mesh with tiny separators (the paper's hugetrace cuts
/// are the smallest in the suite relative to N).
pub fn trace_mesh<R: Rng>(n: usize, rng: &mut R) -> (Graph, Vec<Point2>) {
    // Ribbon: x ∈ [0, L], centreline y = A sin(ωx), half-width w.
    let length: f64 = 8.0;
    let amp: f64 = 1.0;
    let omega: f64 = 0.9;
    let half_w = 0.8;
    let pts: Vec<Point2> = (0..n)
        .map(|_| {
            let x = rng.random_range(0.0..length);
            let y0 = amp * (omega * x).sin();
            let y = y0 + rng.random_range(-half_w..half_w);
            Point2::new(x, y)
        })
        .collect();
    filtered_mesh(pts, |p| {
        let y0 = amp * (omega * p.x).sin();
        (p.y - y0).abs() <= half_w * 1.05
    })
}

/// A disk with circular holes ("bubbles"): points in the disk, rejected
/// inside the bubbles. Gives a planar mesh whose best separators thread
/// between holes.
pub fn bubbles_mesh<R: Rng>(n: usize, n_bubbles: usize, rng: &mut R) -> (Graph, Vec<Point2>) {
    // An elongated elliptical region (the paper's frames family is
    // elongated, so the best cuts scale with the short axis) riddled with
    // circular holes along its length.
    let (a, b) = (2.0f64, 0.75f64);
    let mut bubbles: Vec<(Point2, f64)> = Vec::with_capacity(n_bubbles);
    for i in 0..n_bubbles {
        let cx = -a * 0.85
            + 2.0 * a * 0.85 * (i as f64 + 0.5) / n_bubbles as f64
            + rng.random_range(-0.1..0.1);
        let cy = rng.random_range(-b * 0.5..b * 0.5);
        bubbles.push((Point2::new(cx, cy), rng.random_range(0.08..0.16)));
    }
    let inside = move |p: Point2| {
        (p.x / a).powi(2) + (p.y / b).powi(2) <= 1.0 && bubbles.iter().all(|&(c, r)| p.dist(c) > r)
    };
    let mut pts = Vec::with_capacity(n);
    while pts.len() < n {
        let p = Point2::new(rng.random_range(-a..a), rng.random_range(-b..b));
        if inside(p) {
            pts.push(p);
        }
    }
    filtered_mesh(pts, inside)
}

/// Triangulate `pts` and drop edges whose midpoint leaves the region, then
/// keep the largest component (filtering can strand slivers).
///
/// The filter runs per row straight off the triangulation's CSR (each
/// kept row is a subsequence of an already-sorted row), so no transient
/// edge list is built; the component extraction then goes through the
/// lean `induced_subgraph` path.
fn filtered_mesh(pts: Vec<Point2>, inside: impl Fn(Point2) -> bool + Sync) -> (Graph, Vec<Point2>) {
    let g = delaunay_of_points(&pts);
    let filtered = crate::build::csr_unit_from_rows(g.n(), |v, row| {
        for &u in g.neighbors(v) {
            let mid = (pts[v as usize] + pts[u as usize]) * 0.5;
            if inside(mid) {
                row.push(u);
            }
        }
    });
    let (big, map) = largest_component(&filtered);
    let coords = map.iter().map(|&v| pts[v as usize]).collect();
    (big, coords)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trace_mesh_is_connected_planarish() {
        let mut rng = StdRng::seed_from_u64(21);
        let (g, pts) = trace_mesh(3000, &mut rng);
        assert!(g.n() > 2500, "lost too many vertices: {}", g.n());
        assert_eq!(pts.len(), g.n());
        assert!(is_connected(&g));
        g.validate().unwrap();
        assert!(g.m() <= 3 * g.n());
    }

    #[test]
    fn trace_mesh_is_elongated() {
        let mut rng = StdRng::seed_from_u64(22);
        let (_, pts) = trace_mesh(1500, &mut rng);
        let bb = sp_geometry::Aabb2::from_points(&pts).unwrap();
        assert!(bb.width() > 1.5 * bb.height());
    }

    #[test]
    fn bubbles_mesh_has_holes() {
        let mut rng = StdRng::seed_from_u64(23);
        let (g, pts) = bubbles_mesh(4000, 12, &mut rng);
        assert!(g.n() > 3000);
        assert!(is_connected(&g));
        g.validate().unwrap();
        // All points inside the elongated elliptical region.
        assert!(pts
            .iter()
            .all(|p| (p.x / 2.0).powi(2) + (p.y / 0.75).powi(2) <= 1.0 + 1e-9));
    }

    #[test]
    fn deterministic_under_seed() {
        let (a, _) = trace_mesh(800, &mut StdRng::seed_from_u64(3));
        let (b, _) = trace_mesh(800, &mut StdRng::seed_from_u64(3));
        assert_eq!(a.n(), b.n());
        assert_eq!(a.m(), b.m());
    }
}
