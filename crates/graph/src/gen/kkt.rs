//! KKT saddle-point graphs, the `kkt_power` analog.
//!
//! `kkt_power` is the graph of a KKT (Karush–Kuhn–Tucker) system from an
//! optimal-power-flow problem: a block matrix [H Aᵀ; A 0] where H couples
//! primal variables over a power network and A ties constraints to the
//! primal variables they govern. Structurally this is a network graph plus
//! a layer of constraint vertices adjacent to small sets of network
//! vertices — decidedly *not* mesh-like, which is why it is the adversarial
//! case in the paper (every method's cut is an order of magnitude worse
//! than on the mesh graphs, and relative spreads are wide).

use crate::build::csr_from_pairs;
use crate::csr::Graph;
use rand::Rng;

/// Build a KKT-style graph.
///
/// The primal network is a random power-grid-like graph over `n_primal`
/// buses: a ring backbone plus random shortcut branches (giving the low
/// diameter and irregular degrees of transmission networks). Each of the
/// `n_constraints` constraint vertices attaches to a contiguous run of
/// 2–`max_stencil` buses plus an occasional remote bus.
pub fn kkt_graph<R: Rng>(
    n_primal: usize,
    n_constraints: usize,
    max_stencil: usize,
    rng: &mut R,
) -> Graph {
    assert!(n_primal >= 4);
    let n = n_primal + n_constraints;
    // Accumulate bare endpoint pairs (8 B/edge, half the builder tuple);
    // csr_from_pairs sorts in place and merges parallel edges by
    // multiplicity, exactly what summing unit weights produced before.
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(n_primal * 3 + n_constraints * 4);
    // Ring backbone.
    for i in 0..n_primal {
        pairs.push((i as u32, ((i + 1) % n_primal) as u32));
    }
    // Shortcut branches: ~1.5 per bus with mixed spans.
    let branches = n_primal * 3 / 2;
    for _ in 0..branches {
        let u = rng.random_range(0..n_primal);
        let span = if rng.random_range(0.0..1.0) < 0.8 {
            rng.random_range(2..(n_primal / 8).max(3))
        } else {
            rng.random_range(2..n_primal)
        };
        let v = (u + span) % n_primal;
        if u != v {
            pairs.push((u as u32, v as u32));
        }
    }
    // Hub buses: transmission networks have a few very-high-degree
    // substations (kkt_power's max degree is ~96 vs average ~6).
    let hubs = (n_primal / 400).max(2);
    for h in 0..hubs {
        let hub = rng.random_range(0..n_primal);
        let fan = rng.random_range(20..60);
        for _ in 0..fan {
            let v = rng.random_range(0..n_primal);
            if v != hub {
                pairs.push((hub as u32, v as u32));
            }
        }
        let _ = h;
    }
    // Constraint layer.
    for c in 0..n_constraints {
        let cv = (n_primal + c) as u32;
        let k = rng.random_range(2..=max_stencil.max(2));
        let start = rng.random_range(0..n_primal);
        for j in 0..k {
            pairs.push((cv, ((start + j) % n_primal) as u32));
        }
        if rng.random_range(0.0..1.0) < 0.2 {
            pairs.push((cv, rng.random_range(0..n_primal) as u32));
        }
    }
    let vwgt = vec![1.0; n];
    csr_from_pairs(n, pairs, vwgt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kkt_structure() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = kkt_graph(1000, 500, 5, &mut rng);
        assert_eq!(g.n(), 1500);
        g.validate().unwrap();
        assert!(is_connected(&g));
        // Constraint vertices only touch primal vertices.
        for c in 1000..1500u32 {
            for &u in g.neighbors(c) {
                assert!(u < 1000, "constraint-constraint edge {c}-{u}");
            }
        }
    }

    #[test]
    fn density_in_paper_range() {
        // kkt_power has M/N ≈ 6.2; ours should land in the same ballpark.
        let mut rng = StdRng::seed_from_u64(13);
        let g = kkt_graph(4000, 2000, 6, &mut rng);
        let ratio = g.m() as f64 / g.n() as f64;
        assert!((1.5..6.0).contains(&ratio), "M/N = {ratio}");
    }

    #[test]
    fn irregular_degrees() {
        let mut rng = StdRng::seed_from_u64(14);
        let g = kkt_graph(2000, 1000, 5, &mut rng);
        assert!(g.max_degree() > 3 * g.avg_degree() as usize);
    }
}
