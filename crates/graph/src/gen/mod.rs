//! Synthetic graph generators standing in for the paper's UFL test suite.
//!
//! The evaluation graphs (Table 1 of the paper) are not redistributable
//! here, so each family is replaced by a generator reproducing its
//! structure: 5-point grids (ecology1/2), Delaunay triangulations of random
//! points (delaunay_nXX), a grid with sparse long-range links (G3_circuit),
//! a KKT saddle-point graph (kkt_power), and Delaunay meshes of shaped
//! regions (hugetrace / hugebubbles). See DESIGN.md for the substitution
//! rationale.

pub mod circuit;
pub mod delaunay;
pub mod geometric;
pub mod grid;
pub mod kkt;
pub mod mesh;
pub mod rmat;

pub use circuit::circuit_graph;
pub use delaunay::{delaunay_graph, delaunay_of_points};
pub use geometric::random_geometric_graph;
pub use grid::{grid_2d, grid_2d_coords};
pub use kkt::kkt_graph;
pub use mesh::{bubbles_mesh, trace_mesh};
pub use rmat::rmat_graph;
