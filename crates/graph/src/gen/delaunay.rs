//! Incremental Bowyer–Watson Delaunay triangulation.
//!
//! Four of the paper's nine suite graphs are `delaunay_nXX` (Delaunay
//! triangulations of 2^XX random points), and our hugetrace/hugebubbles
//! analogs are Delaunay meshes of shaped regions, so a real triangulator is
//! a required substrate. Points are inserted in Hilbert order so the
//! walk-based point location starting at the last created triangle is
//! near-O(1) amortised, giving roughly linear total construction time.

use crate::csr::Graph;
use rand::Rng;
use sp_geometry::{hilbert_key_unit, Aabb2, Point2};
use std::sync::atomic::{AtomicU32, Ordering};

const NONE: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Tri {
    /// Vertex indices, counter-clockwise.
    v: [u32; 3],
    /// `nbr[i]` is the triangle across the edge opposite `v[i]` (NONE = hull).
    nbr: [u32; 3],
    alive: bool,
}

/// 2·(signed area) of triangle `abc`; positive if counter-clockwise.
#[inline]
fn orient2d(a: Point2, b: Point2, c: Point2) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// `true` if `p` lies strictly inside the circumcircle of CCW triangle `abc`.
#[inline]
fn in_circle(a: Point2, b: Point2, c: Point2, p: Point2) -> bool {
    let ax = a.x - p.x;
    let ay = a.y - p.y;
    let bx = b.x - p.x;
    let by = b.y - p.y;
    let cx = c.x - p.x;
    let cy = c.y - p.y;
    let det = (ax * ax + ay * ay) * (bx * cy - cx * by) - (bx * bx + by * by) * (ax * cy - cx * ay)
        + (cx * cx + cy * cy) * (ax * by - bx * ay);
    det > 0.0
}

struct Triangulator {
    pts: Vec<Point2>,
    tris: Vec<Tri>,
    /// Most recently created triangle: the walk starts here.
    last: u32,
}

impl Triangulator {
    /// Start with a super-triangle enclosing `bbox` generously.
    fn new(bbox: Aabb2, capacity: usize) -> Self {
        let c = bbox.center();
        let r = bbox.longest_side().max(1e-9) * 16.0;
        let pts = vec![
            Point2::new(c.x - 1.8 * r, c.y - r),
            Point2::new(c.x + 1.8 * r, c.y - r),
            Point2::new(c.x, c.y + 1.8 * r),
        ];
        let tris = vec![Tri {
            v: [0, 1, 2],
            nbr: [NONE, NONE, NONE],
            alive: true,
        }];
        let mut t = Triangulator { pts, tris, last: 0 };
        t.pts.reserve(capacity);
        t
    }

    /// Locate a triangle containing `p` by a remembering walk; falls back to
    /// a linear scan on (rare) numerically confusing configurations.
    fn locate(&self, p: Point2) -> u32 {
        let mut cur = self.last;
        if !self.tris[cur as usize].alive {
            cur = self
                .tris
                .iter()
                .rposition(|t| t.alive)
                .expect("no alive triangle") as u32;
        }
        let mut prev = NONE;
        let mut steps = 0usize;
        let max_steps = 4 * self.tris.len() + 64;
        loop {
            let t = self.tris[cur as usize];
            let mut moved = false;
            for i in 0..3 {
                // Edge opposite v[i] runs v[i+1] → v[i+2] (CCW).
                let a = self.pts[t.v[(i + 1) % 3] as usize];
                let b = self.pts[t.v[(i + 2) % 3] as usize];
                if orient2d(a, b, p) < 0.0 {
                    let nxt = t.nbr[i];
                    if nxt != NONE && nxt != prev {
                        prev = cur;
                        cur = nxt;
                        moved = true;
                        break;
                    }
                }
            }
            if !moved {
                return cur;
            }
            steps += 1;
            if steps > max_steps {
                // Degenerate walk; scan for any triangle containing p.
                for (i, t) in self.tris.iter().enumerate() {
                    if t.alive && self.contains(i as u32, p) {
                        return i as u32;
                    }
                }
                return cur;
            }
        }
    }

    fn contains(&self, t: u32, p: Point2) -> bool {
        let tr = self.tris[t as usize];
        (0..3).all(|i| {
            let a = self.pts[tr.v[(i + 1) % 3] as usize];
            let b = self.pts[tr.v[(i + 2) % 3] as usize];
            orient2d(a, b, p) >= -1e-12
        })
    }

    /// Insert `p`, returning its vertex index.
    fn insert(&mut self, p: Point2) -> u32 {
        let pi = self.pts.len() as u32;
        self.pts.push(p);
        let seed = self.locate(p);

        // Grow the cavity: the connected set of triangles whose circumcircle
        // contains p, flooded outward from the seed.
        let mut cavity = Vec::with_capacity(8);
        let mut visited = std::collections::HashSet::with_capacity(16);
        let mut stack = vec![seed];
        visited.insert(seed);
        while let Some(t) = stack.pop() {
            let tr = self.tris[t as usize];
            let bad = in_circle(
                self.pts[tr.v[0] as usize],
                self.pts[tr.v[1] as usize],
                self.pts[tr.v[2] as usize],
                p,
            );
            // The seed triangle is always in the cavity (it contains p) even
            // if the in-circle test is borderline.
            if !bad && t != seed {
                continue;
            }
            cavity.push(t);
            for i in 0..3 {
                let nb = tr.nbr[i];
                if nb != NONE && visited.insert(nb) {
                    stack.push(nb);
                }
            }
        }
        let cavity_set: std::collections::HashSet<u32> = cavity.iter().copied().collect();

        // Boundary edges (a → b CCW as seen from inside the cavity), with
        // the outside neighbour across each.
        let mut boundary: Vec<(u32, u32, u32)> = Vec::with_capacity(cavity.len() + 2);
        for &t in &cavity {
            let tr = self.tris[t as usize];
            for i in 0..3 {
                let nb = tr.nbr[i];
                if nb == NONE || !cavity_set.contains(&nb) {
                    let a = tr.v[(i + 1) % 3];
                    let b = tr.v[(i + 2) % 3];
                    boundary.push((a, b, nb));
                }
            }
        }
        // Retire the cavity.
        for &t in &cavity {
            self.tris[t as usize].alive = false;
        }

        // Fan of new triangles (p, a, b); link neighbours.
        let first_new = self.tris.len() as u32;
        let mut edge_owner: std::collections::HashMap<u32, u32> =
            std::collections::HashMap::with_capacity(boundary.len() * 2);
        for &(a, b, outside) in &boundary {
            let nt = self.tris.len() as u32;
            // CCW: boundary edge a→b is CCW from inside, so (p, a, b) is CCW.
            self.tris.push(Tri {
                v: [pi, a, b],
                nbr: [outside, NONE, NONE],
                alive: true,
            });
            if outside != NONE {
                let o = &mut self.tris[outside as usize];
                for i in 0..3 {
                    let oa = o.v[(i + 1) % 3];
                    let ob = o.v[(i + 2) % 3];
                    if (oa == b && ob == a) || (oa == a && ob == b) {
                        o.nbr[i] = nt;
                    }
                }
            }
            // Stitch new triangles along shared spokes (p, a) and (p, b):
            // the triangle owning spoke endpoint `a` as its v[1] pairs with
            // the one owning `a` as its v[2].
            for (key, slot) in [(a, 2usize), (b, 1usize)] {
                if let Some(&other) = edge_owner.get(&key) {
                    self.tris[nt as usize].nbr[slot] = other;
                    let ot = &mut self.tris[other as usize];
                    // In `other`, the spoke is on the complementary slot.
                    let oslot = if ot.v[1] == key { 2 } else { 1 };
                    ot.nbr[oslot] = nt;
                    edge_owner.remove(&key);
                } else {
                    edge_owner.insert(key, nt);
                }
            }
        }
        self.last = first_new;
        pi
    }
}

/// Delaunay-triangulate an explicit point set; returns the edge graph.
/// Points are inserted in Hilbert order internally but vertex ids in the
/// output match the input order.
pub fn delaunay_of_points(points: &[Point2]) -> Graph {
    let n = points.len();
    if n == 0 {
        return Graph::from_csr(vec![0], Vec::new(), Vec::new(), Vec::new());
    }
    let bbox = Aabb2::from_points(points).unwrap().inflated(0.01 + 1e-9);
    // Hilbert insertion order.
    let mut order: Vec<u32> = (0..n as u32).collect();
    let w = bbox.width().max(1e-12);
    let h = bbox.height().max(1e-12);
    order.sort_by_cached_key(|&i| {
        let p = points[i as usize];
        hilbert_key_unit(16, (p.x - bbox.min.x) / w, (p.y - bbox.min.y) / h)
    });

    let mut t = Triangulator::new(bbox, n);
    // Map triangulator vertex index → original point index.
    let mut orig = vec![NONE; n + 3];
    orig[0] = NONE;
    for &i in &order {
        let vi = t.insert(points[i as usize]);
        if (vi as usize) >= orig.len() {
            orig.resize(vi as usize + 1, NONE);
        }
        orig[vi as usize] = i;
    }

    // Emit the edge graph directly from the triangle soup — builder-free.
    // Every real–real undirected edge is interior to the triangulation of
    // the super-triangle (the hull consists of super-vertex edges only),
    // so it lies in exactly two alive triangles, once per CCW direction:
    // enumerating directed edges (v[i] → v[i+1]) over alive triangles
    // yields each directed adjacency entry exactly once, with no
    // duplicates to merge. Count pass → prefix sum → scatter fill, both
    // passes parallel over triangle chunks (atomic counters commute, and
    // the per-row sort afterwards makes the bytes schedule-independent).
    let tris = &t.tris;
    let chunk = tris
        .len()
        .div_ceil(4 * rayon::current_num_threads().max(1))
        .max(4096);
    let mention = |tr: &Tri, i: usize| -> Option<(u32, u32)> {
        let a = tr.v[i] as usize;
        let c = tr.v[(i + 1) % 3] as usize;
        if a < 3 || c < 3 {
            return None; // super-triangle vertex
        }
        let (oa, oc) = (orig[a], orig[c]);
        if oa != NONE && oc != NONE {
            Some((oa, oc))
        } else {
            None
        }
    };
    let cursor: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    rayon::scope(|s| {
        for tchunk in tris.chunks(chunk) {
            let cursor = &cursor;
            let mention = &mention;
            s.spawn(move |_| {
                for tr in tchunk.iter().filter(|tr| tr.alive) {
                    for i in 0..3 {
                        if let Some((oa, _)) = mention(tr, i) {
                            cursor[oa as usize].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let mut xadj = Vec::with_capacity(n + 1);
    let mut acc = 0usize;
    xadj.push(0);
    for c in &cursor {
        acc += c.load(Ordering::Relaxed) as usize;
        xadj.push(acc);
    }
    assert!(acc <= u32::MAX as usize, "directed edge count exceeds u32");
    // Reuse the degree counters as scatter cursors, reset to row starts.
    for (v, c) in cursor.iter().enumerate() {
        c.store(xadj[v] as u32, Ordering::Relaxed);
    }
    let slots: Vec<AtomicU32> = (0..acc).map(|_| AtomicU32::new(0)).collect();
    rayon::scope(|s| {
        for tchunk in tris.chunks(chunk) {
            let cursor = &cursor;
            let slots = &slots;
            let mention = &mention;
            s.spawn(move |_| {
                for tr in tchunk.iter().filter(|tr| tr.alive) {
                    for i in 0..3 {
                        if let Some((oa, oc)) = mention(tr, i) {
                            let at = cursor[oa as usize].fetch_add(1, Ordering::Relaxed);
                            slots[at as usize].store(oc, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let mut adjncy = {
        let mut slots = std::mem::ManuallyDrop::new(slots);
        // SAFETY: AtomicU32 is guaranteed to have the same size, alignment,
        // and bit validity as u32, and `slots` is never touched again.
        unsafe {
            Vec::from_raw_parts(
                slots.as_mut_ptr() as *mut u32,
                slots.len(),
                slots.capacity(),
            )
        }
    };
    // Within-row order depends on the host schedule; sort rows ascending
    // (the canonical CSR convention) to make the output deterministic.
    crate::build::sort_rows(&xadj, &mut adjncy);
    Graph::from_csr(xadj, adjncy, vec![1.0; acc], vec![1.0; n])
}

/// Delaunay triangulation of `n` uniformly random points in the unit square
/// (the `delaunay_nXX` analog: `n = 2^XX` in the paper).
pub fn delaunay_graph<R: Rng>(n: usize, rng: &mut R) -> (Graph, Vec<Point2>) {
    let pts: Vec<Point2> = (0..n)
        .map(|_| Point2::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
        .collect();
    (delaunay_of_points(&pts), pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn triangle_of_three_points() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
        ];
        let g = delaunay_of_points(&pts);
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        g.validate().unwrap();
    }

    #[test]
    fn square_diagonal_is_delaunay() {
        // Unit square plus centre point: centre connects to all corners.
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
            Point2::new(0.5, 0.5),
        ];
        let g = delaunay_of_points(&pts);
        assert_eq!(g.degree(4), 4);
        assert_eq!(g.m(), 8); // 4 boundary + 4 spokes
        g.validate().unwrap();
    }

    #[test]
    fn random_delaunay_is_planar_and_connected() {
        let mut rng = StdRng::seed_from_u64(42);
        let (g, pts) = delaunay_graph(2000, &mut rng);
        assert_eq!(g.n(), 2000);
        assert_eq!(pts.len(), 2000);
        g.validate().unwrap();
        assert!(is_connected(&g));
        // Planarity bound m <= 3n - 6; Delaunay of uniform points ~ 3n.
        assert!(g.m() <= 3 * g.n() - 6);
        assert!(g.m() >= 2 * g.n(), "suspiciously sparse: m = {}", g.m());
    }

    #[test]
    fn empty_circle_property_spot_check() {
        // For a moderate point set, verify no 4th point lies inside the
        // circumcircle of any sampled Delaunay triangle. We reconstruct
        // triangles as 3-cliques of the output graph for the check.
        let mut rng = StdRng::seed_from_u64(7);
        let pts: Vec<Point2> = (0..120)
            .map(|_| Point2::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
            .collect();
        let g = delaunay_of_points(&pts);
        let mut checked = 0;
        'outer: for v in 0..g.n() as u32 {
            for &u in g.neighbors(v) {
                if u <= v {
                    continue;
                }
                for &w in g.neighbors(u) {
                    if w <= u || !g.neighbors(v).contains(&w) {
                        continue;
                    }
                    // Triangle (v, u, w); orient CCW.
                    let (mut a, mut b, c) = (pts[v as usize], pts[u as usize], pts[w as usize]);
                    if orient2d(a, b, c) < 0.0 {
                        std::mem::swap(&mut a, &mut b);
                    }
                    let inside = (0..pts.len() as u32)
                        .filter(|&x| x != v && x != u && x != w)
                        .filter(|&x| in_circle(a, b, c, pts[x as usize]))
                        .count();
                    // 3-cliques of the Delaunay graph that are not Delaunay
                    // triangles can exist, but the vast majority are faces;
                    // only count clean ones and require we saw plenty.
                    if inside == 0 {
                        checked += 1;
                    }
                    if checked > 150 {
                        break 'outer;
                    }
                }
            }
        }
        assert!(checked > 50, "too few empty-circle triangles: {checked}");
    }

    #[test]
    fn duplicate_free_grid_points_triangulate() {
        // Structured (cocircular-prone) input exercises degeneracy paths.
        let mut pts = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                pts.push(Point2::new(i as f64, j as f64));
            }
        }
        let g = delaunay_of_points(&pts);
        assert_eq!(g.n(), 144);
        assert!(is_connected(&g));
        g.validate().unwrap();
        assert!(g.m() <= 3 * g.n() - 6);
    }
}
