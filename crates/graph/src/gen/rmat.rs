//! R-MAT power-law graphs — an adversarial, non-geometric family used in
//! tests to check that every stage degrades gracefully on graphs with no
//! good geometric structure (the paper's methods target mesh-like graphs;
//! kkt_power already stresses them, R-MAT stresses them harder).

use crate::csr::{Graph, GraphBuilder};
use rand::Rng;

/// Generate an R-MAT graph with `2^scale` vertices and ~`edge_factor · n`
/// undirected edges using partition probabilities `(a, b, c)` (d = 1−a−b−c).
pub fn rmat_graph<R: Rng>(
    scale: u32,
    edge_factor: usize,
    (a, b, c): (f64, f64, f64),
    rng: &mut R,
) -> Graph {
    let n = 1usize << scale;
    let m = edge_factor * n;
    let d = 1.0 - a - b - c;
    assert!(d >= 0.0, "probabilities exceed 1");
    let mut builder = GraphBuilder::with_edge_capacity(n, m);
    for _ in 0..m {
        let mut u = 0usize;
        let mut v = 0usize;
        for bit in (0..scale).rev() {
            let r: f64 = rng.random_range(0.0..1.0);
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= du << bit;
            v |= dv << bit;
        }
        if u != v {
            builder.add_edge(u as u32, v as u32, 1.0);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rmat_basic_shape() {
        let mut rng = StdRng::seed_from_u64(17);
        let g = rmat_graph(10, 8, (0.57, 0.19, 0.19), &mut rng);
        assert_eq!(g.n(), 1024);
        assert!(g.m() > 4 * 1024); // some dedup/self-loop loss is fine
        g.validate().unwrap();
    }

    #[test]
    fn rmat_is_skewed() {
        let mut rng = StdRng::seed_from_u64(18);
        let g = rmat_graph(12, 8, (0.57, 0.19, 0.19), &mut rng);
        // Power-law-ish: max degree far above average.
        assert!(g.max_degree() as f64 > 8.0 * g.avg_degree());
    }

    #[test]
    fn uniform_probabilities_give_er_like_graph() {
        let mut rng = StdRng::seed_from_u64(19);
        let g = rmat_graph(10, 8, (0.25, 0.25, 0.25), &mut rng);
        assert!((g.max_degree() as f64) < 6.0 * g.avg_degree());
    }
}
