//! Memory-compact CSR representation for paper-scale graphs.
//!
//! The reference [`Graph`] spends, per directed edge, 4 B adjacency +
//! 8 B `f64` edge weight, plus 8 B `usize` offset and 8 B `f64` vertex
//! weight per vertex — ~28 B/edge on the paper's unweighted families
//! where every weight is `1.0`. [`CompactGraph`] stores the same graph
//! with `u32` edge offsets whenever `2m` fits (`u64` otherwise) and
//! **elides** all-unit weight arrays entirely, landing at ~8 B/edge for
//! the unweighted case: a 3.5x reduction with zero information loss.
//!
//! The compact store implements [`GraphAccess`] with the exact same
//! neighbour iteration order as the reference CSR, so every algorithm
//! written against the trait (cut metrics, FM refinement, overlays) is
//! representation-blind; [`CompactGraph::to_graph`] round-trips to a
//! bit-identical reference graph, which the sp-verify `repr` stage
//! checks end-to-end through the pipeline.

use crate::access::GraphAccess;
use crate::csr::Graph;

/// Row offsets, width-adapted to the directed edge count.
#[derive(Clone, Debug)]
enum EdgeOffsets {
    U32(Vec<u32>),
    U64(Vec<u64>),
}

impl EdgeOffsets {
    #[inline]
    fn at(&self, i: usize) -> usize {
        match self {
            EdgeOffsets::U32(x) => x[i] as usize,
            EdgeOffsets::U64(x) => x[i] as usize,
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            EdgeOffsets::U32(x) => x.len() * 4,
            EdgeOffsets::U64(x) => x.len() * 8,
        }
    }
}

/// An undirected CSR graph with width-adapted offsets and elided unit
/// weights. Structurally identical to the [`Graph`] it was built from.
#[derive(Clone, Debug)]
pub struct CompactGraph {
    xadj: EdgeOffsets,
    adjncy: Vec<u32>,
    /// `None` means every directed edge has weight `1.0`.
    ewgt: Option<Vec<f64>>,
    /// `None` means every vertex has weight `1.0`.
    vwgt: Option<Vec<f64>>,
    n: usize,
}

impl CompactGraph {
    /// Compact a reference graph. Unit weight arrays (every entry exactly
    /// `1.0`) are elided; offsets shrink to `u32` when `2m` fits.
    pub fn from_graph(g: &Graph) -> Self {
        let total = g.adjncy().len();
        let xadj = if total <= u32::MAX as usize {
            EdgeOffsets::U32(g.xadj().iter().map(|&x| x as u32).collect())
        } else {
            EdgeOffsets::U64(g.xadj().iter().map(|&x| x as u64).collect())
        };
        let ewgt = if g.ewgts().iter().all(|&w| w == 1.0) {
            None
        } else {
            Some(g.ewgts().to_vec())
        };
        let vwgt = if g.vwgts().iter().all(|&w| w == 1.0) {
            None
        } else {
            Some(g.vwgts().to_vec())
        };
        CompactGraph {
            xadj,
            adjncy: g.adjncy().to_vec(),
            ewgt,
            vwgt,
            n: g.n(),
        }
    }

    /// Materialize the bit-identical reference CSR (elided weights come
    /// back as `1.0`, exactly what they were compacted from).
    pub fn to_graph(&self) -> Graph {
        let xadj: Vec<usize> = (0..=self.n).map(|i| self.xadj.at(i)).collect();
        let total = self.adjncy.len();
        let ewgt = match &self.ewgt {
            Some(w) => w.clone(),
            None => vec![1.0; total],
        };
        let vwgt = match &self.vwgt {
            Some(w) => w.clone(),
            None => vec![1.0; self.n],
        };
        Graph::from_csr(xadj, self.adjncy.clone(), ewgt, vwgt)
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.xadj.at(v as usize + 1) - self.xadj.at(v as usize)
    }

    /// Neighbour list of `v` (ascending, same order as the reference CSR).
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adjncy[self.xadj.at(v as usize)..self.xadj.at(v as usize + 1)]
    }

    /// Neighbours of `v` with edge weights, reference iteration order.
    #[inline]
    pub fn neighbors_w(&self, v: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        let r = self.xadj.at(v as usize)..self.xadj.at(v as usize + 1);
        let ew = self.ewgt.as_deref();
        self.adjncy[r.clone()]
            .iter()
            .copied()
            .enumerate()
            .map(move |(i, u)| (u, ew.map_or(1.0, |w| w[r.start + i])))
    }

    /// Vertex weight of `v`.
    #[inline]
    pub fn vwgt(&self, v: u32) -> f64 {
        self.vwgt.as_ref().map_or(1.0, |w| w[v as usize])
    }

    /// True when the edge-weight array is elided (all unit).
    pub fn unit_edge_weights(&self) -> bool {
        self.ewgt.is_none()
    }

    /// True when the vertex-weight array is elided (all unit).
    pub fn unit_vertex_weights(&self) -> bool {
        self.vwgt.is_none()
    }

    /// Heap bytes held by the representation (offsets + adjacency +
    /// whatever weight arrays survived elision).
    pub fn heap_bytes(&self) -> usize {
        self.xadj.heap_bytes()
            + self.adjncy.len() * 4
            + self.ewgt.as_ref().map_or(0, |w| w.len() * 8)
            + self.vwgt.as_ref().map_or(0, |w| w.len() * 8)
    }

    /// Extract the subgraph induced by `verts` (duplicate-free), staying
    /// in the compact representation. Agrees with
    /// [`Graph::induced_subgraph`] on the materialized result.
    pub fn induced_subgraph(&self, verts: &[u32]) -> (CompactGraph, Vec<u32>) {
        let mut inv = vec![u32::MAX; self.n];
        for (i, &v) in verts.iter().enumerate() {
            debug_assert_eq!(inv[v as usize], u32::MAX, "duplicate vertex {v}");
            inv[v as usize] = i as u32;
        }
        let sn = verts.len();
        let mut row: Vec<(u32, f64)> = Vec::new();
        let mut xadj: Vec<u32> = Vec::with_capacity(sn + 1);
        let mut adjncy: Vec<u32> = Vec::new();
        let mut ewgt: Vec<f64> = Vec::new();
        xadj.push(0);
        for &v in verts {
            row.clear();
            for (u, w) in self.neighbors_w(v) {
                let j = inv[u as usize];
                if j != u32::MAX {
                    row.push((j, w));
                }
            }
            row.sort_unstable_by_key(|p| p.0);
            for &(u, w) in &row {
                adjncy.push(u);
                ewgt.push(w);
            }
            xadj.push(adjncy.len() as u32);
        }
        let ewgt = if ewgt.iter().all(|&w| w == 1.0) {
            None
        } else {
            Some(ewgt)
        };
        let vwgt = if verts.iter().all(|&v| self.vwgt(v) == 1.0) {
            None
        } else {
            Some(verts.iter().map(|&v| self.vwgt(v)).collect())
        };
        (
            CompactGraph {
                xadj: EdgeOffsets::U32(xadj),
                adjncy,
                ewgt,
                vwgt,
                n: sn,
            },
            verts.to_vec(),
        )
    }
}

impl GraphAccess for CompactGraph {
    #[inline]
    fn n(&self) -> usize {
        CompactGraph::n(self)
    }
    #[inline]
    fn m(&self) -> usize {
        CompactGraph::m(self)
    }
    #[inline]
    fn degree(&self, v: u32) -> usize {
        CompactGraph::degree(self, v)
    }
    #[inline]
    fn vwgt(&self, v: u32) -> f64 {
        CompactGraph::vwgt(self, v)
    }
    #[inline]
    fn neighbors_w(&self, v: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        CompactGraph::neighbors_w(self, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::graph_fingerprint;
    use crate::csr::GraphBuilder;

    fn assert_bytes_eq(a: &Graph, b: &Graph) {
        assert_eq!(a.xadj(), b.xadj());
        assert_eq!(a.adjncy(), b.adjncy());
        assert_eq!(a.ewgts(), b.ewgts());
        assert_eq!(a.vwgts(), b.vwgts());
    }

    fn weighted_sample() -> Graph {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 2.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 3, 4.5);
        b.add_edge(3, 4, 1.0);
        b.add_edge(4, 5, 1.0);
        b.add_edge(5, 0, 3.0);
        b.set_vwgt(2, 2.5);
        b.build()
    }

    #[test]
    fn unit_graph_elides_weights_and_roundtrips() {
        let g = crate::gen::grid_2d(6, 7);
        let c = CompactGraph::from_graph(&g);
        assert!(c.unit_edge_weights());
        assert!(c.unit_vertex_weights());
        assert!(c.heap_bytes() < g.adjncy().len() * 12 + g.n() * 16);
        assert_bytes_eq(&c.to_graph(), &g);
        assert_eq!(graph_fingerprint(&c), graph_fingerprint(&g));
    }

    #[test]
    fn weighted_graph_keeps_weights_and_roundtrips() {
        let g = weighted_sample();
        let c = CompactGraph::from_graph(&g);
        assert!(!c.unit_edge_weights());
        assert!(!c.unit_vertex_weights());
        assert_bytes_eq(&c.to_graph(), &g);
        assert_eq!(graph_fingerprint(&c), graph_fingerprint(&g));
    }

    #[test]
    fn access_trait_agrees_with_reference() {
        let g = weighted_sample();
        let c = CompactGraph::from_graph(&g);
        assert_eq!(GraphAccess::n(&c), g.n());
        assert_eq!(GraphAccess::m(&c), g.m());
        assert_eq!(GraphAccess::total_vwgt(&c), g.total_vwgt());
        for v in 0..g.n() as u32 {
            assert_eq!(c.degree(v), g.degree(v));
            assert_eq!(c.vwgt(v), g.vwgt(v));
            let cv: Vec<_> = c.neighbors_w(v).collect();
            let gv: Vec<_> = g.neighbors_w(v).collect();
            assert_eq!(cv, gv);
        }
    }

    #[test]
    fn induced_subgraph_agrees_with_reference() {
        let g = weighted_sample();
        let c = CompactGraph::from_graph(&g);
        let verts = [0u32, 1, 3, 5];
        let (sg, map_g) = g.induced_subgraph(&verts);
        let (sc, map_c) = c.induced_subgraph(&verts);
        assert_eq!(map_g, map_c);
        assert_bytes_eq(&sc.to_graph(), &sg);
    }
}
