//! Distributing graph vertices over simulated ranks.
//!
//! The paper reads the graph "in approximately equal sized chunks" (block
//! distribution) and later redistributes by lattice sub-domain once
//! coordinates exist. Both mappings live here, as does the bookkeeping a
//! rank needs about its boundary and ghost vertices.

use crate::csr::Graph;
use sp_geometry::{Aabb2, Point2};

/// An assignment of every vertex to a rank.
#[derive(Clone, Debug)]
pub struct Distribution {
    /// `owner[v]` = rank that owns vertex `v`.
    pub owner: Vec<u32>,
    /// Number of ranks.
    pub p: usize,
}

impl Distribution {
    /// Contiguous block distribution: vertex `v` goes to rank
    /// `v / ceil(n/p)` (the paper's initial read-in layout).
    pub fn block(n: usize, p: usize) -> Self {
        assert!(p >= 1);
        let chunk = n.div_ceil(p.max(1)).max(1);
        let owner = (0..n)
            .map(|v| ((v / chunk) as u32).min(p as u32 - 1))
            .collect();
        Distribution { owner, p }
    }

    /// Lattice distribution: rank = lattice cell of the vertex coordinate on
    /// a `q × q` grid over `bbox` (row-major: rank = j·q + i).
    pub fn lattice(coords: &[Point2], bbox: &Aabb2, q: usize) -> Self {
        let owner = coords
            .iter()
            .map(|&c| {
                let (i, j) = bbox.cell_of(q, c);
                (j * q + i) as u32
            })
            .collect();
        Distribution { owner, p: q * q }
    }

    /// Vertices owned by each rank.
    pub fn rank_vertices(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.p];
        for (v, &r) in self.owner.iter().enumerate() {
            out[r as usize].push(v as u32);
        }
        out
    }

    /// Per-rank vertex counts.
    pub fn rank_sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.p];
        for &r in &self.owner {
            s[r as usize] += 1;
        }
        s
    }

    /// Load imbalance: `max_size / (n/p)`; 1.0 is perfect.
    pub fn imbalance(&self) -> f64 {
        if self.owner.is_empty() {
            return 1.0;
        }
        let max = *self.rank_sizes().iter().max().unwrap() as f64;
        max / (self.owner.len() as f64 / self.p as f64)
    }

    /// Boundary vertices of `rank`: owned vertices with a neighbour owned
    /// elsewhere (the paper's `Ṽ_{i,j}`).
    pub fn boundary_of(&self, g: &Graph, rank: u32) -> Vec<u32> {
        let mut out = Vec::new();
        for v in 0..g.n() as u32 {
            if self.owner[v as usize] != rank {
                continue;
            }
            if g.neighbors(v)
                .iter()
                .any(|&u| self.owner[u as usize] != rank)
            {
                out.push(v);
            }
        }
        out
    }

    /// Ghost vertices of `rank`: non-owned vertices adjacent to an owned
    /// vertex (the paper's `V̂_{i,j}`), deduplicated and sorted.
    pub fn ghosts_of(&self, g: &Graph, rank: u32) -> Vec<u32> {
        let mut out = Vec::new();
        for v in 0..g.n() as u32 {
            if self.owner[v as usize] != rank {
                continue;
            }
            for &u in g.neighbors(v) {
                if self.owner[u as usize] != rank {
                    out.push(u);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Total number of edges crossing rank boundaries (each counted once).
    pub fn cross_edges(&self, g: &Graph) -> usize {
        let mut c = 0;
        for v in 0..g.n() as u32 {
            for &u in g.neighbors(v) {
                if u > v && self.owner[u as usize] != self.owner[v as usize] {
                    c += 1;
                }
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid::{grid_2d, grid_2d_coords};

    #[test]
    fn block_distribution_is_balanced() {
        let d = Distribution::block(103, 8);
        assert_eq!(d.owner.len(), 103);
        let sizes = d.rank_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert!(sizes.iter().all(|&s| s <= 13 + 1));
        assert!(d.imbalance() < 1.15);
    }

    #[test]
    fn block_handles_p_greater_than_n() {
        let d = Distribution::block(3, 8);
        assert_eq!(d.rank_sizes().iter().sum::<usize>(), 3);
        assert!(d.owner.iter().all(|&r| (r as usize) < 8));
    }

    #[test]
    fn lattice_distribution_respects_cells() {
        let coords = grid_2d_coords(8, 8);
        let bb = Aabb2::unit();
        let d = Distribution::lattice(&coords, &bb, 2);
        assert_eq!(d.p, 4);
        // Vertex at (0,0) is in cell (0,0) = rank 0; at (1,1) rank 3.
        assert_eq!(d.owner[0], 0);
        assert_eq!(d.owner[63], 3);
        // Roughly a quarter each.
        let sizes = d.rank_sizes();
        assert!(sizes.iter().all(|&s| (9..=25).contains(&s)), "{sizes:?}");
    }

    #[test]
    fn boundary_and_ghosts_are_consistent() {
        let g = grid_2d(4, 4);
        let d = Distribution::block(16, 2); // rows 0-1 vs 2-3
        let b0 = d.boundary_of(&g, 0);
        let g0 = d.ghosts_of(&g, 0);
        // Rank 0 owns vertices 0..8; boundary is the second row (4..8).
        assert_eq!(b0, vec![4, 5, 6, 7]);
        assert_eq!(g0, vec![8, 9, 10, 11]);
        assert_eq!(d.cross_edges(&g), 4);
    }

    #[test]
    fn single_rank_has_no_boundary() {
        let g = grid_2d(3, 3);
        let d = Distribution::block(9, 1);
        assert!(d.boundary_of(&g, 0).is_empty());
        assert!(d.ghosts_of(&g, 0).is_empty());
        assert_eq!(d.cross_edges(&g), 0);
    }
}
