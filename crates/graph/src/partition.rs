//! Bisections and partition-quality metrics.
//!
//! The paper partitions into two parts (`V₁`, `V₂`) of nearly equal size and
//! measures quality as the edge-separator size (cut). We track weighted cut
//! and weighted part sizes so the same code serves coarse graphs.

use crate::csr::Graph;

/// A two-way partition: `side[v] ∈ {0, 1}`.
#[derive(Clone, Debug, PartialEq)]
pub struct Bisection {
    side: Vec<u8>,
}

impl Bisection {
    pub fn new(side: Vec<u8>) -> Self {
        debug_assert!(side.iter().all(|&s| s <= 1));
        Bisection { side }
    }

    /// All vertices on side 0.
    pub fn from_fn(n: usize, f: impl Fn(u32) -> bool) -> Self {
        Bisection {
            side: (0..n as u32).map(|v| u8::from(f(v))).collect(),
        }
    }

    #[inline]
    pub fn side(&self, v: u32) -> u8 {
        self.side[v as usize]
    }

    #[inline]
    pub fn set(&mut self, v: u32, s: u8) {
        debug_assert!(s <= 1);
        self.side[v as usize] = s;
    }

    #[inline]
    pub fn flip(&mut self, v: u32) {
        self.side[v as usize] ^= 1;
    }

    pub fn len(&self) -> usize {
        self.side.len()
    }

    pub fn is_empty(&self) -> bool {
        self.side.is_empty()
    }

    pub fn sides(&self) -> &[u8] {
        &self.side
    }

    /// Number of vertices on each side.
    pub fn counts(&self) -> (usize, usize) {
        let ones = self.side.iter().map(|&s| s as usize).sum::<usize>();
        (self.side.len() - ones, ones)
    }

    /// Vertex-weight on each side.
    pub fn weights(&self, g: &Graph) -> (f64, f64) {
        let mut w = [0.0f64; 2];
        for v in 0..g.n() as u32 {
            w[self.side(v) as usize] += g.vwgt(v);
        }
        (w[0], w[1])
    }

    /// Weighted cut: total weight of edges with endpoints on opposite sides.
    pub fn cut(&self, g: &Graph) -> f64 {
        let mut c = 0.0;
        for v in 0..g.n() as u32 {
            let sv = self.side(v);
            for (u, w) in g.neighbors_w(v) {
                if u > v && self.side(u) != sv {
                    c += w;
                }
            }
        }
        c
    }

    /// Number of cut edges (unweighted separator size |S|).
    pub fn cut_edges(&self, g: &Graph) -> usize {
        let mut c = 0;
        for v in 0..g.n() as u32 {
            let sv = self.side(v);
            for &u in g.neighbors(v) {
                if u > v && self.side(u) != sv {
                    c += 1;
                }
            }
        }
        c
    }

    /// Vertices incident to at least one cut edge.
    pub fn boundary(&self, g: &Graph) -> Vec<u32> {
        let mut out = Vec::new();
        for v in 0..g.n() as u32 {
            let sv = self.side(v);
            if g.neighbors(v).iter().any(|&u| self.side(u) != sv) {
                out.push(v);
            }
        }
        out
    }

    /// Weighted imbalance: `max(w0, w1) / (total / 2) − 1` (0 = perfect).
    pub fn imbalance(&self, g: &Graph) -> f64 {
        let (w0, w1) = self.weights(g);
        let total = w0 + w1;
        if total <= 0.0 {
            return 0.0;
        }
        w0.max(w1) / (total / 2.0) - 1.0
    }

    /// Full quality snapshot.
    pub fn quality(&self, g: &Graph) -> PartitionQuality {
        let (n0, n1) = self.counts();
        PartitionQuality {
            cut: self.cut(g),
            cut_edges: self.cut_edges(g),
            imbalance: self.imbalance(g),
            n0,
            n1,
        }
    }

    /// Check that the bisection covers the graph and neither side is empty
    /// (for non-trivial graphs).
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        if self.side.len() != g.n() {
            return Err(format!(
                "bisection covers {} of {} vertices",
                self.side.len(),
                g.n()
            ));
        }
        if g.n() >= 2 {
            let (a, b) = self.counts();
            if a == 0 || b == 0 {
                return Err(format!("degenerate bisection: sizes ({a}, {b})"));
            }
        }
        Ok(())
    }
}

/// Summary metrics for a computed bisection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PartitionQuality {
    /// Weighted cut.
    pub cut: f64,
    /// Unweighted separator size |S|.
    pub cut_edges: usize,
    /// Weighted imbalance (0 = perfectly balanced).
    pub imbalance: f64,
    /// Vertices on side 0.
    pub n0: usize,
    /// Vertices on side 1.
    pub n1: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::GraphBuilder;

    fn cycle(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            b.add_edge(i as u32, ((i + 1) % n) as u32, 1.0);
        }
        b.build()
    }

    #[test]
    fn cycle_half_split_cuts_two() {
        let g = cycle(8);
        let bi = Bisection::from_fn(8, |v| v >= 4);
        assert_eq!(bi.cut(&g), 2.0);
        assert_eq!(bi.cut_edges(&g), 2);
        assert_eq!(bi.counts(), (4, 4));
        assert_eq!(bi.imbalance(&g), 0.0);
        bi.validate(&g).unwrap();
    }

    #[test]
    fn boundary_of_cycle_split() {
        let g = cycle(8);
        let bi = Bisection::from_fn(8, |v| v >= 4);
        let mut b = bi.boundary(&g);
        b.sort_unstable();
        assert_eq!(b, vec![0, 3, 4, 7]);
    }

    #[test]
    fn weighted_cut_and_imbalance() {
        let mut gb = GraphBuilder::new(4);
        gb.add_edge(0, 1, 5.0);
        gb.add_edge(2, 3, 1.0);
        gb.add_edge(1, 2, 3.0);
        gb.set_vwgt(0, 3.0);
        let g = gb.build();
        let bi = Bisection::new(vec![0, 0, 1, 1]);
        assert_eq!(bi.cut(&g), 3.0);
        let (w0, w1) = bi.weights(&g);
        assert_eq!((w0, w1), (4.0, 2.0));
        assert!((bi.imbalance(&g) - (4.0 / 3.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn flip_changes_cut() {
        let g = cycle(4);
        let mut bi = Bisection::new(vec![0, 0, 1, 1]);
        assert_eq!(bi.cut(&g), 2.0);
        bi.flip(1);
        assert_eq!(bi.cut(&g), 2.0); // cycle of 4: still 2 crossing edges
        bi.flip(0);
        assert_eq!(bi.counts(), (0, 4));
    }

    #[test]
    fn degenerate_bisection_rejected() {
        let g = cycle(4);
        let bi = Bisection::new(vec![0, 0, 0, 0]);
        assert!(bi.validate(&g).is_err());
        let short = Bisection::new(vec![0, 1]);
        assert!(short.validate(&g).is_err());
    }

    #[test]
    fn quality_snapshot() {
        let g = cycle(6);
        let q = Bisection::from_fn(6, |v| v >= 3).quality(&g);
        assert_eq!(q.cut_edges, 2);
        assert_eq!((q.n0, q.n1), (3, 3));
        assert_eq!(q.imbalance, 0.0);
    }
}
