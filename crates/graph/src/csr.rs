//! Compressed-sparse-row graphs with vertex and edge weights.
//!
//! All ScalaPart stages operate on undirected weighted graphs: the input is
//! unweighted, but coarsening introduces vertex weights (contracted masses)
//! and edge weights (summed multi-edges), so the representation carries both
//! from the start. Vertices are `u32`; adjacency offsets are `usize`.

/// An undirected graph in CSR form. Every edge `(u, v)` appears twice, once
/// in each endpoint's adjacency list; self-loops are disallowed.
#[derive(Clone, Debug)]
pub struct Graph {
    xadj: Vec<usize>,
    adjncy: Vec<u32>,
    ewgt: Vec<f64>,
    vwgt: Vec<f64>,
}

impl Graph {
    /// Build directly from CSR arrays. Panics (debug) on malformed input;
    /// call [`Graph::validate`] for a checked verdict.
    pub fn from_csr(xadj: Vec<usize>, adjncy: Vec<u32>, ewgt: Vec<f64>, vwgt: Vec<f64>) -> Self {
        debug_assert_eq!(xadj.len(), vwgt.len() + 1);
        debug_assert_eq!(adjncy.len(), ewgt.len());
        debug_assert_eq!(*xadj.last().unwrap_or(&0), adjncy.len());
        Graph {
            xadj,
            adjncy,
            ewgt,
            vwgt,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.xadj[v as usize + 1] - self.xadj[v as usize]
    }

    /// Neighbour list of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adjncy[self.xadj[v as usize]..self.xadj[v as usize + 1]]
    }

    /// Neighbours of `v` together with edge weights.
    #[inline]
    pub fn neighbors_w(&self, v: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        let r = self.xadj[v as usize]..self.xadj[v as usize + 1];
        self.adjncy[r.clone()]
            .iter()
            .copied()
            .zip(self.ewgt[r].iter().copied())
    }

    /// Vertex weight (mass) of `v`.
    #[inline]
    pub fn vwgt(&self, v: u32) -> f64 {
        self.vwgt[v as usize]
    }

    /// All vertex weights.
    #[inline]
    pub fn vwgts(&self) -> &[f64] {
        &self.vwgt
    }

    /// Sum of all vertex weights.
    pub fn total_vwgt(&self) -> f64 {
        self.vwgt.iter().sum()
    }

    /// Sum of undirected edge weights.
    pub fn total_ewgt(&self) -> f64 {
        self.ewgt.iter().sum::<f64>() / 2.0
    }

    /// Raw CSR offsets (for algorithms that stream the structure).
    #[inline]
    pub fn xadj(&self) -> &[usize] {
        &self.xadj
    }

    /// Raw adjacency array.
    #[inline]
    pub fn adjncy(&self) -> &[u32] {
        &self.adjncy
    }

    /// Raw edge-weight array, parallel to [`Graph::adjncy`].
    #[inline]
    pub fn ewgts(&self) -> &[f64] {
        &self.ewgt
    }

    /// Average degree `2M / N`.
    pub fn avg_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            self.adjncy.len() as f64 / self.n() as f64
        }
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Structural validation: monotone offsets, in-range targets, no
    /// self-loops, symmetric adjacency with matching weights.
    pub fn validate(&self) -> Result<(), String> {
        if self.xadj.len() != self.n() + 1 {
            return Err("xadj length mismatch".into());
        }
        if self.xadj[0] != 0 || *self.xadj.last().unwrap() != self.adjncy.len() {
            return Err("xadj endpoints wrong".into());
        }
        for w in self.xadj.windows(2) {
            if w[1] < w[0] {
                return Err("xadj not monotone".into());
            }
        }
        if self.ewgt.len() != self.adjncy.len() {
            return Err("ewgt length mismatch".into());
        }
        let n = self.n() as u32;
        for v in 0..n {
            for (u, w) in self.neighbors_w(v) {
                if u >= n {
                    return Err(format!("edge target {u} out of range"));
                }
                if u == v {
                    return Err(format!("self loop at {v}"));
                }
                if !w.is_finite() || w <= 0.0 {
                    return Err(format!("bad edge weight {w} on ({v},{u})"));
                }
                // Symmetric counterpart with equal weight.
                let found = self
                    .neighbors_w(u)
                    .any(|(x, wx)| x == v && (wx - w).abs() <= 1e-9 * w.max(1.0));
                if !found {
                    return Err(format!("edge ({v},{u}) missing symmetric counterpart"));
                }
            }
        }
        for (v, &w) in self.vwgt.iter().enumerate() {
            if !w.is_finite() || w <= 0.0 {
                return Err(format!("bad vertex weight {w} at {v}"));
            }
        }
        Ok(())
    }

    /// Extract the subgraph induced by `verts` (which must be duplicate-free).
    /// Returns the subgraph plus the map from sub-vertex index to original id.
    ///
    /// Assembled via the builder-free two-pass path: per-row degree count,
    /// prefix sum, direct fill — no transient edge-tuple buffer.
    pub fn induced_subgraph(&self, verts: &[u32]) -> (Graph, Vec<u32>) {
        let mut inv = vec![u32::MAX; self.n()];
        for (i, &v) in verts.iter().enumerate() {
            debug_assert_eq!(inv[v as usize], u32::MAX, "duplicate vertex {v}");
            inv[v as usize] = i as u32;
        }
        let vwgt: Vec<f64> = verts.iter().map(|&v| self.vwgt(v)).collect();
        let g = crate::build::csr_from_rows(verts.len(), vwgt, |i, row| {
            for (u, w) in self.neighbors_w(verts[i as usize]) {
                let j = inv[u as usize];
                if j != u32::MAX {
                    row.push((j, w));
                }
            }
        });
        (g, verts.to_vec())
    }
}

/// Incremental builder accumulating an undirected edge list; deduplicates
/// parallel edges by summing their weights and silently drops self-loops.
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32, f64)>,
    vwgt: Vec<f64>,
}

impl GraphBuilder {
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            vwgt: vec![1.0; n],
        }
    }

    /// Pre-size the edge buffer.
    pub fn with_edge_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
            vwgt: vec![1.0; n],
        }
    }

    /// Add an undirected edge (either endpoint order). Self-loops ignored.
    pub fn add_edge(&mut self, u: u32, v: u32, w: f64) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range"
        );
        if u == v {
            return;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b, w));
    }

    pub fn set_vwgt(&mut self, v: u32, w: f64) {
        self.vwgt[v as usize] = w;
    }

    /// Number of (possibly duplicate) edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finish: sort, merge duplicates, emit symmetric CSR.
    ///
    /// Sorting and duplicate merging happen **in place** on the tuple
    /// buffer (a write cursor compacts the sorted run), so the transient
    /// peak is one tuple buffer plus the final CSR — not two tuple
    /// buffers, which is what the previous clone-into-`merged` cost.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable_by_key(|e| (e.0, e.1));
        // Merge duplicates in place: `w` is the write cursor over the
        // sorted run; equal (u, v) keys fold their weights into the last
        // written entry.
        let mut w = 0usize;
        for r in 0..self.edges.len() {
            let e = self.edges[r];
            if w > 0 && self.edges[w - 1].0 == e.0 && self.edges[w - 1].1 == e.1 {
                self.edges[w - 1].2 += e.2;
            } else {
                self.edges[w] = e;
                w += 1;
            }
        }
        self.edges.truncate(w);
        // Counting pass.
        let mut deg = vec![0usize; self.n];
        for &(u, v, _) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut xadj = Vec::with_capacity(self.n + 1);
        xadj.push(0usize);
        for d in &deg {
            xadj.push(xadj.last().unwrap() + d);
        }
        let total = *xadj.last().unwrap();
        let mut adjncy = vec![0u32; total];
        let mut ewgt = vec![0f64; total];
        let mut cursor = std::mem::take(&mut deg);
        cursor.copy_from_slice(&xadj[..self.n]);
        for &(u, v, w) in &self.edges {
            adjncy[cursor[u as usize]] = v;
            ewgt[cursor[u as usize]] = w;
            cursor[u as usize] += 1;
            adjncy[cursor[v as usize]] = u;
            ewgt[cursor[v as usize]] = w;
            cursor[v as usize] += 1;
        }
        Graph {
            xadj,
            adjncy,
            ewgt,
            vwgt: self.vwgt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(i as u32, i as u32 + 1, 1.0);
        }
        b.build()
    }

    #[test]
    fn path_graph_structure() {
        let g = path(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.neighbors(2), &[1, 3]);
        g.validate().unwrap();
    }

    #[test]
    fn duplicate_edges_merge_weights() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 0, 2.5);
        b.add_edge(1, 2, 1.0);
        let g = b.build();
        assert_eq!(g.m(), 2);
        let w = g.neighbors_w(0).find(|&(u, _)| u == 1).unwrap().1;
        assert_eq!(w, 3.5);
        g.validate().unwrap();
    }

    #[test]
    fn self_loops_dropped() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        assert_eq!(g.m(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn weights_and_totals() {
        let mut b = GraphBuilder::new(3);
        b.set_vwgt(0, 2.0);
        b.set_vwgt(1, 3.0);
        b.add_edge(0, 1, 4.0);
        b.add_edge(1, 2, 6.0);
        let g = b.build();
        assert_eq!(g.total_vwgt(), 6.0);
        assert_eq!(g.total_ewgt(), 10.0);
        assert_eq!(g.vwgt(0), 2.0);
        assert_eq!(g.avg_degree(), 4.0 / 3.0);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn validate_rejects_asymmetry() {
        // Hand-build a broken CSR: edge 0→1 without the reverse.
        let g = Graph::from_csr(vec![0, 1, 1], vec![1], vec![1.0], vec![1.0, 1.0]);
        assert!(g.validate().is_err());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        // Triangle 0-1-2 plus pendant 3; take {0, 1, 3}.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(2, 3, 1.0);
        let g = b.build();
        let (s, map) = g.induced_subgraph(&[0, 1, 3]);
        assert_eq!(s.n(), 3);
        assert_eq!(s.m(), 1); // only 0-1 survives
        assert_eq!(map, vec![0, 1, 3]);
        s.validate().unwrap();
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        g.validate().unwrap();
    }
}
