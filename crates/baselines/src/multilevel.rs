//! Parallel multilevel bisection: the ParMetis-like and Pt-Scotch-like
//! comparators.
//!
//! Shared skeleton: (1) coarsen with SPMD heavy-edge matching, **all ranks
//! active at every level** (this is the structural difference from
//! ScalaPart, whose smoothing quarters the active set per level — and the
//! reason these methods accumulate `t_s·levels·log P` latency at scale);
//! (2) gather the coarsest graph and compute an initial bisection by greedy
//! graph growing plus FM, redundantly on every rank; (3) uncoarsen,
//! projecting the bisection and refining with band-restricted FM, paying
//! per-pass halo exchanges and consensus allreduces.
//!
//! The two presets differ exactly where the originals differ: Pt-Scotch
//! invests in wider bands, more FM passes, and tighter balance (better
//! cuts, slower at scale); ParMetis trades quality for speed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sp_coarsen::{contract, parallel_hem};
use sp_graph::distr::Distribution;
use sp_graph::{Bisection, Graph};
use sp_machine::{CostOnly, Machine, Phase};
use sp_refine::{band_by_hops, fm_refine, FmConfig};

/// Configuration for a multilevel run.
#[derive(Clone, Copy, Debug)]
pub struct MultilevelConfig {
    /// Stop coarsening at this size.
    pub coarsest: usize,
    /// SPMD matching rounds per level.
    pub matching_rounds: u32,
    /// Band width (hops) for uncoarsening refinement.
    pub band_hops: u32,
    /// FM passes per level during uncoarsening.
    pub fm_passes: usize,
    /// Balance tolerance.
    pub balance_tol: f64,
    /// Extra consensus collectives per refinement pass (Pt-Scotch's
    /// stricter convergence/rebalance checks).
    pub collectives_per_pass: usize,
    /// FM passes on the coarsest initial partition.
    pub initial_fm_passes: usize,
    /// Cap on FM moves per pass as a fraction of the band (ParMetis's
    /// speed-over-quality tradeoff: it refines with a limited move budget).
    pub move_fraction: f64,
    /// Pt-Scotch's multi-sequential refinement: gather the band graph on
    /// every rank and refine it sequentially (better cuts, but refinement
    /// stops scaling — the documented Pt-Scotch behaviour and the reason
    /// it is slowest at high P). ParMetis refines distributed.
    pub centralize_band: bool,
    /// RNG seed.
    pub seed: u64,
}

impl MultilevelConfig {
    /// ParMetis-class settings: fast coarsening and refinement.
    pub fn parmetis_like(seed: u64) -> Self {
        MultilevelConfig {
            coarsest: 200,
            matching_rounds: 4,
            band_hops: 1,
            fm_passes: 1,
            balance_tol: 0.08,
            collectives_per_pass: 1,
            initial_fm_passes: 2,
            move_fraction: 0.25,
            centralize_band: false,
            seed,
        }
    }

    /// Pt-Scotch-class settings: band graphs, more refinement.
    pub fn ptscotch_like(seed: u64) -> Self {
        MultilevelConfig {
            coarsest: 200,
            matching_rounds: 4,
            band_hops: 3,
            fm_passes: 6,
            balance_tol: 0.05,
            collectives_per_pass: 3,
            initial_fm_passes: 8,
            move_fraction: 1.0,
            centralize_band: true,
            seed,
        }
    }
}

/// Statistics from a multilevel run.
#[derive(Clone, Copy, Debug, Default)]
pub struct MlStats {
    pub levels: usize,
    pub coarsest_n: usize,
    pub initial_cut: f64,
    pub final_cut: f64,
}

/// Run the multilevel bisection on `machine`. Deterministic for a given
/// `(graph, p, cfg)`.
pub fn multilevel_bisect(
    g: &Graph,
    machine: &mut Machine,
    cfg: &MultilevelConfig,
) -> (Bisection, MlStats) {
    let p = machine.p();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (p as u64) << 40);
    let mut stats = MlStats::default();

    // --- Coarsening: every level with all P ranks active.
    machine.phase(Phase::Coarsen);
    let mut graphs: Vec<Graph> = vec![g.clone()];
    let mut maps: Vec<Vec<u32>> = Vec::new();
    while graphs.last().unwrap().n() > cfg.coarsest && graphs.len() < 60 {
        let cur = graphs.last().unwrap();
        let dist = Distribution::block(cur.n(), p);
        let matching = parallel_hem(
            cur,
            &dist,
            machine,
            cfg.matching_rounds,
            rng.random::<u64>(),
        );
        let c = contract(cur, &matching);
        if c.coarse.n() as f64 > 0.95 * cur.n() as f64 {
            break;
        }
        // Contraction: local build (ops ∝ local edges) plus a ghost-id
        // exchange proportional to each rank's cross edges.
        let cross = dist.cross_edges(cur);
        let mut states: Vec<()> = vec![(); p];
        let edges_per_rank = (cur.m() / p).max(1) as f64;
        machine.compute(&mut states, |_, _| edges_per_rank);
        let per_rank_words = (2 * cross / p.max(1)).max(1);
        if p > 1 {
            let outbox: Vec<Vec<(usize, CostOnly)>> = (0..p)
                .map(|r| vec![((r + 1) % p, CostOnly::new(per_rank_words))])
                .collect();
            machine.exchange_costed(&outbox);
        }
        maps.push(c.map);
        graphs.push(c.coarse);
    }
    stats.levels = graphs.len();
    stats.coarsest_n = graphs.last().unwrap().n();

    // --- Initial partition: allgather the coarsest graph, then greedy
    // graph growing + FM redundantly on every rank.
    machine.phase(Phase::Initial);
    let coarsest = graphs.last().unwrap();
    {
        let words = 2 * coarsest.m() + coarsest.n();
        machine.allgather_costed(p * (words / p.max(1)));
    }
    let mut bi = greedy_grow(coarsest, &mut rng);
    let fm_cfg = FmConfig {
        max_passes: cfg.initial_fm_passes,
        balance_tol: cfg.balance_tol,
        move_fraction: 1.0,
    };
    let s0 = fm_refine(coarsest, &mut bi, None, &fm_cfg);
    stats.initial_cut = s0.cut_after;
    {
        let ops = (coarsest.m() as f64) * 8.0;
        let mut states: Vec<()> = vec![(); p];
        machine.compute(&mut states, |_, _| ops); // redundant on every rank
    }

    // --- Uncoarsening with band-restricted FM.
    machine.phase(Phase::Refine);
    for lvl in (0..maps.len()).rev() {
        let fine = &graphs[lvl];
        let map = &maps[lvl];
        // Project.
        let mut fbi = Bisection::new(map.iter().map(|&c| bi.side(c)).collect::<Vec<u8>>());
        // Band + FM (executed once; work charged as distributed over P).
        let band = band_by_hops(fine, &fbi, cfg.band_hops);
        let band_size = band.iter().filter(|&&b| b).count();
        let refine_cfg = FmConfig {
            max_passes: cfg.fm_passes,
            balance_tol: cfg.balance_tol,
            move_fraction: cfg.move_fraction,
        };
        let st = fm_refine(fine, &mut fbi, Some(&band), &refine_cfg);
        // Cost: band extraction (BFS ∝ band edges) is distributed. The FM
        // itself is either distributed (ParMetis) or multi-sequential on a
        // gathered band graph (Pt-Scotch): the band is allgathered and the
        // FM ops run redundantly on every rank — refinement time then has
        // a P-independent floor, Pt-Scotch's documented scaling limit.
        let mut states: Vec<()> = vec![(); p];
        if cfg.centralize_band {
            let words = (3 * band_size / p.max(1)).max(1);
            machine.allgather_costed(p * words);
            let ops = st.ops + band_size as f64 / p as f64;
            machine.compute(&mut states, |_, _| ops);
        } else {
            let ops = (st.ops + band_size as f64) / p as f64;
            machine.compute(&mut states, |_, _| ops);
        }
        let dist = Distribution::block(fine.n(), p);
        let cross = dist.cross_edges(fine);
        for _pass in 0..st.passes {
            if p > 1 {
                let words = (2 * cross / p.max(1)).max(1);
                let outbox: Vec<Vec<(usize, CostOnly)>> = (0..p)
                    .map(|r| vec![((r + 1) % p, CostOnly::new(words))])
                    .collect();
                machine.exchange_costed(&outbox);
            }
            for _ in 0..cfg.collectives_per_pass {
                machine.allreduce_sum_costed(2);
            }
        }
        bi = fbi;
    }
    stats.final_cut = bi.cut(g);
    machine.phase(Phase::Done);
    (bi, stats)
}

/// Greedy graph growing: BFS from a random seed until half the vertex
/// weight is claimed.
fn greedy_grow<R: Rng>(g: &Graph, rng: &mut R) -> Bisection {
    let n = g.n();
    if n == 0 {
        return Bisection::new(Vec::new());
    }
    let half = g.total_vwgt() / 2.0;
    let mut side = vec![1u8; n];
    let start = rng.random_range(0..n) as u32;
    let mut claimed = 0.0;
    let mut queue = std::collections::VecDeque::new();
    let mut seen = vec![false; n];
    queue.push_back(start);
    seen[start as usize] = true;
    while let Some(v) = queue.pop_front() {
        if claimed >= half {
            break;
        }
        side[v as usize] = 0;
        claimed += g.vwgt(v);
        for &u in g.neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    // Disconnected remainder: claim arbitrary vertices if short of half.
    if claimed < half {
        for (v, s) in side.iter_mut().enumerate() {
            if claimed >= half {
                break;
            }
            if *s == 1 {
                *s = 0;
                claimed += g.vwgt(v as u32);
            }
        }
    }
    Bisection::new(side)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sp_graph::gen::{delaunay_graph, grid_2d};
    use sp_machine::CostModel;

    #[test]
    fn parmetis_like_produces_valid_balanced_cut() {
        let g = grid_2d(32, 32);
        let mut m = Machine::new(4, CostModel::qdr_infiniband());
        let (bi, st) = multilevel_bisect(&g, &mut m, &MultilevelConfig::parmetis_like(1));
        bi.validate(&g).unwrap();
        assert!(bi.imbalance(&g) < 0.08, "imbalance {}", bi.imbalance(&g));
        assert!(st.final_cut < (g.m() / 4) as f64, "cut {}", st.final_cut);
        assert!(st.levels > 2);
    }

    #[test]
    fn ptscotch_like_beats_parmetis_like_on_quality() {
        // Individual seeds are noisy (different matchings → different
        // hierarchies), so compare mean cuts across seeds, which is what
        // the paper's Table 3 ranges reflect.
        let mut pm_total = 0.0;
        let mut ps_total = 0.0;
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(40 + seed);
            let (g, _) = delaunay_graph(2000, &mut rng);
            let mut m1 = Machine::new(4, CostModel::qdr_infiniband());
            let mut m2 = Machine::new(4, CostModel::qdr_infiniband());
            let (_, s_pm) = multilevel_bisect(&g, &mut m1, &MultilevelConfig::parmetis_like(seed));
            let (_, s_ps) = multilevel_bisect(&g, &mut m2, &MultilevelConfig::ptscotch_like(seed));
            pm_total += s_pm.final_cut;
            ps_total += s_ps.final_cut;
        }
        assert!(
            ps_total < pm_total,
            "Pt-Scotch-like mean cut {} ≥ ParMetis-like {}",
            ps_total / 6.0,
            pm_total / 6.0
        );
    }

    #[test]
    fn ptscotch_like_is_slower_than_parmetis_like_at_scale() {
        let g = grid_2d(48, 48);
        let p = 64;
        let mut m1 = Machine::new(p, CostModel::qdr_infiniband());
        let mut m2 = Machine::new(p, CostModel::qdr_infiniband());
        let _ = multilevel_bisect(&g, &mut m1, &MultilevelConfig::parmetis_like(2));
        let _ = multilevel_bisect(&g, &mut m2, &MultilevelConfig::ptscotch_like(2));
        assert!(
            m2.elapsed() > m1.elapsed(),
            "ptscotch {} ≤ parmetis {}",
            m2.elapsed(),
            m1.elapsed()
        );
    }

    #[test]
    fn refinement_improves_projected_cut() {
        let g = grid_2d(40, 40);
        let mut m = Machine::new(2, CostModel::qdr_infiniband());
        let (_, st) = multilevel_bisect(&g, &mut m, &MultilevelConfig::ptscotch_like(5));
        // Final cut should be in the vicinity of the optimal 40 and far
        // below a random cut (~m/2 = 1560).
        assert!(st.final_cut < 200.0, "final cut {}", st.final_cut);
    }

    #[test]
    fn deterministic_per_p_but_varies_across_p() {
        let g = grid_2d(24, 24);
        let run = |p: usize| {
            let mut m = Machine::new(p, CostModel::qdr_infiniband());
            let (bi, _) = multilevel_bisect(&g, &mut m, &MultilevelConfig::parmetis_like(3));
            bi.cut(&g)
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn greedy_grow_is_roughly_balanced() {
        let g = grid_2d(20, 20);
        let mut rng = StdRng::seed_from_u64(8);
        let bi = greedy_grow(&g, &mut rng);
        assert!(bi.imbalance(&g) < 0.05, "imbalance {}", bi.imbalance(&g));
    }
}
