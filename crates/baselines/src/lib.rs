//! The comparator partitioners of the paper's evaluation, reimplemented in
//! Rust on the simulated machine:
//!
//! * **RCB** — parallel recursive coordinate bisection (Zoltan's scheme):
//!   distributed median search along the wider coordinate axis.
//! * **ParMetis-like** — parallel multilevel: SPMD heavy-edge matching at
//!   every level with all ranks active, greedy graph-growing initial
//!   partition, boundary-band FM during uncoarsening with per-pass
//!   collectives. Tuned for speed over quality, like ParMetis.
//! * **Pt-Scotch-like** — same skeleton with Pt-Scotch's quality choices:
//!   wider band graphs, more FM passes, tighter balance — better cuts,
//!   more communication per level, slower at scale.
//!
//! These capture the algorithm class and the parallel cost structure of the
//! originals (see DESIGN.md for the substitution argument); they are not
//! line-by-line ports.

pub mod multilevel;
pub mod rcb;

pub use multilevel::{multilevel_bisect, MlStats, MultilevelConfig};
pub use rcb::{rcb_bisect, RcbResult};
