//! Parallel recursive coordinate bisection (RCB), as in Zoltan.
//!
//! For a single edge separator (what the paper measures) RCB is one
//! weighted-median split along the wider coordinate axis. The median is
//! found by a distributed bisection search on the coordinate value: each
//! round every rank counts its owned vertices below the pivot and a
//! one-word allreduce combines the counts — the classic Zoltan scheme.

use sp_geometry::{Aabb2, Point2};
use sp_graph::distr::Distribution;
use sp_graph::{Bisection, Graph};
use sp_machine::Machine;

/// Result of an RCB bisection.
pub struct RcbResult {
    pub bisection: Bisection,
    /// Unweighted cut size.
    pub cut: usize,
    /// Axis used (0 = x, 1 = y).
    pub axis: u8,
    /// Median coordinate of the split.
    pub median: f64,
}

/// Bisect `g` by a coordinate median cut, charging costs to `machine`.
pub fn rcb_bisect(
    g: &Graph,
    coords: &[Point2],
    dist: &Distribution,
    machine: &mut Machine,
) -> RcbResult {
    assert_eq!(coords.len(), g.n());
    assert_eq!(dist.p, machine.p());
    let p = machine.p();
    let n = g.n();
    let rank_verts = dist.rank_vertices();

    // Bounding box: local scan + allreduce of 4 words.
    let bbox = Aabb2::from_points(coords).unwrap_or_else(Aabb2::unit);
    {
        let mut states: Vec<()> = vec![(); p];
        machine.compute(&mut states, |r, _| rank_verts[r].len() as f64);
        machine.allreduce_sum_costed(4);
    }
    let axis: u8 = u8::from(bbox.height() > bbox.width());
    let coord = |v: u32| -> f64 {
        let c = coords[v as usize];
        if axis == 0 {
            c.x
        } else {
            c.y
        }
    };

    // Distributed median by bisection on the value range.
    let (mut lo, mut hi) = if axis == 0 {
        (bbox.min.x, bbox.max.x)
    } else {
        (bbox.min.y, bbox.max.y)
    };
    let rounds = 40usize;
    let mut mid = 0.5 * (lo + hi);
    for _ in 0..rounds {
        mid = 0.5 * (lo + hi);
        // Each rank counts its owned vertices below the pivot.
        let mut states: Vec<f64> = vec![0.0; p];
        {
            let rank_verts_ref = &rank_verts;
            machine.compute(&mut states, |r, below| {
                let mut cnt = 0.0;
                for &v in &rank_verts_ref[r] {
                    if coord(v) < mid {
                        cnt += 1.0;
                    }
                }
                *below = cnt;
                rank_verts_ref[r].len() as f64
            });
        }
        let contrib: Vec<Vec<f64>> = states.iter().map(|&b| vec![b]).collect();
        let below = machine.allreduce_sum(&contrib)[0] as usize;
        if below < n / 2 {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * (bbox.longest_side().max(1e-30)) {
            break;
        }
    }
    // Assign sides; break ties at the pivot plateau by index so the split
    // is exactly balanced even with duplicated coordinates.
    let mut sides: Vec<u8> = (0..n as u32).map(|v| u8::from(coord(v) >= mid)).collect();
    let mut ones: usize = sides.iter().map(|&s| s as usize).sum();
    let half = n / 2;
    if ones > half {
        for (v, s) in sides.iter_mut().enumerate() {
            if ones <= half {
                break;
            }
            if *s == 1 && (coord(v as u32) - mid).abs() < (hi - lo) + 1e-12 {
                *s = 0;
                ones -= 1;
            }
        }
    } else if ones < half {
        for (v, s) in sides.iter_mut().enumerate() {
            if ones >= half {
                break;
            }
            if *s == 0 && (mid - coord(v as u32)).abs() < (hi - lo) + 1e-12 {
                *s = 1;
                ones += 1;
            }
        }
    }
    let bisection = Bisection::new(sides);
    let cut = bisection.cut_edges(g);
    RcbResult {
        bisection,
        cut,
        axis,
        median: mid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sp_graph::gen::{delaunay_graph, grid_2d, grid_2d_coords};
    use sp_machine::CostModel;

    #[test]
    fn grid_rcb_cuts_one_line() {
        let g = grid_2d(16, 16);
        let coords = grid_2d_coords(16, 16);
        let dist = Distribution::block(g.n(), 4);
        let mut m = Machine::new(4, CostModel::qdr_infiniband());
        let r = rcb_bisect(&g, &coords, &dist, &mut m);
        r.bisection.validate(&g).unwrap();
        // Median cut of a square grid severs ~1 grid line (16 edges);
        // plateau tie-breaking can add a few.
        assert!(r.cut <= 32, "cut {}", r.cut);
        let (a, b) = r.bisection.counts();
        assert_eq!(a.abs_diff(b) as i64, 0);
    }

    #[test]
    fn rcb_picks_wider_axis() {
        let g = grid_2d(4, 32); // wide in x
        let coords = grid_2d_coords(4, 32);
        // Stretch x to make it the wider axis unambiguously.
        let coords: Vec<Point2> = coords
            .iter()
            .map(|p| Point2::new(p.x * 10.0, p.y))
            .collect();
        let dist = Distribution::block(g.n(), 2);
        let mut m = Machine::new(2, CostModel::qdr_infiniband());
        let r = rcb_bisect(&g, &coords, &dist, &mut m);
        assert_eq!(r.axis, 0);
        assert!(r.cut <= 8, "cut {}", r.cut);
    }

    #[test]
    fn rcb_is_rank_count_invariant_and_fast_at_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, coords) = delaunay_graph(3000, &mut rng);
        let mut cuts = Vec::new();
        let mut times = Vec::new();
        for p in [1usize, 64] {
            let dist = Distribution::block(g.n(), p);
            let mut m = Machine::new(p, CostModel::qdr_infiniband());
            let r = rcb_bisect(&g, &coords, &dist, &mut m);
            cuts.push(r.cut);
            times.push(m.elapsed());
        }
        assert_eq!(cuts[0], cuts[1]);
        assert!(times[1] < times[0], "scaling failed: {times:?}");
    }

    #[test]
    fn rcb_balance_is_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, coords) = delaunay_graph(1001, &mut rng);
        let dist = Distribution::block(g.n(), 8);
        let mut m = Machine::new(8, CostModel::qdr_infiniband());
        let r = rcb_bisect(&g, &coords, &dist, &mut m);
        let (a, b) = r.bisection.counts();
        assert!(a.abs_diff(b) <= 1, "sizes {a},{b}");
    }

    #[test]
    fn degenerate_coords_still_balanced() {
        let g = grid_2d(8, 8);
        let coords = vec![Point2::new(0.5, 0.5); 64];
        let dist = Distribution::block(64, 2);
        let mut m = Machine::new(2, CostModel::qdr_infiniband());
        let r = rcb_bisect(&g, &coords, &dist, &mut m);
        let (a, b) = r.bisection.counts();
        assert_eq!(a, b);
    }
}
