//! Integration of strip selection and FM: the paper's strip refinement
//! pattern end-to-end on geometric separators.

use sp_graph::gen::grid_2d;
use sp_graph::Bisection;
use sp_refine::{band_by_hops, fm_refine, strip_around_separator, FmConfig};

/// A grid with a slightly wobbly vertical separator described by a signed
/// distance function, mimicking what the geometric partitioner hands over.
fn wobbly_setup(side: usize) -> (sp_graph::Graph, Vec<f64>, Bisection) {
    let g = grid_2d(side, side);
    let signed: Vec<f64> = (0..side * side)
        .map(|v| {
            let (r, c) = (v / side, v % side);
            let wobble = ((r as f64) * 0.7).sin() * 1.5;
            c as f64 - (side as f64 / 2.0 + wobble)
        })
        .collect();
    let bi = Bisection::new(signed.iter().map(|&s| u8::from(s > 0.0)).collect());
    (g, signed, bi)
}

#[test]
fn strip_fm_straightens_a_wobbly_cut() {
    let (g, signed, mut bi) = wobbly_setup(24);
    let before = bi.cut_edges(&g);
    let strip = strip_around_separator(&signed, 6 * before);
    let st = fm_refine(&g, &mut bi, Some(&strip), &FmConfig::default());
    assert!(st.cut_after <= before as f64 + 1e-9);
    // The wobbly cut is longer than a straight one (24); FM inside the
    // strip should recover most of the slack.
    assert!(
        bi.cut_edges(&g) < before,
        "no improvement: {} -> {}",
        before,
        bi.cut_edges(&g)
    );
}

#[test]
fn strip_contains_every_boundary_vertex() {
    let (g, signed, bi) = wobbly_setup(20);
    let cut = bi.cut_edges(&g);
    let strip = strip_around_separator(&signed, 6 * cut);
    for v in bi.boundary(&g) {
        assert!(strip[v as usize], "boundary vertex {v} outside the strip");
    }
}

#[test]
fn strip_and_band_select_similar_regions_near_the_cut() {
    // The paper contrasts its coordinate strip with Pt-Scotch's hop band;
    // on a mesh with consistent geometry they should overlap heavily.
    let (g, signed, bi) = wobbly_setup(20);
    let cut = bi.cut_edges(&g);
    let strip = strip_around_separator(&signed, 4 * cut);
    let band = band_by_hops(&g, &bi, 1);
    let overlap = strip.iter().zip(&band).filter(|&(&s, &b)| s && b).count();
    let band_size = band.iter().filter(|&&b| b).count();
    assert!(
        overlap * 10 >= band_size * 7,
        "strip covers only {overlap} of {band_size} band vertices"
    );
}

#[test]
fn larger_strips_refine_at_least_as_well() {
    let (g, signed, _) = wobbly_setup(28);
    let mut cuts = Vec::new();
    for factor in [2usize, 8] {
        let mut bi = Bisection::new(
            signed
                .iter()
                .map(|&s| u8::from(s > 0.0))
                .collect::<Vec<_>>(),
        );
        let before = bi.cut_edges(&g);
        let strip = strip_around_separator(&signed, factor * before);
        fm_refine(
            &g,
            &mut bi,
            Some(&strip),
            &FmConfig {
                max_passes: 6,
                ..Default::default()
            },
        );
        cuts.push(bi.cut_edges(&g));
    }
    assert!(cuts[1] <= cuts[0], "wider strip worse: {:?}", cuts);
}
