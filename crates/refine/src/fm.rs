//! Fiduccia–Mattheyses bisection refinement.
//!
//! Classic FM with per-pass rollback: repeatedly move the best-gain
//! unlocked vertex (respecting a balance tolerance), remember the best
//! prefix of the move sequence, and roll back to it. A `movable` mask
//! restricts refinement to a subset — the strip/band refinement of the
//! paper moves only vertices near the geometric separator, which keeps the
//! cost "negligible" (a small multiple of the separator size).
//!
//! Gains are floating point (coarse graphs have real-valued edge weights),
//! so the bucket list of the original FM is replaced by a lazy max-heap:
//! entries carry a version stamp and stale ones are skipped on pop. Same
//! asymptotics up to a log factor, no integer-weight restriction.

use sp_graph::access::{self, GraphAccess};
use sp_graph::{Bisection, Graph};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Controls for FM refinement.
#[derive(Clone, Copy, Debug)]
pub struct FmConfig {
    /// Maximum improvement passes.
    pub max_passes: usize,
    /// Allowed weighted imbalance (`max_side / (total/2) − 1`).
    pub balance_tol: f64,
    /// Cap on moves per pass as a multiple of the movable-set size
    /// (1.0 = classic full pass).
    pub move_fraction: f64,
}

impl Default for FmConfig {
    fn default() -> Self {
        FmConfig {
            max_passes: 4,
            balance_tol: 0.05,
            move_fraction: 1.0,
        }
    }
}

/// Outcome of a refinement run.
#[derive(Clone, Copy, Debug, Default)]
pub struct FmStats {
    /// Weighted cut before refinement.
    pub cut_before: f64,
    /// Weighted cut after refinement.
    pub cut_after: f64,
    /// Vertices moved (net, after rollback) across all passes.
    pub moved: usize,
    /// Passes executed.
    pub passes: usize,
    /// Abstract ops (edge scans) performed, for machine cost charging.
    pub ops: f64,
}

#[derive(PartialEq)]
struct HeapEntry {
    gain: f64,
    v: u32,
    stamp: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .partial_cmp(&other.gain)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.v.cmp(&self.v))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Refine `bi` in place. `movable` restricts which vertices may move
/// (`None` = all). Guarantees the weighted cut never increases and the
/// final imbalance is at most `max(initial imbalance, cfg.balance_tol)`.
pub fn fm_refine(
    g: &Graph,
    bi: &mut Bisection,
    movable: Option<&[bool]>,
    cfg: &FmConfig,
) -> FmStats {
    fm_refine_on(g, bi, movable, cfg)
}

/// [`fm_refine`] over any [`GraphAccess`] store. Because gains accumulate
/// in the store's neighbour-iteration order, two stores presenting the
/// same logical graph in the same order (e.g. a delta overlay and its
/// compacted CSR) refine bit-identically.
pub fn fm_refine_on<G: GraphAccess>(
    g: &G,
    bi: &mut Bisection,
    movable: Option<&[bool]>,
    cfg: &FmConfig,
) -> FmStats {
    let n = g.n();
    let mut stats = FmStats {
        cut_before: access::cut_of(g, bi),
        cut_after: 0.0,
        ..Default::default()
    };
    if n < 2 {
        stats.cut_after = stats.cut_before;
        return stats;
    }
    let total_w = g.total_vwgt();
    let half = total_w / 2.0;
    let movable_count = movable.map_or(n, |m| m.iter().filter(|&&b| b).count());
    let move_cap = ((movable_count as f64 * cfg.move_fraction) as usize).max(1);
    let is_movable = |v: u32| movable.is_none_or(|m| m[v as usize]);

    let mut cur_cut = stats.cut_before;
    let (mut w0, mut w1) = access::weights_of(g, bi);
    let init_imb = w0.max(w1) / half - 1.0;
    let allowed_imb = cfg.balance_tol.max(init_imb);

    for pass in 0..cfg.max_passes {
        stats.passes = pass + 1;
        // Gains.
        let mut gain = vec![0.0f64; n];
        let mut stamp = vec![0u32; n];
        let mut heap = BinaryHeap::with_capacity(movable_count);
        for v in 0..n as u32 {
            if !is_movable(v) {
                continue;
            }
            let sv = bi.side(v);
            let mut gv = 0.0;
            for (u, w) in g.neighbors_w(v) {
                if bi.side(u) == sv {
                    gv -= w;
                } else {
                    gv += w;
                }
                stats.ops += 1.0;
            }
            gain[v as usize] = gv;
            heap.push(HeapEntry {
                gain: gv,
                v,
                stamp: 0,
            });
        }
        let mut locked = vec![false; n];
        // Move log for rollback: (vertex, cut after the move, imbalance ok).
        let mut log: Vec<(u32, f64, bool)> = Vec::new();
        let mut best_prefix = 0usize;
        let mut best_cut = cur_cut;
        let mut trial_cut = cur_cut;
        let (mut tw0, mut tw1) = (w0, w1);

        while log.len() < move_cap {
            // Pop the best fresh, unlocked, balance-feasible vertex.
            let Some(v) = pop_feasible(
                &mut heap,
                &stamp,
                &locked,
                bi,
                g,
                tw0,
                tw1,
                half,
                allowed_imb,
            ) else {
                break;
            };
            let sv = bi.side(v);
            let wv = g.vwgt(v);
            trial_cut -= gain[v as usize];
            if sv == 0 {
                tw0 -= wv;
                tw1 += wv;
            } else {
                tw1 -= wv;
                tw0 += wv;
            }
            bi.flip(v);
            locked[v as usize] = true;
            let imb_ok = tw0.max(tw1) / half - 1.0 <= allowed_imb + 1e-12;
            log.push((v, trial_cut, imb_ok));
            if imb_ok && trial_cut < best_cut - 1e-12 {
                best_cut = trial_cut;
                best_prefix = log.len();
            }
            // Update neighbour gains.
            let new_side = bi.side(v);
            for (u, w) in g.neighbors_w(v) {
                stats.ops += 1.0;
                if locked[u as usize] || !is_movable(u) {
                    continue;
                }
                // v changed sides: edges to u flip their contribution.
                let delta = if bi.side(u) == new_side {
                    -2.0 * w
                } else {
                    2.0 * w
                };
                gain[u as usize] += delta;
                stamp[u as usize] += 1;
                heap.push(HeapEntry {
                    gain: gain[u as usize],
                    v: u,
                    stamp: stamp[u as usize],
                });
            }
        }
        // Roll back to the best prefix.
        for &(v, _, _) in log.iter().skip(best_prefix).rev() {
            let wv = g.vwgt(v);
            if bi.side(v) == 0 {
                tw0 -= wv;
                tw1 += wv;
            } else {
                tw1 -= wv;
                tw0 += wv;
            }
            bi.flip(v);
        }
        stats.moved += best_prefix;
        let improved = best_cut < cur_cut - 1e-12;
        cur_cut = best_cut;
        w0 = tw0;
        w1 = tw1;
        if !improved {
            break;
        }
    }
    stats.cut_after = cur_cut;
    stats
}

#[allow(clippy::too_many_arguments)]
fn pop_feasible<G: GraphAccess>(
    heap: &mut BinaryHeap<HeapEntry>,
    stamp: &[u32],
    locked: &[bool],
    bi: &Bisection,
    g: &G,
    w0: f64,
    w1: f64,
    half: f64,
    allowed_imb: f64,
) -> Option<u32> {
    let mut deferred: Vec<HeapEntry> = Vec::new();
    let mut found = None;
    while let Some(e) = heap.pop() {
        if e.stamp != stamp[e.v as usize] || locked[e.v as usize] {
            continue; // stale or locked
        }
        // Balance feasibility of moving v off its side.
        let wv = g.vwgt(e.v);
        let (nw0, nw1) = if bi.side(e.v) == 0 {
            (w0 - wv, w1 + wv)
        } else {
            (w0 + wv, w1 - wv)
        };
        let imb = nw0.max(nw1) / half - 1.0;
        // Always allow moves that reduce imbalance; otherwise require the
        // tolerance to hold after the move.
        let cur_imb = w0.max(w1) / half - 1.0;
        if imb <= allowed_imb + 1e-12 || imb < cur_imb - 1e-12 {
            found = Some(e.v);
            break;
        }
        deferred.push(e);
        if deferred.len() > 64 {
            break; // deep infeasible streak: give up this pop
        }
    }
    for e in deferred {
        heap.push(e);
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sp_graph::gen::grid_2d;

    fn noisy_split(g: &Graph, flip_prob: f64, seed: u64) -> Bisection {
        // A vertical split with random noise.
        let side = (g.n() as f64).sqrt() as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let sides: Vec<u8> = (0..g.n())
            .map(|v| {
                let base = (v % side) >= side / 2;
                let flip = rng.random_range(0.0..1.0) < flip_prob;
                u8::from(base != flip)
            })
            .collect();
        Bisection::new(sides)
    }

    #[test]
    fn fm_never_worsens_the_cut() {
        let g = grid_2d(16, 16);
        for seed in 0..5 {
            let mut bi = noisy_split(&g, 0.15, seed);
            let before = bi.cut(&g);
            let s = fm_refine(&g, &mut bi, None, &FmConfig::default());
            assert!(s.cut_after <= before + 1e-9);
            assert!(
                (bi.cut(&g) - s.cut_after).abs() < 1e-9,
                "stats vs actual cut"
            );
        }
    }

    #[test]
    fn fm_repairs_noisy_split_substantially() {
        let g = grid_2d(20, 20);
        let mut bi = noisy_split(&g, 0.10, 3);
        let before = bi.cut(&g);
        let s = fm_refine(
            &g,
            &mut bi,
            None,
            &FmConfig {
                max_passes: 8,
                ..Default::default()
            },
        );
        assert!(
            s.cut_after < before * 0.5,
            "cut {} -> {} (expected big repair)",
            before,
            s.cut_after
        );
    }

    #[test]
    fn fm_respects_balance_tolerance() {
        let g = grid_2d(14, 14);
        let mut bi = noisy_split(&g, 0.2, 7);
        let cfg = FmConfig {
            balance_tol: 0.05,
            ..Default::default()
        };
        fm_refine(&g, &mut bi, None, &cfg);
        assert!(
            bi.imbalance(&g) <= 0.05 + 1e-9,
            "imbalance {}",
            bi.imbalance(&g)
        );
    }

    #[test]
    fn movable_mask_is_honoured() {
        let g = grid_2d(12, 12);
        let mut bi = noisy_split(&g, 0.25, 9);
        let frozen = bi.clone();
        // Only the first quarter of vertices may move.
        let movable: Vec<bool> = (0..g.n()).map(|v| v < g.n() / 4).collect();
        fm_refine(&g, &mut bi, Some(&movable), &FmConfig::default());
        for v in g.n() / 4..g.n() {
            assert_eq!(
                bi.side(v as u32),
                frozen.side(v as u32),
                "immovable {v} moved"
            );
        }
    }

    #[test]
    fn perfect_cut_is_a_fixed_point() {
        let g = grid_2d(10, 10);
        let mut bi = Bisection::from_fn(g.n(), |v| (v as usize % 10) >= 5);
        let before = bi.cut(&g);
        let s = fm_refine(&g, &mut bi, None, &FmConfig::default());
        assert_eq!(s.cut_after, before);
        assert_eq!(s.moved, 0);
    }

    #[test]
    fn tiny_graph_is_handled() {
        let g = grid_2d(1, 2);
        let mut bi = Bisection::new(vec![0, 1]);
        let s = fm_refine(&g, &mut bi, None, &FmConfig::default());
        assert!(s.cut_after <= s.cut_before);
        bi.validate(&g).unwrap();
    }

    #[test]
    fn ops_are_reported() {
        let g = grid_2d(10, 10);
        let mut bi = noisy_split(&g, 0.2, 1);
        let s = fm_refine(&g, &mut bi, None, &FmConfig::default());
        assert!(s.ops > g.n() as f64);
    }
}
