//! A deliberately naive FM oracle for differential testing.
//!
//! [`naive_fm_refine`] implements the exact move semantics of
//! [`fm_refine`](crate::fm::fm_refine) — same selection order (gain
//! descending, vertex id ascending among ties), same balance-feasibility
//! rule, same infeasible-streak cutoff, same best-prefix rollback — but
//! with none of its machinery: every move recomputes every candidate's
//! gain from scratch by scanning all of its edges, and candidates are
//! sorted instead of kept in a stamped lazy heap. O(moves · n · degree)
//! per pass, which is the point: there is almost nothing here to get
//! wrong, so a disagreement with `fm_refine` indicts the heap/stamp/
//! incremental-gain machinery.
//!
//! On graphs whose weights (and hence gains) are exactly representable —
//! the integer-weight graphs the differential tests use — both
//! implementations compute bit-identical gains, so cuts, move counts and
//! final sides must agree exactly.

use crate::fm::{FmConfig, FmStats};
use sp_graph::{Bisection, Graph};

fn gain_of(g: &Graph, bi: &Bisection, v: u32) -> f64 {
    let sv = bi.side(v);
    let mut gv = 0.0;
    for (u, w) in g.neighbors_w(v) {
        if bi.side(u) == sv {
            gv -= w;
        } else {
            gv += w;
        }
    }
    gv
}

/// The reference implementation of [`fm_refine`](crate::fm::fm_refine)'s
/// semantics. `ops` in the returned stats counts this oracle's own edge
/// scans and is not comparable with the optimized implementation's.
pub fn naive_fm_refine(
    g: &Graph,
    bi: &mut Bisection,
    movable: Option<&[bool]>,
    cfg: &FmConfig,
) -> FmStats {
    let n = g.n();
    let mut stats = FmStats {
        cut_before: bi.cut(g),
        cut_after: 0.0,
        ..Default::default()
    };
    if n < 2 {
        stats.cut_after = stats.cut_before;
        return stats;
    }
    let total_w = g.total_vwgt();
    let half = total_w / 2.0;
    let movable_count = movable.map_or(n, |m| m.iter().filter(|&&b| b).count());
    let move_cap = ((movable_count as f64 * cfg.move_fraction) as usize).max(1);
    let is_movable = |v: u32| movable.is_none_or(|m| m[v as usize]);

    let mut cur_cut = stats.cut_before;
    let (mut w0, mut w1) = bi.weights(g);
    let init_imb = w0.max(w1) / half - 1.0;
    let allowed_imb = cfg.balance_tol.max(init_imb);

    for pass in 0..cfg.max_passes {
        stats.passes = pass + 1;
        let mut locked = vec![false; n];
        let mut log: Vec<u32> = Vec::new();
        let mut best_prefix = 0usize;
        let mut best_cut = cur_cut;
        let mut trial_cut = cur_cut;
        let (mut tw0, mut tw1) = (w0, w1);

        while log.len() < move_cap {
            // Recompute every unlocked candidate's gain from scratch and
            // sort: gain descending, vertex id ascending on ties — the
            // order the optimized heap yields fresh entries in.
            let mut cands: Vec<(f64, u32)> = (0..n as u32)
                .filter(|&v| is_movable(v) && !locked[v as usize])
                .map(|v| {
                    stats.ops += g.degree(v) as f64;
                    (gain_of(g, bi, v), v)
                })
                .collect();
            cands.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));

            // First balance-feasible candidate, mirroring `pop_feasible`:
            // give up after a streak of more than 64 infeasible entries.
            let cur_imb = tw0.max(tw1) / half - 1.0;
            let mut infeasible = 0usize;
            let mut chosen = None;
            for &(gv, v) in &cands {
                let wv = g.vwgt(v);
                let (nw0, nw1) = if bi.side(v) == 0 {
                    (tw0 - wv, tw1 + wv)
                } else {
                    (tw0 + wv, tw1 - wv)
                };
                let imb = nw0.max(nw1) / half - 1.0;
                if imb <= allowed_imb + 1e-12 || imb < cur_imb - 1e-12 {
                    chosen = Some((gv, v));
                    break;
                }
                infeasible += 1;
                if infeasible > 64 {
                    break;
                }
            }
            let Some((gv, v)) = chosen else {
                break;
            };
            let wv = g.vwgt(v);
            trial_cut -= gv;
            if bi.side(v) == 0 {
                tw0 -= wv;
                tw1 += wv;
            } else {
                tw1 -= wv;
                tw0 += wv;
            }
            bi.flip(v);
            locked[v as usize] = true;
            log.push(v);
            let imb_ok = tw0.max(tw1) / half - 1.0 <= allowed_imb + 1e-12;
            if imb_ok && trial_cut < best_cut - 1e-12 {
                best_cut = trial_cut;
                best_prefix = log.len();
            }
        }
        for &v in log.iter().skip(best_prefix).rev() {
            let wv = g.vwgt(v);
            if bi.side(v) == 0 {
                tw0 -= wv;
                tw1 += wv;
            } else {
                tw1 -= wv;
                tw0 += wv;
            }
            bi.flip(v);
        }
        stats.moved += best_prefix;
        let improved = best_cut < cur_cut - 1e-12;
        cur_cut = best_cut;
        w0 = tw0;
        w1 = tw1;
        if !improved {
            break;
        }
    }
    stats.cut_after = cur_cut;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fm::fm_refine;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sp_graph::gen::grid_2d;

    fn noisy_split(g: &Graph, flip_prob: f64, seed: u64) -> Bisection {
        let side = (g.n() as f64).sqrt() as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let sides: Vec<u8> = (0..g.n())
            .map(|v| {
                let base = (v % side) >= side / 2;
                let flip = rng.random_range(0.0..1.0) < flip_prob;
                u8::from(base != flip)
            })
            .collect();
        Bisection::new(sides)
    }

    #[test]
    fn naive_oracle_matches_optimized_fm_exactly() {
        // Unit weights → gains are exact integers, so the stamped-heap
        // implementation and the full-recompute oracle must agree bit for
        // bit: same final sides, same cut, same move count.
        let g = grid_2d(14, 14);
        for seed in 0..6u64 {
            for flip in [0.05, 0.2, 0.35] {
                let cfg = FmConfig::default();
                let mut a = noisy_split(&g, flip, seed);
                let mut b = a.clone();
                let sa = fm_refine(&g, &mut a, None, &cfg);
                let sb = naive_fm_refine(&g, &mut b, None, &cfg);
                assert_eq!(
                    a.sides(),
                    b.sides(),
                    "divergent sides (seed {seed}, flip {flip})"
                );
                assert_eq!(sa.cut_after, sb.cut_after);
                assert_eq!(sa.moved, sb.moved);
                assert_eq!(sa.passes, sb.passes);
            }
        }
    }

    #[test]
    fn naive_oracle_matches_with_movable_mask() {
        let g = grid_2d(12, 12);
        let cfg = FmConfig {
            max_passes: 6,
            balance_tol: 0.08,
            move_fraction: 0.5,
        };
        for seed in [2u64, 11, 29] {
            let mut a = noisy_split(&g, 0.25, seed);
            let mut b = a.clone();
            let movable: Vec<bool> = (0..g.n()).map(|v| v % 3 != 0).collect();
            let sa = fm_refine(&g, &mut a, Some(&movable), &cfg);
            let sb = naive_fm_refine(&g, &mut b, Some(&movable), &cfg);
            assert_eq!(a.sides(), b.sides(), "divergent sides (seed {seed})");
            assert_eq!(sa.cut_after, sb.cut_after);
            assert_eq!(sa.moved, sb.moved);
        }
    }

    #[test]
    fn naive_never_worsens_cut_or_balance() {
        let g = grid_2d(10, 10);
        let mut bi = noisy_split(&g, 0.3, 5);
        let cfg = FmConfig::default();
        let s = naive_fm_refine(&g, &mut bi, None, &cfg);
        assert!(s.cut_after <= s.cut_before + 1e-9);
        assert!((bi.cut(&g) - s.cut_after).abs() < 1e-9);
        assert!(bi.imbalance(&g) <= cfg.balance_tol + 1e-9);
    }
}
