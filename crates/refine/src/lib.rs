//! Partition refinement: Fiduccia–Mattheyses with an optional movable-set
//! restriction, the paper's coordinate **strip** selection around the
//! separating circle (§3, Fig 2), the hop-based **band** selection that
//! Pt-Scotch uses (implemented for the baseline comparison), and a
//! Kernighan–Lin reference used in tests.

pub mod band;
pub mod fm;
pub mod kl;
pub mod naive;
pub mod strip;

pub use band::band_by_hops;
pub use fm::{fm_refine, fm_refine_on, FmConfig, FmStats};
pub use kl::kl_refine;
pub use naive::naive_fm_refine;
pub use strip::strip_around_separator;
